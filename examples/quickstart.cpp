// Quickstart: the complete flow in one file.
//
//   1. Build a small CNN with ClippedReLU activations.
//   2. Train it on a synthetic digit dataset.
//   3. Convert it to a radix-encoded SNN (3-bit weights, T-bit activations).
//   4. Compile the SNN onto an accelerator instance (-> ir::LayerProgram).
//   5. Run one inference on every execution engine (they must agree
//      bit-identically), stream a batch through the persistent worker pool,
//      and print the hardware report.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "compiler/compile.hpp"
#include "data/synth_digits.hpp"
#include "engine/engine.hpp"
#include "engine/stream.hpp"
#include "hw/accelerator.hpp"
#include "hw/power_model.hpp"
#include "hw/resource_model.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool2d.hpp"
#include "nn/trainer.hpp"
#include "quant/quantize.hpp"
#include "snn/radix_snn.hpp"

int main() {
  using namespace rsnn;

  // ---- 1. model ----------------------------------------------------------
  // 16x16 inputs, one conv block, one classifier. Weight QAT at 3 bits makes
  // the later conversion nearly lossless.
  nn::Network net(Shape{1, 16, 16});
  net.add<nn::Conv2d>(nn::Conv2dConfig{1, 6, 3, 1, 0, true, 3});
  net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, 4});
  net.add<nn::Pool2d>(nn::Pool2dConfig{2});
  net.add<nn::Flatten>();
  net.add<nn::Linear>(nn::LinearConfig{6 * 7 * 7, 10, true, 3});
  std::printf("%s\n", net.summary().c_str());

  // ---- 2. data + training -------------------------------------------------
  data::SynthDigitsConfig data_cfg;
  data_cfg.canvas = 16;
  data_cfg.num_samples = 1000;
  data_cfg.max_shift = 1.5;
  auto parts = data::split(data::make_synth_digits(data_cfg), 0.8);

  Rng rng(1);
  net.init_params(rng);
  nn::Adam adam(net.params(), nn::AdamConfig{0.03f});
  nn::TrainConfig train_cfg;
  train_cfg.epochs = 10;
  train_cfg.epoch_callback = [](int epoch, float loss, float acc) {
    std::printf("epoch %d: loss %.3f  train acc %.3f\n", epoch, loss, acc);
  };
  nn::Trainer trainer(net, adam, train_cfg);
  trainer.fit(parts.train.images, parts.train.labels, rng);
  const auto eval = nn::evaluate(net, parts.test.images, parts.test.labels);
  std::printf("ANN test accuracy: %.1f%%\n\n", 100.0 * eval.accuracy);

  // ---- 3. ANN -> radix SNN ------------------------------------------------
  const int T = 4;  // spike train length == activation bits
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, T});
  std::printf("%s\n", qnet.summary().c_str());

  // ---- 4. compile onto the accelerator ------------------------------------
  compiler::CompileOptions options;
  options.num_conv_units = 2;
  options.clock_mhz = 100.0;
  const auto design = compiler::compile(qnet, options);
  std::printf("%s\n", compiler::describe(design, qnet).c_str());

  // ---- 5. run one image on every engine -----------------------------------
  // The compiled design carries the lowered LayerProgram; all four engines
  // execute it and must agree bit-identically on logits and cycles.
  hw::Accelerator accel(design.program);
  const auto& image = parts.test.images[0];
  const auto run = accel.run_image(image, hw::SimMode::kCycleAccurate);

  for (const auto kind : engine::all_engines()) {
    auto eng = engine::make_engine(kind, design.program);
    const auto result = eng->run_image(image);
    std::printf("engine %-14s -> class %d, %lld cycles, bit-exact: %s\n",
                eng->name(), result.predicted_class,
                static_cast<long long>(result.total_cycles),
                result.logits == run.logits ? "yes" : "NO");
  }
  std::printf("label: %d\n", parts.test.labels[0]);

  // Streaming: a persistent worker pool with pre-allocated per-worker state
  // reports serving throughput alongside the modeled hardware latency.
  engine::StreamingExecutor stream(design.program,
                                   engine::EngineKind::kCycleAccurate, 0);
  stream.run_stream_images(parts.test.images);
  std::printf("streamed %lld images -> %.1f images/sec on %d worker(s)\n",
              static_cast<long long>(stream.last_stats().images),
              stream.last_stats().images_per_sec, stream.last_stats().workers);

  std::printf("\nlatency: %.1f us (%lld cycles @ %.0f MHz)\n", run.latency_us,
              static_cast<long long>(run.total_cycles),
              design.config.clock_mhz);
  const auto resources = hw::estimate_resources(accel);
  std::printf("resources: %s\n", hw::to_string(resources).c_str());
  const auto power =
      hw::estimate_power(design.config, resources, run, accel.uses_dram());
  std::printf("power: %.2f W (static %.2f, clock %.2f, logic %.2f, bram %.2f)\n",
              power.total_w(), power.static_w, power.clock_w, power.logic_w,
              power.bram_w);
  return 0;
}
