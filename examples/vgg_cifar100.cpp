// VGG-11 scalability demo — the paper's headline claim (Sec. IV-D): "the
// first work to deploy the large neural network model VGG on physical
// FPGA-based neuromorphic hardware".
//
// Instantiates the full 28.5M-parameter VGG-11 for CIFAR-100-class inputs,
// compiles it (8 conv units, 115 MHz), shows the DRAM weight-streaming
// placement, and reports the per-layer schedule with predicted latency,
// resources and power. Weights are random (hardware metrics are
// weight-independent); pass --train-lite to also train the width-reduced
// stand-in for an accuracy figure (slow).
#include <cstdio>
#include <cstring>

#include "compiler/compile.hpp"
#include "data/synth_objects.hpp"
#include "hw/accelerator.hpp"
#include "hw/power_model.hpp"
#include "hw/resource_model.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"

int main(int argc, char** argv) {
  using namespace rsnn;
  const bool train_lite = argc > 1 && std::strcmp(argv[1], "--train-lite") == 0;

  std::printf("Building full-size VGG-11 (CIFAR-100 configuration)...\n");
  Rng rng(99);
  nn::Network vgg = nn::make_vgg11();
  vgg.init_params(rng);
  for (nn::Param* p : vgg.params())
    for (std::int64_t i = 0; i < p->value.numel(); ++i)
      p->value.at_flat(i) *= 0.5f;
  std::printf("parameters: %.1fM\n", static_cast<double>(vgg.num_params()) / 1e6);

  const int T = 6;  // paper: "six time steps are needed" for CIFAR-100
  const auto qnet = quant::quantize(vgg, quant::QuantizeConfig{3, T});

  compiler::CompileOptions options;
  options.num_conv_units = 8;  // paper: "eight convolution units"
  options.clock_mhz = 115.0;   // paper: "clocked at 115 MHz"
  options.memory.weight_bram_bits = std::int64_t{4} * 1024 * 1024 * 8;
  const auto design = compiler::compile(qnet, options);
  std::printf("\n%s", compiler::describe(design, qnet).c_str());

  hw::Accelerator accel(design.config, qnet);
  std::printf("\nweight placement: %s\n",
              accel.uses_dram() ? "external DRAM (BRAM budget exceeded)"
                                : "on-chip BRAM");
  std::printf("activation buffers: 2-D pair %lld KiB each, 1-D pair %lld KiB "
              "each\n",
              static_cast<long long>(accel.buffer_plan().buffer2d_bits_each / 8 / 1024),
              static_cast<long long>(accel.buffer_plan().buffer1d_bits_each / 8 / 1024));

  data::SynthObjectsConfig sample_cfg;
  sample_cfg.num_samples = 1;
  const auto sample = data::make_synth_objects(sample_cfg).images[0];
  std::printf("\nrunning one inference (analytic mode)...\n");
  const auto run = accel.run_image(sample, hw::SimMode::kAnalytic);

  const auto resources = hw::estimate_resources(accel);
  const auto power =
      hw::estimate_power(design.config, resources, run, accel.uses_dram());

  std::printf("\n=== VGG-11 on the accelerator ===\n");
  std::printf("latency     : %.1f ms  (throughput %.1f fps)\n",
              run.latency_us / 1000.0, 1e6 / run.latency_us);
  std::printf("DRAM traffic: %.1f MiB per inference\n",
              static_cast<double>(run.dram_bits) / 8.0 / 1024.0 / 1024.0);
  std::printf("power       : %.2f W (DRAM interface %.2f W)\n", power.total_w(),
              power.dram_w);
  std::printf("resources   : %s\n", hw::to_string(resources).c_str());
  std::printf("paper ref   : 210 ms / 4.7 fps / 4.9 W / 88k LUT / 84k FF, "
              "4.5 MB BRAM for feature maps\n");

  if (train_lite) {
    std::printf("\n--train-lite requested: see bench/table3_comparison for "
                "the trained width-reduced accuracy stand-in.\n");
  }
  return 0;
}
