// RTL generation — emit the SystemVerilog project for a compiled design.
//
// Mirrors the role of the E3NE framework's HDL generation [14]: the same
// AcceleratorConfig that drives the cycle-accurate simulator is emitted as
// a synthesizable module set plus $readmemh weight images.
//
// Usage: generate_rtl [output_dir=rtl_out] [conv_units=2] [pipeline_stages=0]
//
// With pipeline_stages > 1, emits one bundle per latency-balanced pipeline
// stage — each re-lowered against its own device, with ready/valid stream
// interfaces on the cut tensors — into <output_dir>/stage<k>/.
#include <cstdio>
#include <cstdlib>

#include "compiler/compile.hpp"
#include "compiler/partition.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "rtl/generate.hpp"

int main(int argc, char** argv) {
  using namespace rsnn;
  const std::string out_dir = argc > 1 ? argv[1] : "rtl_out";
  const int units = argc > 2 ? std::atoi(argv[2]) : 2;
  const int stages = argc > 3 ? std::atoi(argv[3]) : 0;

  Rng rng(3);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const auto qnet = quant::quantize(lenet, quant::QuantizeConfig{3, 4});

  compiler::CompileOptions options;
  options.num_conv_units = units;
  options.clock_mhz = 100.0;
  const auto design = compiler::compile(qnet, options);
  std::printf("%s\n", compiler::describe(design, qnet).c_str());

  if (stages > 1) {
    int checked_stages = 0;
    const std::string request_error = compiler::validate_pipeline_request(
        design.program, argv[3], "balance_latency", &checked_stages);
    if (!request_error.empty()) {
      std::fprintf(stderr, "error: %s\n", request_error.c_str());
      return 1;
    }
    const auto segments = compiler::partition_balance_latency(
        design.program, checked_stages, compiler::PartitionOptions{});
    const auto bundles =
        rtl::generate_pipeline_bundles(design.program, segments);
    const int written = rtl::write_pipeline_bundles(bundles, out_dir);
    std::printf("wrote %d files across %zu stage bundles to %s/:\n", written,
                bundles.size(), out_dir.c_str());
    for (const auto& stage : bundles)
      for (const auto& [name, contents] : stage.files)
        std::printf("  stage%d/%-32s %8zu bytes\n", stage.stage, name.c_str(),
                    contents.size());
    return 0;
  }

  const auto bundle =
      rtl::generate_design_with_weights(design.config, qnet, "rsnn_accel");
  const int written = rtl::write_bundle(bundle, out_dir);
  std::printf("wrote %d files to %s/:\n", written, out_dir.c_str());
  for (const auto& [name, contents] : bundle)
    std::printf("  %-32s %6zu bytes\n", name.c_str(), contents.size());

  std::printf("\nNote: the emitted controller is a sequencer skeleton; the\n"
              "C++ simulator (src/hw) is the behavioural reference for the\n"
              "pass schedule (see rsnn_accel.sv header comment).\n");
  return 0;
}
