// Encoding explorer — a pedagogical tour of the paper's core idea.
//
// Shows, for concrete values, what radix-encoded and rate-encoded spike
// trains look like, how the radix left-shift accumulation recovers the
// value, and how the round-trip error of the two schemes scales with the
// spike-train length.
//
// Usage: encoding_explorer [value=0.6372] [T=6]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "encoding/analysis.hpp"
#include "encoding/radix.hpp"
#include "encoding/rate.hpp"

namespace {

void print_train(const char* label, const rsnn::encoding::SpikeTrain& train) {
  std::printf("%-18s t=0..%d : ", label, train.time_steps() - 1);
  for (int t = 0; t < train.time_steps(); ++t)
    std::printf("%c", train.spike(t, 0) ? '|' : '.');
  std::printf("   (%d spikes)\n", train.spike_count(0));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsnn;
  const double value = argc > 1 ? std::atof(argv[1]) : 0.6372;
  const int T = argc > 2 ? std::atoi(argv[2]) : 6;
  if (value < 0.0 || value >= 1.0 || T < 1 || T > 16) {
    std::printf("value must be in [0,1), T in 1..16\n");
    return 1;
  }

  TensorF v(Shape{1});
  v.at_flat(0) = static_cast<float>(value);

  std::printf("value a = %.6f, spike train length T = %d\n\n", value, T);

  // ---- radix ---------------------------------------------------------------
  const auto radix = encoding::radix_encode(v, T);
  print_train("radix (MSB first)", radix);

  const TensorI codes = encoding::radix_decode_codes(radix);
  std::printf("  integer code A = floor(a * 2^T) = %d\n", codes.at_flat(0));
  std::printf("  hardware recovery via left-shift accumulation:\n");
  std::int64_t acc = 0;
  for (int t = 0; t < T; ++t) {
    acc = (acc << 1) + (radix.spike(t, 0) ? 1 : 0);
    std::printf("    t=%d: acc = (acc << 1) + s_t = %lld\n", t,
                static_cast<long long>(acc));
  }
  std::printf("  decoded a~ = A / 2^T = %.6f (error %.6f <= 2^-T = %.6f)\n\n",
              static_cast<double>(acc) / (1 << T),
              value - static_cast<double>(acc) / (1 << T),
              1.0 / (1 << T));

  // ---- rate ----------------------------------------------------------------
  const auto rate = encoding::rate_encode(v, T);
  print_train("rate (uniform)", rate);
  const auto decoded = encoding::rate_decode(rate);
  std::printf("  decoded a~ = count / T = %.6f (error %.6f, bound ~1/(2T) = "
              "%.6f)\n\n",
              decoded.at_flat(0), value - decoded.at_flat(0), 0.5 / T);

  Rng rng(1);
  const auto stochastic = encoding::rate_encode_stochastic(v, T, rng);
  print_train("rate (stochastic)", stochastic);
  std::printf("\n");

  // ---- error scaling --------------------------------------------------------
  const TensorF sweep_values = encoding::uniform_test_values(4096, rng);
  std::printf("round-trip RMS error over 4096 uniform values:\n");
  std::printf("  %-4s %-12s %-12s %s\n", "T", "radix", "rate",
              "radix advantage");
  for (int steps = 1; steps <= 12; ++steps) {
    const auto radix_stats = encoding::radix_error(sweep_values, steps);
    const auto rate_stats = encoding::rate_error(sweep_values, steps);
    std::printf("  %-4d %-12.6f %-12.6f %.1fx\n", steps,
                radix_stats.rms_error, rate_stats.rms_error,
                rate_stats.rms_error / radix_stats.rms_error);
  }
  std::printf(
      "\nradix error halves per step (2^-T); rate error shrinks only as "
      "1/T.\nThat gap is why the paper needs 6 steps where rate-coded "
      "accelerators need tens to hundreds.\n");
  return 0;
}
