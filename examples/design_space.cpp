// Design-space exploration — automating the paper's Table II trade-off.
//
// Sweeps convolution-unit count and clock frequency for a network, printing
// the latency / power / resource Pareto table, then uses
// compiler::compile_for_latency to pick the smallest design that meets a
// latency target.
//
// Usage: design_space [target_latency_us=150]
#include <cstdio>
#include <cstdlib>

#include "compiler/compile.hpp"
#include "data/synth_digits.hpp"
#include "hw/accelerator.hpp"
#include "hw/power_model.hpp"
#include "hw/report.hpp"
#include "hw/resource_model.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"

int main(int argc, char** argv) {
  using namespace rsnn;
  const double target_us = argc > 1 ? std::atof(argv[1]) : 150.0;

  // Architecture-only exploration needs no training: random weights give
  // identical latency/resources and representative activity.
  Rng rng(11);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  for (nn::Param* p : lenet.params())
    for (std::int64_t i = 0; i < p->value.numel(); ++i)
      p->value.at_flat(i) *= 0.5f;
  const auto qnet = quant::quantize(lenet, quant::QuantizeConfig{3, 4});

  data::SynthDigitsConfig img_cfg;
  img_cfg.num_samples = 1;
  const auto sample = data::make_synth_digits(img_cfg).images[0];

  std::printf("LeNet-5 design space (T=4, 3-bit weights)\n\n");
  std::printf("units  MHz   lat[us]  fps      W      mJ/inf  LUTs    FFs\n");
  for (const double mhz : {100.0, 200.0}) {
    for (const int units : {1, 2, 4, 8}) {
      compiler::CompileOptions options;
      options.num_conv_units = units;
      options.clock_mhz = mhz;
      const auto design = compiler::compile(qnet, options);
      hw::Accelerator accel(design.config, qnet);
      const auto run = accel.run_image(sample, hw::SimMode::kAnalytic);
      const auto resources = hw::estimate_resources(accel);
      const auto power =
          hw::estimate_power(design.config, resources, run, accel.uses_dram());
      const auto metrics = hw::compute_metrics(design.config, run, power);
      std::printf("%-6d %-5.0f %-8.0f %-8.0f %-6.2f %-7.3f %-7lld %lld\n",
                  units, mhz, run.latency_us, metrics.throughput_fps,
                  power.total_w(), metrics.energy_mj,
                  static_cast<long long>(resources.luts),
                  static_cast<long long>(resources.flip_flops));
    }
  }

  std::printf("\nauto-selecting the smallest design meeting %.0f us "
              "at 100 MHz...\n",
              target_us);
  compiler::CompileOptions base;
  base.clock_mhz = 100.0;
  const auto chosen = compiler::compile_for_latency(qnet, base, target_us);
  std::printf("-> %d conv units, predicted %.0f us\n",
              chosen.config.num_conv_units, chosen.predicted_latency_us);

  std::printf("\nwith exact accumulator sizing (size_accumulators=true):\n");
  base.size_accumulators = true;
  base.num_conv_units = chosen.config.num_conv_units;
  const auto sized = compiler::compile(qnet, base);
  hw::Accelerator tight(sized.config, qnet);
  const auto tight_res = hw::estimate_resources(tight);
  std::printf("-> conv accumulators %d bits, %s\n",
              sized.config.conv.accumulator_bits,
              hw::to_string(tight_res).c_str());
  return 0;
}
