// LeNet-5 end to end — the paper's main workload (Sec. IV-A).
//
// Trains LeNet-5 on MNIST (if IDX files are present under ./data/mnist) or
// on the SynthDigits stand-in, converts it at a chosen spike-train length,
// compiles it onto the accelerator and reports accuracy, latency, power and
// resources — the quantities of paper Tables I-III.
//
// Usage: lenet_mnist [T=4] [conv_units=4] [clock_mhz=200] [epochs=4]
#include <cstdio>
#include <cstdlib>

#include "compiler/compile.hpp"
#include "data/idx_loader.hpp"
#include "data/synth_digits.hpp"
#include "hw/accelerator.hpp"
#include "hw/power_model.hpp"
#include "hw/report.hpp"
#include "hw/resource_model.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"

int main(int argc, char** argv) {
  using namespace rsnn;
  const int T = argc > 1 ? std::atoi(argv[1]) : 4;
  const int units = argc > 2 ? std::atoi(argv[2]) : 4;
  const double mhz = argc > 3 ? std::atof(argv[3]) : 200.0;
  const int epochs = argc > 4 ? std::atoi(argv[4]) : 4;

  // ---- data ----------------------------------------------------------------
  data::Dataset train, test;
  if (auto mnist = data::load_mnist("data/mnist", /*train=*/true, 32)) {
    std::printf("using real MNIST from ./data/mnist\n");
    train = std::move(*mnist);
    test = *data::load_mnist("data/mnist", /*train=*/false, 32);
  } else {
    std::printf("MNIST not found; using the SynthDigits stand-in "
                "(DESIGN.md §3)\n");
    data::SynthDigitsConfig cfg;
    cfg.num_samples = 3000;
    cfg.noise_stddev = 0.08;
    cfg.max_shift = 3.0;
    cfg.min_scale = 0.7;
    cfg.max_shear = 0.25;
    cfg.intensity_min = 0.55;
    auto parts = data::split(data::make_synth_digits(cfg), 0.8);
    train = std::move(parts.train);
    test = std::move(parts.test);
  }
  std::printf("train: %zu samples, test: %zu samples\n", train.size(),
              test.size());

  // ---- train (weight-QAT at the paper's 3-bit resolution) -------------------
  nn::ZooOptions zoo;
  zoo.weight_qat_bits = 3;
  nn::Network net = nn::make_lenet5(zoo);
  Rng rng(7);
  net.init_params(rng);
  nn::Adam adam(net.params(), nn::AdamConfig{0.005f});
  nn::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.epoch_callback = [](int epoch, float loss, float acc) {
    std::printf("epoch %d: loss %.3f  train acc %.3f\n", epoch, loss, acc);
    std::fflush(stdout);
  };
  nn::Trainer trainer(net, adam, train_cfg);
  trainer.fit(train.images, train.labels, rng);
  std::printf("ANN test accuracy: %.2f%%\n",
              100.0 * nn::evaluate(net, test.images, test.labels).accuracy);

  // ---- convert + compile -----------------------------------------------------
  const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, T});
  compiler::CompileOptions options;
  options.num_conv_units = units;
  options.clock_mhz = mhz;
  const auto design = compiler::compile(qnet, options);
  std::printf("\n%s", compiler::describe(design, qnet).c_str());

  // ---- evaluate on hardware ---------------------------------------------------
  hw::Accelerator accel(design.config, qnet);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const TensorI codes = quant::encode_activations(test.images[i], T);
    if (qnet.classify(codes) == test.labels[i]) ++correct;
  }
  const double accuracy =
      100.0 * static_cast<double>(correct) / static_cast<double>(test.size());

  const auto run = accel.run_image(test.images[0], hw::SimMode::kAnalytic);
  const auto resources = hw::estimate_resources(accel);
  const auto power =
      hw::estimate_power(design.config, resources, run, accel.uses_dram());

  std::printf("\n=== report (T=%d, %d conv units, %.0f MHz) ===\n", T, units,
              mhz);
  std::printf("accuracy   : %.2f%%\n", accuracy);
  std::printf("latency    : %.0f us  (throughput %.0f fps)\n", run.latency_us,
              1e6 / run.latency_us);
  std::printf("power      : %.2f W\n", power.total_w());
  std::printf("resources  : %s\n", hw::to_string(resources).c_str());
  const auto metrics = hw::compute_metrics(design.config, run, power);
  std::printf("energy     : %.3f mJ/inference, %.2f GSOP/s, adder util %.3f\n",
              metrics.energy_mj, metrics.synaptic_ops_per_second / 1e9,
              metrics.avg_adder_utilization);
  std::printf("paper ref  : 99.09%% at 294 us / 3380 fps / 3.4 W (Table III)\n");

  std::printf("\nper-layer breakdown:\n%s", hw::layer_report(run).c_str());
  return 0;
}
