// Microbenchmarks for the simulator's hot paths: radix encode/decode, the
// quantized integer forward pass, the cycle-accurate accelerator, and the
// analytic latency model. These track simulator performance, not paper
// results.
//
// Two modes:
//   * default — google-benchmark registrations (when the library is
//     available at configure time).
//   * --json <path> [--samples N] [--tiny] [--compare OLD.json] —
//     self-contained chrono timing of the inference paths, written as
//     machine-readable JSON (BENCH_*.json style) so successive PRs can
//     compare ns/inference. This mode needs only the standard library.
//     --tiny restricts the run to the small-network entries — including
//     small streaming and pipelined runs — plus radix encoding (seconds,
//     not minutes — the CI bench-smoke tier). --compare reads a previous
//     run's JSON, prints the per-entry speedup, and exits non-zero if any
//     shared entry regressed by more than 10%.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "compiler/partition.hpp"
#include "encoding/radix.hpp"
#include "engine/engine.hpp"
#include "engine/pipeline.hpp"
#include "engine/stream.hpp"
#include "hw/accelerator.hpp"
#include "hw/conv_unit.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/network.hpp"
#include "nn/pool2d.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"

#ifndef RSNN_NO_GOOGLE_BENCHMARK
#include <benchmark/benchmark.h>
#endif

namespace {

using namespace rsnn;

TensorF random_image(const Shape& shape, Rng& rng) {
  TensorF image(shape);
  for (std::int64_t i = 0; i < image.numel(); ++i)
    image.at_flat(i) = static_cast<float>(rng.next_double() * 0.999);
  return image;
}

quant::QuantizedNetwork make_qnet(int T) {
  Rng rng(5);
  nn::Network net(Shape{1, 16, 16});
  net.add<nn::Conv2d>(nn::Conv2dConfig{1, 8, 3, 1, 0});
  net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, 0});
  net.add<nn::Pool2d>(nn::Pool2dConfig{2});
  net.add<nn::Flatten>();
  net.add<nn::Linear>(nn::LinearConfig{8 * 7 * 7, 10});
  net.init_params(rng);
  for (nn::Param* p : net.params())
    for (std::int64_t i = 0; i < p->value.numel(); ++i)
      p->value.at_flat(i) *= 0.5f;
  return quant::quantize(net, quant::QuantizeConfig{3, T});
}

quant::QuantizedNetwork make_lenet_qnet(int T) {
  Rng rng(6);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  for (nn::Param* p : lenet.params())
    for (std::int64_t i = 0; i < p->value.numel(); ++i)
      p->value.at_flat(i) *= 0.5f;
  return quant::quantize(lenet, quant::QuantizeConfig{3, T});
}

// ------------------------------------------------------------- JSON mode

struct BenchResult {
  std::string name;
  double ns_per_inference = 0.0;
  int samples = 0;
  double images_per_sec = 0.0;  ///< emitted when > 0 (streaming entries)
};

// ------------------------------------------------------- host metadata
//
// Absolute ns/inference only means something relative to the machine that
// produced it. Every BENCH_*.json therefore records the host it ran on, and
// --compare refuses to stay silent when the baseline's host differs.

/// Approximate sustained clock in MHz, measured by timing a dependent-add
/// chain (1 add/cycle on every x86/ARM core this tool targets). Good to
/// ~10% — enough to tell a 2.1 GHz CI box from a 4.5 GHz laptop, which is
/// all the cross-host comparison warning needs.
double approx_clock_mhz() {
#if defined(__GNUC__) || defined(__clang__)
  constexpr std::uint64_t kIters = 64 * 1000 * 1000;
  double best_mhz = 0.0;
  for (int rep = 0; rep < 3; ++rep) {  // best-of-3 rides out scheduler noise
    std::uint64_t acc = 1;
    const auto begin = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kIters; ++i) {
      acc += i;
      // Empty barrier: without it the whole chain folds to a closed-form
      // sum and the "loop" finishes in microseconds.
      asm volatile("" : "+r"(acc));
    }
    const auto end = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count());
    if (ns > 0.0) best_mhz = std::max(best_mhz, kIters * 1e3 / ns);
  }
  return best_mhz;
#else
  return 0.0;  // unknown — the cross-host comparison skips the clock check
#endif
}

struct HostInfo {
  unsigned cores = 0;  ///< std::thread::hardware_concurrency()
  std::string simd_active;
  double clock_mhz_approx = 0.0;
};

HostInfo current_host() {
  HostInfo host;
  host.cores = std::thread::hardware_concurrency();
  host.simd_active = common::simd::active_isa();
  host.clock_mhz_approx = approx_clock_mhz();
  return host;
}

/// Wall-clock ns per call of `fn` over `samples` calls (one warmup call).
template <typename Fn>
double time_ns_per_call(int samples, Fn&& fn) {
  fn();  // warmup: page in weights, encode caches
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < samples; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                 .count()) /
         samples;
}

/// Parse the (name, ns_per_inference) pairs out of a microbench JSON file.
/// Only understands the format run_json_mode() writes — that is the point:
/// the baseline being compared against is a previous run of this tool.
std::vector<std::pair<std::string, double>> parse_bench_json(
    const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return {};
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, in)) > 0;)
    text.append(buf, n);
  std::fclose(in);

  std::vector<std::pair<std::string, double>> entries;
  const std::string name_key = "\"name\": \"";
  const std::string ns_key = "\"ns_per_inference\": ";
  std::size_t pos = 0;
  while ((pos = text.find(name_key, pos)) != std::string::npos) {
    pos += name_key.size();
    const std::size_t name_end = text.find('"', pos);
    if (name_end == std::string::npos) break;
    const std::string name = text.substr(pos, name_end - pos);
    const std::size_t ns_pos = text.find(ns_key, name_end);
    if (ns_pos == std::string::npos) break;
    entries.emplace_back(name,
                         std::strtod(text.c_str() + ns_pos + ns_key.size(),
                                     nullptr));
    pos = ns_pos;
  }
  return entries;
}

/// Parse the "host" object out of a microbench JSON file written by
/// run_json_mode(). Fields stay zero/empty when absent (pre-PR-9 baselines
/// carry no host block — treated as "unknown host", which warns).
HostInfo parse_baseline_host(const std::string& path) {
  HostInfo host;
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return host;
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, in)) > 0;)
    text.append(buf, n);
  std::fclose(in);

  const auto find_num = [&](const char* key) -> double {
    const std::size_t pos = text.find(key);
    if (pos == std::string::npos) return 0.0;
    return std::strtod(text.c_str() + pos + std::strlen(key), nullptr);
  };
  host.cores = static_cast<unsigned>(find_num("\"hardware_concurrency\": "));
  host.clock_mhz_approx = find_num("\"clock_mhz_approx\": ");
  const std::string simd_key = "\"simd_active\": \"";
  const std::size_t simd_pos = text.find(simd_key);
  if (simd_pos != std::string::npos) {
    const std::size_t begin = simd_pos + simd_key.size();
    const std::size_t end = text.find('"', begin);
    if (end != std::string::npos)
      host.simd_active = text.substr(begin, end - begin);
  }
  return host;
}

/// Loudly flag a baseline produced on a different machine: the per-entry
/// speedups below are then hardware deltas, not code deltas. Warns only —
/// the pass/fail gate is unchanged (CI regenerates its comparison point on
/// the same runner, so a mismatch there means the committed baseline needs
/// re-baselining, which the regression check will surface on its own).
void warn_if_host_differs(const HostInfo& baseline, const HostInfo& now) {
  std::vector<std::string> diffs;
  if (baseline.cores == 0 && baseline.simd_active.empty())
    diffs.push_back("baseline records no host metadata (pre-PR-9 file?)");
  if (baseline.cores != 0 && baseline.cores != now.cores)
    diffs.push_back("cores: baseline " + std::to_string(baseline.cores) +
                    " vs " + std::to_string(now.cores) + " here");
  if (!baseline.simd_active.empty() &&
      baseline.simd_active != now.simd_active)
    diffs.push_back("SIMD: baseline " + baseline.simd_active + " vs " +
                    now.simd_active + " here");
  // The clock estimate is ~10% noise on its own, so only a >25% gap counts
  // as "a different machine" rather than turbo/thermal wander.
  if (baseline.clock_mhz_approx > 0.0 && now.clock_mhz_approx > 0.0) {
    const double ratio = baseline.clock_mhz_approx / now.clock_mhz_approx;
    if (ratio > 1.25 || ratio < 0.8)
      diffs.push_back(
          "clock: baseline ~" +
          std::to_string(static_cast<int>(baseline.clock_mhz_approx)) +
          " MHz vs ~" +
          std::to_string(static_cast<int>(now.clock_mhz_approx)) +
          " MHz here");
  }
  if (diffs.empty()) return;
  std::fprintf(stderr,
               "\n"
               "  ********************************************************\n"
               "  *  WARNING: baseline comes from a DIFFERENT HOST.      *\n"
               "  *  Absolute ns and speedups below compare hardware,    *\n"
               "  *  not code. Re-baseline on this machine before        *\n"
               "  *  trusting them.                                      *\n"
               "  ********************************************************\n");
  for (const std::string& d : diffs)
    std::fprintf(stderr, "  *  %s\n", d.c_str());
  std::fprintf(stderr, "\n");
}

/// Print per-entry speedup vs a previous run and flag >10% regressions.
/// Returns non-zero if any entry shared with the baseline got slower than
/// the threshold allows.
int compare_against(const std::string& baseline_path,
                    const std::vector<BenchResult>& results,
                    const HostInfo& host) {
  const auto baseline = parse_bench_json(baseline_path);
  if (baseline.empty()) {
    std::fprintf(stderr, "microbench: no entries parsed from %s\n",
                 baseline_path.c_str());
    return 1;
  }
  warn_if_host_differs(parse_baseline_host(baseline_path), host);
  constexpr double kRegressionThreshold = 1.10;
  int regressions = 0, shared = 0;
  std::printf("\ncomparison vs %s (speedup = old/new)\n",
              baseline_path.c_str());
  for (const BenchResult& r : results) {
    const auto it =
        std::find_if(baseline.begin(), baseline.end(),
                     [&](const auto& e) { return e.first == r.name; });
    if (it == baseline.end()) {
      std::printf("  %-40s %14.1f ns  (new entry, no baseline)\n",
                  r.name.c_str(), r.ns_per_inference);
      continue;
    }
    ++shared;
    const double speedup = it->second / r.ns_per_inference;
    const bool regressed =
        r.ns_per_inference > it->second * kRegressionThreshold;
    std::printf("  %-40s %14.1f -> %12.1f ns   %5.2fx%s\n", r.name.c_str(),
                it->second, r.ns_per_inference, speedup,
                regressed ? "  REGRESSION" : "");
    if (regressed) ++regressions;
  }
  if (shared == 0) {
    std::fprintf(stderr,
                 "microbench: no entries shared with the baseline\n");
    return 1;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "microbench: %d entr%s regressed by more than %.0f%%\n",
                 regressions, regressions == 1 ? "y" : "ies",
                 (kRegressionThreshold - 1.0) * 100.0);
    return 1;
  }
  std::printf("  no entry regressed by more than %.0f%%\n",
              (kRegressionThreshold - 1.0) * 100.0);
  return 0;
}

int run_json_mode(const std::string& path, int samples, bool tiny,
                  const std::string& compare_path) {
  std::vector<BenchResult> results;
  Rng rng(4);

  // The acceptance workload: LeNet-5 at T=8 on the paper's reference
  // configuration, cycle-accurate and analytic. Skipped by --tiny.
  if (!tiny) {
    const auto qnet = make_lenet_qnet(8);
    hw::Accelerator accel(hw::lenet_reference_config(), qnet);
    const TensorF image = random_image(Shape{1, 32, 32}, rng);
    const TensorI codes = quant::encode_activations(image, 8);
    results.push_back(
        {"cycle_accurate_lenet_t8",
         time_ns_per_call(samples,
                          [&] {
                            auto r = accel.run_codes(
                                codes, hw::SimMode::kCycleAccurate);
                            (void)r;
                          }),
         samples});
    // The golden stepped dataflow the fast path is checked against — kept
    // as its own entry so the fast-path speedup stays visible over time.
    results.push_back(
        {"stepped_lenet_t8",
         time_ns_per_call(std::max(1, samples / 4),
                          [&] {
                            auto r =
                                accel.run_codes(codes, hw::SimMode::kStepped);
                            (void)r;
                          }),
         std::max(1, samples / 4)});
    results.push_back(
        {"analytic_lenet_t8",
         time_ns_per_call(samples,
                          [&] {
                            auto r =
                                accel.run_codes(codes, hw::SimMode::kAnalytic);
                            (void)r;
                          }),
         samples});

    // The analytic engine's warm serving path: pre-allocated worker state,
    // result storage reused across calls — what a ServingPool replica pays
    // per inference once the pool is warm.
    {
      auto eng = engine::make_engine(engine::EngineKind::kAnalytic,
                                     accel.program());
      hw::AccelRunResult reused;
      eng->run_codes_into(codes, reused);  // size every scratch buffer
      results.push_back(
          {"analytic_fastpath_lenet_t8",
           time_ns_per_call(samples,
                            [&] { eng->run_codes_into(codes, reused); }),
           samples});
    }

    // The single-state batched kernel: 32 distinct images through one
    // prepared-weight traversal per op (run_codes_batched_into), reported
    // per inference.
    {
      Rng brng(11);
      std::vector<TensorI> batch32;
      for (int i = 0; i < 32; ++i)
        batch32.push_back(quant::encode_activations(
            random_image(Shape{1, 32, 32}, brng), 8));
      hw::Accelerator::WorkerState state = accel.make_worker_state();
      std::vector<hw::AccelRunResult> out(batch32.size());
      const int batch_samples = std::max(1, samples / 4);
      const double ns = time_ns_per_call(batch_samples, [&] {
        accel.run_codes_batched_into(state, batch32.data(), batch32.size(),
                                     out.data());
      });
      results.push_back({"batch32_cycle_accurate_lenet_t8",
                         ns / static_cast<double>(batch32.size()),
                         batch_samples});

      // The same 32-image batch through the intra-op parallel driver
      // (fast_path.threads = 0 — one slice per hardware thread, all slices
      // streaming the shared prepared weights). Bit-identical to the entry
      // above; the ratio between the two is the multi-core speedup.
      hw::AcceleratorConfig pcfg = hw::lenet_reference_config();
      pcfg.fast_path.threads = 0;
      hw::Accelerator paccel(pcfg, qnet);
      hw::Accelerator::WorkerState pstate = paccel.make_worker_state();
      const double pns = time_ns_per_call(batch_samples, [&] {
        paccel.run_codes_batched_into(pstate, batch32.data(), batch32.size(),
                                      out.data());
      });
      results.push_back({"parallel_batch32_cycle_accurate_lenet_t8",
                         pns / static_cast<double>(batch32.size()),
                         batch_samples});
    }

    // Batched throughput across the thread pool.
    std::vector<TensorI> batch(8, codes);
    const double batch_ns = time_ns_per_call(std::max(1, samples / 4), [&] {
      auto r = accel.run_batch_codes(batch, hw::SimMode::kCycleAccurate);
      (void)r;
    });
    results.push_back({"cycle_accurate_lenet_t8_batch8",
                       batch_ns / static_cast<double>(batch.size()),
                       std::max(1, samples / 4)});

    // The other two engines over the same lowered program.
    const ir::LayerProgram& program = accel.program();
    for (const auto kind : {engine::EngineKind::kBehavioral,
                            engine::EngineKind::kReference}) {
      auto eng = engine::make_engine(kind, program);
      results.push_back(
          {std::string(eng->name()) + "_lenet_t8",
           time_ns_per_call(samples,
                            [&] {
                              auto r = eng->run_codes(codes);
                              (void)r;
                            }),
           samples});
    }

    // Streaming throughput: a persistent worker pool with pre-allocated
    // per-worker state, the serving-path metric (images/sec).
    {
      engine::StreamingExecutor stream(
          program, engine::EngineKind::kCycleAccurate, /*num_workers=*/0);
      std::vector<TensorI> stream_batch(
          static_cast<std::size_t>(std::max(8, samples)), codes);
      stream.run_stream(stream_batch);  // warm the pool
      stream.run_stream(stream_batch);
      const engine::StreamStats stats = stream.last_stats();
      BenchResult r;
      r.name = "stream_cycle_accurate_lenet_t8";
      r.ns_per_inference = stats.ns_per_inference;
      r.samples = static_cast<int>(stats.images);
      r.images_per_sec = stats.images_per_sec;
      results.push_back(r);
    }

    // Pipeline-parallel throughput: the program partitioned into 2 and 4
    // latency-balanced stages, one simulated accelerator per stage
    // (pipeline_images_per_sec in the serving-metric family).
    for (const int stages : {2, 4}) {
      const auto segments =
          compiler::partition_balance_latency(program, stages);
      engine::PipelineExecutor pipe(program, segments,
                                    engine::EngineKind::kCycleAccurate);
      std::vector<TensorI> pipe_batch(
          static_cast<std::size_t>(std::max(8, samples)), codes);
      pipe.run_pipeline(pipe_batch);  // warm the stages
      pipe.run_pipeline(pipe_batch);
      const engine::PipelineStats stats = pipe.last_stats();
      BenchResult r;
      r.name = "pipeline" + std::to_string(stages) +
               "stage_cycle_accurate_lenet_t8";
      r.ns_per_inference = stats.ns_per_inference;
      r.samples = static_cast<int>(stats.images);
      r.images_per_sec = stats.images_per_sec;
      results.push_back(r);
    }
  }

  // Re-lowered 4-stage VGG-11 pipeline (the PR 4 metric): each stage is
  // re-compiled against its own device, so the early stages hold their
  // weights on chip instead of inheriting the monolithic DRAM-streaming
  // plan. Analytic engine — the standard path at VGG scale.
  if (!tiny) {
    Rng vrng(9);
    nn::Network vgg = nn::make_vgg11();
    vgg.init_params(vrng);
    const auto qnet = quant::quantize(vgg, quant::QuantizeConfig{3, 3});
    const ir::LayerProgram program =
        ir::lower(qnet, hw::vgg11_table3_config());
    const auto segments = compiler::partition_balance_latency(
        program, 4, compiler::PartitionOptions{});
    engine::PipelineExecutor pipe(program, segments,
                                  engine::EngineKind::kAnalytic);
    const TensorF image = random_image(Shape{3, 32, 32}, vrng);
    const TensorI codes = quant::encode_activations(image, qnet.time_bits);
    std::vector<TensorI> batch(
        static_cast<std::size_t>(std::max(4, samples / 8)), codes);
    pipe.run_pipeline(batch);  // warm the stages
    pipe.run_pipeline(batch);
    const engine::PipelineStats stats = pipe.last_stats();
    BenchResult r;
    r.name = "pipeline4stage_relowered_vgg11";
    r.ns_per_inference = stats.ns_per_inference;
    r.samples = static_cast<int>(stats.images);
    r.images_per_sec = stats.images_per_sec;
    results.push_back(r);

    // VGG-11 through the monolithic accelerator's parallel batched fast
    // path: 8 distinct images, one slice per hardware thread, all slices
    // streaming the same DRAM-placed prepared weights. The PR 9 headline —
    // compare against pipeline4stage_relowered_vgg11 images/sec.
    {
      hw::AcceleratorConfig pcfg = hw::vgg11_table3_config();
      pcfg.fast_path.threads = 0;
      hw::Accelerator paccel(pcfg, qnet);
      Rng brng(13);
      std::vector<TensorI> batch8;
      for (int i = 0; i < 8; ++i)
        batch8.push_back(quant::encode_activations(
            random_image(Shape{3, 32, 32}, brng), qnet.time_bits));
      hw::Accelerator::WorkerState pstate = paccel.make_worker_state();
      std::vector<hw::AccelRunResult> out(batch8.size());
      const int vgg_samples = std::max(1, samples / 16);
      const double ns = time_ns_per_call(vgg_samples, [&] {
        paccel.run_codes_batched_into(pstate, batch8.data(), batch8.size(),
                                      out.data());
      });
      BenchResult pr;
      pr.name = "parallel_batch8_vgg11";
      pr.ns_per_inference = ns / static_cast<double>(batch8.size());
      pr.samples = vgg_samples;
      pr.images_per_sec = 1e9 / pr.ns_per_inference;
      results.push_back(pr);
    }
  }

  // The small network at T=4 (historic tracking point), plus small
  // streaming and pipelined entries so --tiny exercises every execution
  // path CI smoke-tests: single-shot, worker pool, and pipeline stages.
  {
    const auto qnet = make_qnet(4);
    hw::AcceleratorConfig cfg;
    cfg.num_conv_units = 2;
    cfg.conv = hw::ConvUnitGeometry{16, 3, 24};
    cfg.pool = hw::PoolUnitGeometry{8, 2, 16};
    cfg.linear = hw::LinearUnitGeometry{8, 24};
    hw::Accelerator accel(cfg, qnet);
    const TensorF image = random_image(Shape{1, 16, 16}, rng);
    const TensorI codes = quant::encode_activations(image, 4);
    results.push_back(
        {"cycle_accurate_small_t4",
         time_ns_per_call(samples * 4,
                          [&] {
                            auto r = accel.run_codes(
                                codes, hw::SimMode::kCycleAccurate);
                            (void)r;
                          }),
         samples * 4});

    const ir::LayerProgram& program = accel.program();
    {
      engine::StreamingExecutor stream(
          program, engine::EngineKind::kCycleAccurate, /*num_workers=*/2);
      std::vector<TensorI> batch(
          static_cast<std::size_t>(std::max(16, samples * 4)), codes);
      stream.run_stream(batch);  // warm the pool
      stream.run_stream(batch);
      const engine::StreamStats stats = stream.last_stats();
      BenchResult r;
      r.name = "stream_cycle_accurate_small_t4";
      r.ns_per_inference = stats.ns_per_inference;
      r.samples = static_cast<int>(stats.images);
      r.images_per_sec = stats.images_per_sec;
      results.push_back(r);
    }
    {
      const auto segments = compiler::partition_balance_latency(program, 2);
      engine::PipelineExecutor pipe(program, segments,
                                    engine::EngineKind::kCycleAccurate);
      std::vector<TensorI> batch(
          static_cast<std::size_t>(std::max(16, samples * 4)), codes);
      pipe.run_pipeline(batch);  // warm the stages
      pipe.run_pipeline(batch);
      const engine::PipelineStats stats = pipe.last_stats();
      BenchResult r;
      r.name = "pipeline2stage_cycle_accurate_small_t4";
      r.ns_per_inference = stats.ns_per_inference;
      r.samples = static_cast<int>(stats.images);
      r.images_per_sec = stats.images_per_sec;
      results.push_back(r);
    }
  }

  // Radix encoding throughput.
  {
    const TensorF image = random_image(Shape{1, 32, 32}, rng);
    results.push_back({"radix_encode_32x32_t6",
                       time_ns_per_call(samples * 16,
                                        [&] {
                                          auto t = encoding::radix_encode(
                                              image, 6);
                                          (void)t;
                                        }),
                       samples * 16});
  }

  const HostInfo host = current_host();

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "microbench: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark_set\": \"rsnn_microbench\",\n");
  std::fprintf(out, "  \"unit\": \"ns_per_inference\",\n");
  std::fprintf(out, "  \"threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"simd\": {\"detected\": \"%s\", \"active\": \"%s\"},\n",
               common::simd::detected_isa(), common::simd::active_isa());
  std::fprintf(out,
               "  \"host\": {\"cores\": %u, \"hardware_concurrency\": %u, "
               "\"simd_active\": \"%s\", \"clock_mhz_approx\": %.0f},\n",
               host.cores, host.cores, host.simd_active.c_str(),
               host.clock_mhz_approx);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"ns_per_inference\": %.1f, "
                 "\"samples\": %d",
                 results[i].name.c_str(), results[i].ns_per_inference,
                 results[i].samples);
    if (results[i].images_per_sec > 0.0)
      std::fprintf(out, ", \"images_per_sec\": %.1f",
                   results[i].images_per_sec);
    std::fprintf(out, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  for (const BenchResult& r : results) {
    std::printf("%-36s %14.1f ns/inference", r.name.c_str(),
                r.ns_per_inference);
    if (r.images_per_sec > 0.0)
      std::printf("  (%.1f images/sec)", r.images_per_sec);
    std::printf("\n");
  }
  std::printf("wrote %s\n", path.c_str());
  if (!compare_path.empty())
    return compare_against(compare_path, results, host);
  return 0;
}

// ------------------------------------------------- google-benchmark mode

#ifndef RSNN_NO_GOOGLE_BENCHMARK

void BM_RadixEncode(benchmark::State& state) {
  Rng rng(1);
  const TensorF image = random_image(Shape{1, 32, 32}, rng);
  const int T = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoding::radix_encode(image, T));
  }
  state.SetItemsProcessed(state.iterations() * image.numel());
}
BENCHMARK(BM_RadixEncode)->Arg(3)->Arg(6);

void BM_RadixRoundTrip(benchmark::State& state) {
  Rng rng(2);
  const TensorF image = random_image(Shape{1, 32, 32}, rng);
  for (auto _ : state) {
    const auto train = encoding::radix_encode(image, 4);
    benchmark::DoNotOptimize(encoding::radix_decode_codes(train));
  }
}
BENCHMARK(BM_RadixRoundTrip);

void BM_QuantizedForward(benchmark::State& state) {
  const auto qnet = make_qnet(static_cast<int>(state.range(0)));
  Rng rng(3);
  const TensorF image = random_image(Shape{1, 16, 16}, rng);
  const TensorI codes = quant::encode_activations(image, qnet.time_bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qnet.forward(codes));
  }
}
BENCHMARK(BM_QuantizedForward)->Arg(3)->Arg(6);

void BM_CycleAccurateAccelerator(benchmark::State& state) {
  const auto qnet = make_qnet(4);
  hw::AcceleratorConfig cfg;
  cfg.num_conv_units = static_cast<int>(state.range(0));
  cfg.conv = hw::ConvUnitGeometry{16, 3, 24};
  cfg.pool = hw::PoolUnitGeometry{8, 2, 16};
  cfg.linear = hw::LinearUnitGeometry{8, 24};
  hw::Accelerator accel(cfg, qnet);
  Rng rng(4);
  const TensorF image = random_image(Shape{1, 16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run_image(image, hw::SimMode::kCycleAccurate));
  }
}
BENCHMARK(BM_CycleAccurateAccelerator)->Arg(1)->Arg(4);

void BM_CycleAccurateLeNetT8(benchmark::State& state) {
  const auto qnet = make_lenet_qnet(8);
  hw::Accelerator accel(hw::lenet_reference_config(), qnet);
  Rng rng(7);
  const TensorF image = random_image(Shape{1, 32, 32}, rng);
  const TensorI codes = quant::encode_activations(image, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run_codes(codes, hw::SimMode::kCycleAccurate));
  }
}
BENCHMARK(BM_CycleAccurateLeNetT8);

void BM_RunBatchLeNetT8(benchmark::State& state) {
  const auto qnet = make_lenet_qnet(8);
  hw::Accelerator accel(hw::lenet_reference_config(), qnet);
  Rng rng(8);
  std::vector<TensorI> batch;
  for (int i = 0; i < 8; ++i)
    batch.push_back(
        quant::encode_activations(random_image(Shape{1, 32, 32}, rng), 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        accel.run_batch_codes(batch, hw::SimMode::kCycleAccurate));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_RunBatchLeNetT8);

void BM_StreamLeNetT8(benchmark::State& state) {
  const auto qnet = make_lenet_qnet(8);
  const ir::LayerProgram program =
      ir::lower(qnet, hw::lenet_reference_config());
  engine::StreamingExecutor stream(program,
                                   engine::EngineKind::kCycleAccurate, 0);
  Rng rng(9);
  std::vector<TensorI> batch;
  for (int i = 0; i < 16; ++i)
    batch.push_back(
        quant::encode_activations(random_image(Shape{1, 32, 32}, rng), 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.run_stream(batch));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_StreamLeNetT8);

void BM_AnalyticAccelerator(benchmark::State& state) {
  const auto qnet = make_qnet(4);
  hw::AcceleratorConfig cfg;
  cfg.num_conv_units = 2;
  cfg.conv = hw::ConvUnitGeometry{16, 3, 24};
  cfg.pool = hw::PoolUnitGeometry{8, 2, 16};
  cfg.linear = hw::LinearUnitGeometry{8, 24};
  hw::Accelerator accel(cfg, qnet);
  Rng rng(5);
  const TensorF image = random_image(Shape{1, 16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run_image(image, hw::SimMode::kAnalytic));
  }
}
BENCHMARK(BM_AnalyticAccelerator);

void BM_LatencyPrediction(benchmark::State& state) {
  Rng rng(6);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const auto qnet = quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  hw::Accelerator accel(hw::lenet_reference_config(), qnet);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.predict_total_cycles());
  }
}
BENCHMARK(BM_LatencyPrediction);

#endif  // RSNN_NO_GOOGLE_BENCHMARK

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string compare_path;
  int samples = 20;
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc)
      samples = std::max(1, std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--tiny") == 0)
      tiny = true;
    else if (std::strcmp(argv[i], "--compare") == 0 && i + 1 < argc)
      compare_path = argv[++i];
  }
  if (!json_path.empty())
    return run_json_mode(json_path, samples, tiny, compare_path);

#ifndef RSNN_NO_GOOGLE_BENCHMARK
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "microbench built without google-benchmark; use --json <path> "
               "[--samples N]\n");
  return 1;
#endif
}
