// Google-benchmark microbenchmarks for the simulator's hot paths: radix
// encode/decode, the quantized integer forward pass, the cycle-accurate
// convolution unit, and the analytic latency model. These track simulator
// performance, not paper results.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "encoding/radix.hpp"
#include "hw/accelerator.hpp"
#include "hw/conv_unit.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/network.hpp"
#include "nn/pool2d.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"

namespace {

using namespace rsnn;

TensorF random_image(const Shape& shape, Rng& rng) {
  TensorF image(shape);
  for (std::int64_t i = 0; i < image.numel(); ++i)
    image.at_flat(i) = static_cast<float>(rng.next_double() * 0.999);
  return image;
}

quant::QuantizedNetwork make_qnet(int T) {
  Rng rng(5);
  nn::Network net(Shape{1, 16, 16});
  net.add<nn::Conv2d>(nn::Conv2dConfig{1, 8, 3, 1, 0});
  net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, 0});
  net.add<nn::Pool2d>(nn::Pool2dConfig{2});
  net.add<nn::Flatten>();
  net.add<nn::Linear>(nn::LinearConfig{8 * 7 * 7, 10});
  net.init_params(rng);
  for (nn::Param* p : net.params())
    for (std::int64_t i = 0; i < p->value.numel(); ++i)
      p->value.at_flat(i) *= 0.5f;
  return quant::quantize(net, quant::QuantizeConfig{3, T});
}

void BM_RadixEncode(benchmark::State& state) {
  Rng rng(1);
  const TensorF image = random_image(Shape{1, 32, 32}, rng);
  const int T = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoding::radix_encode(image, T));
  }
  state.SetItemsProcessed(state.iterations() * image.numel());
}
BENCHMARK(BM_RadixEncode)->Arg(3)->Arg(6);

void BM_RadixRoundTrip(benchmark::State& state) {
  Rng rng(2);
  const TensorF image = random_image(Shape{1, 32, 32}, rng);
  for (auto _ : state) {
    const auto train = encoding::radix_encode(image, 4);
    benchmark::DoNotOptimize(encoding::radix_decode_codes(train));
  }
}
BENCHMARK(BM_RadixRoundTrip);

void BM_QuantizedForward(benchmark::State& state) {
  const auto qnet = make_qnet(static_cast<int>(state.range(0)));
  Rng rng(3);
  const TensorF image = random_image(Shape{1, 16, 16}, rng);
  const TensorI codes = quant::encode_activations(image, qnet.time_bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qnet.forward(codes));
  }
}
BENCHMARK(BM_QuantizedForward)->Arg(3)->Arg(6);

void BM_CycleAccurateAccelerator(benchmark::State& state) {
  const auto qnet = make_qnet(4);
  hw::AcceleratorConfig cfg;
  cfg.num_conv_units = static_cast<int>(state.range(0));
  cfg.conv = hw::ConvUnitGeometry{16, 3, 24};
  cfg.pool = hw::PoolUnitGeometry{8, 2, 16};
  cfg.linear = hw::LinearUnitGeometry{8, 24};
  hw::Accelerator accel(cfg, qnet);
  Rng rng(4);
  const TensorF image = random_image(Shape{1, 16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run_image(image, hw::SimMode::kCycleAccurate));
  }
}
BENCHMARK(BM_CycleAccurateAccelerator)->Arg(1)->Arg(4);

void BM_AnalyticAccelerator(benchmark::State& state) {
  const auto qnet = make_qnet(4);
  hw::AcceleratorConfig cfg;
  cfg.num_conv_units = 2;
  cfg.conv = hw::ConvUnitGeometry{16, 3, 24};
  cfg.pool = hw::PoolUnitGeometry{8, 2, 16};
  cfg.linear = hw::LinearUnitGeometry{8, 24};
  hw::Accelerator accel(cfg, qnet);
  Rng rng(5);
  const TensorF image = random_image(Shape{1, 16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run_image(image, hw::SimMode::kAnalytic));
  }
}
BENCHMARK(BM_AnalyticAccelerator);

void BM_LatencyPrediction(benchmark::State& state) {
  Rng rng(6);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const auto qnet = quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  hw::Accelerator accel(hw::lenet_reference_config(), qnet);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.predict_total_cycles());
  }
}
BENCHMARK(BM_LatencyPrediction);

}  // namespace

BENCHMARK_MAIN();
