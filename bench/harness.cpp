#include "harness.hpp"

#include <cstdio>
#include <filesystem>
#include <functional>

#include "common/log.hpp"
#include "data/idx_loader.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_objects.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool2d.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"

namespace rsnn::bench {
namespace {

constexpr const char* kMnistDir = "data/mnist";

/// Bench difficulty: tuned so the LeNet ANN lands in the paper's ~99%
/// regime with the T=3 radix encoding costing about a point — the operating
/// point where Table I's accuracy-vs-T trend is visible.
data::SynthDigitsConfig bench_digits_config(int canvas,
                                            std::size_t num_samples) {
  data::SynthDigitsConfig cfg;
  cfg.canvas = canvas;
  cfg.num_samples = num_samples;
  cfg.noise_stddev = 0.08;
  cfg.max_shift = 3.0;
  cfg.min_scale = 0.7;
  cfg.max_shear = 0.25;
  cfg.intensity_min = 0.55;
  return cfg;
}

/// Train `net` unless cached weights exist; returns test accuracy.
float train_or_load(nn::Network& net, const std::string& cache_name,
                    const data::Dataset& train, const data::Dataset& test,
                    int epochs, float lr, bool quiet) {
  const std::string path = artifact_dir() + "/" + cache_name;
  Rng rng(7);
  net.init_params(rng);
  if (nn::is_param_file(path)) {
    nn::load_params(net, path);
    if (!quiet) std::printf("loaded cached weights from %s\n", path.c_str());
  } else {
    if (!quiet)
      std::printf("training %s (%d epochs on %zu samples)...\n",
                  cache_name.c_str(), epochs, train.size());
    nn::Adam adam(net.params(), nn::AdamConfig{lr});
    nn::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 32;
    if (!quiet)
      cfg.epoch_callback = [](int epoch, float loss, float acc) {
        std::printf("  epoch %d: loss %.3f train-acc %.3f\n", epoch, loss, acc);
        std::fflush(stdout);
      };
    nn::Trainer trainer(net, adam, cfg);
    trainer.fit(train.images, train.labels, rng);
    nn::save_params(net, path);
  }
  return nn::evaluate(net, test.images, test.labels).accuracy;
}

}  // namespace

std::string artifact_dir() {
  const std::string dir = "bench_artifacts";
  std::filesystem::create_directories(dir);
  return dir;
}

TrainedModel load_or_train_lenet5(bool quiet) {
  TrainedModel model;
  // Real MNIST takes precedence when available (paper's dataset).
  auto mnist_train = data::load_mnist(kMnistDir, /*train=*/true, 32);
  if (mnist_train) {
    model.train = std::move(*mnist_train);
    model.test = *data::load_mnist(kMnistDir, /*train=*/false, 32);
  } else {
    auto parts =
        data::split(data::make_synth_digits(bench_digits_config(32, 3000)), 0.8);
    model.train = std::move(parts.train);
    model.test = std::move(parts.test);
  }
  // Weight quantization-aware training at the paper's 3-bit resolution makes
  // the subsequent conversion nearly lossless.
  nn::ZooOptions zoo;
  zoo.weight_qat_bits = 3;
  model.network = nn::make_lenet5(zoo);
  model.ann_accuracy =
      train_or_load(model.network, "lenet5_wq3.rsnn", model.train, model.test,
                    /*epochs=*/4, /*lr=*/0.005f, quiet);
  return model;
}

TrainedModel load_or_train_fang_cnn(bool quiet) {
  TrainedModel model;
  auto mnist_train = data::load_mnist(kMnistDir, /*train=*/true, 28);
  if (mnist_train) {
    model.train = std::move(*mnist_train);
    model.test = *data::load_mnist(kMnistDir, /*train=*/false, 28);
  } else {
    auto parts =
        data::split(data::make_synth_digits(bench_digits_config(28, 2000)), 0.8);
    model.train = std::move(parts.train);
    model.test = std::move(parts.test);
  }
  nn::ZooOptions zoo;
  zoo.weight_qat_bits = 3;
  model.network = nn::make_fang_cnn(zoo);
  model.ann_accuracy =
      train_or_load(model.network, "fang_cnn_wq3.rsnn", model.train,
                    model.test, /*epochs=*/3, /*lr=*/0.004f, quiet);
  return model;
}

TrainedModel load_or_train_vgg_slim(bool quiet) {
  // Depth- and width-reduced VGG trained on SynthObjects-100 — the accuracy
  // stand-in for the Table III VGG row (hardware metrics use the full-size
  // 28.5M-parameter model). The reduction is necessary because the plain
  // (normalization-free) full VGG at 32x32 does not train in bench-scale
  // time with this repository's straightforward conv loops; the stand-in
  // keeps the VGG structure (3x3 convs, pool halving, two FC layers) at
  // 4 conv stages.
  TrainedModel model;
  data::SynthObjectsConfig cfg;
  cfg.num_samples = 5000;
  auto parts = data::split(data::make_synth_objects(cfg), 0.85);
  model.train = std::move(parts.train);
  model.test = std::move(parts.test);

  auto& net = model.network;
  net = nn::Network(Shape{3, 32, 32});
  auto conv_block = [&](std::int64_t cin, std::int64_t cout) {
    net.add<nn::Conv2d>(nn::Conv2dConfig{cin, cout, 3, 1, 1, true, 3});
    net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, 0});
  };
  conv_block(3, 16);
  net.add<nn::Pool2d>(nn::Pool2dConfig{2});  // 16
  conv_block(16, 32);
  net.add<nn::Pool2d>(nn::Pool2dConfig{2});  // 8
  conv_block(32, 64);
  net.add<nn::Pool2d>(nn::Pool2dConfig{2});  // 4
  conv_block(64, 64);
  net.add<nn::Pool2d>(nn::Pool2dConfig{2});  // 2
  net.add<nn::Flatten>();
  net.add<nn::Linear>(nn::LinearConfig{64 * 2 * 2, 256, true, 3});
  net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, 0});
  net.add<nn::Linear>(nn::LinearConfig{256, 100, true, 3});

  model.ann_accuracy =
      train_or_load(net, "vgg_lite_wq3.rsnn", model.train, model.test,
                    /*epochs=*/5, /*lr=*/0.01f, quiet);
  return model;
}

double quantized_accuracy_pct(const quant::QuantizedNetwork& qnet,
                              const data::Dataset& dataset,
                              std::size_t max_samples) {
  const std::size_t n = max_samples == 0
                            ? dataset.size()
                            : std::min(max_samples, dataset.size());
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TensorI codes =
        quant::encode_activations(dataset.images[i], qnet.time_bits);
    if (qnet.classify(codes) == dataset.labels[i]) ++correct;
  }
  return 100.0 * static_cast<double>(correct) / static_cast<double>(n);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

void TablePrinter::print(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::printf("\n== %s ==\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

std::string fmt(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string fmt_int(std::int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
  return buffer;
}

}  // namespace rsnn::bench
