// Ablation D: spike activity and event energy versus spike-train length.
//
// Radix encoding's efficiency argument is usually framed as latency, but
// the event count is what drives dynamic energy in adder-based SNN fabric.
// This bench measures, on the trained LeNet-5, how per-inference spikes and
// fired additions scale with T for radix encoding, and compares against the
// event count a rate-coded input would need for comparable accuracy
// (T≈10 per Fang et al., as cited in paper Sec. IV-B).
#include <cstdio>

#include "encoding/rate.hpp"
#include "harness.hpp"
#include "quant/quantize.hpp"
#include "snn/sparsity.hpp"

int main() {
  using namespace rsnn;
  std::printf("Ablation: spike activity & event energy vs time steps\n");

  bench::TrainedModel model = bench::load_or_train_lenet5(/*quiet=*/false);
  const auto eval = model.test.take(24);

  bench::TablePrinter table({"T", "Acc [%]", "Spikes/inf", "SynOps/inf",
                             "Dyn energy [uJ]", "Input spike rate"});
  for (const int T : {3, 4, 5, 6, 8}) {
    const auto qnet =
        quant::quantize(model.network, quant::QuantizeConfig{3, T});
    const auto report = snn::analyze_sparsity(qnet, eval);
    const double acc = bench::quantized_accuracy_pct(qnet, model.test, 120);
    table.add_row({bench::fmt_int(T), bench::fmt(acc, 2),
                   bench::fmt(report.total_spikes_per_sample, 0),
                   bench::fmt(report.total_synaptic_ops_per_sample, 0),
                   bench::fmt(report.dynamic_energy_uj_per_sample, 3),
                   bench::fmt(report.layers[0].spike_rate, 3)});
    std::printf("  T=%d done\n", T);
    std::fflush(stdout);
  }
  table.print("Radix-encoded LeNet-5: activity versus spike-train length");

  // Rate-coded reference: event count of the *input layer alone* at the
  // T=10 a rate-coded design needs for LeNet-class accuracy.
  const int rate_T = 10;
  double rate_input_spikes = 0.0;
  for (std::size_t i = 0; i < eval.size(); ++i) {
    const auto train = encoding::rate_encode(eval.images[i], rate_T);
    rate_input_spikes += static_cast<double>(train.total_spikes());
  }
  rate_input_spikes /= static_cast<double>(eval.size());

  const auto q4 = quant::quantize(model.network, quant::QuantizeConfig{3, 4});
  const auto radix4 = snn::analyze_sparsity(q4, eval);
  std::printf(
      "\nInput-layer events per inference: radix T=4: %.0f, rate T=10: %.0f\n"
      "-> the encoding alone cuts input events by %.1fx at matched accuracy,\n"
      "   on top of the %.1fx shorter spike train (latency is ~linear in T).\n",
      radix4.layers[0].mean_spikes, rate_input_spikes,
      rate_input_spikes / radix4.layers[0].mean_spikes, 10.0 / 4.0);
  return 0;
}
