// Ablation C: validation of the analytic latency model against the
// cycle-accurate simulator (DESIGN.md invariant 4), swept over randomized
// layer geometries and design points. The analytic model is what the
// VGG-scale experiments rely on, so any deviation would invalidate them.
#include <cstdio>

#include "common/rng.hpp"
#include "harness.hpp"
#include "hw/accelerator.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/network.hpp"
#include "nn/pool2d.hpp"
#include "quant/quantize.hpp"

int main() {
  using namespace rsnn;
  std::printf("Ablation: analytic latency model vs cycle-accurate simulation\n");

  Rng rng(2718);
  bench::TablePrinter table({"Case", "cin/cout", "size", "k/s/p", "T", "units",
                             "Cycle-accurate", "Analytic", "Match"});

  int mismatches = 0;
  const int cases = 24;
  for (int c = 0; c < cases; ++c) {
    const std::int64_t cin = rng.next_int(1, 3);
    const std::int64_t cout = rng.next_int(1, 6);
    const std::int64_t kernel = 1 + 2 * rng.next_int(0, 2);  // 1, 3, 5
    const std::int64_t stride = rng.next_int(1, 2);
    const std::int64_t padding = rng.next_int(0, 1);
    const std::int64_t size =
        std::max<std::int64_t>(kernel + 3, rng.next_int(7, 14));
    const int T = rng.next_int(1, 5);
    const int units = 1 << rng.next_int(0, 2);

    // conv -> act -> (even-sized) pool when possible -> flatten -> linear
    nn::Network net(Shape{cin, size, size});
    net.add<nn::Conv2d>(
        nn::Conv2dConfig{cin, cout, kernel, stride, padding});
    net.add<nn::ClippedReLU>(nn::ClippedReLUConfig{1.0f, 0});
    const std::int64_t o = (size + 2 * padding - kernel) / stride + 1;
    std::int64_t feat = cout * o * o;
    if (o % 2 == 0) {
      net.add<nn::Pool2d>(nn::Pool2dConfig{2});
      feat = cout * (o / 2) * (o / 2);
    }
    net.add<nn::Flatten>();
    net.add<nn::Linear>(nn::LinearConfig{feat, 5});
    net.init_params(rng);
    for (nn::Param* p : net.params())
      for (std::int64_t i = 0; i < p->value.numel(); ++i)
        p->value.at_flat(i) *= 0.5f;

    const auto qnet = quant::quantize(net, quant::QuantizeConfig{3, T});
    hw::AcceleratorConfig cfg;
    cfg.num_conv_units = units;
    cfg.conv = hw::ConvUnitGeometry{16, 5, 24};
    cfg.pool = hw::PoolUnitGeometry{8, 2, 16};
    cfg.linear = hw::LinearUnitGeometry{4, 24};
    hw::Accelerator accel(cfg, qnet);

    TensorF image(Shape{cin, size, size});
    for (std::int64_t i = 0; i < image.numel(); ++i)
      image.at_flat(i) = static_cast<float>(rng.next_double() * 0.999);

    const auto run = accel.run_image(image, hw::SimMode::kCycleAccurate);
    const std::int64_t analytic = accel.predict_total_cycles();
    const bool match = run.total_cycles == analytic;
    if (!match) ++mismatches;

    char geom[32], chans[32];
    std::snprintf(geom, sizeof(geom), "%lld/%lld/%lld",
                  static_cast<long long>(kernel), static_cast<long long>(stride),
                  static_cast<long long>(padding));
    std::snprintf(chans, sizeof(chans), "%lld/%lld",
                  static_cast<long long>(cin), static_cast<long long>(cout));
    table.add_row({bench::fmt_int(c), chans, bench::fmt_int(size), geom,
                   bench::fmt_int(T), bench::fmt_int(units),
                   bench::fmt_int(run.total_cycles), bench::fmt_int(analytic),
                   match ? "yes" : "NO"});
  }
  table.print("Analytic vs cycle-accurate cycle counts (randomized sweep)");

  std::printf("\n%d/%d cases match exactly.%s\n", cases - mismatches, cases,
              mismatches == 0 ? " The analytic model is cycle-exact." : "");
  return mismatches == 0 ? 0 : 1;
}
