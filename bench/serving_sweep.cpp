// serving_sweep: throughput/latency sweep of the replicated serving pool.
//
// Sweeps pipeline stages x replicas x admission-queue depth on LeNet-5
// (T=8, cycle-accurate — the acceptance workload) and VGG-11 (T=3,
// analytic, re-lowered stages), and writes BENCH_pr5_serving.json.
//
// Two throughput numbers per configuration:
//   * images_per_sec        — modeled hardware fleet throughput:
//     replicas * clock / measured bottleneck-stage cycles. This is the
//     serving metric of the *deployment being simulated* (the paper's
//     accelerator at its configured clock), and what compiler::plan_serving
//     predicts; the sweep validates the prediction against measured cycles.
//   * wall_images_per_sec   — simulator wall-clock throughput on this host
//     (bounded by host cores, the microbench metric family).
// p50/p99 latencies are wall-clock admission-to-completion times through the
// admission queue (queueing + simulated service).
//
// Usage: serving_sweep [--json path] [--images N] [--skip-vgg]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "compiler/partition.hpp"
#include "engine/engine.hpp"
#include "engine/serving_pool.hpp"
#include "hw/arch.hpp"
#include "ir/layer_program.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace rsnn;

TensorF random_image(const Shape& shape, Rng& rng) {
  TensorF image(shape);
  for (std::int64_t i = 0; i < image.numel(); ++i)
    image.at_flat(i) = static_cast<float>(rng.next_double() * 0.999);
  return image;
}

struct SweepRecord {
  std::string name;
  std::string network;
  std::string engine;
  std::string policy;
  int stages = 0;
  int replicas = 0;
  std::size_t queue_depth = 0;
  std::int64_t images = 0;
  std::int64_t rejected = 0;
  std::int64_t bottleneck_cycles = 0;
  double images_per_sec = 0.0;       ///< modeled fleet throughput
  double predicted_images_per_sec = 0.0;  ///< plan_serving's forecast
  double wall_images_per_sec = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

/// Run one pool configuration over `codes` (after a warm-up pass) and
/// collect its record.
SweepRecord run_config(const ir::LayerProgram& program,
                       engine::EngineKind kind, const std::string& network,
                       int stages, int replicas, std::size_t queue_depth,
                       engine::AdmissionPolicy policy,
                       const std::vector<TensorI>& codes,
                       const compiler::PartitionOptions& partition_options) {
  engine::ServingPoolOptions options;
  options.replicas = replicas;
  options.queue_capacity = queue_depth;
  options.policy = policy;
  if (stages > 1)
    options.segments = compiler::partition_balance_latency(
        program, stages, partition_options);

  engine::ServingPool pool(program, kind, options);
  const std::vector<TensorI> warmup(
      codes.begin(),
      codes.begin() + std::min<std::size_t>(codes.size(),
                                            static_cast<std::size_t>(replicas)));
  pool.run_batch(warmup);
  pool.reset_stats();
  pool.run_batch(codes);
  const engine::ServingStats stats = pool.stats();

  // The planner's forecast for this exact shape, to validate prediction
  // against measurement.
  const auto candidates = compiler::enumerate_serving(
      program, stages * replicas, partition_options);
  double predicted = 0.0;
  for (const auto& candidate : candidates)
    if (candidate.stages == stages && candidate.replicas == replicas)
      predicted = candidate.predicted_images_per_sec;

  SweepRecord record;
  record.name = network + "_" + engine::engine_name(kind) + "_s" +
                std::to_string(stages) + "_r" + std::to_string(replicas) +
                "_q" + std::to_string(queue_depth) + "_" +
                engine::policy_name(policy);
  record.network = network;
  record.engine = engine::engine_name(kind);
  record.policy = engine::policy_name(policy);
  record.stages = stages;
  record.replicas = replicas;
  record.queue_depth = queue_depth;
  record.images = stats.completed;
  record.rejected = stats.rejected;
  record.bottleneck_cycles = stats.bottleneck_cycles;
  record.images_per_sec = stats.modeled_images_per_sec;
  record.predicted_images_per_sec = predicted;
  record.wall_images_per_sec = stats.wall_images_per_sec;
  record.p50_latency_ms = stats.p50_latency_ms;
  record.p99_latency_ms = stats.p99_latency_ms;
  std::printf(
      "%-44s %8.1f img/s modeled (%7.1f predicted) %7.1f img/s wall  "
      "p50 %7.2f ms  p99 %7.2f ms%s\n",
      record.name.c_str(), record.images_per_sec,
      record.predicted_images_per_sec, record.wall_images_per_sec,
      record.p50_latency_ms, record.p99_latency_ms,
      record.rejected > 0
          ? (" (" + std::to_string(record.rejected) + " shed)").c_str()
          : "");
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_pr5_serving.json";
  int images = 32;
  bool skip_vgg = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strcmp(argv[i], "--images") == 0 && i + 1 < argc)
      images = std::max(1, std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--skip-vgg") == 0)
      skip_vgg = true;
  }

  std::vector<SweepRecord> records;
  const compiler::PartitionOptions partition_options;  // re-lowered stages

  // LeNet-5 at T=8, cycle-accurate — the acceptance workload. The grid
  // crosses pipeline depth (1 = monolithic replicas), replication and
  // admission-queue depth under FIFO, then adds one batch-accumulate and
  // one reject-on-full configuration for the policy record.
  Rng rng(2025);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const auto lenet_qnet = quant::quantize(lenet, quant::QuantizeConfig{3, 8});
  const ir::LayerProgram lenet_program =
      ir::lower(lenet_qnet, hw::lenet_reference_config());
  std::vector<TensorI> lenet_codes;
  for (int i = 0; i < images; ++i)
    lenet_codes.push_back(quant::encode_activations(
        random_image(Shape{1, 32, 32}, rng), lenet_qnet.time_bits));

  for (const int stages : {1, 2})
    for (const int replicas : {1, 2, 4})
      for (const std::size_t queue_depth : {std::size_t{8}, std::size_t{32}})
        records.push_back(run_config(
            lenet_program, engine::EngineKind::kCycleAccurate, "lenet5_t8",
            stages, replicas, queue_depth, engine::AdmissionPolicy::kFifo,
            lenet_codes, partition_options));
  records.push_back(run_config(
      lenet_program, engine::EngineKind::kCycleAccurate, "lenet5_t8", 1, 2,
      32, engine::AdmissionPolicy::kBatch, lenet_codes, partition_options));
  records.push_back(run_config(
      lenet_program, engine::EngineKind::kCycleAccurate, "lenet5_t8", 1, 1, 4,
      engine::AdmissionPolicy::kReject, lenet_codes, partition_options));

  // VGG-11 at T=3, analytic, re-lowered stages — the at-scale data point.
  if (!skip_vgg) {
    Rng vrng(9);
    nn::Network vgg = nn::make_vgg11();
    vgg.init_params(vrng);
    const auto vgg_qnet = quant::quantize(vgg, quant::QuantizeConfig{3, 3});
    const ir::LayerProgram vgg_program =
        ir::lower(vgg_qnet, hw::vgg11_table3_config());
    std::vector<TensorI> vgg_codes;
    for (int i = 0; i < std::max(2, images / 10); ++i)
      vgg_codes.push_back(quant::encode_activations(
          random_image(Shape{3, 32, 32}, vrng), vgg_qnet.time_bits));
    for (const auto& [stages, replicas] :
         std::vector<std::pair<int, int>>{{1, 1}, {2, 1}, {2, 2}})
      records.push_back(run_config(
          vgg_program, engine::EngineKind::kAnalytic, "vgg11_t3", stages,
          replicas, 8, engine::AdmissionPolicy::kFifo, vgg_codes,
          partition_options));
  }

  // Acceptance summary: best replicated LeNet configuration vs the best
  // single-pipeline (replicas == 1) baseline, on modeled fleet throughput.
  double baseline = 0.0, best_replicated = 0.0;
  std::string baseline_name, best_name;
  for (const SweepRecord& record : records) {
    if (record.network != "lenet5_t8" || record.policy != "fifo") continue;
    if (record.replicas == 1 && record.images_per_sec > baseline) {
      baseline = record.images_per_sec;
      baseline_name = record.name;
    }
    if (record.replicas > 1 && record.images_per_sec > best_replicated) {
      best_replicated = record.images_per_sec;
      best_name = record.name;
    }
  }
  const double speedup = baseline > 0.0 ? best_replicated / baseline : 0.0;
  std::printf(
      "\nacceptance: best replicated %s (%.1f img/s) vs single-pipeline %s "
      "(%.1f img/s) -> %.2fx\n",
      best_name.c_str(), best_replicated, baseline_name.c_str(), baseline,
      speedup);

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "serving_sweep: cannot open %s for writing\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark_set\": \"rsnn_serving_sweep\",\n");
  std::fprintf(out, "  \"unit\": \"images_per_sec (modeled fleet)\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SweepRecord& r = records[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"network\": \"%s\", \"engine\": \"%s\", "
        "\"policy\": \"%s\", \"stages\": %d, \"replicas\": %d, "
        "\"queue_depth\": %zu, \"images\": %lld, \"rejected\": %lld, "
        "\"bottleneck_cycles\": %lld, \"images_per_sec\": %.1f, "
        "\"predicted_images_per_sec\": %.1f, \"wall_images_per_sec\": %.1f, "
        "\"p50_latency_ms\": %.2f, \"p99_latency_ms\": %.2f}%s\n",
        r.name.c_str(), r.network.c_str(), r.engine.c_str(),
        r.policy.c_str(), r.stages, r.replicas, r.queue_depth,
        static_cast<long long>(r.images), static_cast<long long>(r.rejected),
        static_cast<long long>(r.bottleneck_cycles), r.images_per_sec,
        r.predicted_images_per_sec, r.wall_images_per_sec, r.p50_latency_ms,
        r.p99_latency_ms, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"acceptance\": {\"baseline\": \"%s\", "
               "\"baseline_images_per_sec\": %.1f, \"best_replicated\": "
               "\"%s\", \"best_replicated_images_per_sec\": %.1f, "
               "\"speedup\": %.2f}\n}\n",
               baseline_name.c_str(), baseline, best_name.c_str(),
               best_replicated, speedup);
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
