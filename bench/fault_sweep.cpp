// fault_sweep: availability / goodput / tail-latency under injected faults.
//
// Runs the replicated serving pool (LeNet-5 at T=4, reference engine — the
// numerics are identical across engines and the point here is the serving
// fabric, not the cycle model) through a set of seeded fault scenarios and
// writes BENCH_pr6_faults.json:
//   * baseline       — no faults; the goodput/latency yardstick.
//   * transient5     — 5% of attempts fail transiently; bounded retry with
//     backoff must hold latency-class goodput >= 99%.
//   * replica_kill   — 1 of 4 replicas dies mid-run (attempt 5); the
//     survivors absorb its load.
//   * stall          — one replica stalls repeatedly; stall supervision
//     quarantines it and the tail recovers.
//   * overload_shed  — a tiny queue with mixed traffic; the bulk lane is
//     shed first and the latency lane keeps its goodput.
//
// Metrics per scenario: per-class goodput (ok / accepted), availability
// (ok / admitted across classes), p50/p99 latency, retries, sheds, and the
// surviving fleet size.
//
// Usage: fault_sweep [--json path] [--requests N]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "engine/fault.hpp"
#include "engine/serving_pool.hpp"
#include "hw/arch.hpp"
#include "ir/layer_program.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace rsnn;

TensorF random_image(const Shape& shape, Rng& rng) {
  TensorF image(shape);
  for (std::int64_t i = 0; i < image.numel(); ++i)
    image.at_flat(i) = static_cast<float>(rng.next_double() * 0.999);
  return image;
}

struct Scenario {
  std::string name;
  std::string fault_plan;     ///< parse_fault_plan text; "" = no faults
  int replicas = 4;
  std::size_t queue_capacity = 64;
  double stall_timeout_ms = 0.0;
  int bulk_every = 0;         ///< every Nth request rides the bulk lane
};

struct FaultRecord {
  std::string name;
  std::string fault_plan;
  int replicas = 0;
  int active_replicas = 0;
  std::int64_t requests = 0;
  std::int64_t ok = 0;
  std::int64_t failed = 0;
  std::int64_t rejected = 0;
  std::int64_t retries = 0;
  std::int64_t shed_bulk = 0;
  std::int64_t rebuilds = 0;
  std::int64_t stalls = 0;
  double availability = 0.0;      ///< ok / admitted, across classes
  double goodput_latency = 0.0;   ///< latency-class ok / accepted
  double goodput_bulk = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

FaultRecord run_scenario(const ir::LayerProgram& program,
                         const std::vector<TensorI>& codes,
                         const Scenario& scenario) {
  engine::ServingPoolOptions options;
  options.replicas = scenario.replicas;
  options.queue_capacity = scenario.queue_capacity;
  options.max_retries = 4;
  options.backoff_base_ms = 0.05;
  options.backoff_cap_ms = 2.0;
  options.stall_timeout_ms = scenario.stall_timeout_ms;
  if (!scenario.fault_plan.empty()) {
    std::string error;
    if (!engine::parse_fault_plan(scenario.fault_plan, &options.fault_plan,
                                  &error)) {
      std::fprintf(stderr, "fault_sweep: %s\n", error.c_str());
      std::exit(1);
    }
  }

  engine::ServingPool pool(program, engine::EngineKind::kReference, options);

  std::vector<std::future<engine::ServingResult>> tickets;
  tickets.reserve(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    engine::RequestOptions request;
    if (scenario.bulk_every > 0 &&
        static_cast<int>(i % static_cast<std::size_t>(scenario.bulk_every)) ==
            scenario.bulk_every - 1)
      request.priority = engine::PriorityClass::kBulk;
    tickets.push_back(pool.submit(codes[i], request));
  }
  for (auto& ticket : tickets) ticket.get();

  const engine::ServingStats stats = pool.stats();
  FaultRecord record;
  record.name = scenario.name;
  record.fault_plan = scenario.fault_plan.empty() ? "none"
                                                  : scenario.fault_plan;
  record.replicas = scenario.replicas;
  record.active_replicas = stats.active_replicas;
  record.requests = static_cast<std::int64_t>(codes.size());
  record.ok = stats.completed;
  record.failed = stats.failed;
  record.rejected = stats.rejected;
  record.retries = stats.retries;
  record.shed_bulk = stats.shed_bulk;
  record.rebuilds = stats.rebuilds;
  record.stalls = stats.stalls;
  const std::int64_t admitted = stats.submitted;
  record.availability =
      admitted > 0 ? static_cast<double>(stats.completed) /
                         static_cast<double>(admitted)
                   : 0.0;
  record.goodput_latency = stats.per_class[0].goodput;
  record.goodput_bulk = stats.per_class[1].goodput;
  record.p50_latency_ms = stats.p50_latency_ms;
  record.p99_latency_ms = stats.p99_latency_ms;
  std::printf(
      "%-14s plan=%-24s avail %6.2f%%  goodput ls %6.2f%% bulk %6.2f%%  "
      "p99 %7.2f ms  retries %3lld  shed %2lld  fleet %d/%d\n",
      record.name.c_str(), record.fault_plan.c_str(),
      record.availability * 100.0, record.goodput_latency * 100.0,
      record.goodput_bulk * 100.0, record.p99_latency_ms,
      static_cast<long long>(record.retries),
      static_cast<long long>(record.shed_bulk + record.rejected),
      record.active_replicas, record.replicas);
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  // 96 keeps the admission queue non-empty long enough for the stall
  // scenario's second injected stall to land (and quarantine) on replica 1.
  std::string json_path = "BENCH_pr6_faults.json";
  int requests = 96;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      requests = std::max(4, std::atoi(argv[++i]));
  }

  Rng rng(2026);
  nn::Network lenet = nn::make_lenet5();
  lenet.init_params(rng);
  const auto qnet = quant::quantize(lenet, quant::QuantizeConfig{3, 4});
  const ir::LayerProgram program =
      ir::lower(qnet, hw::lenet_reference_config());
  std::vector<TensorI> codes;
  for (int i = 0; i < requests; ++i)
    codes.push_back(quant::encode_activations(
        random_image(Shape{1, 32, 32}, rng), qnet.time_bits));

  const std::vector<Scenario> scenarios = {
      {"baseline", "", 4, 64, 0.0, 0},
      {"transient5", "seed:7,err:p0.05", 4, 64, 0.0, 0},
      {"replica_kill", "seed:7,kill:r2@5,err:p0.05", 4, 64, 0.0, 0},
      {"stall", "seed:7,stall:r1@1x100,stall:r1@2x100", 4, 64, 50.0, 0},
      {"overload_shed", "seed:7,stall:r0@1x40", 1, 2, 0.0, 3},
  };

  std::vector<FaultRecord> records;
  for (const Scenario& scenario : scenarios)
    records.push_back(run_scenario(program, codes, scenario));

  // Acceptance: under replica_kill + 5% transients, the latency class must
  // keep >= 99% goodput (ISSUE 6's chaos criterion).
  const FaultRecord& chaos = records[2];
  const bool accepted = chaos.goodput_latency >= 0.99;
  std::printf("\nacceptance: replica_kill latency goodput %.2f%% (>= 99%% %s)\n",
              chaos.goodput_latency * 100.0, accepted ? "PASS" : "FAIL");

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "fault_sweep: cannot open %s for writing\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark_set\": \"rsnn_fault_sweep\",\n");
  std::fprintf(out, "  \"unit\": \"goodput (ok / accepted)\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const FaultRecord& r = records[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"fault_plan\": \"%s\", \"replicas\": %d, "
        "\"active_replicas\": %d, \"requests\": %lld, \"ok\": %lld, "
        "\"failed\": %lld, \"rejected\": %lld, \"retries\": %lld, "
        "\"shed_bulk\": %lld, \"rebuilds\": %lld, \"stalls\": %lld, "
        "\"availability\": %.4f, \"goodput_latency\": %.4f, "
        "\"goodput_bulk\": %.4f, \"p50_latency_ms\": %.2f, "
        "\"p99_latency_ms\": %.2f}%s\n",
        r.name.c_str(), r.fault_plan.c_str(), r.replicas, r.active_replicas,
        static_cast<long long>(r.requests), static_cast<long long>(r.ok),
        static_cast<long long>(r.failed), static_cast<long long>(r.rejected),
        static_cast<long long>(r.retries),
        static_cast<long long>(r.shed_bulk),
        static_cast<long long>(r.rebuilds), static_cast<long long>(r.stalls),
        r.availability, r.goodput_latency, r.goodput_bulk, r.p50_latency_ms,
        r.p99_latency_ms, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"acceptance\": {\"scenario\": \"replica_kill\", "
               "\"goodput_latency\": %.4f, \"threshold\": 0.99, "
               "\"pass\": %s}\n}\n",
               chaos.goodput_latency, accepted ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return accepted ? 0 : 1;
}
