// Reproduces paper Table III: "Efficiency and performance of SNN hardware
// accelerators" — the cross-accelerator comparison.
//
// Rows:
//   * Ju et al. [12] and Fang et al. [11]: published operating points from
//     the baseline models (src/baselines).
//   * This work / Fang-CNN: the baseline's network deployed on our
//     accelerator (200 MHz, 4 conv units, T=4).
//   * This work / LeNet-5 (200 MHz, 4 conv units, T=4).
//   * This work / VGG-11 on CIFAR-100-class data (115 MHz, 8 conv units,
//     T=6, DRAM weight streaming). Hardware metrics use the full-size
//     28.5M-parameter model; the accuracy column uses the trained
//     width-reduced VGG (substitution documented in DESIGN.md §3).
#include <cstdio>

#include "baselines/fang2020.hpp"
#include "baselines/ju2020.hpp"
#include "compiler/compile.hpp"
#include "data/synth_objects.hpp"
#include "harness.hpp"
#include "hw/accelerator.hpp"
#include "hw/power_model.hpp"
#include "hw/resource_model.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"

namespace {

using namespace rsnn;

struct OurRow {
  std::string dataset, network;
  double accuracy_pct, freq_mhz, latency_us, fps, power_w;
  std::int64_t luts, ffs;
};

OurRow run_design(const quant::QuantizedNetwork& qnet, double accuracy_pct,
                  const std::string& dataset, const std::string& network,
                  int units, double mhz, const TensorF& sample,
                  std::int64_t bram_budget_bits) {
  compiler::CompileOptions options;
  options.num_conv_units = units;
  options.clock_mhz = mhz;
  if (bram_budget_bits > 0) options.memory.weight_bram_bits = bram_budget_bits;
  const auto design = compiler::compile(qnet, options);
  hw::Accelerator accel(design.config, qnet);

  const auto run = accel.run_image(sample, hw::SimMode::kAnalytic);
  const auto resources = hw::estimate_resources(accel);
  const auto power =
      hw::estimate_power(design.config, resources, run, accel.uses_dram());

  OurRow row;
  row.dataset = dataset;
  row.network = network;
  row.accuracy_pct = accuracy_pct;
  row.freq_mhz = mhz;
  row.latency_us = run.latency_us;
  row.fps = 1e6 / run.latency_us;  // non-pipelined: one image at a time
  row.power_w = power.total_w();
  row.luts = resources.luts;
  row.ffs = resources.flip_flops;
  return row;
}

std::string res_str(std::int64_t luts, std::int64_t ffs) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%lldk / %lldk",
                static_cast<long long>(luts / 1000),
                static_cast<long long>(ffs / 1000));
  return buffer;
}

}  // namespace

int main() {
  std::printf("Table III reproduction: SNN accelerator comparison\n");

  bench::TablePrinter table({"Platform", "Dataset", "Network", "Acc [%]",
                             "f [MHz]", "Lat [us]", "Thrpt [fps]", "Pow [W]",
                             "LUTs / FF"});

  // --- baselines (published operating points) ---
  const auto ju = baselines::ju2020_published();
  table.add_row({ju.name, ju.dataset, "CNN 1", bench::fmt(ju.accuracy_pct, 1),
                 bench::fmt(ju.frequency_mhz, 0), bench::fmt(ju.latency_us, 0),
                 bench::fmt(ju.throughput_fps, 0), bench::fmt(ju.power_w, 1),
                 res_str(ju.luts, ju.flip_flops)});
  const auto fang = baselines::fang2020_published();
  table.add_row({fang.name, fang.dataset, "CNN 2",
                 bench::fmt(fang.accuracy_pct, 1),
                 bench::fmt(fang.frequency_mhz, 0),
                 bench::fmt(fang.latency_us, 0),
                 bench::fmt(fang.throughput_fps, 0),
                 bench::fmt(fang.power_w, 1),
                 res_str(fang.luts, fang.flip_flops)});

  // --- this work: Fang's CNN on our accelerator ---
  std::printf("\n[1/3] Fang-CNN on our accelerator...\n");
  auto fang_model = bench::load_or_train_fang_cnn(/*quiet=*/false);
  const auto fang_qnet =
      quant::quantize(fang_model.network, quant::QuantizeConfig{3, 4});
  const OurRow fang_row = run_design(
      fang_qnet, bench::quantized_accuracy_pct(fang_qnet, fang_model.test),
      "MNIST*", "CNN 2", /*units=*/4, /*mhz=*/200.0,
      fang_model.test.images[0], 0);

  // --- this work: LeNet-5 ---
  std::printf("[2/3] LeNet-5 on our accelerator...\n");
  auto lenet_model = bench::load_or_train_lenet5(/*quiet=*/false);
  const auto lenet_qnet =
      quant::quantize(lenet_model.network, quant::QuantizeConfig{3, 4});
  const OurRow lenet_row = run_design(
      lenet_qnet, bench::quantized_accuracy_pct(lenet_qnet, lenet_model.test),
      "MNIST*", "LeNet-5", /*units=*/4, /*mhz=*/200.0,
      lenet_model.test.images[0], 0);

  // --- this work: VGG-11 (full size for hardware, slim for accuracy) ---
  std::printf("[3/3] VGG-11 (28.5M parameters, DRAM streaming)...\n");
  auto vgg_slim = bench::load_or_train_vgg_slim(/*quiet=*/false);
  const auto slim_qnet =
      quant::quantize(vgg_slim.network, quant::QuantizeConfig{3, 6});
  const double vgg_accuracy =
      bench::quantized_accuracy_pct(slim_qnet, vgg_slim.test, 300);

  Rng vgg_rng(99);
  nn::Network vgg_full = nn::make_vgg11();
  vgg_full.init_params(vgg_rng);
  // Shrink weights so quantization scales are representative of a trained
  // model (hardware metrics do not depend on the values).
  for (nn::Param* p : vgg_full.params())
    for (std::int64_t i = 0; i < p->value.numel(); ++i)
      p->value.at_flat(i) *= 0.5f;
  const auto vgg_qnet =
      quant::quantize(vgg_full, quant::QuantizeConfig{3, 6});
  std::printf("  VGG-11 parameters: %.1fM (%lld KiB at 3 bits)\n",
              static_cast<double>(vgg_qnet.num_params()) / 1e6,
              static_cast<long long>(vgg_qnet.param_bits() / 8 / 1024));

  data::SynthObjectsConfig sample_cfg;
  sample_cfg.num_samples = 1;
  const auto vgg_sample = data::make_synth_objects(sample_cfg).images[0];
  const OurRow vgg_row = run_design(
      vgg_qnet, vgg_accuracy, "CIFAR-100*", "VGG-11", /*units=*/8,
      /*mhz=*/115.0, vgg_sample, std::int64_t{4} * 1024 * 1024 * 8);

  for (const OurRow* row : {&fang_row, &lenet_row, &vgg_row}) {
    table.add_row({"This work", row->dataset, row->network,
                   bench::fmt(row->accuracy_pct, 1),
                   bench::fmt(row->freq_mhz, 0), bench::fmt(row->latency_us, 0),
                   bench::fmt(row->fps, 1), bench::fmt(row->power_w, 1),
                   res_str(row->luts, row->ffs)});
  }
  table.print("Table III: efficiency and performance of SNN accelerators");

  std::printf("\n(*) synthetic stand-in datasets; see DESIGN.md §3.\n");
  std::printf("Paper 'This work' rows: CNN2 99.3%% 409us 2445fps 3.6W 41k/36k;"
              "\n  LeNet-5 99.1%% 294us 3380fps 3.4W 27k/24k;"
              "\n  VGG-11 60.1%% 210000us 4.7fps 4.9W 88k/84k\n");

  bench::TablePrinter ratios({"Comparison", "Ours", "Paper"});
  ratios.add_row({"Latency vs Fang et al. (x better)",
                  bench::fmt(fang.latency_us / fang_row.latency_us, 1),
                  "18.4"});
  ratios.add_row({"Power vs Fang et al. (x better)",
                  bench::fmt(fang.power_w / fang_row.power_w, 2), "1.25"});
  ratios.add_row({"LUTs vs Fang et al. (x fewer)",
                  bench::fmt(static_cast<double>(fang.luts) / fang_row.luts, 1),
                  "3.8"});
  ratios.add_row(
      {"FFs vs Fang et al. (x fewer)",
       bench::fmt(static_cast<double>(fang.flip_flops) / fang_row.ffs, 1),
       "6.5"});
  ratios.add_row({"Throughput vs Ju et al. (x better)",
                  bench::fmt(fang_row.fps / ju.throughput_fps, 1), "14.9"});
  ratios.add_row({"Power vs Ju et al. (fraction)",
                  bench::fmt(fang_row.power_w / ju.power_w, 2), "0.78"});
  ratios.print("Paper Sec. IV-D headline ratios");
  return 0;
}
