// Shared infrastructure for the reproduction benches: model training with
// on-disk caching, datasets, and table formatting.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/network.hpp"
#include "quant/qnetwork.hpp"

namespace rsnn::bench {

/// A trained float model plus its train/test data.
struct TrainedModel {
  nn::Network network;
  data::Dataset train;
  data::Dataset test;
  float ann_accuracy = 0.0f;
};

/// Where bench artifacts (trained weights) are cached between runs.
std::string artifact_dir();

/// LeNet-5 trained on SynthDigits (32x32). Cached after the first run.
/// Substitution note: the paper uses MNIST; if an MNIST directory is present
/// at ./data/mnist it is used instead (see DESIGN.md §3).
TrainedModel load_or_train_lenet5(bool quiet = true);

/// The Fang et al. CNN (28x28) trained on SynthDigits at 28x28.
TrainedModel load_or_train_fang_cnn(bool quiet = true);

/// A width-reduced VGG-11 trained on SynthObjects-100, standing in for the
/// accuracy column of the Table III VGG row (the full-size VGG-11 is used
/// for all hardware metrics). Width divisor 8 by default.
TrainedModel load_or_train_vgg_slim(bool quiet = true);

/// Accuracy of a quantized network over a dataset, in percent.
double quantized_accuracy_pct(const quant::QuantizedNetwork& qnet,
                              const data::Dataset& dataset,
                              std::size_t max_samples = 0);

// ---------------------------------------------------------------- tables

/// Minimal fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void add_row(const std::vector<std::string>& cells);
  void print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double value, int decimals = 2);
std::string fmt_int(std::int64_t value);

}  // namespace rsnn::bench
