// Reproduces paper Table II: "Latency, power & resources versus convolution
// units".
//
// Setup (paper Sec. IV-C): LeNet-5, spike train length T = 3, 100 MHz,
// 1/2/4/8 convolution units. Classification results are unaffected by the
// unit count (verified in tests); latency improves sub-linearly because
// memory accesses grow and the pooling/linear units are not duplicated,
// while resources scale almost linearly.
//
// Paper reference values:
//   1: 1063 us, 3.07 W, 11k LUT / 10k FF    4: 450 us, 3.17 W, 24k / 23k
//   2:  648 us, 3.09 W, 15k LUT / 14k FF    8: 370 us, 3.28 W, 42k / 39k
#include <cstdio>

#include "compiler/compile.hpp"
#include "harness.hpp"
#include "hw/accelerator.hpp"
#include "hw/power_model.hpp"
#include "hw/resource_model.hpp"
#include "quant/quantize.hpp"

namespace {

struct PaperRow {
  int units;
  double latency_us, power_w;
  double luts_k, ffs_k;
};
constexpr PaperRow kPaperRows[] = {{1, 1063, 3.07, 11, 10},
                                   {2, 648, 3.09, 15, 14},
                                   {4, 450, 3.17, 24, 23},
                                   {8, 370, 3.28, 42, 39}};

}  // namespace

int main() {
  using namespace rsnn;
  std::printf("Table II reproduction: latency, power & resources vs conv units\n");
  std::printf("(LeNet-5, T=3, 100 MHz)\n");

  bench::TrainedModel model = bench::load_or_train_lenet5(/*quiet=*/false);
  const auto qnet =
      quant::quantize(model.network, quant::QuantizeConfig{3, 3});

  bench::TablePrinter table(
      {"Units", "Lat [us]", "Pow [W]", "LUTs", "FFs", "Lat norm",
       "Paper Lat [us]", "Paper Pow [W]", "Paper LUT/FF", "Paper norm"});

  double latency_u1 = 0.0;
  for (const PaperRow& paper : kPaperRows) {
    compiler::CompileOptions options;
    options.num_conv_units = paper.units;
    options.clock_mhz = 100.0;
    const auto design = compiler::compile(qnet, options);
    hw::Accelerator accel(design.config, qnet);

    // One representative inference provides the activity factors.
    const auto run =
        accel.run_image(model.test.images[0], hw::SimMode::kAnalytic);
    const auto resources = hw::estimate_resources(accel);
    const auto power =
        hw::estimate_power(design.config, resources, run, accel.uses_dram());

    const double latency = accel.predict_latency_us();
    if (paper.units == 1) latency_u1 = latency;

    char paper_res[32];
    std::snprintf(paper_res, sizeof(paper_res), "%.0fk / %.0fk", paper.luts_k,
                  paper.ffs_k);
    table.add_row({bench::fmt_int(paper.units), bench::fmt(latency, 0),
                   bench::fmt(power.total_w(), 2),
                   bench::fmt_int(resources.luts),
                   bench::fmt_int(resources.flip_flops),
                   bench::fmt(latency / latency_u1, 2),
                   bench::fmt(paper.latency_us, 0),
                   bench::fmt(paper.power_w, 2), paper_res,
                   bench::fmt(paper.latency_us / 1063.0, 2)});
  }
  table.print("Table II: latency, power & resources versus convolution units");

  std::printf(
      "\nShape checks: doubling units does not halve latency (memory access\n"
      "and the non-duplicated pool/linear units dominate at high unit\n"
      "counts), while LUT/FF grow almost linearly with the unit count.\n");
  return 0;
}
