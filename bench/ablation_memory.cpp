// Ablation B: memory-access reduction of the row-based dataflow.
//
// The paper's architectural claim (Sec. III-A, conclusion): the row-based
// execution with an input shift register "heavily reduces the number of
// memory accesses to load kernels and activations" compared to a naive
// sliding-window dataflow that re-fetches the Kr x Kc window per output.
// This bench quantifies the reduction for every conv layer of the paper's
// workloads.
#include <cstdio>

#include "hw/arch.hpp"
#include "hw/latency_model.hpp"
#include "harness.hpp"

namespace {

using namespace rsnn;

struct LayerSpec {
  const char* model;
  const char* layer;
  hw::ConvDims dims;
  int time_steps;
};

}  // namespace

int main() {
  std::printf("Ablation: row-based dataflow vs naive sliding window\n");

  const LayerSpec layers[] = {
      {"LeNet-5", "conv1 6C5", {1, 6, 32, 32, 5, 1, 0}, 4},
      {"LeNet-5", "conv2 16C5", {6, 16, 14, 14, 5, 1, 0}, 4},
      {"LeNet-5", "conv3 120C5", {16, 120, 5, 5, 5, 1, 0}, 4},
      {"Fang-CNN", "conv1 32C3", {1, 32, 28, 28, 3, 1, 0}, 4},
      {"Fang-CNN", "conv2 32C3", {32, 32, 13, 13, 3, 1, 0}, 4},
      {"VGG-11", "conv1 64C3", {3, 64, 32, 32, 3, 1, 1}, 6},
      {"VGG-11", "conv4 256C3", {256, 256, 8, 8, 3, 1, 1}, 6},
      {"VGG-11", "conv8 512C3", {512, 512, 2, 2, 3, 1, 1}, 6},
  };

  bench::TablePrinter table({"Model", "Layer", "Naive reads [kbit]",
                             "Row-based reads [kbit]", "Reduction",
                             "Kernel fetches [kbit]"});

  hw::AcceleratorConfig cfg = hw::lenet_reference_config();
  cfg.conv = hw::ConvUnitGeometry{32, 5, 24};
  cfg.num_conv_units = 2;

  double worst = 1e30, best = 0, naive_total = 0, ours_total = 0;
  for (const LayerSpec& spec : layers) {
    const auto lat = hw::conv_latency(spec.dims, cfg, spec.time_steps,
                                      hw::WeightPlacement::kOnChip, 3);
    const std::int64_t naive =
        hw::naive_conv_act_reads_bits(spec.dims, spec.time_steps);
    const double reduction =
        static_cast<double>(naive) /
        static_cast<double>(lat.traffic.act_read_bits);
    worst = std::min(worst, reduction);
    best = std::max(best, reduction);
    naive_total += static_cast<double>(naive);
    ours_total += static_cast<double>(lat.traffic.act_read_bits);

    table.add_row({spec.model, spec.layer,
                   bench::fmt(static_cast<double>(naive) / 1000.0, 0),
                   bench::fmt(static_cast<double>(lat.traffic.act_read_bits) /
                                  1000.0, 0),
                   bench::fmt(reduction, 1) + "x",
                   bench::fmt(static_cast<double>(
                                  lat.traffic.weight_read_bits) / 1000.0, 0)});
  }
  table.print("Activation-buffer reads: naive window vs row-based dataflow");

  std::printf(
      "\nAggregate reduction over all layers: %.1fx (per-layer range "
      "%.1fx .. %.1fx).\nThe reduction equals the kernel window area scaled "
      "by the output-channel\nsharing of a unit — the architectural reason "
      "the paper's adder arrays can\nbe fed from block RAM without DSPs or "
      "high memory bandwidth.\n",
      naive_total / ours_total, worst, best);
  return 0;
}
