// Reproduces paper Table I: "Accuracy & latency versus time steps".
//
// Setup (paper Sec. IV-A/B): LeNet-5, MNIST-class data, 3-bit weights,
// two convolution units, 100 MHz. One trained ANN is converted at
// T = 3, 4, 5, 6 and evaluated; latency comes from the accelerator model.
//
// Paper reference values:
//   T=3: 98.57% / 648 us     T=5: 99.21% / 1063 us
//   T=4: 99.09% / 856 us     T=6: 99.26% / 1271 us
#include <cstdio>

#include "compiler/compile.hpp"
#include "harness.hpp"
#include "hw/accelerator.hpp"
#include "quant/quantize.hpp"

namespace {

struct PaperRow {
  int time_steps;
  double accuracy_pct;
  double latency_us;
};
constexpr PaperRow kPaperRows[] = {
    {3, 98.57, 648}, {4, 99.09, 856}, {5, 99.21, 1063}, {6, 99.26, 1271}};

}  // namespace

int main() {
  using namespace rsnn;
  std::printf("Table I reproduction: accuracy & latency vs time steps\n");
  std::printf("(LeNet-5, 2 conv units, 100 MHz, 3-bit weights)\n");

  bench::TrainedModel model = bench::load_or_train_lenet5(/*quiet=*/false);
  std::printf("ANN reference accuracy: %.2f%%\n", 100.0 * model.ann_accuracy);

  bench::TablePrinter table({"Time Steps", "Acc [%]", "Lat [us]",
                             "Paper Acc [%]", "Paper Lat [us]",
                             "Lat ratio vs T=3"});

  double latency_t3 = 0.0;
  for (const PaperRow& paper : kPaperRows) {
    const int T = paper.time_steps;
    const auto qnet =
        quant::quantize(model.network, quant::QuantizeConfig{3, T});

    compiler::CompileOptions options;
    options.num_conv_units = 2;
    options.clock_mhz = 100.0;
    const auto design = compiler::compile(qnet, options);
    hw::Accelerator accel(design.config, qnet);

    const double accuracy = bench::quantized_accuracy_pct(qnet, model.test);
    const double latency = accel.predict_latency_us();
    if (T == 3) latency_t3 = latency;

    table.add_row({bench::fmt_int(T), bench::fmt(accuracy, 2),
                   bench::fmt(latency, 0), bench::fmt(paper.accuracy_pct, 2),
                   bench::fmt(paper.latency_us, 0),
                   bench::fmt(latency / latency_t3, 2)});
  }
  table.print("Table I: accuracy & latency versus time steps");

  std::printf(
      "\nShape checks: accuracy saturates by T=6 (paper: no significant\n"
      "improvement beyond 6) and latency scales ~linearly with T\n"
      "(paper ratios vs T=3: 1.00 / 1.32 / 1.64 / 1.96).\n");
  return 0;
}
