// Ablation A: radix versus rate encoding.
//
// The paper's motivating claim (Sec. I, IV-B): radix encoding reaches
// state-of-the-art accuracy with ~6 time steps where rate-coded designs
// need ~10 (Fang et al.) up to hundreds — "a potential efficiency
// improvement of around 40% by the neural encoding scheme alone".
//
// Two experiments:
//   1. Round-trip encoding error vs T (radix error halves per step; rate
//      error decays only as 1/T).
//   2. LeNet-5 classification accuracy vs T under both encodings: radix via
//      the quantized network (bit-exact accelerator arithmetic), rate via
//      the integrate-and-fire simulator on the same float weights.
#include <cstdio>

#include "encoding/analysis.hpp"
#include "harness.hpp"
#include "quant/quantize.hpp"
#include "snn/rate_snn.hpp"

int main() {
  using namespace rsnn;
  std::printf("Ablation: radix vs rate encoding\n");

  // --- encoding error sweep -------------------------------------------
  Rng rng(42);
  const TensorF values = encoding::uniform_test_values(4096, rng);
  bench::TablePrinter err_table({"T", "Radix RMS err", "Rate RMS err",
                                 "Radix spikes/neuron", "Rate spikes/neuron"});
  for (const int T : {1, 2, 3, 4, 5, 6, 8, 10, 12, 16}) {
    const auto radix = encoding::radix_error(values, T);
    const auto rate = encoding::rate_error(values, T);
    err_table.add_row(
        {bench::fmt_int(T), bench::fmt(radix.rms_error, 5),
         bench::fmt(rate.rms_error, 5),
         bench::fmt(static_cast<double>(radix.total_spikes) / values.numel(), 2),
         bench::fmt(static_cast<double>(rate.total_spikes) / values.numel(), 2)});
  }
  err_table.print("Round-trip encoding error versus spike-train length");

  // --- accuracy sweep ---------------------------------------------------
  bench::TrainedModel model = bench::load_or_train_lenet5(/*quiet=*/false);
  std::printf("ANN reference accuracy: %.2f%%\n", 100.0 * model.ann_accuracy);

  const std::size_t eval_n = std::min<std::size_t>(model.test.size(), 120);
  bench::TablePrinter acc_table(
      {"T", "Radix acc [%]", "Rate acc [%]", "Radix latency-equivalent"});

  for (const int T : {2, 3, 4, 6, 8, 12, 16}) {
    // Radix: quantized network (== accelerator arithmetic).
    const auto qnet =
        quant::quantize(model.network, quant::QuantizeConfig{3, T});
    const double radix_acc =
        bench::quantized_accuracy_pct(qnet, model.test, eval_n);

    // Rate: IF dynamics on the float network.
    const snn::RateSnn rate_snn(model.network, snn::RateSnnConfig{T, 1.0f});
    std::int64_t rate_correct = 0;
    for (std::size_t i = 0; i < eval_n; ++i)
      if (rate_snn.run_image(model.test.images[i]).predicted_class ==
          model.test.labels[i])
        ++rate_correct;
    const double rate_acc =
        100.0 * static_cast<double>(rate_correct) / static_cast<double>(eval_n);

    acc_table.add_row({bench::fmt_int(T), bench::fmt(radix_acc, 2),
                       bench::fmt(rate_acc, 2), bench::fmt_int(T)});
    std::printf("  T=%d done (radix %.1f%%, rate %.1f%%)\n", T, radix_acc,
                rate_acc);
    std::fflush(stdout);
  }
  acc_table.print("LeNet-5 accuracy versus spike-train length");

  std::printf(
      "\nShape check: radix saturates by T~5-6; rate needs substantially\n"
      "longer trains for the same accuracy. Since latency scales linearly\n"
      "with T on this architecture, matching Fang et al.'s ~10 rate steps\n"
      "with ~6 radix steps is the paper's ~40%% efficiency headline.\n");
  return 0;
}
