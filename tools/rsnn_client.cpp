// rsnn_client — command-line client for a running rsnn_serve daemon.
//
//   rsnn_client load     --model-id lenet --qsnn lenet.qsnn [--port 7433]
//   rsnn_client unload   --model-id lenet
//   rsnn_client infer    --model-id lenet [--samples 200] [--deadline-ms 0]
//                        [--bulk-every 0]
//   rsnn_client health   [--model-id lenet]      ("" = all models)
//   rsnn_client metrics  [--model-id lenet]
//   rsnn_client shutdown [--drain 1]
//
// `infer` asks the daemon (Health frame) for the model's time bits and
// input shape, loads the same held-out evaluation set as `rsnn_cli run`
// (tools/eval_data.hpp), radix-encodes each image client-side and pushes it
// through an Infer frame — so its final "accuracy over N samples" line is
// byte-comparable with the local `rsnn_cli run` line; the CI smoke job
// diffs the two.
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "engine/serving_pool.hpp"
#include "eval_data.hpp"
#include "quant/quantize.hpp"
#include "serve/client.hpp"
#include "serve/serve_flags.hpp"

namespace {

using namespace rsnn;
using flags::count_flag;
using flags::FlagSet;
using flags::FlagSpec;
using flags::text_flag;
using flags::toggle_flag;

std::vector<FlagSpec> common_flags() {
  return {
      count_flag("port", "7433", "daemon port on 127.0.0.1", 0, 65535),
      text_flag("model-id", "", "model to address (some commands: \"\" = all)",
                "ID"),
  };
}

std::vector<FlagSpec> load_flags() {
  return flags::merge_flags(
      common_flags(),
      {text_flag("qsnn", "", "model path, resolved on the daemon's filesystem",
                 "PATH")});
}

std::vector<FlagSpec> infer_flags() {
  return flags::merge_flags(
      flags::merge_flags(common_flags(),
                         {count_flag("samples", "200", "evaluation samples",
                                     1)}),
      serve::serving_request_flags());
}

std::vector<FlagSpec> shutdown_flags() {
  return flags::merge_flags(
      common_flags(),
      {toggle_flag("drain", "1",
                   "complete admitted work before exiting (0 = cancel)")});
}

void usage() {
  std::printf("rsnn_client <command> [--option value ...]\n");
  const struct {
    const char* name;
    const char* blurb;
    std::vector<FlagSpec> table;
  } commands[] = {
      {"load", "load or hot-swap a model on the daemon", load_flags()},
      {"unload", "remove a model (admitted work drains first)",
       common_flags()},
      {"infer", "run the evaluation set through a served model",
       infer_flags()},
      {"health", "per-model replica fleet state", common_flags()},
      {"metrics", "per-model serving counters and percentiles",
       common_flags()},
      {"shutdown", "stop the daemon", shutdown_flags()},
  };
  for (const auto& command : commands) {
    std::printf("\n%s — %s\n", command.name, command.blurb);
    std::printf("%s", FlagSet(command.table).usage(4).c_str());
  }
}

/// Parse + connect; false (after printing) on either failing.
bool setup(FlagSet* args, serve::Client* client, int argc, char** argv) {
  const std::string parse_error = args->parse(argc, argv, 2);
  if (!parse_error.empty()) {
    std::fprintf(stderr, "error: %s\n", parse_error.c_str());
    return false;
  }
  const std::string connect_error =
      client->connect_loopback(static_cast<int>(args->count("port")));
  if (!connect_error.empty()) {
    std::fprintf(stderr, "error: %s\n", connect_error.c_str());
    return false;
  }
  return true;
}

int fail(const std::string& error) {
  std::fprintf(stderr, "error: %s\n", error.c_str());
  return 1;
}

std::string health_list(const std::vector<engine::ReplicaHealth>& fleet) {
  std::string out;
  for (std::size_t r = 0; r < fleet.size(); ++r) {
    if (r != 0) out += ", ";
    out += engine::health_name(fleet[r]);
  }
  return out;
}

int cmd_load(int argc, char** argv) {
  FlagSet args(load_flags());
  serve::Client client;
  if (!setup(&args, &client, argc, argv)) return 1;
  serve::LoadModelReply reply;
  const std::string error =
      client.load_model(args.text("model-id"), args.text("qsnn"), &reply);
  if (!error.empty()) return fail(error);
  if (!reply.ok) return fail(reply.detail);
  std::printf("%s\n", reply.detail.c_str());
  return 0;
}

int cmd_unload(int argc, char** argv) {
  FlagSet args(common_flags());
  serve::Client client;
  if (!setup(&args, &client, argc, argv)) return 1;
  serve::UnloadModelReply reply;
  const std::string error = client.unload_model(args.text("model-id"), &reply);
  if (!error.empty()) return fail(error);
  if (!reply.ok) return fail(reply.detail);
  std::printf("%s\n", reply.detail.c_str());
  return 0;
}

int cmd_infer(int argc, char** argv) {
  FlagSet args(infer_flags());
  serve::Client client;
  if (!setup(&args, &client, argc, argv)) return 1;
  const std::string model_id = args.text("model-id");

  // The daemon knows the model's input contract; ask rather than guess.
  serve::HealthReply health;
  const std::string health_error = client.health(model_id, &health);
  if (!health_error.empty()) return fail(health_error);
  if (health.models.empty())
    return fail("unknown model '" + model_id + "' (try rsnn_client health)");
  const serve::ModelHealth& model = health.models.front();

  const std::size_t samples = static_cast<std::size_t>(args.count("samples"));
  const data::Dataset eval =
      tools::load_eval_data(Shape(model.input_dims), samples);
  const double deadline_ms = args.number("deadline-ms");
  const long long bulk_every = args.count("bulk-every");

  std::int64_t correct = 0;
  std::int64_t ok = 0;
  double latency_us_sum = 0.0;
  long long by_status[5] = {0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < eval.size(); ++i) {
    serve::InferRequest request;
    request.model_id = model_id;
    request.codes = quant::encode_activations(eval.images[i],
                                              static_cast<int>(model.time_bits));
    request.options.deadline_ms = deadline_ms;
    if (bulk_every > 0 &&
        i % static_cast<std::size_t>(bulk_every) ==
            static_cast<std::size_t>(bulk_every) - 1)
      request.options.priority = engine::PriorityClass::kBulk;
    serve::InferReply reply;
    const std::string error = client.infer(request, &reply);
    if (!error.empty()) return fail(error);
    ++by_status[static_cast<int>(reply.status)];
    if (reply.status != engine::RequestStatus::kOk) continue;
    ++ok;
    latency_us_sum += reply.latency_us;
    if (reply.predicted_class == eval.labels[i]) ++correct;
  }

  std::printf("accuracy over %zu samples: %.2f%%\n", eval.size(),
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(eval.size()));
  std::printf("  outcomes:");
  for (const engine::RequestStatus status :
       {engine::RequestStatus::kOk, engine::RequestStatus::kRejected,
        engine::RequestStatus::kDeadlineExceeded,
        engine::RequestStatus::kReplicaFailed,
        engine::RequestStatus::kCancelled})
    if (by_status[static_cast<int>(status)] > 0)
      std::printf(" %lld %s", by_status[static_cast<int>(status)],
                  engine::status_name(status));
  std::printf("\n");
  if (ok > 0)
    std::printf("  mean modeled latency: %.2f us/image\n",
                latency_us_sum / static_cast<double>(ok));
  return by_status[static_cast<int>(engine::RequestStatus::kOk)] ==
                 static_cast<long long>(eval.size())
             ? 0
             : 1;
}

int cmd_health(int argc, char** argv) {
  FlagSet args(common_flags());
  serve::Client client;
  if (!setup(&args, &client, argc, argv)) return 1;
  serve::HealthReply reply;
  const std::string error = client.health(args.text("model-id"), &reply);
  if (!error.empty()) return fail(error);
  if (reply.models.empty()) {
    std::printf("no models loaded\n");
    return 0;
  }
  for (const serve::ModelHealth& model : reply.models) {
    std::string dims;
    for (std::size_t d = 0; d < model.input_dims.size(); ++d)
      dims += (d == 0 ? "" : "x") + std::to_string(model.input_dims[d]);
    std::printf(
        "%s: generation %llu, T=%d, input %s, replicas %d/%d active [%s]\n",
        model.model_id.c_str(),
        static_cast<unsigned long long>(model.generation), model.time_bits,
        dims.c_str(), model.active_replicas, model.replicas,
        health_list(model.replica_health).c_str());
  }
  return 0;
}

int cmd_metrics(int argc, char** argv) {
  FlagSet args(common_flags());
  serve::Client client;
  if (!setup(&args, &client, argc, argv)) return 1;
  serve::MetricsReply reply;
  const std::string error = client.metrics(args.text("model-id"), &reply);
  if (!error.empty()) return fail(error);
  if (reply.models.empty()) {
    std::printf("no models loaded\n");
    return 0;
  }
  for (const serve::ModelMetrics& m : reply.models) {
    std::printf(
        "%s: %lld submitted, %lld completed, %lld rejected, %lld failed, "
        "%lld deadline-exceeded, %lld cancelled\n",
        m.model_id.c_str(), static_cast<long long>(m.submitted),
        static_cast<long long>(m.completed),
        static_cast<long long>(m.rejected), static_cast<long long>(m.failed),
        static_cast<long long>(m.deadline_exceeded),
        static_cast<long long>(m.cancelled));
    std::printf(
        "  resilience: %lld retries, %lld replica failure(s), %lld stall(s), "
        "%lld rebuild(s), %.2f attempts/image\n",
        static_cast<long long>(m.retries),
        static_cast<long long>(m.replica_failures),
        static_cast<long long>(m.stalls), static_cast<long long>(m.rebuilds),
        m.expected_attempts_per_image);
    std::printf(
        "  goodput: latency %.1f%%, bulk %.1f%%; p50 %.2f ms, p99 %.2f ms, "
        "%.1f images/sec wall, %.1f images/dispatch, fleet %d [%s]\n",
        m.latency_goodput * 100.0, m.bulk_goodput * 100.0, m.p50_latency_ms,
        m.p99_latency_ms, m.wall_images_per_sec, m.mean_batch,
        m.active_replicas, health_list(m.replica_health).c_str());
  }
  return 0;
}

int cmd_shutdown(int argc, char** argv) {
  FlagSet args(shutdown_flags());
  serve::Client client;
  if (!setup(&args, &client, argc, argv)) return 1;
  serve::ShutdownReply reply;
  const std::string error =
      client.shutdown_server(args.toggle("drain"), &reply);
  if (!error.empty()) return fail(error);
  std::printf("%s\n", reply.detail.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "load") return cmd_load(argc, argv);
    if (command == "unload") return cmd_unload(argc, argv);
    if (command == "infer") return cmd_infer(argc, argv);
    if (command == "health") return cmd_health(argc, argv);
    if (command == "metrics") return cmd_metrics(argc, argv);
    if (command == "shutdown") return cmd_shutdown(argc, argv);
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
