// rsnn_serve — the serving daemon: a multi-model registry behind the wire
// protocol (src/serve/wire.hpp) on a loopback TCP port.
//
//   rsnn_serve [--port 7433] [--preload lenet=lenet.qsnn,vgg=vgg.qsnn]
//              [--engine analytic] [--units 2] [--mhz 100] [--threads 1]
//              [...the same serving-pool flags as `rsnn_cli run --serve`...]
//
// Every loaded model gets its own engine::ServingPool built from the shared
// serving flag table, so a pool tuned with `rsnn_cli run --serve` deploys
// under the daemon with the identical options. Clients load further models,
// hot-swap running ones, and push inference with rsnn_client (or anything
// speaking the frame format).
//
// Shutdown: a Shutdown frame (rsnn_client shutdown [--drain 0]) or SIGINT.
// Both stop the accept loop first, then drain admitted work (SIGINT and
// `--drain 1` drain; `--drain 0` cancels queued requests as kCancelled),
// print final per-model stats, and exit 0.
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "compiler/partition.hpp"
#include "engine/engine.hpp"
#include "serve/registry.hpp"
#include "serve/serve_flags.hpp"
#include "serve/server.hpp"

namespace {

using namespace rsnn;
using flags::count_flag;
using flags::FlagSet;
using flags::FlagSpec;
using flags::number_flag;
using flags::text_flag;

std::vector<FlagSpec> daemon_flags() {
  std::vector<FlagSpec> table = {
      count_flag("port", "7433", "loopback port to bind (0 = kernel-assigned)",
                 0, 65535),
      text_flag("preload", "",
                "models to load before accepting: id=path[,id=path...]",
                "LIST"),
      text_flag("engine", "analytic",
                "cycle_accurate|stepped|analytic|behavioral|reference",
                "NAME"),
      count_flag("units", "2", "convolution units in each derived design", 1),
      number_flag("mhz", "100", "design clock", 1e-3),
      count_flag("threads", "1",
                 "cores per batched fast-path run (0 = all; trades against "
                 "--replicas)"),
  };
  return flags::merge_flags(std::move(table), serve::serving_pool_flags());
}

void usage() {
  std::printf(
      "rsnn_serve [--option value ...]\n"
      "serve quantized models over the rsnn wire protocol (127.0.0.1 only)\n");
  std::printf("%s", FlagSet(daemon_flags()).usage(4).c_str());
  std::printf(
      "\nstop with SIGINT (drains admitted work) or `rsnn_client shutdown`.\n");
}

volatile std::sig_atomic_t g_interrupted = 0;
void handle_sigint(int) { g_interrupted = 1; }

/// `id=path[,id=path...]` -> load_model calls. Diagnostic, "" on success.
std::string preload_models(serve::ModelRegistry& registry,
                           const std::string& list) {
  std::size_t begin = 0;
  while (begin < list.size()) {
    std::size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string entry = list.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size())
      return "invalid --preload entry '" + entry + "' (expected id=path)";
    const std::string model_id = entry.substr(0, eq);
    const std::string path = entry.substr(eq + 1);
    const std::string error = registry.load_model(model_id, path);
    if (!error.empty()) return error;
    std::printf("  preloaded '%s' from %s\n", model_id.c_str(), path.c_str());
  }
  return {};
}

void print_final_stats(const std::vector<serve::ModelInfo>& models) {
  for (const serve::ModelInfo& info : models) {
    const engine::ServingStats& stats = info.stats;
    std::printf(
        "  %s (generation %llu): %lld completed, %lld rejected, "
        "%lld failed, %lld retries, %.2f attempts/image, fleet %d/%d\n",
        info.model_id.c_str(),
        static_cast<unsigned long long>(info.generation),
        static_cast<long long>(stats.completed),
        static_cast<long long>(stats.rejected),
        static_cast<long long>(stats.failed),
        static_cast<long long>(stats.retries),
        compiler::expected_attempts_per_image(stats.completed, stats.retries,
                                              stats.stalls),
        stats.active_replicas, info.replicas);
  }
}

int serve_main(int argc, char** argv) {
  FlagSet args(daemon_flags());
  const std::string parse_error = args.parse(argc, argv, 1);
  if (!parse_error.empty()) {
    std::fprintf(stderr, "error: %s\n", parse_error.c_str());
    return 1;
  }

  serve::RegistryOptions registry_options;
  registry_options.compile.num_conv_units = static_cast<int>(args.count("units"));
  registry_options.compile.clock_mhz = args.number("mhz");
  registry_options.compile.fast_path_threads =
      static_cast<int>(args.count("threads"));
  registry_options.kind = engine::parse_engine(args.text("engine"));
  const std::string pool_error =
      serve::pool_options_from_flags(args, &registry_options.pool);
  if (!pool_error.empty()) {
    std::fprintf(stderr, "error: %s\n", pool_error.c_str());
    return 1;
  }

  serve::ModelRegistry registry(std::move(registry_options));
  const std::string preload_error =
      preload_models(registry, args.text("preload"));
  if (!preload_error.empty()) {
    std::fprintf(stderr, "error: %s\n", preload_error.c_str());
    return 1;
  }

  serve::ServerOptions server_options;
  server_options.port = static_cast<int>(args.count("port"));
  serve::Server server(registry, server_options);
  const std::string start_error = server.start();
  if (!start_error.empty()) {
    std::fprintf(stderr, "error: %s\n", start_error.c_str());
    return 1;
  }
  std::printf(
      "rsnn_serve listening on 127.0.0.1:%d (%s engine, %d replica(s) per "
      "model, %s admission)\n",
      server.port(), engine::engine_name(registry.options().kind),
      registry.options().pool.replicas,
      engine::policy_name(registry.options().pool.policy));
  std::fflush(stdout);

  // SIGINT just flips a flag; this loop (not the handler) does the
  // signal-unsafe work. A Shutdown frame flips shutdown_requested() instead;
  // wait_until_shutdown() then returns immediately with its drain flag.
  std::signal(SIGINT, handle_sigint);
  while (g_interrupted == 0 && !server.shutdown_requested())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  bool drain = true;
  if (server.shutdown_requested()) server.wait_until_shutdown(&drain);
  std::signal(SIGINT, SIG_DFL);

  std::printf("shutting down (%s)...\n",
              drain ? "draining admitted work" : "cancelling queued work");
  server.stop();
  const std::vector<serve::ModelInfo> models = registry.snapshot();
  registry.shutdown(drain);
  print_final_stats(models);
  std::printf("served %lld connection(s), goodbye\n",
              static_cast<long long>(server.connections_accepted()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 &&
      (std::string(argv[1]) == "--help" || std::string(argv[1]) == "-h")) {
    usage();
    return 0;
  }
  try {
    return serve_main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
