// rsnn_cli — command-line front end for the whole flow.
//
//   rsnn_cli train   --model lenet5 --out lenet.rsnn [--epochs 4] [--samples 3000]
//   rsnn_cli convert --model lenet5 --weights lenet.rsnn --T 4 --out lenet.qsnn
//                    [--weight-bits 3] [--per-channel 1]
//   rsnn_cli run     --qsnn lenet.qsnn [--units 2] [--mhz 100] [--samples 200]
//                    [--engine cycle_accurate|analytic|behavioral|reference]
//                    [--stream <workers>]
//                    [--pipeline <stages> [--partition balance_latency|fit_resources]
//                     [--relower 1]]
//                    [--serve 1 ...serving flags...]
//   rsnn_cli emit-rtl --qsnn lenet.qsnn --out rtl_out [--units 2]
//                    [--pipeline <stages> [--partition ...]]
//   rsnn_cli info    --qsnn lenet.qsnn
//
// Every command's options live in one declarative flag table
// (common/flags.hpp): the table drives parsing, range checks, and the
// usage text below, and the serving flags are the same serve::
// serving_pool_flags() table the rsnn_serve daemon uses — the two binaries
// cannot drift apart.
//
// Datasets: real MNIST from ./data/mnist when present, SynthDigits stand-in
// otherwise (models with 28x28/32x32 single-channel inputs only).
#include <csignal>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "compiler/compile.hpp"
#include "compiler/partition.hpp"
#include "engine/engine.hpp"
#include "engine/fault.hpp"
#include "engine/pipeline.hpp"
#include "engine/serving_pool.hpp"
#include "engine/stream.hpp"
#include "eval_data.hpp"
#include "hw/accelerator.hpp"
#include "hw/power_model.hpp"
#include "hw/report.hpp"
#include "hw/resource_model.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"
#include "quant/qserialize.hpp"
#include "quant/quantize.hpp"
#include "rtl/generate.hpp"
#include "serve/serve_flags.hpp"

namespace {

using namespace rsnn;
using flags::count_flag;
using flags::FlagSet;
using flags::FlagSpec;
using flags::number_flag;
using flags::text_flag;
using flags::toggle_flag;

// ------------------------------------------------------------ flag tables

std::vector<FlagSpec> train_flags() {
  return {
      text_flag("model", "lenet5", "zoo model to train", "NAME"),
      text_flag("out", "", "weight checkpoint path; <model>.rsnn when omitted",
                "PATH"),
      count_flag("epochs", "4", "training epochs", 1),
      count_flag("samples", "3000", "synthetic training samples", 1),
      count_flag("weight-bits", "3", "QAT weight precision", 1, 8),
  };
}

std::vector<FlagSpec> convert_flags() {
  return {
      text_flag("model", "lenet5", "zoo model to instantiate", "NAME"),
      text_flag("weights", "", "trained checkpoint; <model>.rsnn when omitted",
                "PATH"),
      text_flag("out", "", "quantized model path; <model>.qsnn when omitted",
                "PATH"),
      count_flag("T", "4", "activation time bits (spike-train length)", 1, 8),
      count_flag("weight-bits", "3", "quantized weight precision", 1, 8),
      toggle_flag("per-channel", "0", "per-channel weight scales"),
  };
}

std::vector<FlagSpec> run_flags() {
  std::vector<FlagSpec> table = {
      text_flag("qsnn", "lenet5.qsnn", "quantized model to execute", "PATH"),
      count_flag("units", "2", "convolution units in the derived design", 1),
      number_flag("mhz", "100", "design clock", 1e-3),
      count_flag("samples", "200", "evaluation samples", 1),
      text_flag("engine", "analytic",
                "cycle_accurate|stepped|analytic|behavioral|reference",
                "NAME"),
      count_flag("stream", "-1",
                 "streaming-report workers (0 = one per hardware thread)",
                 -1),
      count_flag("threads", "1",
                 "cores per batched fast-path run (0 = all; trades against "
                 "--replicas)"),
      count_flag("pipeline", "1", "pipeline-parallel stages", 1),
      text_flag("partition", "balance_latency",
                "balance_latency|fit_resources", "NAME"),
      toggle_flag("relower", "0",
                  "re-compile each stage against its own device"),
      toggle_flag("serve", "0", "serving-pool report (flags below)"),
      count_flag("devices", "1",
                 "plan the stages x replicas split for this device budget",
                 1),
  };
  table = flags::merge_flags(std::move(table), serve::serving_pool_flags());
  return flags::merge_flags(std::move(table), serve::serving_request_flags());
}

std::vector<FlagSpec> emit_rtl_flags() {
  return {
      text_flag("qsnn", "lenet5.qsnn", "quantized model to emit", "PATH"),
      text_flag("out", "rtl_out", "output directory", "DIR"),
      count_flag("units", "2", "convolution units in the derived design", 1),
      count_flag("pipeline", "1",
                 "emit per-stage bundles with stream ports", 1),
      text_flag("partition", "balance_latency",
                "balance_latency|fit_resources", "NAME"),
  };
}

std::vector<FlagSpec> info_flags() {
  return {
      text_flag("qsnn", "lenet5.qsnn", "quantized model to describe", "PATH"),
  };
}

/// Parse a command's arguments against its table; false (after printing the
/// diagnostic) on bad input.
bool parse_command_flags(FlagSet* flag_set, int argc, char** argv) {
  const std::string error = flag_set->parse(argc, argv, 2);
  if (!error.empty()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  return true;
}

/// SIGINT flips this flag; the serve loop stops admitting, drains what was
/// already admitted, prints final stats and exits 0.
volatile std::sig_atomic_t g_interrupted = 0;
void handle_sigint(int) { g_interrupted = 1; }

/// Per-stage table shared by the pipeline and serve reports: op range,
/// predicted cycles, weight placement and the per-device resource estimate.
void print_stage_table(const ir::LayerProgram& program,
                       const std::vector<ir::ProgramSegment>& segments,
                       bool relower) {
  const std::vector<hw::ResourceEstimate> seg_resources =
      relower ? hw::relowered_resources(segments)
              : hw::partition_resources(program, segments);
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const ir::ProgramSegment& seg = segments[s];
    const char* placement =
        seg.param_bits == 0 || seg.onchip_param_bits == seg.param_bits
            ? "onchip"
            : (seg.onchip_param_bits == 0 ? "dram" : "mixed");
    std::printf(
        "  stage %zu: ops [%zu, %zu)  ~%lld cycles  %lld KiB params  "
        "%-6s  %s\n",
        s, seg.begin, seg.end, static_cast<long long>(seg.predicted_cycles),
        static_cast<long long>(seg.param_bits / 8 / 1024), placement,
        hw::to_string(seg_resources[s]).c_str());
  }
}

int cmd_train(int argc, char** argv) {
  FlagSet args(train_flags());
  if (!parse_command_flags(&args, argc, argv)) return 1;
  const std::string model = args.text("model");
  const std::string out =
      args.is_set("out") ? args.text("out") : model + ".rsnn";
  const int epochs = static_cast<int>(args.count("epochs"));
  const std::size_t samples = static_cast<std::size_t>(args.count("samples"));

  nn::ZooOptions zoo;
  zoo.weight_qat_bits = static_cast<int>(args.count("weight-bits"));
  nn::Network net = nn::make_model(model, zoo);
  const auto out_shapes = net.layer_output_shapes();
  RSNN_REQUIRE(out_shapes.back().dim(1) == 10 &&
                   net.input_shape().dim(0) == 1,
               "the CLI trains on 10-class single-channel digit data; model '"
                   << model << "' does not match");
  const int canvas = static_cast<int>(net.input_shape().dim(1));

  data::Dataset train;
  if (auto mnist = data::load_mnist("data/mnist", /*train=*/true, canvas)) {
    train = std::move(*mnist);
  } else {
    data::SynthDigitsConfig cfg;
    cfg.canvas = canvas;
    cfg.num_samples = samples;
    cfg.noise_stddev = 0.08;
    cfg.max_shift = canvas >= 28 ? 3.0 : 1.5;
    cfg.min_scale = 0.7;
    cfg.max_shear = 0.25;
    cfg.intensity_min = 0.55;
    train = data::make_synth_digits(cfg);
  }
  std::printf("training %s on %zu samples, %d epochs\n", model.c_str(),
              train.size(), epochs);

  Rng rng(7);
  net.init_params(rng);
  nn::Adam adam(net.params(), nn::AdamConfig{0.005f});
  nn::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.epoch_callback = [](int e, float loss, float acc) {
    std::printf("  epoch %d: loss %.3f acc %.3f\n", e, loss, acc);
    std::fflush(stdout);
  };
  nn::Trainer trainer(net, adam, cfg);
  trainer.fit(train.images, train.labels, rng);
  nn::save_params(net, out);
  std::printf("saved weights to %s\n", out.c_str());
  return 0;
}

int cmd_convert(int argc, char** argv) {
  FlagSet args(convert_flags());
  if (!parse_command_flags(&args, argc, argv)) return 1;
  const std::string model = args.text("model");
  const std::string weights =
      args.is_set("weights") ? args.text("weights") : model + ".rsnn";
  const std::string out =
      args.is_set("out") ? args.text("out") : model + ".qsnn";

  quant::QuantizeConfig qcfg;
  qcfg.time_bits = static_cast<int>(args.count("T"));
  qcfg.weight_bits = static_cast<int>(args.count("weight-bits"));
  qcfg.per_channel = args.toggle("per-channel");

  nn::ZooOptions zoo;
  zoo.weight_qat_bits = qcfg.weight_bits;
  nn::Network net = nn::make_model(model, zoo);
  Rng rng(7);
  net.init_params(rng);
  nn::load_params(net, weights);

  const auto qnet = quant::quantize(net, qcfg);
  quant::save_quantized(qnet, out);
  std::printf("%s", qnet.summary().c_str());
  std::printf("saved quantized model to %s (%lld KiB)\n", out.c_str(),
              static_cast<long long>(qnet.param_bits() / 8 / 1024));
  return 0;
}

/// The serving-pool report behind `run --serve 1`: configure the pool from
/// the shared serving flag table, feed the eval set through the typed
/// submit(Request) path, drain (Ctrl-C drains early), and report outcomes.
int run_serve_report(const FlagSet& args, const compiler::CompiledDesign& design,
                     const quant::QuantizedNetwork& qnet,
                     engine::EngineKind kind, const data::Dataset& eval) {
  engine::ServingPoolOptions pool_options;
  const std::string pool_error =
      serve::pool_options_from_flags(args, &pool_options);
  if (!pool_error.empty()) {
    std::fprintf(stderr, "error: %s\n", pool_error.c_str());
    return 1;
  }
  const bool relower = args.toggle("relower");
  const double deadline_ms = args.number("deadline-ms");
  const long long bulk_every = args.count("bulk-every");

  int stages = 1;
  if (args.is_set("devices")) {
    // Enumerate the stages x replicas splits of the device budget with the
    // per-device cost model and deploy the predicted-throughput winner.
    const int budget = static_cast<int>(args.count("devices"));
    const auto candidates = compiler::enumerate_serving(design.program, budget);
    const auto& plan = candidates[compiler::best_serving_candidate(candidates)];
    std::printf("\nserving plan for %d device(s):\n", budget);
    for (const auto& candidate : candidates)
      std::printf(
          "  %d stage(s) x %d replica(s): bottleneck ~%lld cycles -> "
          "%.1f images/sec predicted%s\n",
          candidate.stages, candidate.replicas,
          static_cast<long long>(candidate.bottleneck_cycles),
          candidate.predicted_images_per_sec,
          candidate.stages == plan.stages ? "  <- chosen" : "");
    stages = plan.stages;
    pool_options.replicas = plan.replicas;
    if (plan.stages > 1) pool_options.segments = plan.segments;
  } else {
    const std::string partition_name_arg = args.text("partition");
    const std::string request_error = compiler::validate_pipeline_request(
        design.program, std::to_string(args.count("pipeline")),
        partition_name_arg, &stages);
    if (!request_error.empty()) {
      std::fprintf(stderr, "error: %s\n", request_error.c_str());
      return 1;
    }
    if (stages > 1) {
      const compiler::PartitionStrategy strategy =
          compiler::parse_partition(partition_name_arg);
      pool_options.segments =
          relower ? compiler::partition_program(design.program, strategy,
                                                stages,
                                                compiler::PartitionOptions{})
                  : compiler::partition_program(design.program, strategy,
                                                stages);
    }
  }

  engine::ServingPool pool(design.program, kind, pool_options);
  std::printf(
      "\nserving: %d replica(s) of %s on %d device(s), %s admission "
      "(queue %zu)\n",
      pool.replicas(), pool.replica_shape().c_str(), pool.devices(),
      engine::policy_name(pool.options().policy),
      pool.options().queue_capacity);
  if (!pool_options.fault_plan.empty())
    std::printf("  fault plan : %s\n",
                engine::describe_fault_plan(pool_options.fault_plan).c_str());
  if (!pool_options.segments.empty())
    print_stage_table(design.program, pool_options.segments,
                      pool_options.segments.front().is_relowered());

  std::vector<TensorI> request_codes;
  request_codes.reserve(eval.size());
  for (const TensorF& image : eval.images)
    request_codes.push_back(quant::encode_activations(image, qnet.time_bits));

  // Ctrl-C drains gracefully: stop admitting, complete what was admitted,
  // print final stats, exit 0.
  g_interrupted = 0;
  std::signal(SIGINT, handle_sigint);
  std::vector<std::future<engine::ServingResult>> tickets;
  tickets.reserve(request_codes.size());
  for (std::size_t i = 0; i < request_codes.size(); ++i) {
    if (g_interrupted) break;
    engine::Request request;
    request.codes = std::move(request_codes[i]);
    request.options.deadline_ms = deadline_ms;
    if (bulk_every > 0 &&
        i % static_cast<std::size_t>(bulk_every) ==
            static_cast<std::size_t>(bulk_every) - 1)
      request.options.priority = engine::PriorityClass::kBulk;
    tickets.push_back(pool.submit(std::move(request)));
  }
  const bool interrupted = g_interrupted != 0;
  if (interrupted)
    std::printf("\ninterrupted: draining %zu admitted request(s)...\n",
                tickets.size());
  pool.shutdown(/*drain=*/true);

  long long by_status[5] = {0, 0, 0, 0, 0};
  for (auto& ticket : tickets) {
    const engine::ServingResult result = ticket.get();
    ++by_status[static_cast<int>(result.status)];
  }
  std::signal(SIGINT, SIG_DFL);

  const engine::ServingStats stats = pool.stats();
  std::printf("  outcomes   :");
  for (const engine::RequestStatus status :
       {engine::RequestStatus::kOk, engine::RequestStatus::kRejected,
        engine::RequestStatus::kDeadlineExceeded,
        engine::RequestStatus::kReplicaFailed,
        engine::RequestStatus::kCancelled})
    if (by_status[static_cast<int>(status)] > 0)
      std::printf(" %lld %s", by_status[static_cast<int>(status)],
                  engine::status_name(status));
  std::printf(" (of %zu submitted)\n", tickets.size());
  std::printf(
      "  %lld completed in %.1f ms -> %.1f images/sec wall "
      "(%.1f modeled at %.0f MHz), p50 %.2f ms, p99 %.2f ms, "
      "%.1f images/dispatch\n",
      static_cast<long long>(stats.completed), stats.wall_ms,
      stats.wall_images_per_sec, stats.modeled_images_per_sec,
      design.config.clock_mhz, stats.p50_latency_ms, stats.p99_latency_ms,
      stats.mean_batch);
  if (stats.retries + stats.stalls + stats.rebuilds + stats.shed_bulk > 0)
    std::printf(
        "  resilience : %lld retries, %lld replica failure(s), "
        "%lld stall(s), %lld rebuild(s), %lld bulk shed\n",
        static_cast<long long>(stats.retries),
        static_cast<long long>(stats.replica_failures),
        static_cast<long long>(stats.stalls),
        static_cast<long long>(stats.rebuilds),
        static_cast<long long>(stats.shed_bulk));
  std::printf("  goodput    : latency %.1f%%, bulk %.1f%% (fleet %d/%d)\n",
              stats.per_class[0].goodput * 100.0,
              stats.per_class[1].goodput * 100.0, stats.active_replicas,
              pool.replicas());
  for (std::size_t r = 0; r < stats.per_replica.size(); ++r)
    std::printf("  replica %zu: %lld image(s), %s\n", r,
                static_cast<long long>(stats.per_replica[r]),
                engine::health_name(stats.replica_health[r]));
  return 0;
}

int cmd_run(int argc, char** argv) {
  FlagSet args(run_flags());
  if (!parse_command_flags(&args, argc, argv)) return 1;
  const auto qnet = quant::load_quantized(args.text("qsnn"));

  compiler::CompileOptions options;
  options.num_conv_units = static_cast<int>(args.count("units"));
  options.clock_mhz = args.number("mhz");
  // Host threads per batched fast-path run (0 = hardware concurrency). Flows
  // through the lowered program's config, so `--stream` workers and every
  // `--serve` replica inherit it: `--threads` trades cores-per-replica
  // against `--replicas` on one host.
  options.fast_path_threads = static_cast<int>(args.count("threads"));
  const auto design = compiler::compile(qnet, options);
  std::printf("%s", compiler::describe(design, qnet).c_str());

  const engine::EngineKind kind = engine::parse_engine(args.text("engine"));
  auto eng = engine::make_engine(kind, design.program);
  std::printf("  engine     : %s\n", eng->name());

  hw::Accelerator accel(design.program);
  const std::size_t samples = static_cast<std::size_t>(args.count("samples"));
  const data::Dataset eval = tools::load_eval_data(qnet.input_shape, samples);

  std::int64_t correct = 0;
  for (std::size_t i = 0; i < eval.size(); ++i) {
    const TensorI codes =
        quant::encode_activations(eval.images[i], qnet.time_bits);
    if (qnet.classify(codes) == eval.labels[i]) ++correct;
  }

  const auto run = eng->run_image(eval.images[0]);
  const auto resources = hw::estimate_resources(accel);
  const auto power =
      hw::estimate_power(design.config, resources, run, accel.uses_dram());
  std::printf("\naccuracy over %zu samples: %.2f%%\n", eval.size(),
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(eval.size()));
  std::printf("%s", hw::run_summary(design.config, run, resources, power).c_str());

  // Optional streaming-throughput report: feed the whole eval set through a
  // persistent worker pool with the selected engine.
  const int stream_workers = static_cast<int>(args.count("stream"));
  if (stream_workers >= 0) {
    engine::StreamingExecutor stream(design.program, kind, stream_workers);
    stream.run_stream_images(eval.images);
    const engine::StreamStats& stats = stream.last_stats();
    std::printf(
        "streaming: %lld images on %d worker(s) in %.1f ms -> %.1f "
        "images/sec (simulator wall clock)\n",
        static_cast<long long>(stats.images), stats.workers, stats.wall_ms,
        stats.images_per_sec);
  }

  // Serving-pool report: N replicas (each monolithic or a K-stage pipeline)
  // behind one bounded admission queue. `--devices D` plans the stages x
  // replicas split automatically (compiler::plan_serving); otherwise
  // `--replicas R --pipeline K` pins the shape. Results stay bit-identical
  // to monolithic execution for every shape and policy.
  if (args.toggle("serve"))
    return run_serve_report(args, design, qnet, kind, eval);

  // Optional pipeline-parallel report: partition the program into stages
  // (one simulated accelerator per stage) and stream the eval set through
  // them. Logits are bit-identical to monolithic execution; with --relower 1
  // each stage is re-compiled against its own device (per-stage placement
  // and cycles improve wherever a stage's weights fit its BRAM budget).
  if (args.is_set("pipeline")) {
    const std::string partition_name_arg = args.text("partition");
    int pipeline_stages = 0;
    const std::string request_error = compiler::validate_pipeline_request(
        design.program, std::to_string(args.count("pipeline")),
        partition_name_arg, &pipeline_stages);
    if (!request_error.empty()) {
      std::fprintf(stderr, "error: %s\n", request_error.c_str());
      return 1;
    }
    const compiler::PartitionStrategy strategy =
        compiler::parse_partition(partition_name_arg);
    const bool relower = args.toggle("relower");

    std::vector<ir::ProgramSegment> segments;
    if (relower) {
      segments = compiler::partition_program(design.program, strategy,
                                             pipeline_stages,
                                             compiler::PartitionOptions{});
    } else {
      segments = compiler::partition_program(design.program, strategy,
                                             pipeline_stages);
    }

    std::printf("\npipeline (%s, %zu stage%s, %s placement):\n",
                compiler::partition_name(strategy), segments.size(),
                segments.size() == 1 ? "" : "s",
                relower ? "re-lowered per-device" : "inherited");
    if (segments.size() != static_cast<std::size_t>(pipeline_stages)) {
      if (relower)
        std::printf(
            "  note: fit_resources packs under the per-device budget and "
            "chose %zu stage(s) within the %d available device(s); an exact "
            "stage count applies only to balance_latency\n",
            segments.size(), pipeline_stages);
      else
        std::printf(
            "  note: fit_resources packs under the per-device weight-memory "
            "budget and chose %zu stage(s); --pipeline %d sets the stage "
            "count only for balance_latency\n",
            segments.size(), pipeline_stages);
    }
    print_stage_table(design.program, segments, relower);

    engine::PipelineExecutor pipe(design.program, segments, kind);
    pipe.run_pipeline_images(eval.images);
    const engine::PipelineStats& pstats = pipe.last_stats();
    std::printf(
        "  %lld images through %d stage(s) in %.1f ms -> %.1f images/sec "
        "(simulator wall clock)\n",
        static_cast<long long>(pstats.images), pstats.stages, pstats.wall_ms,
        pstats.images_per_sec);
  }
  return 0;
}

int cmd_emit_rtl(int argc, char** argv) {
  FlagSet args(emit_rtl_flags());
  if (!parse_command_flags(&args, argc, argv)) return 1;
  const auto qnet = quant::load_quantized(args.text("qsnn"));
  compiler::CompileOptions options;
  options.num_conv_units = static_cast<int>(args.count("units"));
  const auto design = compiler::compile(qnet, options);
  const std::string dir = args.text("out");

  // Partitioned emission: one bundle per pipeline stage, each re-lowered
  // against its own device and wrapped with inter-device stream interfaces.
  if (args.is_set("pipeline")) {
    const std::string partition_name_arg = args.text("partition");
    int pipeline_stages = 0;
    const std::string request_error = compiler::validate_pipeline_request(
        design.program, std::to_string(args.count("pipeline")),
        partition_name_arg, &pipeline_stages);
    if (!request_error.empty()) {
      std::fprintf(stderr, "error: %s\n", request_error.c_str());
      return 1;
    }
    const auto segments = compiler::partition_program(
        design.program, compiler::parse_partition(partition_name_arg),
        pipeline_stages, compiler::PartitionOptions{});
    const auto bundles =
        rtl::generate_pipeline_bundles(design.program, segments);
    const int written = rtl::write_pipeline_bundles(bundles, dir);
    std::printf("wrote %d RTL files across %zu stage bundles to %s/\n",
                written, bundles.size(), dir.c_str());
    return 0;
  }

  const auto bundle =
      rtl::generate_design_with_weights(design.config, qnet, "rsnn_accel");
  const int written = rtl::write_bundle(bundle, dir);
  std::printf("wrote %d RTL files to %s/\n", written, dir.c_str());
  return 0;
}

int cmd_info(int argc, char** argv) {
  FlagSet args(info_flags());
  if (!parse_command_flags(&args, argc, argv)) return 1;
  const std::string path = args.text("qsnn");
  RSNN_REQUIRE(quant::is_quantized_file(path), path << " is not a .qsnn file");
  const auto qnet = quant::load_quantized(path);
  std::printf("%s", qnet.summary().c_str());
  std::printf("parameters: %lld (%lld KiB at %d-bit weights)\n",
              static_cast<long long>(qnet.num_params()),
              static_cast<long long>(qnet.param_bits() / 8 / 1024),
              qnet.weight_bits);
  return 0;
}

/// Usage text generated from the same tables the parsers run — per-command
/// sections cannot drift from what each command accepts.
void usage() {
  std::printf("rsnn_cli <command> [--option value ...]\n");
  const struct {
    const char* name;
    const char* blurb;
    std::vector<FlagSpec> table;
  } commands[] = {
      {"train", "train a zoo model (MNIST or SynthDigits)", train_flags()},
      {"convert", "quantize a checkpoint into a .qsnn deployment artifact",
       convert_flags()},
      {"run",
       "execute a .qsnn model (reports; --serve 1 runs the serving pool, "
       "Ctrl-C drains)",
       run_flags()},
      {"emit-rtl", "generate synthesizable RTL", emit_rtl_flags()},
      {"info", "describe a .qsnn file", info_flags()},
  };
  for (const auto& command : commands) {
    std::printf("\n%s — %s\n", command.name, command.blurb);
    std::printf("%s", FlagSet(command.table).usage(4).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "train") return cmd_train(argc, argv);
    if (command == "convert") return cmd_convert(argc, argv);
    if (command == "run") return cmd_run(argc, argv);
    if (command == "emit-rtl") return cmd_emit_rtl(argc, argv);
    if (command == "info") return cmd_info(argc, argv);
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
