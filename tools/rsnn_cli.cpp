// rsnn_cli — command-line front end for the whole flow.
//
//   rsnn_cli train   --model lenet5 --out lenet.rsnn [--epochs 4] [--samples 3000]
//   rsnn_cli convert --model lenet5 --weights lenet.rsnn --T 4 --out lenet.qsnn
//                    [--weight-bits 3] [--per-channel]
//   rsnn_cli run     --qsnn lenet.qsnn [--units 2] [--mhz 100] [--samples 200]
//                    [--engine cycle_accurate|analytic|behavioral|reference]
//                    [--stream <workers>]
//                    [--pipeline <stages> [--partition balance_latency|fit_resources]
//                     [--relower 1]]
//   rsnn_cli emit-rtl --qsnn lenet.qsnn --out rtl_out [--units 2]
//                    [--pipeline <stages> [--partition ...]]
//   rsnn_cli info    --qsnn lenet.qsnn
//
// Datasets: real MNIST from ./data/mnist when present, SynthDigits stand-in
// otherwise (models with 28x28/32x32 single-channel inputs only).
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "compiler/partition.hpp"
#include "data/idx_loader.hpp"
#include "engine/engine.hpp"
#include "engine/fault.hpp"
#include "engine/pipeline.hpp"
#include "engine/serving_pool.hpp"
#include "engine/stream.hpp"
#include "data/synth_digits.hpp"
#include "hw/accelerator.hpp"
#include "hw/power_model.hpp"
#include "hw/report.hpp"
#include "hw/resource_model.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"
#include "quant/qserialize.hpp"
#include "quant/quantize.hpp"
#include "rtl/generate.hpp"

namespace {

using namespace rsnn;

/// --key value argument map (flags without '--' are rejected).
std::map<std::string, std::string> parse_args(int argc, char** argv, int first) {
  std::map<std::string, std::string> args;
  for (int i = first; i + 1 < argc; i += 2) {
    RSNN_REQUIRE(std::strncmp(argv[i], "--", 2) == 0,
                 "expected --option, got '" << argv[i] << "'");
    args[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

std::string get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

/// Parse a serve-option integer in [min_value, ..]; false (with a friendly
/// one-liner in *error) on malformed or out-of-range input — std::stoul
/// would silently wrap "--queue-depth -1" to SIZE_MAX, unbounding the
/// "bounded" queue.
bool parse_count(const std::string& text, const char* what,
                 long long min_value, long long* out, std::string* error) {
  std::size_t consumed = 0;
  long long value = 0;
  try {
    value = std::stoll(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed == 0 || consumed != text.size() || value < min_value) {
    *error = std::string("invalid ") + what + " '" + text +
             "' (expected an integer >= " + std::to_string(min_value) + ")";
    return false;
  }
  *out = value;
  return true;
}

/// Parse a serve-option duration/ratio as a non-negative double; false
/// (with a friendly one-liner in *error) on malformed input.
bool parse_ms(const std::string& text, const char* what, double* out,
              std::string* error) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed == 0 || consumed != text.size() || value < 0.0) {
    *error = std::string("invalid ") + what + " '" + text +
             "' (expected a number >= 0)";
    return false;
  }
  *out = value;
  return true;
}

/// SIGINT flips this flag; the serve loop stops admitting, drains what was
/// already admitted, prints final stats and exits 0.
volatile std::sig_atomic_t g_interrupted = 0;
void handle_sigint(int) { g_interrupted = 1; }

/// Per-stage table shared by the pipeline and serve reports: op range,
/// predicted cycles, weight placement and the per-device resource estimate.
void print_stage_table(const ir::LayerProgram& program,
                       const std::vector<ir::ProgramSegment>& segments,
                       bool relower) {
  const std::vector<hw::ResourceEstimate> seg_resources =
      relower ? hw::relowered_resources(segments)
              : hw::partition_resources(program, segments);
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const ir::ProgramSegment& seg = segments[s];
    const char* placement =
        seg.param_bits == 0 || seg.onchip_param_bits == seg.param_bits
            ? "onchip"
            : (seg.onchip_param_bits == 0 ? "dram" : "mixed");
    std::printf(
        "  stage %zu: ops [%zu, %zu)  ~%lld cycles  %lld KiB params  "
        "%-6s  %s\n",
        s, seg.begin, seg.end, static_cast<long long>(seg.predicted_cycles),
        static_cast<long long>(seg.param_bits / 8 / 1024), placement,
        hw::to_string(seg_resources[s]).c_str());
  }
}

data::Dataset load_eval_data(const Shape& input_shape, std::size_t samples) {
  const int canvas = static_cast<int>(input_shape.dim(1));
  if (auto mnist = data::load_mnist("data/mnist", /*train=*/false, canvas))
    return mnist->take(samples);
  data::SynthDigitsConfig cfg;
  cfg.canvas = canvas;
  cfg.num_samples = samples;
  cfg.seed = 9999;  // held-out seed, distinct from training data
  cfg.noise_stddev = 0.08;
  cfg.max_shift = canvas >= 28 ? 3.0 : 1.5;
  cfg.min_scale = 0.7;
  cfg.max_shear = 0.25;
  cfg.intensity_min = 0.55;
  return data::make_synth_digits(cfg);
}

int cmd_train(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  const std::string model = get(args, "model", "lenet5");
  const std::string out = get(args, "out", model + ".rsnn");
  const int epochs = std::stoi(get(args, "epochs", "4"));
  const std::size_t samples = std::stoul(get(args, "samples", "3000"));

  nn::ZooOptions zoo;
  zoo.weight_qat_bits = std::stoi(get(args, "weight-bits", "3"));
  nn::Network net = nn::make_model(model, zoo);
  const auto out_shapes = net.layer_output_shapes();
  RSNN_REQUIRE(out_shapes.back().dim(1) == 10 &&
                   net.input_shape().dim(0) == 1,
               "the CLI trains on 10-class single-channel digit data; model '"
                   << model << "' does not match");
  const int canvas = static_cast<int>(net.input_shape().dim(1));

  data::Dataset train;
  if (auto mnist = data::load_mnist("data/mnist", /*train=*/true, canvas)) {
    train = std::move(*mnist);
  } else {
    data::SynthDigitsConfig cfg;
    cfg.canvas = canvas;
    cfg.num_samples = samples;
    cfg.noise_stddev = 0.08;
    cfg.max_shift = canvas >= 28 ? 3.0 : 1.5;
    cfg.min_scale = 0.7;
    cfg.max_shear = 0.25;
    cfg.intensity_min = 0.55;
    train = data::make_synth_digits(cfg);
  }
  std::printf("training %s on %zu samples, %d epochs\n", model.c_str(),
              train.size(), epochs);

  Rng rng(7);
  net.init_params(rng);
  nn::Adam adam(net.params(), nn::AdamConfig{0.005f});
  nn::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.epoch_callback = [](int e, float loss, float acc) {
    std::printf("  epoch %d: loss %.3f acc %.3f\n", e, loss, acc);
    std::fflush(stdout);
  };
  nn::Trainer trainer(net, adam, cfg);
  trainer.fit(train.images, train.labels, rng);
  nn::save_params(net, out);
  std::printf("saved weights to %s\n", out.c_str());
  return 0;
}

int cmd_convert(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  const std::string model = get(args, "model", "lenet5");
  const std::string weights = get(args, "weights", model + ".rsnn");
  const std::string out = get(args, "out", model + ".qsnn");

  quant::QuantizeConfig qcfg;
  qcfg.time_bits = std::stoi(get(args, "T", "4"));
  qcfg.weight_bits = std::stoi(get(args, "weight-bits", "3"));
  qcfg.per_channel = has_flag(argc, argv, "--per-channel");

  nn::ZooOptions zoo;
  zoo.weight_qat_bits = qcfg.weight_bits;
  nn::Network net = nn::make_model(model, zoo);
  Rng rng(7);
  net.init_params(rng);
  nn::load_params(net, weights);

  const auto qnet = quant::quantize(net, qcfg);
  quant::save_quantized(qnet, out);
  std::printf("%s", qnet.summary().c_str());
  std::printf("saved quantized model to %s (%lld KiB)\n", out.c_str(),
              static_cast<long long>(qnet.param_bits() / 8 / 1024));
  return 0;
}

int cmd_run(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  const auto qnet = quant::load_quantized(get(args, "qsnn", "lenet5.qsnn"));

  compiler::CompileOptions options;
  options.num_conv_units = std::stoi(get(args, "units", "2"));
  options.clock_mhz = std::stod(get(args, "mhz", "100"));
  // Host threads per batched fast-path run (0 = hardware concurrency). Flows
  // through the lowered program's config, so `--stream` workers and every
  // `--serve` replica inherit it: `--threads` trades cores-per-replica
  // against `--replicas` on one host.
  std::string threads_error;
  long long fast_threads = 1;
  if (!parse_count(get(args, "threads", "1"), "fast-path thread count",
                   /*min_value=*/0, &fast_threads, &threads_error)) {
    std::fprintf(stderr, "error: %s\n", threads_error.c_str());
    return 1;
  }
  options.fast_path_threads = static_cast<int>(fast_threads);
  const auto design = compiler::compile(qnet, options);
  std::printf("%s", compiler::describe(design, qnet).c_str());

  const engine::EngineKind kind =
      engine::parse_engine(get(args, "engine", "analytic"));
  auto eng = engine::make_engine(kind, design.program);
  std::printf("  engine     : %s\n", eng->name());

  hw::Accelerator accel(design.program);
  const std::size_t samples = std::stoul(get(args, "samples", "200"));
  const data::Dataset eval = load_eval_data(qnet.input_shape, samples);

  std::int64_t correct = 0;
  for (std::size_t i = 0; i < eval.size(); ++i) {
    const TensorI codes =
        quant::encode_activations(eval.images[i], qnet.time_bits);
    if (qnet.classify(codes) == eval.labels[i]) ++correct;
  }

  const auto run = eng->run_image(eval.images[0]);
  const auto resources = hw::estimate_resources(accel);
  const auto power =
      hw::estimate_power(design.config, resources, run, accel.uses_dram());
  std::printf("\naccuracy over %zu samples: %.2f%%\n", eval.size(),
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(eval.size()));
  std::printf("%s", hw::run_summary(design.config, run, resources, power).c_str());

  // Optional streaming-throughput report: feed the whole eval set through a
  // persistent worker pool with the selected engine.
  const int stream_workers = std::stoi(get(args, "stream", "-1"));
  if (stream_workers >= 0) {
    engine::StreamingExecutor stream(design.program, kind, stream_workers);
    stream.run_stream_images(eval.images);
    const engine::StreamStats& stats = stream.last_stats();
    std::printf(
        "streaming: %lld images on %d worker(s) in %.1f ms -> %.1f "
        "images/sec (simulator wall clock)\n",
        static_cast<long long>(stats.images), stats.workers, stats.wall_ms,
        stats.images_per_sec);
  }

  // Serving-pool report: N replicas (each monolithic or a K-stage pipeline)
  // behind one bounded admission queue. `--devices D` plans the stages x
  // replicas split automatically (compiler::plan_serving); otherwise
  // `--replicas R --pipeline K` pins the shape. Results stay bit-identical
  // to monolithic execution for every shape and policy.
  if (get(args, "serve", "0") != "0") {
    const std::string policy_arg = get(args, "policy", "fifo");
    const std::string policy_error = engine::policy_parse_error(policy_arg);
    if (!policy_error.empty()) {
      std::fprintf(stderr, "error: %s\n", policy_error.c_str());
      return 1;
    }

    engine::ServingPoolOptions pool_options;
    pool_options.policy = engine::parse_policy(policy_arg);
    std::string count_error;
    long long queue_depth = 0, max_batch = 0, count_value = 0;
    if (!parse_count(get(args, "queue-depth", "64"), "queue depth",
                     /*min_value=*/0, &queue_depth, &count_error) ||
        !parse_count(get(args, "max-batch", "8"), "max batch",
                     /*min_value=*/1, &max_batch, &count_error)) {
      std::fprintf(stderr, "error: %s\n", count_error.c_str());
      return 1;
    }
    pool_options.queue_capacity = static_cast<std::size_t>(queue_depth);
    pool_options.max_batch = static_cast<std::size_t>(max_batch);
    pool_options.max_wait_ms = std::stod(get(args, "max-wait-ms", "1"));
    const bool relower = get(args, "relower", "0") != "0";

    // Fault-tolerance knobs: retry budget, backoff, stall supervision,
    // per-request deadlines, a bulk lane, and a seeded fault plan.
    long long max_retries = 0, bulk_every = 0;
    double deadline_ms = 0.0, backoff_ms = 0.0, stall_timeout_ms = 0.0;
    if (!parse_count(get(args, "max-retries", "2"), "retry budget",
                     /*min_value=*/0, &max_retries, &count_error) ||
        !parse_count(get(args, "bulk-every", "0"), "bulk interval",
                     /*min_value=*/0, &bulk_every, &count_error) ||
        !parse_ms(get(args, "deadline-ms", "0"), "request deadline",
                  &deadline_ms, &count_error) ||
        !parse_ms(get(args, "backoff-ms", "0.1"), "retry backoff",
                  &backoff_ms, &count_error) ||
        !parse_ms(get(args, "stall-timeout-ms", "0"), "stall timeout",
                  &stall_timeout_ms, &count_error)) {
      std::fprintf(stderr, "error: %s\n", count_error.c_str());
      return 1;
    }
    pool_options.max_retries = static_cast<int>(max_retries);
    pool_options.backoff_base_ms = backoff_ms;
    pool_options.backoff_cap_ms =
        std::max(pool_options.backoff_cap_ms, backoff_ms);
    pool_options.stall_timeout_ms = stall_timeout_ms;
    pool_options.rebuild_quarantined = get(args, "rebuild", "0") != "0";
    const std::string fault_arg = get(args, "fault", "");
    if (!fault_arg.empty()) {
      std::string fault_error;
      if (!engine::parse_fault_plan(fault_arg, &pool_options.fault_plan,
                                    &fault_error)) {
        std::fprintf(stderr, "error: %s\n", fault_error.c_str());
        return 1;
      }
    }

    int stages = 1;
    if (args.count("devices") != 0) {
      // Enumerate the stages x replicas splits of the device budget with the
      // per-device cost model and deploy the predicted-throughput winner.
      if (!parse_count(get(args, "devices", "1"), "device budget",
                       /*min_value=*/1, &count_value, &count_error)) {
        std::fprintf(stderr, "error: %s\n", count_error.c_str());
        return 1;
      }
      const int budget = static_cast<int>(count_value);
      const auto candidates =
          compiler::enumerate_serving(design.program, budget);
      const auto& plan =
          candidates[compiler::best_serving_candidate(candidates)];
      std::printf("\nserving plan for %d device(s):\n", budget);
      for (const auto& candidate : candidates)
        std::printf(
            "  %d stage(s) x %d replica(s): bottleneck ~%lld cycles -> "
            "%.1f images/sec predicted%s\n",
            candidate.stages, candidate.replicas,
            static_cast<long long>(candidate.bottleneck_cycles),
            candidate.predicted_images_per_sec,
            candidate.stages == plan.stages ? "  <- chosen" : "");
      stages = plan.stages;
      pool_options.replicas = plan.replicas;
      if (plan.stages > 1) pool_options.segments = plan.segments;
    } else {
      if (!parse_count(get(args, "replicas", "1"), "replica count",
                       /*min_value=*/1, &count_value, &count_error)) {
        std::fprintf(stderr, "error: %s\n", count_error.c_str());
        return 1;
      }
      pool_options.replicas = static_cast<int>(count_value);
      const std::string partition_name_arg =
          get(args, "partition", "balance_latency");
      const std::string request_error = compiler::validate_pipeline_request(
          design.program, get(args, "pipeline", "1"), partition_name_arg,
          &stages);
      if (!request_error.empty()) {
        std::fprintf(stderr, "error: %s\n", request_error.c_str());
        return 1;
      }
      if (stages > 1) {
        const compiler::PartitionStrategy strategy =
            compiler::parse_partition(partition_name_arg);
        pool_options.segments =
            relower ? compiler::partition_program(design.program, strategy,
                                                  stages,
                                                  compiler::PartitionOptions{})
                    : compiler::partition_program(design.program, strategy,
                                                  stages);
      }
    }

    engine::ServingPool pool(design.program, kind, pool_options);
    std::printf(
        "\nserving: %d replica(s) of %s on %d device(s), %s admission "
        "(queue %zu)\n",
        pool.replicas(), pool.replica_shape().c_str(), pool.devices(),
        engine::policy_name(pool.options().policy),
        pool.options().queue_capacity);
    if (!pool_options.fault_plan.empty())
      std::printf("  fault plan : %s\n",
                  engine::describe_fault_plan(pool_options.fault_plan).c_str());
    if (!pool_options.segments.empty())
      print_stage_table(design.program, pool_options.segments,
                        pool_options.segments.front().is_relowered());

    std::vector<TensorI> request_codes;
    request_codes.reserve(eval.size());
    for (const TensorF& image : eval.images)
      request_codes.push_back(
          quant::encode_activations(image, qnet.time_bits));

    // Ctrl-C drains gracefully: stop admitting, complete what was admitted,
    // print final stats, exit 0.
    g_interrupted = 0;
    std::signal(SIGINT, handle_sigint);
    std::vector<std::future<engine::ServingResult>> tickets;
    tickets.reserve(request_codes.size());
    for (std::size_t i = 0; i < request_codes.size(); ++i) {
      if (g_interrupted) break;
      engine::RequestOptions request;
      request.deadline_ms = deadline_ms;
      if (bulk_every > 0 &&
          i % static_cast<std::size_t>(bulk_every) ==
              static_cast<std::size_t>(bulk_every) - 1)
        request.priority = engine::PriorityClass::kBulk;
      tickets.push_back(pool.submit(request_codes[i], request));
    }
    const bool interrupted = g_interrupted != 0;
    if (interrupted)
      std::printf("\ninterrupted: draining %zu admitted request(s)...\n",
                  tickets.size());
    pool.shutdown(/*drain=*/true);

    long long by_status[5] = {0, 0, 0, 0, 0};
    for (auto& ticket : tickets) {
      const engine::ServingResult result = ticket.get();
      ++by_status[static_cast<int>(result.status)];
    }
    std::signal(SIGINT, SIG_DFL);

    const engine::ServingStats stats = pool.stats();
    std::printf("  outcomes   :");
    for (const engine::RequestStatus status :
         {engine::RequestStatus::kOk, engine::RequestStatus::kRejected,
          engine::RequestStatus::kDeadlineExceeded,
          engine::RequestStatus::kReplicaFailed,
          engine::RequestStatus::kCancelled})
      if (by_status[static_cast<int>(status)] > 0)
        std::printf(" %lld %s", by_status[static_cast<int>(status)],
                    engine::status_name(status));
    std::printf(" (of %zu submitted)\n", tickets.size());
    std::printf(
        "  %lld completed in %.1f ms -> %.1f images/sec wall "
        "(%.1f modeled at %.0f MHz), p50 %.2f ms, p99 %.2f ms, "
        "%.1f images/dispatch\n",
        static_cast<long long>(stats.completed), stats.wall_ms,
        stats.wall_images_per_sec, stats.modeled_images_per_sec,
        design.config.clock_mhz, stats.p50_latency_ms, stats.p99_latency_ms,
        stats.mean_batch);
    if (stats.retries + stats.stalls + stats.rebuilds + stats.shed_bulk > 0)
      std::printf(
          "  resilience : %lld retries, %lld replica failure(s), "
          "%lld stall(s), %lld rebuild(s), %lld bulk shed\n",
          static_cast<long long>(stats.retries),
          static_cast<long long>(stats.replica_failures),
          static_cast<long long>(stats.stalls),
          static_cast<long long>(stats.rebuilds),
          static_cast<long long>(stats.shed_bulk));
    std::printf("  goodput    : latency %.1f%%, bulk %.1f%% (fleet %d/%d)\n",
                stats.per_class[0].goodput * 100.0,
                stats.per_class[1].goodput * 100.0, stats.active_replicas,
                pool.replicas());
    for (std::size_t r = 0; r < stats.per_replica.size(); ++r)
      std::printf("  replica %zu: %lld image(s), %s\n", r,
                  static_cast<long long>(stats.per_replica[r]),
                  engine::health_name(stats.replica_health[r]));
    return 0;
  }

  // Optional pipeline-parallel report: partition the program into stages
  // (one simulated accelerator per stage) and stream the eval set through
  // them. Logits are bit-identical to monolithic execution; with --relower 1
  // each stage is re-compiled against its own device (per-stage placement
  // and cycles improve wherever a stage's weights fit its BRAM budget).
  if (args.count("pipeline") != 0) {
    const std::string partition_name_arg =
        get(args, "partition", "balance_latency");
    int pipeline_stages = 0;
    const std::string request_error = compiler::validate_pipeline_request(
        design.program, get(args, "pipeline", "0"), partition_name_arg,
        &pipeline_stages);
    if (!request_error.empty()) {
      std::fprintf(stderr, "error: %s\n", request_error.c_str());
      return 1;
    }
    const compiler::PartitionStrategy strategy =
        compiler::parse_partition(partition_name_arg);
    const bool relower = get(args, "relower", "0") != "0";

    std::vector<ir::ProgramSegment> segments;
    if (relower) {
      segments = compiler::partition_program(design.program, strategy,
                                             pipeline_stages,
                                             compiler::PartitionOptions{});
    } else {
      segments = compiler::partition_program(design.program, strategy,
                                             pipeline_stages);
    }

    std::printf("\npipeline (%s, %zu stage%s, %s placement):\n",
                compiler::partition_name(strategy), segments.size(),
                segments.size() == 1 ? "" : "s",
                relower ? "re-lowered per-device" : "inherited");
    if (segments.size() != static_cast<std::size_t>(pipeline_stages)) {
      if (relower)
        std::printf(
            "  note: fit_resources packs under the per-device budget and "
            "chose %zu stage(s) within the %d available device(s); an exact "
            "stage count applies only to balance_latency\n",
            segments.size(), pipeline_stages);
      else
        std::printf(
            "  note: fit_resources packs under the per-device weight-memory "
            "budget and chose %zu stage(s); --pipeline %d sets the stage "
            "count only for balance_latency\n",
            segments.size(), pipeline_stages);
    }
    print_stage_table(design.program, segments, relower);

    engine::PipelineExecutor pipe(design.program, segments, kind);
    pipe.run_pipeline_images(eval.images);
    const engine::PipelineStats& pstats = pipe.last_stats();
    std::printf(
        "  %lld images through %d stage(s) in %.1f ms -> %.1f images/sec "
        "(simulator wall clock)\n",
        static_cast<long long>(pstats.images), pstats.stages, pstats.wall_ms,
        pstats.images_per_sec);
  }
  return 0;
}

int cmd_emit_rtl(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  const auto qnet = quant::load_quantized(get(args, "qsnn", "lenet5.qsnn"));
  compiler::CompileOptions options;
  options.num_conv_units = std::stoi(get(args, "units", "2"));
  const auto design = compiler::compile(qnet, options);
  const std::string dir = get(args, "out", "rtl_out");

  // Partitioned emission: one bundle per pipeline stage, each re-lowered
  // against its own device and wrapped with inter-device stream interfaces.
  if (args.count("pipeline") != 0) {
    const std::string partition_name_arg =
        get(args, "partition", "balance_latency");
    int pipeline_stages = 0;
    const std::string request_error = compiler::validate_pipeline_request(
        design.program, get(args, "pipeline", "0"), partition_name_arg,
        &pipeline_stages);
    if (!request_error.empty()) {
      std::fprintf(stderr, "error: %s\n", request_error.c_str());
      return 1;
    }
    const auto segments = compiler::partition_program(
        design.program, compiler::parse_partition(partition_name_arg),
        pipeline_stages, compiler::PartitionOptions{});
    const auto bundles =
        rtl::generate_pipeline_bundles(design.program, segments);
    const int written = rtl::write_pipeline_bundles(bundles, dir);
    std::printf("wrote %d RTL files across %zu stage bundles to %s/\n",
                written, bundles.size(), dir.c_str());
    return 0;
  }

  const auto bundle =
      rtl::generate_design_with_weights(design.config, qnet, "rsnn_accel");
  const int written = rtl::write_bundle(bundle, dir);
  std::printf("wrote %d RTL files to %s/\n", written, dir.c_str());
  return 0;
}

int cmd_info(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  const std::string path = get(args, "qsnn", "lenet5.qsnn");
  RSNN_REQUIRE(quant::is_quantized_file(path), path << " is not a .qsnn file");
  const auto qnet = quant::load_quantized(path);
  std::printf("%s", qnet.summary().c_str());
  std::printf("parameters: %lld (%lld KiB at %d-bit weights)\n",
              static_cast<long long>(qnet.num_params()),
              static_cast<long long>(qnet.param_bits() / 8 / 1024),
              qnet.weight_bits);
  return 0;
}

void usage() {
  std::printf(
      "rsnn_cli <command> [--option value ...]\n"
      "  train     --model lenet5 --out w.rsnn [--epochs 4] [--samples 3000]\n"
      "  convert   --model lenet5 --weights w.rsnn --T 4 --out m.qsnn\n"
      "            [--weight-bits 3] [--per-channel true]\n"
      "  run       --qsnn m.qsnn [--units 2] [--mhz 100] [--samples 200]\n"
      "            [--engine cycle_accurate|analytic|behavioral|reference]\n"
      "            [--stream <workers>]  (0 = one per hardware thread)\n"
      "            [--threads N]  (cores per batched fast-path run; 1 =\n"
      "             sequential, 0 = all — trades against --replicas)\n"
      "            [--pipeline <stages>] [--partition balance_latency|fit_resources]\n"
      "            [--relower 1]  (re-compile each stage against its own device)\n"
      "            [--serve 1 [--replicas R] [--pipeline K] [--policy fifo|batch|reject]\n"
      "             [--queue-depth 64] [--max-batch 8] [--max-wait-ms 1]\n"
      "             [--devices D]  (plan the stages x replicas split for D devices)\n"
      "             [--deadline-ms 0] [--bulk-every N] [--max-retries 2]\n"
      "             [--backoff-ms 0.1] [--stall-timeout-ms 0] [--rebuild 1]\n"
      "             [--fault seed:7,kill:r2@5,err:p0.05]]  (seeded fault plan;\n"
      "              Ctrl-C drains admitted work and exits cleanly)\n"
      "  emit-rtl  --qsnn m.qsnn --out rtl_out [--units 2]\n"
      "            [--pipeline <stages>]  (per-stage bundles with stream ports)\n"
      "  info      --qsnn m.qsnn\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "train") return cmd_train(argc, argv);
    if (command == "convert") return cmd_convert(argc, argv);
    if (command == "run") return cmd_run(argc, argv);
    if (command == "emit-rtl") return cmd_emit_rtl(argc, argv);
    if (command == "info") return cmd_info(argc, argv);
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
