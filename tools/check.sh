#!/usr/bin/env bash
# Tier-1 verification in both build configurations:
#   1. Release            — the production configuration (hot-path asserts
#                           compiled out of the benches/tools; the test
#                           targets always link the checked library twin).
#   2. Release + RSNN_CHECKED=ON — RSNN_DCHECK active in *every* target, so
#                           the full suite runs bounds-checked end to end.
#
# The library targets build with -Wall -Wextra; this script treats any
# compiler warning as a failure so the targets stay warnings-clean.
#
# Usage: tools/check.sh [jobs]   (defaults to all hardware threads)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local name="$1" build_dir="$2"
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$build_dir" -S . "$@"
  echo "==== [$name] build ===="
  local log
  log="$(mktemp)"
  cmake --build "$build_dir" -j "$JOBS" 2>&1 | tee "$log"
  if grep -q "warning:" "$log"; then
    echo "==== [$name] FAILED: compiler warnings (targets must stay" \
         "warnings-clean) ===="
    rm -f "$log"
    return 1
  fi
  rm -f "$log"
  echo "==== [$name] ctest ===="
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

run_config "Release" build-check-release -DCMAKE_BUILD_TYPE=Release
run_config "Release+RSNN_CHECKED" build-check-checked \
    -DCMAKE_BUILD_TYPE=Release -DRSNN_CHECKED=ON

# 3. Sanitizer pass (ASan + UBSan): builds only the threaded executor tests
#    and runs them instrumented, validating the pipeline executor's bounded
#    queues / worker threads and the streaming pool for memory and UB errors
#    without paying for a full sanitized suite run.
echo "==== [Release+RSNN_SANITIZE] configure ===="
cmake -B build-check-sanitize -S . \
    -DCMAKE_BUILD_TYPE=Release -DRSNN_SANITIZE=ON
echo "==== [Release+RSNN_SANITIZE] build (threaded executor tests) ===="
cmake --build build-check-sanitize -j "$JOBS" \
    --target test_pipeline test_equivalence_packed
echo "==== [Release+RSNN_SANITIZE] ctest ===="
ctest --test-dir build-check-sanitize --output-on-failure -j "$JOBS" \
    -R 'test_pipeline|test_equivalence_packed'

echo "==== all configurations passed ===="
