#!/usr/bin/env bash
# Tier-1 verification in both build configurations:
#   1. Release            — the production configuration (hot-path asserts
#                           compiled out of the benches/tools; the test
#                           targets always link the checked library twin).
#   2. Release + RSNN_CHECKED=ON — RSNN_DCHECK active in *every* target, so
#                           the full suite runs bounds-checked end to end.
#
# The library targets build with -Wall -Wextra; this script treats any
# compiler warning as a failure so the targets stay warnings-clean.
#
# Usage: tools/check.sh [jobs]   (defaults to all hardware threads)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local name="$1" build_dir="$2"
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$build_dir" -S . "$@"
  echo "==== [$name] build ===="
  local log
  log="$(mktemp)"
  cmake --build "$build_dir" -j "$JOBS" 2>&1 | tee "$log"
  if grep -q "warning:" "$log"; then
    echo "==== [$name] FAILED: compiler warnings (targets must stay" \
         "warnings-clean) ===="
    rm -f "$log"
    return 1
  fi
  rm -f "$log"
  echo "==== [$name] ctest ===="
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

run_config "Release" build-check-release -DCMAKE_BUILD_TYPE=Release
run_config "Release+RSNN_CHECKED" build-check-checked \
    -DCMAKE_BUILD_TYPE=Release -DRSNN_CHECKED=ON

# 3. RTL-emission smoke: generate the per-segment bundles for a 2-stage
#    LeNet pipeline and assert every stage directory holds a non-empty
#    stage top, manifest and filelist (catches emitter regressions that the
#    unit tests' in-memory checks could miss at the filesystem boundary).
echo "==== [Release] RTL emission smoke (2-stage LeNet bundles) ===="
RTL_SMOKE_DIR="$(mktemp -d)"
cmake --build build-check-release -j "$JOBS" --target generate_rtl
./build-check-release/generate_rtl "$RTL_SMOKE_DIR" 2 2 > /dev/null
for stage in stage0 stage1; do
  for f in rsnn_accel_"$stage".sv "$stage"_manifest.txt rsnn_accel_"$stage".f \
           stream_endpoint.sv; do
    if [ ! -s "$RTL_SMOKE_DIR/$stage/$f" ]; then
      echo "==== RTL smoke FAILED: $stage/$f missing or empty ===="
      rm -rf "$RTL_SMOKE_DIR"
      exit 1
    fi
  done
done
rm -rf "$RTL_SMOKE_DIR"
echo "==== RTL emission smoke passed ===="

# 4. Sanitizer pass (ASan + UBSan): builds only the threaded executor tests
#    plus the re-lowering suite and runs them instrumented, validating the
#    pipeline executor's bounded queues / worker threads, the streaming pool
#    and the per-device re-lowering path for memory and UB errors without
#    paying for a full sanitized suite run.
echo "==== [Release+RSNN_SANITIZE] configure ===="
cmake -B build-check-sanitize -S . \
    -DCMAKE_BUILD_TYPE=Release -DRSNN_SANITIZE=ON
echo "==== [Release+RSNN_SANITIZE] build (threaded executor tests) ===="
cmake --build build-check-sanitize -j "$JOBS" \
    --target test_pipeline test_equivalence_packed test_relower
echo "==== [Release+RSNN_SANITIZE] ctest ===="
ctest --test-dir build-check-sanitize --output-on-failure -j "$JOBS" \
    -R 'test_pipeline|test_equivalence_packed|test_relower'

echo "==== all configurations passed ===="
