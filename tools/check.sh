#!/usr/bin/env bash
# Tier-1 verification in both build configurations:
#   1. Release            — the production configuration (hot-path asserts
#                           compiled out of the benches/tools; the test
#                           targets always link the checked library twin).
#   2. Release + RSNN_CHECKED=ON — RSNN_DCHECK active in *every* target, so
#                           the full suite runs bounds-checked end to end.
# plus a forced-scalar rerun of the SIMD-sensitive suites
# (RSNN_FORCE_SCALAR=1 pins the vector kernels' scalar fallback to the same
# bit-identical results), an RTL-emission smoke, a sanitizer (ASan+UBSan)
# pass over the threaded executor tests, and a ThreadSanitizer pass over the
# same suites (the serving pool's supervision / retry machinery is
# lock-heavy; TSan is the tier that catches ordering bugs ASan cannot).
#
# The library targets build with -Wall -Wextra; this script treats any
# compiler warning as a failure so the targets stay warnings-clean.
#
# Exit-code discipline: every pass checks its own status explicitly (the
# script also sets -e/-o pipefail as a backstop, and reads PIPESTATUS for
# the tee'd build so a compile failure can never be masked by the pipe).
# Temp files/dirs are cleaned up by trap on any exit path.
#
# Usage: tools/check.sh [--fast] [jobs]   (jobs defaults to all hardware
# threads). --fast runs only the Release build + ctest — the smoke tier CI
# uses for quick iteration; the full run remains the pre-merge bar.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
JOBS=""
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) JOBS="$arg" ;;
  esac
done
JOBS="${JOBS:-$(nproc)}"

CLEANUP_PATHS=()
cleanup() {
  local path
  for path in "${CLEANUP_PATHS[@]+"${CLEANUP_PATHS[@]}"}"; do
    rm -rf "$path"
  done
}
trap cleanup EXIT

run_config() {
  local name="$1" build_dir="$2"
  shift 2
  echo "==== [$name] configure ===="
  if ! cmake -B "$build_dir" -S . "$@"; then
    echo "==== [$name] FAILED: configure ===="
    return 1
  fi
  echo "==== [$name] build ===="
  local log build_status
  log="$(mktemp)"
  CLEANUP_PATHS+=("$log")
  set +e
  cmake --build "$build_dir" -j "$JOBS" 2>&1 | tee "$log"
  build_status="${PIPESTATUS[0]}"
  set -e
  if [ "$build_status" -ne 0 ]; then
    echo "==== [$name] FAILED: build exited with status $build_status ===="
    return "$build_status"
  fi
  if grep -q "warning:" "$log"; then
    echo "==== [$name] FAILED: compiler warnings (targets must stay" \
         "warnings-clean) ===="
    return 1
  fi
  echo "==== [$name] ctest ===="
  if ! ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"; then
    echo "==== [$name] FAILED: ctest ===="
    return 1
  fi
}

run_config "Release" build-check-release -DCMAKE_BUILD_TYPE=Release

# 1b. Forced-scalar dispatch: rerun the SIMD-sensitive suites on the same
#     Release binaries with RSNN_FORCE_SCALAR=1, so the scalar fallback of
#     the vector kernels stays bit-identical on every machine, not just
#     ones without AVX2/NEON.
echo "==== [Release] forced-scalar dispatch (RSNN_FORCE_SCALAR=1) ===="
if ! RSNN_FORCE_SCALAR=1 ctest --test-dir build-check-release \
    --output-on-failure -j "$JOBS" \
    -R 'test_fastpath|test_equivalence_packed'; then
  echo "==== [Release] FAILED: forced-scalar ctest ===="
  exit 1
fi

if [ "$FAST" -eq 1 ]; then
  echo "==== fast mode: Release build + ctest + forced-scalar passed" \
       "(skipping checked, RTL-smoke and sanitizer tiers) ===="
  exit 0
fi

run_config "Release+RSNN_CHECKED" build-check-checked \
    -DCMAKE_BUILD_TYPE=Release -DRSNN_CHECKED=ON

# 3. RTL-emission smoke: generate the per-segment bundles for a 2-stage
#    LeNet pipeline and assert every stage directory holds a non-empty
#    stage top, manifest and filelist (catches emitter regressions that the
#    unit tests' in-memory checks could miss at the filesystem boundary).
echo "==== [Release] RTL emission smoke (2-stage LeNet bundles) ===="
RTL_SMOKE_DIR="$(mktemp -d)"
CLEANUP_PATHS+=("$RTL_SMOKE_DIR")
cmake --build build-check-release -j "$JOBS" --target generate_rtl
./build-check-release/generate_rtl "$RTL_SMOKE_DIR" 2 2 > /dev/null
for stage in stage0 stage1; do
  for f in rsnn_accel_"$stage".sv "$stage"_manifest.txt rsnn_accel_"$stage".f \
           stream_endpoint.sv; do
    if [ ! -s "$RTL_SMOKE_DIR/$stage/$f" ]; then
      echo "==== RTL smoke FAILED: $stage/$f missing or empty ===="
      exit 1
    fi
  done
done
echo "==== RTL emission smoke passed ===="

# 4. Sanitizer pass (ASan + UBSan): builds only the threaded executor tests
#    plus the re-lowering suite and runs them instrumented, validating the
#    pipeline executor's bounded queues / worker threads, the streaming
#    pool, the serving pool's admission queue, the serving daemon's socket /
#    registry / connection threads, the fault-injection chaos suite and the
#    per-device re-lowering path for memory and UB errors without paying for
#    a full sanitized suite run.
echo "==== [Release+RSNN_SANITIZE] configure ===="
cmake -B build-check-sanitize -S . \
    -DCMAKE_BUILD_TYPE=Release -DRSNN_SANITIZE=ON
echo "==== [Release+RSNN_SANITIZE] build (threaded executor tests) ===="
cmake --build build-check-sanitize -j "$JOBS" \
    --target test_pipeline test_equivalence_packed test_relower test_serving \
      test_serve test_faults test_fastpath
echo "==== [Release+RSNN_SANITIZE] ctest ===="
ctest --test-dir build-check-sanitize --output-on-failure -j "$JOBS" \
    -R 'test_pipeline|test_equivalence_packed|test_relower|test_serving|test_serve$|test_faults|test_fastpath'

# 5. ThreadSanitizer pass: same threaded suites under RSNN_SANITIZE_THREAD
#    (its own build directory — TSan and ASan cannot share one). This is
#    the tier that validates the serving pool's replica supervision, retry
#    backoff and shutdown paths for data races and lock-order inversions.
echo "==== [Release+RSNN_SANITIZE_THREAD] configure ===="
cmake -B build-check-tsan -S . \
    -DCMAKE_BUILD_TYPE=Release -DRSNN_SANITIZE_THREAD=ON
echo "==== [Release+RSNN_SANITIZE_THREAD] build (threaded executor tests) ===="
cmake --build build-check-tsan -j "$JOBS" \
    --target test_pipeline test_equivalence_packed test_serving test_serve \
      test_faults test_fastpath
echo "==== [Release+RSNN_SANITIZE_THREAD] ctest ===="
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
  ctest --test-dir build-check-tsan --output-on-failure -j "$JOBS" \
    -R 'test_pipeline|test_equivalence_packed|test_serving|test_serve$|test_faults|test_fastpath'

echo "==== all configurations passed ===="
