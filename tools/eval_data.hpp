// Shared evaluation-set loader for the CLI front ends (rsnn_cli run,
// rsnn_client infer): real MNIST from ./data/mnist when present, the
// SynthDigits stand-in otherwise — with the same held-out generator
// parameters in both binaries, so accuracies printed by `rsnn_cli run` and
// by `rsnn_client infer` against a daemon are computed over the identical
// sample stream (the CI smoke job diffs them verbatim).
#pragma once

#include <cstddef>

#include "data/idx_loader.hpp"
#include "data/synth_digits.hpp"
#include "tensor/shape.hpp"

namespace rsnn::tools {

inline data::Dataset load_eval_data(const Shape& input_shape,
                                    std::size_t samples) {
  const int canvas = static_cast<int>(input_shape.dim(1));
  if (auto mnist = data::load_mnist("data/mnist", /*train=*/false, canvas))
    return mnist->take(samples);
  data::SynthDigitsConfig cfg;
  cfg.canvas = canvas;
  cfg.num_samples = samples;
  cfg.seed = 9999;  // held-out seed, distinct from training data
  cfg.noise_stddev = 0.08;
  cfg.max_shift = canvas >= 28 ? 3.0 : 1.5;
  cfg.min_scale = 0.7;
  cfg.max_shear = 0.25;
  cfg.intensity_min = 0.55;
  return data::make_synth_digits(cfg);
}

}  // namespace rsnn::tools
