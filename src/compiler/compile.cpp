#include "compiler/compile.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "hw/accumulator_sizing.hpp"

namespace rsnn::compiler {
namespace {

std::int64_t round_up(std::int64_t value, int multiple) {
  if (multiple <= 1) return value;
  return ceil_div(value, multiple) * multiple;
}

}  // namespace

CompiledDesign compile(const quant::QuantizedNetwork& qnet,
                       const CompileOptions& options) {
  RSNN_REQUIRE(!qnet.layers.empty(), "cannot compile an empty network");
  RSNN_REQUIRE(options.num_conv_units >= 1);

  CompiledDesign design;
  hw::AcceleratorConfig& cfg = design.config;
  cfg.name = "compiled";
  cfg.clock_mhz = options.clock_mhz;
  cfg.num_conv_units = options.num_conv_units;
  cfg.linear.lanes = options.linear_lanes;
  cfg.memory = options.memory;
  cfg.fast_path.threads = options.fast_path_threads;

  // Scan the network for unit geometry requirements.
  const ir::GeometryRequirements req = ir::scan_geometry(qnet);
  if (req.has_conv) {
    cfg.conv.kernel_rows = static_cast<int>(req.max_conv_kernel);
    cfg.conv.array_columns = static_cast<int>(
        round_up(req.max_conv_out_width, options.column_round_to));
  }
  if (req.has_pool) {
    cfg.pool.kernel_rows = static_cast<int>(req.max_pool_kernel);
    cfg.pool.array_columns = static_cast<int>(
        round_up(req.max_pool_out_width, options.column_round_to));
  }

  if (options.size_accumulators) {
    const hw::AccumulatorPlan plan = hw::plan_accumulators(qnet);
    cfg.conv.accumulator_bits = plan.conv_bits;
    cfg.pool.accumulator_bits = plan.pool_bits;
    cfg.linear.accumulator_bits = plan.linear_bits;
  }

  // Lower the network onto the derived config: validates the mapping and
  // precomputes placement, buffer sizing and the per-op schedule.
  design.program = ir::lower(qnet, cfg);
  design.predicted_total_cycles = design.program.predicted_total_cycles();
  design.predicted_latency_us = design.program.predicted_latency_us();

  // Drift guard (invariant 4): an independent summation of the per-op
  // predicted cycles must reproduce the program total the accelerator will
  // report as predict_total_cycles(). The strong form of the invariant —
  // these totals equal the cycle-accurate stepped count — is pinned by
  // tests/test_compiler.cpp (PredictedCyclesPinnedToCycleAccurateLeNet).
  std::int64_t per_op_sum = 0;
  for (const ir::LayerOp& op : design.program.ops())
    per_op_sum += op.latency.total_cycles;
  RSNN_ENSURE(per_op_sum == design.predicted_total_cycles,
              "compiler schedule disagrees with the program's analytic "
              "latency total");
  return design;
}

CompiledDesign compile_for_latency(const quant::QuantizedNetwork& qnet,
                                   CompileOptions base_options,
                                   double target_latency_us,
                                   const std::vector<int>& candidates) {
  RSNN_REQUIRE(target_latency_us > 0.0 && !candidates.empty());
  CompiledDesign best;
  bool have_best = false;
  for (const int units : candidates) {
    CompileOptions options = base_options;
    options.num_conv_units = units;
    CompiledDesign design = compile(qnet, options);
    if (design.predicted_latency_us <= target_latency_us)
      return design;  // candidates are tried in ascending cost order
    if (!have_best ||
        design.predicted_latency_us < best.predicted_latency_us) {
      best = std::move(design);
      have_best = true;
    }
  }
  return best;
}

std::string describe(const CompiledDesign& design,
                     const quant::QuantizedNetwork& qnet) {
  std::ostringstream os;
  const auto& cfg = design.config;
  os << "Compiled design @ " << cfg.clock_mhz << " MHz\n"
     << "  conv units : " << cfg.num_conv_units << " x (X=" << cfg.conv.array_columns
     << ", Y=" << cfg.conv.kernel_rows << ")\n"
     << "  pool unit  : (X=" << cfg.pool.array_columns
     << ", Y=" << cfg.pool.kernel_rows << ")\n"
     << "  linear unit: " << cfg.linear.lanes << " lanes\n"
     << "  T=" << qnet.time_bits << ", weights " << qnet.weight_bits << " bit\n"
     << "  schedule:\n";
  for (const ir::LayerOp& op : design.program.ops()) {
    os << "    [" << op.layer_index << "] " << op.name() << " on " << op.unit;
    if (op.latency.groups > 0)
      os << " groups=" << op.latency.groups
         << " share=" << op.latency.channels_per_unit;
    os << (op.placement == hw::WeightPlacement::kDram ? " [DRAM]" : "")
       << " ~" << op.latency.total_cycles << " cycles\n";
  }
  os << "  predicted latency: " << design.predicted_latency_us << " us ("
     << design.predicted_total_cycles << " cycles)\n";
  return os.str();
}

}  // namespace rsnn::compiler
