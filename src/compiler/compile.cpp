#include "compiler/compile.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "hw/accumulator_sizing.hpp"

namespace rsnn::compiler {
namespace {

using quant::QConv2d;
using quant::QFlatten;
using quant::QLinear;
using quant::QPool2d;

std::int64_t round_up(std::int64_t value, int multiple) {
  if (multiple <= 1) return value;
  return ceil_div(value, multiple) * multiple;
}

}  // namespace

CompiledDesign compile(const quant::QuantizedNetwork& qnet,
                       const CompileOptions& options) {
  RSNN_REQUIRE(!qnet.layers.empty(), "cannot compile an empty network");
  RSNN_REQUIRE(options.num_conv_units >= 1);

  CompiledDesign design;
  hw::AcceleratorConfig& cfg = design.config;
  cfg.name = "compiled";
  cfg.clock_mhz = options.clock_mhz;
  cfg.num_conv_units = options.num_conv_units;
  cfg.linear.lanes = options.linear_lanes;
  cfg.memory = options.memory;

  // Scan the network for unit geometry requirements.
  Shape shape = qnet.input_shape;
  const auto shapes = qnet.layer_output_shapes();
  std::int64_t max_conv_kernel = 0, max_conv_ow = 0;
  std::int64_t max_pool_kernel = 0, max_pool_ow = 0;
  bool has_conv = false, has_pool = false;
  for (std::size_t li = 0; li < qnet.layers.size(); ++li) {
    const auto& layer = qnet.layers[li];
    if (const auto* conv = std::get_if<QConv2d>(&layer)) {
      has_conv = true;
      max_conv_kernel = std::max(max_conv_kernel, conv->kernel);
      max_conv_ow = std::max(max_conv_ow, shapes[li].dim(2));
    } else if (std::get_if<QPool2d>(&layer) != nullptr) {
      has_pool = true;
      const auto* pool = std::get_if<QPool2d>(&layer);
      max_pool_kernel = std::max(max_pool_kernel, pool->kernel);
      max_pool_ow = std::max(max_pool_ow, shapes[li].dim(2));
    }
    shape = shapes[li];
  }

  if (has_conv) {
    cfg.conv.kernel_rows = static_cast<int>(max_conv_kernel);
    cfg.conv.array_columns =
        static_cast<int>(round_up(max_conv_ow, options.column_round_to));
  }
  if (has_pool) {
    cfg.pool.kernel_rows = static_cast<int>(max_pool_kernel);
    cfg.pool.array_columns =
        static_cast<int>(round_up(max_pool_ow, options.column_round_to));
  }

  if (options.size_accumulators) {
    const hw::AccumulatorPlan plan = hw::plan_accumulators(qnet);
    cfg.conv.accumulator_bits = plan.conv_bits;
    cfg.pool.accumulator_bits = plan.pool_bits;
    cfg.linear.accumulator_bits = plan.linear_bits;
  }

  // Bind an accelerator to validate and extract placement + buffer sizing,
  // then derive the per-layer schedule from the analytic model.
  hw::Accelerator accel(cfg, qnet);
  design.config = accel.config();

  Shape in_shape = qnet.input_shape;
  for (std::size_t li = 0; li < qnet.layers.size(); ++li) {
    const auto& layer = qnet.layers[li];
    ScheduleEntry entry;
    entry.layer_index = static_cast<int>(li);
    entry.placement = accel.placement()[li];

    if (const auto* conv = std::get_if<QConv2d>(&layer)) {
      hw::ConvDims dims{conv->in_channels, conv->out_channels,
                        in_shape.dim(1),  in_shape.dim(2),
                        conv->kernel,     conv->stride,
                        conv->padding};
      const auto lat = hw::conv_latency(dims, cfg, qnet.time_bits,
                                        entry.placement, qnet.weight_bits);
      entry.kind = "conv";
      entry.unit = "conv_units[k=" + std::to_string(conv->kernel) + "]";
      entry.groups = lat.groups;
      entry.channels_per_unit = lat.channels_per_unit;
      entry.predicted_cycles = lat.total_cycles;
    } else if (const auto* pool = std::get_if<QPool2d>(&layer)) {
      const auto lat =
          hw::pool_latency(in_shape.dim(0), in_shape.dim(1), in_shape.dim(2),
                           pool->kernel, cfg, qnet.time_bits);
      entry.kind = "pool";
      entry.unit = "pool_unit";
      entry.groups = lat.groups;
      entry.channels_per_unit = lat.channels_per_unit;
      entry.predicted_cycles = lat.total_cycles;
    } else if (const auto* fc = std::get_if<QLinear>(&layer)) {
      const auto lat =
          hw::linear_latency(fc->in_features, fc->out_features, cfg,
                             qnet.time_bits, entry.placement, qnet.weight_bits);
      entry.kind = "linear";
      entry.unit = "linear_unit";
      entry.groups = lat.groups;
      entry.channels_per_unit = lat.channels_per_unit;
      entry.predicted_cycles = lat.total_cycles;
    } else {
      entry.kind = "flatten";
      entry.unit = "buffer transfer";
      entry.predicted_cycles = hw::flatten_transfer_cycles(
          in_shape.numel(), qnet.time_bits, cfg.timing);
    }
    design.predicted_total_cycles += entry.predicted_cycles;
    design.schedule.push_back(entry);
    in_shape = shapes[li];
  }
  design.predicted_latency_us =
      static_cast<double>(design.predicted_total_cycles) * cfg.cycle_ns() /
      1000.0;
  return design;
}

CompiledDesign compile_for_latency(const quant::QuantizedNetwork& qnet,
                                   CompileOptions base_options,
                                   double target_latency_us,
                                   const std::vector<int>& candidates) {
  RSNN_REQUIRE(target_latency_us > 0.0 && !candidates.empty());
  CompiledDesign best;
  bool have_best = false;
  for (const int units : candidates) {
    CompileOptions options = base_options;
    options.num_conv_units = units;
    CompiledDesign design = compile(qnet, options);
    if (design.predicted_latency_us <= target_latency_us)
      return design;  // candidates are tried in ascending cost order
    if (!have_best ||
        design.predicted_latency_us < best.predicted_latency_us) {
      best = std::move(design);
      have_best = true;
    }
  }
  return best;
}

std::string describe(const CompiledDesign& design,
                     const quant::QuantizedNetwork& qnet) {
  std::ostringstream os;
  const auto& cfg = design.config;
  os << "Compiled design @ " << cfg.clock_mhz << " MHz\n"
     << "  conv units : " << cfg.num_conv_units << " x (X=" << cfg.conv.array_columns
     << ", Y=" << cfg.conv.kernel_rows << ")\n"
     << "  pool unit  : (X=" << cfg.pool.array_columns
     << ", Y=" << cfg.pool.kernel_rows << ")\n"
     << "  linear unit: " << cfg.linear.lanes << " lanes\n"
     << "  T=" << qnet.time_bits << ", weights " << qnet.weight_bits << " bit\n"
     << "  schedule:\n";
  for (const auto& entry : design.schedule) {
    os << "    [" << entry.layer_index << "] " << entry.kind << " on "
       << entry.unit;
    if (entry.groups > 0)
      os << " groups=" << entry.groups
         << " share=" << entry.channels_per_unit;
    os << (entry.placement == hw::WeightPlacement::kDram ? " [DRAM]" : "")
       << " ~" << entry.predicted_cycles << " cycles\n";
  }
  os << "  predicted latency: " << design.predicted_latency_us << " us ("
     << design.predicted_total_cycles << " cycles)\n";
  return os.str();
}

}  // namespace rsnn::compiler
