#include "compiler/partition.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/assert.hpp"
#include "hw/pingpong.hpp"
#include "hw/resource_model.hpp"

namespace rsnn::compiler {
namespace {

/// Exact bottleneck partition (classic linear-partition DP) over an
/// arbitrary contiguous-range cost function: among all ways to cut [0, n)
/// into k non-empty segments, minimize the maximum segment cost. Returns the
/// interior cut points.
template <typename SegmentCost>
std::vector<std::size_t> bottleneck_cuts(std::size_t n, std::size_t k,
                                         SegmentCost&& segment_cost) {
  // best[s][i] = minimal achievable max-segment cost covering ops [0, i)
  // with s segments. cut[s][i] records the last segment's start.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::vector<std::int64_t>> best(
      k + 1, std::vector<std::int64_t>(n + 1, kInf));
  std::vector<std::vector<std::size_t>> cut(
      k + 1, std::vector<std::size_t>(n + 1, 0));
  best[0][0] = 0;
  for (std::size_t s = 1; s <= k; ++s) {
    for (std::size_t i = s; i + (k - s) <= n; ++i) {
      for (std::size_t j = s - 1; j < i; ++j) {
        if (best[s - 1][j] == kInf) continue;
        const std::int64_t cost =
            std::max(best[s - 1][j], segment_cost(j, i));
        if (cost < best[s][i]) {
          best[s][i] = cost;
          cut[s][i] = j;
        }
      }
    }
  }
  RSNN_ENSURE(best[k][n] != kInf, "partition DP failed to cover the program");

  std::vector<std::size_t> cuts;  // interior boundaries, reconstructed back
  std::size_t i = n;
  for (std::size_t s = k; s > 1; --s) {
    i = cut[s][i];
    cuts.push_back(i);
  }
  std::reverse(cuts.begin(), cuts.end());
  return cuts;
}

/// Cycles to stream the cut tensor at interior boundary `b` across an
/// inter-device link; the program's entry and exit are host interfaces, not
/// device-to-device links, so they cost nothing here.
std::int64_t cut_transfer_cycles(const ir::LayerProgram& program,
                                 std::size_t boundary,
                                 const PartitionOptions& options) {
  if (boundary == 0 || boundary == program.size()) return 0;
  const std::int64_t bits = hw::activation_bits(
      program.op(boundary).in_shape, program.time_bits());
  return hw::inter_device_transfer_cycles(bits, options.link_bits_per_cycle,
                                          options.link_setup_cycles);
}

}  // namespace

const char* partition_name(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kBalanceLatency:
      return "balance_latency";
    case PartitionStrategy::kFitResources:
      return "fit_resources";
  }
  return "unknown";
}

std::string partition_parse_error(const std::string& name) {
  if (name == "balance_latency" || name == "balance" ||
      name == "fit_resources" || name == "fit")
    return {};
  return "unknown partition strategy '" + name +
         "' (expected balance_latency or fit_resources)";
}

PartitionStrategy parse_partition(const std::string& name) {
  if (name == "balance_latency" || name == "balance")
    return PartitionStrategy::kBalanceLatency;
  if (name == "fit_resources" || name == "fit")
    return PartitionStrategy::kFitResources;
  RSNN_REQUIRE(false, partition_parse_error(name));
  return PartitionStrategy::kBalanceLatency;  // unreachable
}

std::string pipeline_request_error(const ir::LayerProgram& program,
                                   int stages) {
  if (stages >= 1 && static_cast<std::size_t>(stages) <= program.size())
    return {};
  std::ostringstream os;
  os << "cannot pipeline into " << stages << " stage(s): the program has "
     << program.size() << " ops (choose a stage count between 1 and "
     << program.size() << ")";
  return os.str();
}

std::string validate_pipeline_request(const ir::LayerProgram& program,
                                      const std::string& stages_text,
                                      const std::string& partition_name,
                                      int* stages) {
  RSNN_REQUIRE(stages != nullptr);
  // Parse by hand instead of std::stoi so a typo ("--pipeline two") yields
  // the same friendly one-liner as an out-of-range count, not an uncaught
  // std::invalid_argument.
  std::size_t consumed = 0;
  int value = 0;
  try {
    value = std::stoi(stages_text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed == 0 || consumed != stages_text.size())
    return "invalid pipeline stage count '" + stages_text +
           "' (expected an integer)";
  const std::string partition_error = partition_parse_error(partition_name);
  if (!partition_error.empty()) return partition_error;
  // balance_latency cuts into exactly `value` segments, so the count must
  // not exceed the op count; for fit_resources it is the available device
  // pool, where any positive size is a valid request (the packer reports
  // the smallest feasible count if the pool turns out too small).
  if (parse_partition(partition_name) == PartitionStrategy::kBalanceLatency) {
    const std::string stage_error = pipeline_request_error(program, value);
    if (!stage_error.empty()) return stage_error;
  } else if (value < 1) {
    std::ostringstream os;
    os << "fit_resources needs a positive device count (got " << value
       << ")";
    return os.str();
  }
  *stages = value;
  return {};
}

std::vector<ir::ProgramSegment> partition_balance_latency(
    const ir::LayerProgram& program, int num_segments) {
  const std::size_t n = program.size();
  RSNN_REQUIRE(program.has_hw_annotations(),
               "balance_latency needs the program's latency annotations");
  RSNN_REQUIRE(num_segments >= 1 &&
                   static_cast<std::size_t>(num_segments) <= n,
               "cannot cut " << n << " ops into " << num_segments
                             << " non-empty segments");
  const std::size_t k = static_cast<std::size_t>(num_segments);

  // Prefix cycles: cost of ops [a, b) is prefix[b] - prefix[a].
  std::vector<std::int64_t> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    prefix[i + 1] = prefix[i] + program.op(i).latency.total_cycles;

  const std::vector<std::size_t> cuts = bottleneck_cuts(
      n, k,
      [&](std::size_t j, std::size_t i) { return prefix[i] - prefix[j]; });
  return ir::make_segments(program, cuts);
}

std::vector<ir::ProgramSegment> partition_balance_latency(
    const ir::LayerProgram& program, int num_segments,
    const PartitionOptions& options) {
  const std::size_t n = program.size();
  RSNN_REQUIRE(program.has_hw_annotations() && program.whole_network(),
               "the per-device cost model partitions a whole-network "
               "hardware-lowered program");
  RSNN_REQUIRE(num_segments >= 1 &&
                   static_cast<std::size_t>(num_segments) <= n,
               "cannot cut " << n << " ops into " << num_segments
                             << " non-empty segments");
  const std::size_t k = static_cast<std::size_t>(num_segments);
  const hw::AcceleratorConfig& config = program.config();
  const int T = program.time_bits();
  const int wbits = program.weight_bits();

  // Per-op latency under either placement: what the op costs on a device
  // that holds its stage's weights on chip vs one that streams them. The
  // range cost below picks per segment, exactly as re-lowering will.
  std::vector<std::int64_t> onchip(n + 1, 0), dram(n + 1, 0), params(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ir::LayerOp op = program.op(i);
    ir::annotate_op(op, config, T, wbits, hw::WeightPlacement::kOnChip);
    onchip[i + 1] = onchip[i] + op.latency.total_cycles;
    if (op.param_bits > 0)
      ir::annotate_op(op, config, T, wbits, hw::WeightPlacement::kDram);
    dram[i + 1] = dram[i] + op.latency.total_cycles;
    params[i + 1] = params[i] + op.param_bits;
  }

  const auto segment_cost = [&](std::size_t j, std::size_t i) {
    const std::int64_t p = params[i] - params[j];
    const std::int64_t compute = p <= config.memory.weight_bram_bits
                                     ? onchip[i] - onchip[j]
                                     : dram[i] - dram[j];
    // The stage serializes its ingress and egress cut transfers.
    return compute + cut_transfer_cycles(program, j, options) +
           cut_transfer_cycles(program, i, options);
  };

  const std::vector<std::size_t> cuts = bottleneck_cuts(n, k, segment_cost);
  return ir::make_segments(program, cuts,
                           options.relower ? ir::SegmentLowering::kRelower
                                           : ir::SegmentLowering::kInherit);
}

std::vector<ir::ProgramSegment> partition_fit_resources(
    const ir::LayerProgram& program, std::int64_t device_weight_bram_bits) {
  RSNN_REQUIRE(device_weight_bram_bits > 0,
               "per-device weight-memory budget must be positive");
  RSNN_REQUIRE(program.size() > 0, "cannot partition an empty program");

  std::vector<std::size_t> cuts;
  std::int64_t used = 0;
  for (std::size_t li = 0; li < program.size(); ++li) {
    const std::int64_t bits = program.op(li).param_bits;
    // Close the current (non-empty) segment before an op that would
    // overflow the device budget. An op exceeding the budget on its own
    // keeps a singleton segment; that device streams its layer's weights
    // from DRAM exactly as the monolithic placement policy would.
    if (li > 0 && used + bits > device_weight_bram_bits) {
      cuts.push_back(li);
      used = 0;
    }
    used += bits;
  }
  return ir::make_segments(program, cuts);
}

std::vector<ir::ProgramSegment> partition_fit_resources(
    const ir::LayerProgram& program, const PartitionOptions& options) {
  const std::size_t n = program.size();
  RSNN_REQUIRE(program.has_hw_annotations() && program.whole_network(),
               "the per-device cost model partitions a whole-network "
               "hardware-lowered program");

  std::int64_t budget_bram = options.device_bram_bits;
  if (budget_bram <= 0) {
    // Default device: the configured on-chip weight pool plus room for the
    // monolithic activation buffers (re-lowered stages never need more).
    const hw::BufferPlan& plan = program.buffer_plan();
    budget_bram = program.config().memory.weight_bram_bits +
                  2 * plan.buffer2d_bits_each + 2 * plan.buffer1d_bits_each;
  }

  // Full per-device feasibility: re-lower the candidate range and evaluate
  // the design it would actually synthesize — on-chip parameters, both
  // activation ping-pong pairs, and the DRAM subsystem when it streams.
  // Multi-op segments must hold their weights on chip (the point of the
  // packing); a single op too large for the on-chip pool is allowed to
  // stream, matching the monolithic VGG-11 policy.
  const auto feasible = [&](std::size_t j, std::size_t i,
                            std::string* why = nullptr) {
    const ir::LayerProgram local = ir::relower_range(program, j, i);
    const hw::ResourceEstimate est = hw::estimate_resources(local);
    if (est.bram_bits > budget_bram) {
      if (why != nullptr) {
        std::ostringstream os;
        os << "needs " << est.bram_bits << " BRAM bits vs budget "
           << budget_bram;
        *why = os.str();
      }
      return false;
    }
    if (options.device_luts > 0 && est.luts > options.device_luts) {
      if (why != nullptr) {
        std::ostringstream os;
        os << "needs " << est.luts << " LUTs vs cap " << options.device_luts
           << (local.uses_dram() ? " (including the DRAM subsystem)" : "");
        *why = os.str();
      }
      return false;
    }
    if (i - j > 1 && local.uses_dram()) return false;
    return true;
  };

  std::vector<std::size_t> cuts;
  std::size_t j = 0;
  while (j < n) {
    std::string why;
    if (!feasible(j, j + 1, &why))
      RSNN_REQUIRE(false, "fit_resources is infeasible at any device count: "
                              << "op " << j << " (" << program.op(j).name()
                              << ") exceeds the per-device budget even on "
                                 "its own device ("
                              << why << "); raise the device budget");
    std::size_t i = j + 1;
    while (i < n && feasible(j, i + 1)) ++i;
    if (i < n) cuts.push_back(i);
    j = i;
  }

  const int count = static_cast<int>(cuts.size()) + 1;
  RSNN_REQUIRE(options.max_devices <= 0 || count <= options.max_devices,
               "fit_resources cannot pack " << n << " ops into "
                   << options.max_devices
                   << " device(s) under the per-device budget; the smallest "
                      "feasible device count is "
                   << count);
  return ir::make_segments(program, cuts,
                           options.relower ? ir::SegmentLowering::kRelower
                                           : ir::SegmentLowering::kInherit);
}

std::vector<ir::ProgramSegment> partition_program(
    const ir::LayerProgram& program, PartitionStrategy strategy,
    int num_segments) {
  switch (strategy) {
    case PartitionStrategy::kBalanceLatency:
      return partition_balance_latency(program, num_segments);
    case PartitionStrategy::kFitResources:
      return partition_fit_resources(
          program, program.config().memory.weight_bram_bits);
  }
  RSNN_REQUIRE(false, "unknown partition strategy");
  return {};  // unreachable
}

std::vector<ir::ProgramSegment> partition_program(
    const ir::LayerProgram& program, PartitionStrategy strategy,
    int num_segments, const PartitionOptions& options) {
  switch (strategy) {
    case PartitionStrategy::kBalanceLatency:
      return partition_balance_latency(program, num_segments, options);
    case PartitionStrategy::kFitResources: {
      PartitionOptions fit = options;
      if (num_segments > 0) fit.max_devices = num_segments;
      return partition_fit_resources(program, fit);
    }
  }
  RSNN_REQUIRE(false, "unknown partition strategy");
  return {};  // unreachable
}

double expected_attempts_per_image(std::int64_t completed,
                                   std::int64_t retries,
                                   std::int64_t stalls) {
  RSNN_REQUIRE(completed >= 0 && retries >= 0 && stalls >= 0,
               "serving-overhead counters must be non-negative, got "
                   << completed << " completed, " << retries << " retries, "
                   << stalls << " stalls");
  if (completed == 0) return 1.0;
  return static_cast<double>(completed + retries + stalls) /
         static_cast<double>(completed);
}

std::vector<ServingCandidate> enumerate_serving(
    const ir::LayerProgram& program, int device_budget,
    const PartitionOptions& options) {
  RSNN_REQUIRE(program.has_hw_annotations() && program.whole_network(),
               "serving planning needs a whole-network hardware-lowered "
               "program");
  RSNN_REQUIRE(device_budget >= 1,
               "serving planning needs a positive device budget, got "
                   << device_budget);
  RSNN_REQUIRE(options.expected_attempts_per_image >= 1.0,
               "expected_attempts_per_image must be >= 1 (every served "
               "image costs at least one dispatch), got "
                   << options.expected_attempts_per_image);
  const std::size_t n = program.size();
  const double cycle_s = program.config().cycle_ns() * 1e-9;

  std::vector<ServingCandidate> candidates;
  const int max_stages =
      std::min(device_budget, static_cast<int>(n));
  for (int stages = 1; stages <= max_stages; ++stages) {
    ServingCandidate candidate;
    candidate.stages = stages;
    candidate.replicas = device_budget / stages;
    candidate.segments = partition_balance_latency(program, stages, options);
    for (const ir::ProgramSegment& segment : candidate.segments) {
      // One stage's per-image occupancy: its (re-lowered) compute plus the
      // serialized ingress/egress cut streams — the same cost the
      // partitioner's DP minimized.
      const std::int64_t stage =
          segment.predicted_cycles +
          cut_transfer_cycles(program, segment.begin, options) +
          cut_transfer_cycles(program, segment.end, options);
      candidate.bottleneck_cycles =
          std::max(candidate.bottleneck_cycles, stage);
    }
    // Retry cost: a fleet measured at expected_attempts_per_image dispatch
    // attempts per served image delivers proportionally fewer distinct
    // images — retries and stalls occupy replicas with recomputation.
    candidate.predicted_images_per_sec =
        static_cast<double>(candidate.replicas) /
        (static_cast<double>(candidate.bottleneck_cycles) * cycle_s *
         options.expected_attempts_per_image);
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

std::size_t best_serving_candidate(
    const std::vector<ServingCandidate>& candidates) {
  RSNN_REQUIRE(!candidates.empty(), "no serving candidates to choose from");
  std::size_t best = 0;
  for (std::size_t c = 1; c < candidates.size(); ++c) {
    const ServingCandidate& challenger = candidates[c];
    const ServingCandidate& incumbent = candidates[best];
    if (challenger.predicted_images_per_sec >
            incumbent.predicted_images_per_sec ||
        (challenger.predicted_images_per_sec ==
             incumbent.predicted_images_per_sec &&
         challenger.devices() < incumbent.devices()))
      best = c;
  }
  return best;
}

ServingCandidate plan_serving(const ir::LayerProgram& program,
                              int device_budget,
                              const PartitionOptions& options) {
  std::vector<ServingCandidate> candidates =
      enumerate_serving(program, device_budget, options);
  return std::move(candidates[best_serving_candidate(candidates)]);
}

}  // namespace rsnn::compiler
