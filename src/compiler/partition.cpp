#include "compiler/partition.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace rsnn::compiler {

const char* partition_name(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kBalanceLatency:
      return "balance_latency";
    case PartitionStrategy::kFitResources:
      return "fit_resources";
  }
  return "unknown";
}

PartitionStrategy parse_partition(const std::string& name) {
  if (name == "balance_latency" || name == "balance")
    return PartitionStrategy::kBalanceLatency;
  if (name == "fit_resources" || name == "fit")
    return PartitionStrategy::kFitResources;
  RSNN_REQUIRE(false, "unknown partition strategy '"
                          << name
                          << "' (expected balance_latency or fit_resources)");
  return PartitionStrategy::kBalanceLatency;  // unreachable
}

std::vector<ir::ProgramSegment> partition_balance_latency(
    const ir::LayerProgram& program, int num_segments) {
  const std::size_t n = program.size();
  RSNN_REQUIRE(program.has_hw_annotations(),
               "balance_latency needs the program's latency annotations");
  RSNN_REQUIRE(num_segments >= 1 &&
                   static_cast<std::size_t>(num_segments) <= n,
               "cannot cut " << n << " ops into " << num_segments
                             << " non-empty segments");
  const std::size_t k = static_cast<std::size_t>(num_segments);

  // Prefix cycles: cost of ops [a, b) is prefix[b] - prefix[a].
  std::vector<std::int64_t> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    prefix[i + 1] = prefix[i] + program.op(i).latency.total_cycles;

  // Exact bottleneck partition (classic linear-partition DP):
  // best[s][i] = minimal achievable max-segment cost covering ops [0, i)
  // with s segments. cut[s][i] records the last segment's start.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::vector<std::int64_t>> best(
      k + 1, std::vector<std::int64_t>(n + 1, kInf));
  std::vector<std::vector<std::size_t>> cut(
      k + 1, std::vector<std::size_t>(n + 1, 0));
  best[0][0] = 0;
  for (std::size_t s = 1; s <= k; ++s) {
    for (std::size_t i = s; i + (k - s) <= n; ++i) {
      for (std::size_t j = s - 1; j < i; ++j) {
        if (best[s - 1][j] == kInf) continue;
        const std::int64_t cost =
            std::max(best[s - 1][j], prefix[i] - prefix[j]);
        if (cost < best[s][i]) {
          best[s][i] = cost;
          cut[s][i] = j;
        }
      }
    }
  }
  RSNN_ENSURE(best[k][n] != kInf, "partition DP failed to cover the program");

  std::vector<std::size_t> cuts;  // interior boundaries, reconstructed back
  std::size_t i = n;
  for (std::size_t s = k; s > 1; --s) {
    i = cut[s][i];
    cuts.push_back(i);
  }
  std::reverse(cuts.begin(), cuts.end());
  return ir::make_segments(program, cuts);
}

std::vector<ir::ProgramSegment> partition_fit_resources(
    const ir::LayerProgram& program, std::int64_t device_weight_bram_bits) {
  RSNN_REQUIRE(device_weight_bram_bits > 0,
               "per-device weight-memory budget must be positive");
  RSNN_REQUIRE(program.size() > 0, "cannot partition an empty program");

  std::vector<std::size_t> cuts;
  std::int64_t used = 0;
  for (std::size_t li = 0; li < program.size(); ++li) {
    const std::int64_t bits = program.op(li).param_bits;
    // Close the current (non-empty) segment before an op that would
    // overflow the device budget. An op exceeding the budget on its own
    // keeps a singleton segment; that device streams its layer's weights
    // from DRAM exactly as the monolithic placement policy would.
    if (li > 0 && used + bits > device_weight_bram_bits) {
      cuts.push_back(li);
      used = 0;
    }
    used += bits;
  }
  return ir::make_segments(program, cuts);
}

std::vector<ir::ProgramSegment> partition_program(
    const ir::LayerProgram& program, PartitionStrategy strategy,
    int num_segments) {
  switch (strategy) {
    case PartitionStrategy::kBalanceLatency:
      return partition_balance_latency(program, num_segments);
    case PartitionStrategy::kFitResources:
      return partition_fit_resources(
          program, program.config().memory.weight_bram_bits);
  }
  RSNN_REQUIRE(false, "unknown partition strategy");
  return {};  // unreachable
}

}  // namespace rsnn::compiler
