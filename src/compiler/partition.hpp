// Program partitioning: choose the cut points that split a lowered
// LayerProgram into ir::ProgramSegments for pipeline-parallel execution
// across multiple accelerator instances (engine::PipelineExecutor).
//
// Two strategies:
//   * balance_latency — equalize predicted per-segment cycles. The pipeline's
//     steady-state throughput is bounded by its slowest stage, so the
//     partitioner minimizes the bottleneck: it picks, among all ways to cut
//     the program into N contiguous segments, one whose maximum segment
//     latency (sum of the ops' LayerLatency annotations) is smallest.
//     Exact dynamic program — op counts are tiny (LeNet 8, VGG-11 17).
//   * fit_resources — pack ops greedily into the fewest segments whose
//     parameter storage fits a per-device weight-memory budget (the BRAM
//     pool hw::MemoryConfig::weight_bram_bits models), so each pipeline
//     device can hold its stage's weights on chip. An op that alone exceeds
//     the budget gets its own segment (that device streams from DRAM, the
//     monolithic VGG-11 policy).
//
// Segments inherit the monolithic program's placement/latency annotations
// (see ir::ProgramSegment), so any partition executes bit-identically to the
// whole program.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/layer_program.hpp"

namespace rsnn::compiler {

enum class PartitionStrategy { kBalanceLatency, kFitResources };

/// Canonical strategy name: "balance_latency" / "fit_resources".
const char* partition_name(PartitionStrategy strategy);

/// Parse a strategy name (plus the shorthands "balance" and "fit"); throws
/// ContractViolation on unknown names.
PartitionStrategy parse_partition(const std::string& name);

/// Cut `program` into exactly `num_segments` contiguous segments minimizing
/// the maximum per-segment predicted cycles (the pipeline bottleneck).
/// Requires 1 <= num_segments <= program.size().
std::vector<ir::ProgramSegment> partition_balance_latency(
    const ir::LayerProgram& program, int num_segments);

/// Pack ops into the fewest contiguous segments whose total parameter
/// storage stays within `device_weight_bram_bits` per device; a single op
/// larger than the budget becomes its own (DRAM-streaming) segment.
std::vector<ir::ProgramSegment> partition_fit_resources(
    const ir::LayerProgram& program, std::int64_t device_weight_bram_bits);

/// Strategy dispatch for the CLI: balance_latency cuts into `num_segments`;
/// fit_resources packs under the program's own memory budget
/// (program.config().memory.weight_bram_bits) and ignores `num_segments`.
std::vector<ir::ProgramSegment> partition_program(
    const ir::LayerProgram& program, PartitionStrategy strategy,
    int num_segments);

}  // namespace rsnn::compiler
