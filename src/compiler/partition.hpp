// Program partitioning: choose the cut points that split a lowered
// LayerProgram into ir::ProgramSegments for pipeline-parallel execution
// across multiple accelerator instances (engine::PipelineExecutor).
//
// Two strategies:
//   * balance_latency — equalize predicted per-segment cycles. The pipeline's
//     steady-state throughput is bounded by its slowest stage, so the
//     partitioner minimizes the bottleneck: it picks, among all ways to cut
//     the program into N contiguous segments, one whose maximum segment
//     latency is smallest. Exact dynamic program — op counts are tiny
//     (LeNet 8, VGG-11 17).
//   * fit_resources — pack ops greedily into the fewest segments that fit a
//     per-device resource budget, so each pipeline device can hold its
//     stage's weights on chip. An op that alone exceeds the on-chip weight
//     budget gets its own segment (that device streams from DRAM, the
//     monolithic VGG-11 policy).
//
// Each strategy exists in two forms:
//   * the legacy two/three-argument entry points partition by the monolithic
//     program's annotations (inherited-mode segments, bit-identical cycles —
//     what the PR 3 equivalence tests pin down);
//   * the PartitionOptions overloads use the *per-device cost model*:
//     segment latencies are re-lowered against the device config (so a stage
//     whose weights fit its own BRAM is costed with on-chip latency),
//     balance_latency adds a cut-tensor bits/sec communication term for the
//     inter-device stream links, and fit_resources evaluates the full
//     per-device resource estimate — activation ping-pong buffers and the
//     DRAM subsystem folded in, not just parameter bits. These produce
//     re-lowered segments (ir::SegmentLowering::kRelower).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/layer_program.hpp"

namespace rsnn::compiler {

enum class PartitionStrategy { kBalanceLatency, kFitResources };

/// Canonical strategy name: "balance_latency" / "fit_resources".
const char* partition_name(PartitionStrategy strategy);

/// Parse a strategy name (plus the shorthands "balance" and "fit"); throws
/// ContractViolation on unknown names.
PartitionStrategy parse_partition(const std::string& name);

/// Friendly one-line diagnostic for a strategy name the CLI cannot parse;
/// empty when `name` is valid. Lets front ends reject bad input without
/// surfacing a contract-violation stack.
std::string partition_parse_error(const std::string& name);

/// Friendly one-line diagnostic for an invalid pipeline stage request
/// (`stages` outside [1, program.size()]); empty when the request is valid.
std::string pipeline_request_error(const ir::LayerProgram& program,
                                   int stages);

/// One-stop validation of a CLI pipeline request: parses `stages_text` as an
/// integer and checks it against the program, then checks the partition
/// strategy name. On success returns empty and stores the stage count in
/// `*stages`; otherwise returns the first friendly one-line diagnostic
/// (never throws — front ends print it and exit). The single copy of the
/// validation every front end (rsnn_cli run / emit-rtl, examples) shares.
std::string validate_pipeline_request(const ir::LayerProgram& program,
                                      const std::string& stages_text,
                                      const std::string& partition_name,
                                      int* stages);

/// Per-device cost model for the communication-aware, re-lowering
/// partitioner entry points.
struct PartitionOptions {
  /// Emit re-lowered segments (each carrying its own per-device program).
  /// When false the cost model still re-lowers internally for costing, but
  /// the returned segments inherit the monolithic annotations.
  bool relower = true;
  /// Inter-device stream link width: bits of cut-tensor activations a stage
  /// can send/receive per cycle (the communication term's denominator).
  std::int64_t link_bits_per_cycle = 64;
  /// Fixed per-image handshake cost of one inter-device transfer.
  std::int64_t link_setup_cycles = 32;
  /// fit_resources: per-device BRAM budget in bits (on-chip parameters plus
  /// both activation ping-pong pairs). 0 derives it from the program config:
  /// weight_bram_bits + the monolithic activation-buffer BRAM.
  std::int64_t device_bram_bits = 0;
  /// fit_resources: per-device LUT cap (0 = unconstrained). Streaming stages
  /// pay the DRAM subsystem's LUTs against this cap.
  std::int64_t device_luts = 0;
  /// fit_resources: maximum devices available (0 = unlimited). When the
  /// smallest feasible packing needs more, the partitioner throws an error
  /// naming that count.
  int max_devices = 0;
  /// Expected dispatch attempts per served image (>= 1), folded into
  /// serving-throughput predictions: inference is pure, so a retried
  /// request recomputes the full image on another replica, and a stalled
  /// dispatch occupies its replica for roughly one extra image of work.
  /// Derive it from a measured window with expected_attempts_per_image()
  /// over the pool's ServingStats counters; 1.0 (the default) predicts a
  /// fault-free fleet.
  double expected_attempts_per_image = 1.0;
};

/// The measured serving-overhead factor for
/// PartitionOptions::expected_attempts_per_image: each of `completed`
/// served images consumed one successful dispatch, each of `retries`
/// re-queued a full image of replica work, and each of `stalls` held a
/// replica for roughly one extra image — so the fleet delivered `completed`
/// images for (completed + retries + stalls) images of occupancy. Returns
/// 1.0 for an empty window; throws ContractViolation on negative counters.
double expected_attempts_per_image(std::int64_t completed,
                                   std::int64_t retries, std::int64_t stalls);

/// Cut `program` into exactly `num_segments` contiguous segments minimizing
/// the maximum per-segment predicted cycles (the pipeline bottleneck) of the
/// monolithic annotations. Requires 1 <= num_segments <= program.size().
/// Produces inherited-mode segments (bit-identical to monolithic execution).
std::vector<ir::ProgramSegment> partition_balance_latency(
    const ir::LayerProgram& program, int num_segments);

/// Communication-aware bottleneck partition: segment cost is its *re-lowered*
/// per-device latency (on-chip placement wherever the stage's parameters fit
/// the device BRAM budget) plus the cycles to stream the stage's entry and
/// exit cut tensors across the inter-device links. Minimizes the maximum
/// stage cost over all ways to cut into `num_segments` contiguous segments.
std::vector<ir::ProgramSegment> partition_balance_latency(
    const ir::LayerProgram& program, int num_segments,
    const PartitionOptions& options);

/// Pack ops into the fewest contiguous segments whose total parameter
/// storage stays within `device_weight_bram_bits` per device; a single op
/// larger than the budget becomes its own (DRAM-streaming) segment.
/// Produces inherited-mode segments.
std::vector<ir::ProgramSegment> partition_fit_resources(
    const ir::LayerProgram& program, std::int64_t device_weight_bram_bits);

/// Resource-model packing: pack ops into the fewest contiguous segments
/// whose *full per-device estimate* — on-chip parameters, both activation
/// ping-pong pairs, and the DRAM subsystem when the stage streams — fits the
/// per-device budget (options.device_bram_bits / device_luts). Multi-op
/// segments must hold their weights on chip; an op that cannot go on chip
/// alone becomes a singleton streaming segment. Throws with the smallest
/// feasible device count when options.max_devices is too small, and with the
/// offending op when no device count is feasible.
std::vector<ir::ProgramSegment> partition_fit_resources(
    const ir::LayerProgram& program, const PartitionOptions& options);

/// Strategy dispatch (legacy, inherited-mode): balance_latency cuts into
/// `num_segments`; fit_resources packs under the program's own memory budget
/// (program.config().memory.weight_bram_bits) and ignores `num_segments`.
std::vector<ir::ProgramSegment> partition_program(
    const ir::LayerProgram& program, PartitionStrategy strategy,
    int num_segments);

/// Strategy dispatch with the per-device cost model: balance_latency cuts
/// into `num_segments`; fit_resources treats `num_segments` (when > 0) as
/// the available device count (options.max_devices).
std::vector<ir::ProgramSegment> partition_program(
    const ir::LayerProgram& program, PartitionStrategy strategy,
    int num_segments, const PartitionOptions& options);

/// One stages x replicas deployment of a serving pool: `replicas`
/// independent copies of a `stages`-deep pipeline (stages * replicas devices
/// total), each pipeline cut by the communication-aware balance_latency
/// partitioner.
struct ServingCandidate {
  int stages = 1;
  int replicas = 1;
  /// Slowest stage of one pipeline, per image: re-lowered per-device compute
  /// plus the ingress/egress cut-tensor stream transfers.
  std::int64_t bottleneck_cycles = 0;
  /// Steady-state fleet throughput at the program's clock:
  /// replicas / (bottleneck_cycles * cycle time).
  double predicted_images_per_sec = 0.0;
  std::vector<ir::ProgramSegment> segments;

  int devices() const { return stages * replicas; }
};

/// Enumerate every stages x replicas split of a device budget: for each
/// pipeline depth K in [1, min(budget, program.size())], the fleet fields
/// floor(budget / K) replicas of the K-stage communication-aware
/// balance_latency partition, costed with the per-device (re-lowered) model.
/// Ordered by ascending stage count.
std::vector<ServingCandidate> enumerate_serving(
    const ir::LayerProgram& program, int device_budget,
    const PartitionOptions& options = {});

/// Index of the predicted-throughput winner among `candidates` (as ordered
/// by enumerate_serving): highest predicted images/sec, ties broken toward
/// fewer devices, then fewer stages (prefer replication over deeper
/// pipelines — replicas do not pay inter-device cut transfers).
std::size_t best_serving_candidate(
    const std::vector<ServingCandidate>& candidates);

/// The winning configuration: enumerate_serving + best_serving_candidate.
ServingCandidate plan_serving(const ir::LayerProgram& program,
                              int device_budget,
                              const PartitionOptions& options = {});

}  // namespace rsnn::compiler
