// Compiler: map a quantized network onto an accelerator design instance.
//
// This plays the role of the E3NE framework [14] in the paper's flow: given
// the converted SNN it derives the hardware configuration —
//   * convolution-unit geometry: Y = largest kernel, X >= widest output row
//     ("choosing the number of columns X to be greater or equal than the
//     maximum output channel size can avoid tiling of the feature maps"),
//   * pooling-unit geometry likewise,
//   * weight placement (BRAM if everything fits, DRAM streaming otherwise),
//   * ping-pong buffer sizing (smallest capacity that fits every layer),
// and lowers the network into an ir::LayerProgram: the per-layer schedule
// (typed ops with group phasing, placement and predicted latency) that every
// downstream consumer — simulation, latency, power, RTL — reads.
#pragma once

#include <string>
#include <vector>

#include "hw/arch.hpp"
#include "ir/layer_program.hpp"
#include "quant/qnetwork.hpp"

namespace rsnn::compiler {

struct CompileOptions {
  int num_conv_units = 2;
  double clock_mhz = 100.0;
  int linear_lanes = 16;
  /// Round the conv array width up to this multiple (0 = exact fit).
  int column_round_to = 2;
  /// When true, synthesize the adder arrays at the exact worst-case
  /// accumulator width computed by hw::plan_accumulators instead of the
  /// default conservative widths (saves LUTs/FFs; see
  /// hw/accumulator_sizing.hpp).
  bool size_accumulators = false;
  hw::MemoryConfig memory;
  /// Host threads for the simulator's batched fast path (see
  /// hw::FastPathOptions::threads): 1 = sequential, 0 = hardware
  /// concurrency. A simulation-speed knob only — it never changes the
  /// derived design or what the simulator counts.
  int fast_path_threads = 1;
};

/// A derived design instance plus the program lowered onto it. The program
/// borrows the QuantizedNetwork it was compiled from (see ir/layer_program),
/// so the network must outlive the design.
struct CompiledDesign {
  /// Convenience copy of the derived design instance for reports and
  /// resource/power models. The authoritative copy is embedded in the
  /// program (`program.config()`): engines and accelerators read that one,
  /// so treat this field as read-only.
  hw::AcceleratorConfig config;
  ir::LayerProgram program;   ///< the per-layer schedule (typed ops)
  std::int64_t predicted_total_cycles = 0;
  double predicted_latency_us = 0.0;
};

/// Derive a design for `qnet`. Throws if the network is not mappable
/// (kernel larger than any supported unit, non-power-of-two pooling, ...).
CompiledDesign compile(const quant::QuantizedNetwork& qnet,
                       const CompileOptions& options);

/// Multi-line report of the mapping decisions.
std::string describe(const CompiledDesign& design,
                     const quant::QuantizedNetwork& qnet);

/// Design-space exploration: compile with the smallest convolution-unit
/// count among `candidates` whose predicted latency meets
/// `target_latency_us`; falls back to the fastest candidate when the target
/// is unreachable (the pooling/linear units bound the floor — paper
/// Sec. IV-C). This automates the paper's manual Table II trade-off.
CompiledDesign compile_for_latency(const quant::QuantizedNetwork& qnet,
                                   CompileOptions base_options,
                                   double target_latency_us,
                                   const std::vector<int>& candidates = {
                                       1, 2, 4, 8, 16});

}  // namespace rsnn::compiler
