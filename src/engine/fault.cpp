#include "engine/fault.hpp"

#include <chrono>
#include <sstream>
#include <thread>

#include "common/assert.hpp"

namespace rsnn::engine {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError: return "err";
    case FaultKind::kStall: return "stall";
    case FaultKind::kKill: return "kill";
  }
  RSNN_REQUIRE(false, "unreachable fault kind");
  return "";
}

namespace {

/// Parse a full-token non-negative number; false on malformed input.
bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::size_t consumed = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  if (consumed != text.size()) return false;
  *out = value;
  return true;
}

bool parse_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  if (consumed != text.size() || value < 0.0) return false;
  *out = value;
  return true;
}

/// Parse the "r<R>@<N>" target shared by kill/stall/err specs; the trailing
/// portion after '@' is returned in *rest for kind-specific parsing.
bool parse_target(const std::string& text, int* replica, std::string* rest) {
  if (text.size() < 4 || text[0] != 'r') return false;
  const std::size_t at = text.find('@');
  if (at == std::string::npos || at < 2) return false;
  std::uint64_t r = 0;
  if (!parse_u64(text.substr(1, at - 1), &r)) return false;
  *replica = static_cast<int>(r);
  *rest = text.substr(at + 1);
  return true;
}

}  // namespace

bool parse_fault_plan(const std::string& text, FaultPlan* plan,
                      std::string* error) {
  RSNN_REQUIRE(plan != nullptr && error != nullptr,
               "parse_fault_plan needs out-params");
  FaultPlan out;
  std::stringstream tokens(text);
  std::string token;
  while (std::getline(tokens, token, ',')) {
    if (token.empty()) continue;
    const std::size_t colon = token.find(':');
    const std::string head =
        colon == std::string::npos ? token : token.substr(0, colon);
    const std::string body =
        colon == std::string::npos ? "" : token.substr(colon + 1);
    FaultSpec spec;
    if (head == "seed") {
      if (!parse_u64(body, &out.seed)) {
        *error = "invalid fault seed '" + body + "' (expected seed:<u64>)";
        return false;
      }
      continue;
    } else if (head == "kill") {
      spec.kind = FaultKind::kKill;
      std::string rest;
      std::uint64_t n = 0;
      if (!parse_target(body, &spec.replica, &rest) || !parse_u64(rest, &n) ||
          n == 0) {
        *error = "invalid kill spec '" + token + "' (expected kill:r<R>@<N>)";
        return false;
      }
      spec.at_attempt = static_cast<std::int64_t>(n);
    } else if (head == "stall") {
      spec.kind = FaultKind::kStall;
      std::string rest;
      if (!parse_target(body, &spec.replica, &rest)) {
        *error = "invalid stall spec '" + token +
                 "' (expected stall:r<R>@<N>x<MS>)";
        return false;
      }
      const std::size_t x = rest.find('x');
      std::uint64_t n = 0;
      if (x == std::string::npos || !parse_u64(rest.substr(0, x), &n) ||
          n == 0 || !parse_double(rest.substr(x + 1), &spec.stall_ms)) {
        *error = "invalid stall spec '" + token +
                 "' (expected stall:r<R>@<N>x<MS>)";
        return false;
      }
      spec.at_attempt = static_cast<std::int64_t>(n);
    } else if (head == "err") {
      spec.kind = FaultKind::kError;
      if (!body.empty() && body[0] == 'p') {
        if (!parse_double(body.substr(1), &spec.probability) ||
            spec.probability > 1.0) {
          *error = "invalid error spec '" + token +
                   "' (expected err:p<PROB> with PROB in [0,1])";
          return false;
        }
      } else {
        std::string rest;
        std::uint64_t n = 0;
        if (!parse_target(body, &spec.replica, &rest) ||
            !parse_u64(rest, &n) || n == 0) {
          *error = "invalid error spec '" + token +
                   "' (expected err:r<R>@<N> or err:p<PROB>)";
          return false;
        }
        spec.at_attempt = static_cast<std::int64_t>(n);
      }
    } else {
      *error = "unknown fault spec '" + token +
               "' (expected seed:, kill:, stall: or err:)";
      return false;
    }
    out.specs.push_back(spec);
  }
  *plan = std::move(out);
  error->clear();
  return true;
}

std::string describe_fault_plan(const FaultPlan& plan) {
  if (plan.empty()) return "none";
  std::ostringstream os;
  for (std::size_t i = 0; i < plan.specs.size(); ++i) {
    const FaultSpec& spec = plan.specs[i];
    if (i > 0) os << ", ";
    os << fault_kind_name(spec.kind) << ":";
    if (spec.probability > 0.0) {
      os << "p" << spec.probability;
    } else {
      if (spec.replica >= 0)
        os << "r" << spec.replica;
      else
        os << "r*";
      os << "@" << spec.at_attempt;
      if (spec.kind == FaultKind::kStall) os << "x" << spec.stall_ms;
    }
  }
  os << " (seed " << plan.seed << ")";
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan, int replicas)
    : plan_(std::move(plan)) {
  RSNN_REQUIRE(replicas >= 1, "fault injector needs at least one replica");
  for (const FaultSpec& spec : plan_.specs) {
    RSNN_REQUIRE(spec.replica < replicas,
                 "fault spec targets replica " << spec.replica << " but the "
                     "fleet has only " << replicas << " replica(s)");
    RSNN_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
                 "fault probability must be in [0,1], got "
                     << spec.probability);
    RSNN_REQUIRE(spec.kind != FaultKind::kStall || spec.stall_ms >= 0.0,
                 "stall duration must be >= 0, got " << spec.stall_ms);
  }
  attempts_.assign(static_cast<std::size_t>(replicas), 0);
  dead_.assign(static_cast<std::size_t>(replicas), false);
  rngs_.reserve(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r)
    rngs_.emplace_back(plan_.seed + static_cast<std::uint64_t>(r));
}

void FaultInjector::before_attempt(int replica) {
  RSNN_REQUIRE(replica >= 0 &&
                   static_cast<std::size_t>(replica) < attempts_.size(),
               "fault injector: replica " << replica << " out of range");
  double stall_ms = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t r = static_cast<std::size_t>(replica);
    const std::int64_t ordinal = ++attempts_[r];
    if (dead_[r])
      throw ReplicaDeadError("replica " + std::to_string(replica) +
                             " is dead (injected kill)");
    for (const FaultSpec& spec : plan_.specs) {
      if (spec.replica >= 0 && spec.replica != replica) continue;
      const bool fires =
          (spec.at_attempt > 0 && spec.at_attempt == ordinal) ||
          (spec.probability > 0.0 &&
           rngs_[r].next_double() < spec.probability);
      if (!fires) continue;
      switch (spec.kind) {
        case FaultKind::kKill:
          dead_[r] = true;
          ++kills_;
          throw ReplicaDeadError("replica " + std::to_string(replica) +
                                 " killed at attempt " +
                                 std::to_string(ordinal) +
                                 " (injected fault)");
        case FaultKind::kError:
          ++errors_;
          throw ReplicaFaultError("replica " + std::to_string(replica) +
                                  " transient fault at attempt " +
                                  std::to_string(ordinal) +
                                  " (injected fault)");
        case FaultKind::kStall:
          ++stalls_;
          stall_ms = spec.stall_ms;
          break;
      }
      break;  // first matching spec wins
    }
  }
  // The stall sleeps outside the injector lock so concurrent attempts on
  // other replicas are not serialized behind it.
  if (stall_ms > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(stall_ms));
}

bool FaultInjector::is_dead(int replica) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dead_.at(static_cast<std::size_t>(replica));
}

void FaultInjector::revive(int replica) {
  const std::lock_guard<std::mutex> lock(mutex_);
  dead_.at(static_cast<std::size_t>(replica)) = false;
}

std::int64_t FaultInjector::attempts(int replica) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return attempts_.at(static_cast<std::size_t>(replica));
}

std::int64_t FaultInjector::injected_errors() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return errors_;
}

std::int64_t FaultInjector::injected_stalls() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stalls_;
}

std::int64_t FaultInjector::injected_kills() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return kills_;
}

}  // namespace rsnn::engine
