#include "engine/engine.hpp"

#include <bit>

#include "common/assert.hpp"
#include "encoding/radix.hpp"
#include "snn/radix_snn.hpp"

namespace rsnn::engine {
namespace {

std::int64_t code_spikes(const TensorI64& codes) {
  std::int64_t spikes = 0;
  const std::int64_t* data = codes.data();
  for (std::int64_t i = 0; i < codes.numel(); ++i)
    spikes += std::popcount(static_cast<std::uint64_t>(data[i]));
  return spikes;
}

/// Per-op stats from the program's precomputed timing annotations plus the
/// exact event-driven activity for the op's actual input codes.
hw::LayerStats predicted_stats(const ir::LayerOp& op,
                               const TensorI64& input_codes) {
  hw::LayerStats stats;
  stats.name = op.name();
  stats.cycles = op.latency.total_cycles;
  stats.dram_cycles = op.latency.dram_cycles;
  stats.traffic = op.latency.traffic;
  stats.input_spikes = code_spikes(input_codes);
  stats.adder_ops = ir::exact_adder_ops(op, input_codes);
  return stats;
}

void accumulate(hw::AccelRunResult& result, hw::LayerStats stats) {
  result.total_cycles += stats.cycles;
  result.total_adder_ops += stats.adder_ops;
  result.dram_bits += stats.traffic.dram_bits;
  result.traffic_total.act_read_bits += stats.traffic.act_read_bits;
  result.traffic_total.act_write_bits += stats.traffic.act_write_bits;
  result.traffic_total.weight_read_bits += stats.traffic.weight_read_bits;
  result.traffic_total.dram_bits += stats.traffic.dram_bits;
  result.layers.push_back(std::move(stats));
}

/// The exact accelerator-backed engines: cycle_accurate (fast path when the
/// config enables it) and stepped (always the golden stepped dataflow) are
/// the same machinery under different SimModes.
class AcceleratorEngine final : public Engine {
 public:
  AcceleratorEngine(const ir::LayerProgram& program, ir::ProgramSegment segment,
                    EngineKind kind, hw::SimMode mode)
      : Engine(program, std::move(segment)),
        kind_(kind),
        mode_(mode),
        accel_(program),
        state_(accel_.make_worker_state()) {}
  EngineKind kind() const override { return kind_; }
  SegmentRunResult run_segment(const TensorI& codes) override {
    SegmentRunResult out;
    out.stats = accel_.run_codes_range(state_, codes, segment_.begin,
                                       segment_.end, mode_,
                                       &out.boundary_codes);
    return out;
  }
  void run_codes_into(const TensorI& codes, hw::AccelRunResult& out) override {
    RSNN_REQUIRE(program_.whole_network() && segment_.begin == 0 &&
                     segment_.final_segment,
                 "run_codes_into needs a whole-program engine");
    accel_.run_codes_into(state_, codes, out, mode_);
  }
  void run_codes_batched_into(const TensorI* codes, std::size_t count,
                              hw::AccelRunResult* results) override {
    RSNN_REQUIRE(program_.whole_network() && segment_.begin == 0 &&
                     segment_.final_segment,
                 "run_codes_batched_into needs a whole-program engine");
    accel_.run_codes_batched_into(state_, codes, count, results, mode_);
  }

 private:
  const EngineKind kind_;
  const hw::SimMode mode_;
  hw::Accelerator accel_;
  hw::Accelerator::WorkerState state_;
};

/// The functional radix-SNN simulator: logits from event-driven spike
/// processing; timing and traffic from the program annotations.
class BehavioralEngine final : public Engine {
 public:
  BehavioralEngine(const ir::LayerProgram& program, ir::ProgramSegment segment)
      : Engine(program, std::move(segment)), snn_(program.network()) {}
  EngineKind kind() const override { return EngineKind::kBehavioral; }

  SegmentRunResult run_segment(const TensorI& codes) override {
    const int T = program_.time_bits();
    const encoding::SpikeTrain input = encoding::radix_encode_codes(codes, T);
    // The functional simulator walks the *network's* whole-model program, so
    // translate this engine's op range into network layer indices (they
    // differ when this is a re-lowered stage engine over a sub-program).
    const auto [net_begin, net_end] =
        program_.network_range(segment_.begin, segment_.end);
    const snn::RadixSnnResult fn =
        snn_.run_range(input, net_begin, net_end,
                       /*record_layer_spikes=*/true);

    SegmentRunResult out;
    hw::AccelRunResult& result = out.stats;
    result.logits = fn.logits;
    result.layers.reserve(segment_.size());
    TensorI64 current = codes.cast<std::int64_t>();
    for (std::size_t li = segment_.begin; li < segment_.end; ++li) {
      accumulate(result, predicted_stats(program_.op(li), current));
      if (li - segment_.begin < fn.layer_spikes.size())
        current =
            encoding::radix_decode_codes(fn.layer_spikes[li - segment_.begin])
                .cast<std::int64_t>();
    }
    if (!segment_.final_segment) {
      RSNN_ENSURE(!fn.layer_spikes.empty(), "interior segment records spikes");
      out.boundary_codes = encoding::radix_decode_codes(fn.layer_spikes.back());
    }
    hw::finalize_run(result, program_.config().cycle_ns());
    return out;
  }

 private:
  snn::RadixSnn snn_;
};

/// The QuantizedNetwork integer reference model walked over the program.
class ReferenceEngine final : public Engine {
 public:
  ReferenceEngine(const ir::LayerProgram& program, ir::ProgramSegment segment)
      : Engine(program, std::move(segment)) {}
  EngineKind kind() const override { return EngineKind::kReference; }

  SegmentRunResult run_segment(const TensorI& codes) override {
    SegmentRunResult out;
    hw::AccelRunResult& result = out.stats;
    std::vector<TensorI64> layer_outputs;
    const auto [net_begin, net_end] =
        program_.network_range(segment_.begin, segment_.end);
    const TensorI64 final_out = program_.network().forward_layers(
        codes.cast<std::int64_t>(), net_begin, net_end, &layer_outputs);
    if (segment_.final_segment) {
      result.logits = final_out.to_vector();
    } else {
      out.boundary_codes = final_out.cast<std::int32_t>();
    }
    result.layers.reserve(segment_.size());
    const TensorI64 input_codes = codes.cast<std::int64_t>();
    const TensorI64* current = &input_codes;
    for (std::size_t li = segment_.begin; li < segment_.end; ++li) {
      accumulate(result, predicted_stats(program_.op(li), *current));
      if (li - segment_.begin < layer_outputs.size())
        current = &layer_outputs[li - segment_.begin];
    }
    hw::finalize_run(result, program_.config().cycle_ns());
    return out;
  }
};

}  // namespace

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kCycleAccurate:
      return "cycle_accurate";
    case EngineKind::kStepped:
      return "stepped";
    case EngineKind::kAnalytic:
      return "analytic";
    case EngineKind::kBehavioral:
      return "behavioral";
    case EngineKind::kReference:
      return "reference";
  }
  return "unknown";
}

EngineKind parse_engine(const std::string& name) {
  if (name == "cycle_accurate" || name == "cycle")
    return EngineKind::kCycleAccurate;
  if (name == "stepped") return EngineKind::kStepped;
  if (name == "analytic") return EngineKind::kAnalytic;
  if (name == "behavioral") return EngineKind::kBehavioral;
  if (name == "reference") return EngineKind::kReference;
  RSNN_REQUIRE(false, "unknown engine '"
                          << name
                          << "' (expected cycle_accurate, stepped, analytic, "
                             "behavioral or reference)");
  return EngineKind::kAnalytic;  // unreachable
}

std::vector<EngineKind> all_engines() {
  return {EngineKind::kCycleAccurate, EngineKind::kStepped,
          EngineKind::kAnalytic, EngineKind::kBehavioral,
          EngineKind::kReference};
}

hw::AccelRunResult Engine::run_codes(const TensorI& codes) {
  RSNN_REQUIRE(program_.whole_network() && segment_.begin == 0 &&
                   segment_.final_segment,
               "run_codes needs a whole-program engine; stage engines run "
               "through run_segment()");
  return run_segment(codes).stats;
}

hw::AccelRunResult Engine::run_image(const TensorF& image) {
  return run_codes(quant::encode_activations(image, program_.time_bits()));
}

void Engine::run_codes_into(const TensorI& codes, hw::AccelRunResult& out) {
  out = run_codes(codes);
}

void Engine::run_codes_batched_into(const TensorI* codes, std::size_t count,
                                    hw::AccelRunResult* results) {
  for (std::size_t i = 0; i < count; ++i)
    run_codes_into(codes[i], results[i]);
}

std::unique_ptr<Engine> make_engine(EngineKind kind,
                                    const ir::LayerProgram& program) {
  return make_engine(kind, program, ir::full_segment(program));
}

std::unique_ptr<Engine> make_engine(EngineKind kind,
                                    const ir::LayerProgram& program,
                                    const ir::ProgramSegment& segment) {
  RSNN_REQUIRE(program.has_hw_annotations(),
               "engines need a hardware-lowered program");
  RSNN_REQUIRE(segment.begin < segment.end && segment.end <= program.size(),
               "segment op range [" << segment.begin << ", " << segment.end
                                    << ") outside the program");
  const ir::LayerProgram* exec_program = &program;
  ir::ProgramSegment exec_segment = segment;
  if (segment.relowered != nullptr) {
    // Re-lowered stage: the engine executes the segment's own per-device
    // program instead of a slice of the monolithic one. Translate the op
    // range into the sub-program's local coordinates; the segment copy held
    // by the engine keeps the shared program alive.
    const ir::LayerProgram& local = *segment.relowered;
    RSNN_REQUIRE(local.size() == segment.size() &&
                     local.network_begin() == segment.begin &&
                     &local.network() == &program.network(),
                 "re-lowered program does not match segment ops ["
                     << segment.begin << ", " << segment.end << ")");
    exec_program = &local;
    exec_segment.begin = 0;
    exec_segment.end = local.size();
  }
  switch (kind) {
    case EngineKind::kCycleAccurate:
      return std::make_unique<AcceleratorEngine>(*exec_program,
                                                 std::move(exec_segment), kind,
                                                 hw::SimMode::kCycleAccurate);
    case EngineKind::kStepped:
      return std::make_unique<AcceleratorEngine>(*exec_program,
                                                 std::move(exec_segment), kind,
                                                 hw::SimMode::kStepped);
    case EngineKind::kAnalytic:
      // The analytic engine is accelerator-backed too: SimMode::kAnalytic
      // runs the fast-path kernels (annotation accounting, exact logits)
      // with a per-engine WorkerState, falling back to the functional
      // reference when the config disables the fast path.
      return std::make_unique<AcceleratorEngine>(*exec_program,
                                                 std::move(exec_segment), kind,
                                                 hw::SimMode::kAnalytic);
    case EngineKind::kBehavioral:
      return std::make_unique<BehavioralEngine>(*exec_program,
                                                std::move(exec_segment));
    case EngineKind::kReference:
      return std::make_unique<ReferenceEngine>(*exec_program,
                                               std::move(exec_segment));
  }
  RSNN_REQUIRE(false, "unknown engine kind");
  return nullptr;  // unreachable
}

}  // namespace rsnn::engine
