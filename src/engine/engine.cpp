#include "engine/engine.hpp"

#include <bit>

#include "common/assert.hpp"
#include "encoding/radix.hpp"
#include "snn/radix_snn.hpp"

namespace rsnn::engine {
namespace {

std::int64_t code_spikes(const TensorI64& codes) {
  std::int64_t spikes = 0;
  const std::int64_t* data = codes.data();
  for (std::int64_t i = 0; i < codes.numel(); ++i)
    spikes += std::popcount(static_cast<std::uint64_t>(data[i]));
  return spikes;
}

/// Per-op stats from the program's precomputed timing annotations plus the
/// exact event-driven activity for the op's actual input codes.
hw::LayerStats predicted_stats(const ir::LayerOp& op,
                               const TensorI64& input_codes) {
  hw::LayerStats stats;
  stats.name = op.name();
  stats.cycles = op.latency.total_cycles;
  stats.dram_cycles = op.latency.dram_cycles;
  stats.traffic = op.latency.traffic;
  stats.input_spikes = code_spikes(input_codes);
  stats.adder_ops = ir::exact_adder_ops(op, input_codes);
  return stats;
}

void accumulate(hw::AccelRunResult& result, hw::LayerStats stats) {
  result.total_cycles += stats.cycles;
  result.total_adder_ops += stats.adder_ops;
  result.dram_bits += stats.traffic.dram_bits;
  result.traffic_total.act_read_bits += stats.traffic.act_read_bits;
  result.traffic_total.act_write_bits += stats.traffic.act_write_bits;
  result.traffic_total.weight_read_bits += stats.traffic.weight_read_bits;
  result.traffic_total.dram_bits += stats.traffic.dram_bits;
  result.layers.push_back(std::move(stats));
}

void finalize(hw::AccelRunResult& result, double cycle_ns) {
  result.latency_us =
      static_cast<double>(result.total_cycles) * cycle_ns / 1000.0;
  int best = 0;
  for (std::size_t c = 1; c < result.logits.size(); ++c)
    if (result.logits[c] > result.logits[static_cast<std::size_t>(best)])
      best = static_cast<int>(c);
  result.predicted_class = best;
}

class CycleAccurateEngine final : public Engine {
 public:
  explicit CycleAccurateEngine(const ir::LayerProgram& program)
      : Engine(program),
        accel_(program),
        state_(accel_.make_worker_state()) {}
  EngineKind kind() const override { return EngineKind::kCycleAccurate; }
  hw::AccelRunResult run_codes(const TensorI& codes) override {
    return accel_.run_codes(state_, codes, hw::SimMode::kCycleAccurate);
  }

 private:
  hw::Accelerator accel_;
  hw::Accelerator::WorkerState state_;
};

class AnalyticEngine final : public Engine {
 public:
  explicit AnalyticEngine(const ir::LayerProgram& program)
      : Engine(program), accel_(program) {}
  EngineKind kind() const override { return EngineKind::kAnalytic; }
  hw::AccelRunResult run_codes(const TensorI& codes) override {
    return accel_.run_codes(codes, hw::SimMode::kAnalytic);
  }

 private:
  hw::Accelerator accel_;
};

/// The functional radix-SNN simulator: logits from event-driven spike
/// processing; timing and traffic from the program annotations.
class BehavioralEngine final : public Engine {
 public:
  explicit BehavioralEngine(const ir::LayerProgram& program)
      : Engine(program), snn_(program.network()) {}
  EngineKind kind() const override { return EngineKind::kBehavioral; }

  hw::AccelRunResult run_codes(const TensorI& codes) override {
    const int T = program_.time_bits();
    const encoding::SpikeTrain input = encoding::radix_encode_codes(codes, T);
    const snn::RadixSnnResult fn = snn_.run(input, /*record_layer_spikes=*/true);

    hw::AccelRunResult result;
    result.logits = fn.logits;
    result.layers.reserve(program_.size());
    TensorI64 current = codes.cast<std::int64_t>();
    for (std::size_t li = 0; li < program_.size(); ++li) {
      accumulate(result, predicted_stats(program_.op(li), current));
      if (li < fn.layer_spikes.size())
        current = encoding::radix_decode_codes(fn.layer_spikes[li])
                      .cast<std::int64_t>();
    }
    finalize(result, program_.config().cycle_ns());
    return result;
  }

 private:
  snn::RadixSnn snn_;
};

/// The QuantizedNetwork integer reference model walked over the program.
class ReferenceEngine final : public Engine {
 public:
  explicit ReferenceEngine(const ir::LayerProgram& program)
      : Engine(program) {}
  EngineKind kind() const override { return EngineKind::kReference; }

  hw::AccelRunResult run_codes(const TensorI& codes) override {
    hw::AccelRunResult result;
    std::vector<TensorI64> layer_outputs;
    result.logits = program_.network().forward_traced(codes, &layer_outputs);
    result.layers.reserve(program_.size());
    const TensorI64 input_codes = codes.cast<std::int64_t>();
    const TensorI64* current = &input_codes;
    for (std::size_t li = 0; li < program_.size(); ++li) {
      accumulate(result, predicted_stats(program_.op(li), *current));
      if (li < layer_outputs.size()) current = &layer_outputs[li];
    }
    finalize(result, program_.config().cycle_ns());
    return result;
  }
};

}  // namespace

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kCycleAccurate:
      return "cycle_accurate";
    case EngineKind::kAnalytic:
      return "analytic";
    case EngineKind::kBehavioral:
      return "behavioral";
    case EngineKind::kReference:
      return "reference";
  }
  return "unknown";
}

EngineKind parse_engine(const std::string& name) {
  if (name == "cycle_accurate" || name == "cycle")
    return EngineKind::kCycleAccurate;
  if (name == "analytic") return EngineKind::kAnalytic;
  if (name == "behavioral") return EngineKind::kBehavioral;
  if (name == "reference") return EngineKind::kReference;
  RSNN_REQUIRE(false, "unknown engine '"
                          << name
                          << "' (expected cycle_accurate, analytic, "
                             "behavioral or reference)");
  return EngineKind::kAnalytic;  // unreachable
}

std::vector<EngineKind> all_engines() {
  return {EngineKind::kCycleAccurate, EngineKind::kAnalytic,
          EngineKind::kBehavioral, EngineKind::kReference};
}

hw::AccelRunResult Engine::run_image(const TensorF& image) {
  return run_codes(quant::encode_activations(image, program_.time_bits()));
}

std::unique_ptr<Engine> make_engine(EngineKind kind,
                                    const ir::LayerProgram& program) {
  RSNN_REQUIRE(program.has_hw_annotations(),
               "engines need a hardware-lowered program");
  switch (kind) {
    case EngineKind::kCycleAccurate:
      return std::make_unique<CycleAccurateEngine>(program);
    case EngineKind::kAnalytic:
      return std::make_unique<AnalyticEngine>(program);
    case EngineKind::kBehavioral:
      return std::make_unique<BehavioralEngine>(program);
    case EngineKind::kReference:
      return std::make_unique<ReferenceEngine>(program);
  }
  RSNN_REQUIRE(false, "unknown engine kind");
  return nullptr;  // unreachable
}

}  // namespace rsnn::engine
