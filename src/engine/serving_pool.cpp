#include "engine/serving_pool.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"

namespace rsnn::engine {

const char* policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kFifo: return "fifo";
    case AdmissionPolicy::kBatch: return "batch";
    case AdmissionPolicy::kReject: return "reject";
  }
  RSNN_REQUIRE(false, "unreachable admission policy");
  return "";
}

AdmissionPolicy parse_policy(const std::string& name) {
  if (name == "fifo") return AdmissionPolicy::kFifo;
  if (name == "batch") return AdmissionPolicy::kBatch;
  if (name == "reject") return AdmissionPolicy::kReject;
  RSNN_REQUIRE(false, "unknown admission policy '"
                          << name << "' (expected fifo, batch or reject)");
  return AdmissionPolicy::kFifo;
}

std::string policy_parse_error(const std::string& name) {
  if (name == "fifo" || name == "batch" || name == "reject") return "";
  return "unknown admission policy '" + name +
         "' (expected fifo, batch or reject)";
}

ServingPool::ServingPool(const ir::LayerProgram& program, EngineKind kind,
                         ServingPoolOptions options)
    : program_(program), kind_(kind), options_(std::move(options)) {
  RSNN_REQUIRE(program.has_hw_annotations(),
               "serving needs a hardware-lowered program");
  RSNN_REQUIRE(options_.replicas >= 1,
               "serving pool needs at least one replica, got "
                   << options_.replicas);
  RSNN_REQUIRE(options_.workers_per_replica >= 1,
               "workers_per_replica must be >= 1, got "
                   << options_.workers_per_replica);
  RSNN_REQUIRE(
      options_.queue_capacity >= 1 ||
          options_.policy == AdmissionPolicy::kReject,
      "a zero-capacity admission queue is only legal with the reject "
      "policy (every request would block forever under "
          << policy_name(options_.policy) << ")");
  if (options_.policy == AdmissionPolicy::kBatch) {
    RSNN_REQUIRE(options_.max_batch >= 1,
                 "batch policy needs max_batch >= 1, got "
                     << options_.max_batch);
    RSNN_REQUIRE(options_.max_wait_ms >= 0.0,
                 "batch policy needs max_wait_ms >= 0, got "
                     << options_.max_wait_ms);
  }

  // Replicas are constructed here (not on the dispatcher threads) so an
  // invalid configuration — e.g. segments that do not cover the program —
  // fails the constructor instead of failing every future request. The
  // executors still build their engines on their own worker threads.
  stats_.per_replica.assign(static_cast<std::size_t>(options_.replicas), 0);
  replicas_.reserve(static_cast<std::size_t>(options_.replicas));
  for (int r = 0; r < options_.replicas; ++r)
    replicas_.push_back(make_submitter(program_, kind_, options_.segments,
                                       options_.workers_per_replica,
                                       options_.stage_queue_capacity));

  replica_threads_.reserve(replicas_.size());
  try {
    for (std::size_t r = 0; r < replicas_.size(); ++r)
      replica_threads_.emplace_back([this, r] { replica_main(r); });
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_not_empty_.notify_all();
    for (std::thread& thread : replica_threads_) thread.join();
    throw;
  }
}

ServingPool::~ServingPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  // Admitted work is drained, not dropped: dispatchers keep pulling until
  // the queue is empty, so every promise handed out by submit() is kept.
  cv_not_empty_.notify_all();
  cv_not_full_.notify_all();
  for (std::thread& thread : replica_threads_) thread.join();
}

int ServingPool::devices() const {
  const int per_replica = options_.segments.empty()
                              ? 1
                              : static_cast<int>(options_.segments.size());
  return replicas() * per_replica;
}

std::string ServingPool::replica_shape() const {
  return replicas_.front()->shape();
}

bool ServingPool::admit(TensorI&& codes,
                        std::future<hw::AccelRunResult>* ticket,
                        bool blocking) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (blocking)
    cv_not_full_.wait(lock, [&] {
      return closed_ || queue_.size() < options_.queue_capacity;
    });
  if (closed_ || queue_.size() >= options_.queue_capacity) {
    ++stats_.rejected;
    return false;
  }
  Request request;
  request.codes = std::move(codes);
  request.admitted = std::chrono::steady_clock::now();
  *ticket = request.promise.get_future();
  ++stats_.submitted;
  if (!saw_admit_) {
    saw_admit_ = true;
    first_admit_ = request.admitted;
  }
  queue_.push_back(std::move(request));
  cv_not_empty_.notify_one();
  return true;
}

std::future<hw::AccelRunResult> ServingPool::submit(TensorI codes) {
  std::future<hw::AccelRunResult> ticket;
  const bool blocking = options_.policy != AdmissionPolicy::kReject;
  admit(std::move(codes), &ticket, blocking);
  return ticket;  // invalid when the request was shed
}

bool ServingPool::try_submit(TensorI codes,
                             std::future<hw::AccelRunResult>* ticket) {
  RSNN_REQUIRE(ticket != nullptr, "try_submit needs a ticket out-param");
  return admit(std::move(codes), ticket, /*blocking=*/false);
}

std::vector<ServingPool::Request> ServingPool::acquire_work() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return {};  // closed and drained: dispatcher exits

  // Every pop must wake blocked producers immediately: under the batch
  // policy the accumulation loop below *waits for the queue to refill*, so
  // a producer stuck on cv_not_full_ while this dispatcher holds freed
  // capacity would deadlock the batch until the deadline.
  std::vector<Request> work;
  work.push_back(std::move(queue_.front()));
  queue_.pop_front();
  cv_not_full_.notify_all();

  if (options_.policy == AdmissionPolicy::kBatch && options_.max_batch > 1) {
    // Accumulate until the batch fills or the *oldest* request's deadline
    // expires — a deadline that passes with one pending item dispatches
    // that item alone rather than holding it for company.
    const auto deadline =
        work.front().admitted +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(options_.max_wait_ms));
    while (work.size() < options_.max_batch) {
      if (!queue_.empty()) {
        work.push_back(std::move(queue_.front()));
        queue_.pop_front();
        cv_not_full_.notify_all();
        continue;
      }
      if (closed_) break;
      const bool signalled = cv_not_empty_.wait_until(
          lock, deadline, [&] { return closed_ || !queue_.empty(); });
      if (!signalled) break;  // deadline expired
    }
  }
  return work;
}

std::int64_t ServingPool::worst_stage_cycles(
    const hw::AccelRunResult& result) const {
  if (options_.segments.empty()) return result.total_cycles;
  std::int64_t worst = 0;
  for (const ir::ProgramSegment& segment : options_.segments) {
    std::int64_t stage = 0;
    for (std::size_t op = segment.begin;
         op < segment.end && op < result.layers.size(); ++op)
      stage += result.layers[op].cycles;
    worst = std::max(worst, stage);
  }
  return worst;
}

void ServingPool::record_dispatch(std::size_t replica_index,
                                  std::size_t count,
                                  const std::vector<double>& latencies_ms,
                                  std::int64_t worst_cycles, bool failed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.dispatches;
  stats_.per_replica[replica_index] += static_cast<std::int64_t>(count);
  if (failed) {
    stats_.failed += static_cast<std::int64_t>(count);
  } else {
    stats_.completed += static_cast<std::int64_t>(count);
    latencies_ms_.insert(latencies_ms_.end(), latencies_ms.begin(),
                         latencies_ms.end());
    stats_.bottleneck_cycles = std::max(stats_.bottleneck_cycles, worst_cycles);
  }
  last_complete_ = std::chrono::steady_clock::now();
}

void ServingPool::replica_main(std::size_t replica_index) {
  Submitter& replica = *replicas_[replica_index];
  for (;;) {
    std::vector<Request> work = acquire_work();
    if (work.empty()) return;

    std::vector<TensorI> codes;
    codes.reserve(work.size());
    for (Request& request : work) codes.push_back(std::move(request.codes));

    std::vector<hw::AccelRunResult> results;
    std::exception_ptr error;
    try {
      results = replica.submit(codes);
    } catch (...) {
      error = std::current_exception();
    }

    // Record the dispatch in the pool statistics *before* fulfilling the
    // promises: a caller that observes a resolved future must also observe
    // its completion in stats().
    std::vector<double> latencies_ms;
    std::int64_t worst_cycles = 0;
    if (!error) {
      const auto done = std::chrono::steady_clock::now();
      latencies_ms.reserve(work.size());
      for (std::size_t i = 0; i < work.size(); ++i) {
        latencies_ms.push_back(
            std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
                done - work[i].admitted)
                .count());
        worst_cycles = std::max(worst_cycles, worst_stage_cycles(results[i]));
      }
    }
    record_dispatch(replica_index, work.size(), latencies_ms, worst_cycles,
                    error != nullptr);
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (error)
        work[i].promise.set_exception(error);
      else
        work[i].promise.set_value(std::move(results[i]));
    }
  }
}

ServingPool::BatchRun ServingPool::run_batch(
    const std::vector<TensorI>& codes) {
  BatchRun run;
  run.results.resize(codes.size());
  run.accepted.assign(codes.size(), false);
  std::vector<std::future<hw::AccelRunResult>> tickets(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    tickets[i] = submit(codes[i]);
    run.accepted[i] = tickets[i].valid();
  }
  for (std::size_t i = 0; i < codes.size(); ++i)
    if (run.accepted[i]) run.results[i] = tickets[i].get();
  return run;
}

namespace {
double percentile(std::vector<double> sorted_samples, double q) {
  if (sorted_samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_samples.size() - 1));
  return sorted_samples[rank];
}
}  // namespace

void ServingPool::reset_stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_ = ServingStats{};
  stats_.per_replica.assign(replicas_.size(), 0);
  latencies_ms_.clear();
  saw_admit_ = false;
}

ServingStats ServingPool::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  ServingStats out = stats_;
  std::vector<double> samples = latencies_ms_;
  const bool windowed = saw_admit_ && (out.completed + out.failed) > 0;
  const double wall_s =
      windowed ? std::chrono::duration_cast<std::chrono::duration<double>>(
                     last_complete_ - first_admit_)
                     .count()
               : 0.0;
  lock.unlock();

  std::sort(samples.begin(), samples.end());
  out.p50_latency_ms = percentile(samples, 0.50);
  out.p99_latency_ms = percentile(samples, 0.99);
  out.mean_batch = out.dispatches > 0
                       ? static_cast<double>(out.completed + out.failed) /
                             static_cast<double>(out.dispatches)
                       : 0.0;
  out.wall_ms = wall_s * 1e3;
  out.wall_images_per_sec =
      wall_s > 0.0 ? static_cast<double>(out.completed) / wall_s : 0.0;
  if (out.bottleneck_cycles > 0) {
    const double image_s = static_cast<double>(out.bottleneck_cycles) *
                           program_.config().cycle_ns() * 1e-9;
    out.modeled_images_per_sec =
        static_cast<double>(replicas()) / image_s;
  }
  return out;
}

}  // namespace rsnn::engine
