#include "engine/serving_pool.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"

namespace rsnn::engine {

const char* policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kFifo: return "fifo";
    case AdmissionPolicy::kBatch: return "batch";
    case AdmissionPolicy::kReject: return "reject";
  }
  RSNN_REQUIRE(false, "unreachable admission policy");
  return "";
}

AdmissionPolicy parse_policy(const std::string& name) {
  if (name == "fifo") return AdmissionPolicy::kFifo;
  if (name == "batch") return AdmissionPolicy::kBatch;
  if (name == "reject") return AdmissionPolicy::kReject;
  RSNN_REQUIRE(false, "unknown admission policy '"
                          << name << "' (expected fifo, batch or reject)");
  return AdmissionPolicy::kFifo;
}

std::string policy_parse_error(const std::string& name) {
  if (name == "fifo" || name == "batch" || name == "reject") return "";
  return "unknown admission policy '" + name +
         "' (expected fifo, batch or reject)";
}

const char* status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kDeadlineExceeded: return "deadline_exceeded";
    case RequestStatus::kReplicaFailed: return "replica_failed";
    case RequestStatus::kCancelled: return "cancelled";
  }
  RSNN_REQUIRE(false, "unreachable request status");
  return "";
}

const char* priority_name(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kLatency: return "latency";
    case PriorityClass::kBulk: return "bulk";
  }
  RSNN_REQUIRE(false, "unreachable priority class");
  return "";
}

const char* health_name(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy: return "healthy";
    case ReplicaHealth::kDegraded: return "degraded";
    case ReplicaHealth::kQuarantined: return "quarantined";
  }
  RSNN_REQUIRE(false, "unreachable replica health");
  return "";
}

namespace {

int class_index(PriorityClass priority) {
  return priority == PriorityClass::kLatency ? 0 : 1;
}

std::chrono::steady_clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

/// Ready future carrying a shed outcome — submit() never returns an
/// invalid future.
std::future<ServingResult> ready_outcome(RequestStatus status,
                                         std::string error) {
  std::promise<ServingResult> promise;
  ServingResult outcome;
  outcome.status = status;
  outcome.error = std::move(error);
  promise.set_value(std::move(outcome));
  return promise.get_future();
}

}  // namespace

ServingPool::ServingPool(const ir::LayerProgram& program, EngineKind kind,
                         ServingPoolOptions options)
    : program_(program), kind_(kind), options_(std::move(options)) {
  RSNN_REQUIRE(program.has_hw_annotations(),
               "serving needs a hardware-lowered program");
  RSNN_REQUIRE(options_.replicas >= 1,
               "serving pool needs at least one replica, got "
                   << options_.replicas);
  RSNN_REQUIRE(options_.workers_per_replica >= 1,
               "workers_per_replica must be >= 1, got "
                   << options_.workers_per_replica);
  RSNN_REQUIRE(
      options_.queue_capacity >= 1 ||
          options_.policy == AdmissionPolicy::kReject,
      "a zero-capacity admission queue is only legal with the reject "
      "policy (every request would block forever under "
          << policy_name(options_.policy) << ")");
  if (options_.policy == AdmissionPolicy::kBatch) {
    RSNN_REQUIRE(options_.max_batch >= 1,
                 "batch policy needs max_batch >= 1, got "
                     << options_.max_batch);
    RSNN_REQUIRE(options_.max_wait_ms >= 0.0,
                 "batch policy needs max_wait_ms >= 0, got "
                     << options_.max_wait_ms);
  }
  RSNN_REQUIRE(options_.max_retries >= 0,
               "max_retries must be >= 0, got " << options_.max_retries);
  RSNN_REQUIRE(options_.backoff_base_ms >= 0.0 &&
                   options_.backoff_cap_ms >= options_.backoff_base_ms,
               "retry backoff needs 0 <= base <= cap, got base "
                   << options_.backoff_base_ms << " cap "
                   << options_.backoff_cap_ms);
  RSNN_REQUIRE(options_.stall_timeout_ms >= 0.0,
               "stall_timeout_ms must be >= 0, got "
                   << options_.stall_timeout_ms);
  RSNN_REQUIRE(options_.degrade_after_failures >= 1 &&
                   options_.quarantine_after_failures >=
                       options_.degrade_after_failures,
               "health thresholds need 1 <= degrade <= quarantine, got "
                   << options_.degrade_after_failures << " / "
                   << options_.quarantine_after_failures);
  RSNN_REQUIRE(options_.quarantine_after_stalls >= 1,
               "quarantine_after_stalls must be >= 1, got "
                   << options_.quarantine_after_stalls);

  if (!options_.fault_plan.empty())
    injector_ = std::make_unique<FaultInjector>(options_.fault_plan,
                                                options_.replicas);

  // Replicas are constructed here (not on the dispatcher threads) so an
  // invalid configuration — e.g. segments that do not cover the program —
  // fails the constructor instead of failing every future request. The
  // executors still build their engines on their own worker threads.
  const std::size_t n = static_cast<std::size_t>(options_.replicas);
  stats_.per_replica.assign(n, 0);
  health_.assign(n, ReplicaHealth::kHealthy);
  consecutive_failures_.assign(n, 0);
  stall_count_.assign(n, 0);
  replicas_.reserve(n);
  for (int r = 0; r < options_.replicas; ++r)
    replicas_.push_back(make_submitter(program_, kind_, options_.segments,
                                       options_.workers_per_replica,
                                       options_.stage_queue_capacity,
                                       injector_.get(), r));

  replica_threads_.reserve(replicas_.size());
  try {
    for (std::size_t r = 0; r < replicas_.size(); ++r)
      replica_threads_.emplace_back([this, r] { replica_main(r); });
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_not_empty_.notify_all();
    for (std::thread& thread : replica_threads_) thread.join();
    throw;
  }
}

ServingPool::~ServingPool() {
  // Admitted work is drained, not dropped: dispatchers keep pulling until
  // the queue is empty, so every promise handed out by submit() is kept.
  shutdown(/*drain=*/true);
  for (std::thread& thread : replica_threads_) thread.join();
}

void ServingPool::shutdown(bool drain) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    if (!drain)
      flush_queue(RequestStatus::kCancelled, "cancelled at shutdown");
  }
  cv_not_empty_.notify_all();
  cv_not_full_.notify_all();
}

int ServingPool::devices() const {
  const int per_replica = options_.segments.empty()
                              ? 1
                              : static_cast<int>(options_.segments.size());
  return replicas() * per_replica;
}

std::string ServingPool::replica_shape() const {
  return replicas_.front()->shape();
}

int ServingPool::active_replicas_locked() const {
  int active = 0;
  for (const ReplicaHealth health : health_)
    if (health != ReplicaHealth::kQuarantined) ++active;
  return active;
}

bool ServingPool::fleet_unrecoverable_locked() const {
  if (active_replicas_locked() > 0) return false;
  // Without rebuild, quarantine is terminal — zero active means nothing
  // will ever drain the queue. With rebuild, a quarantined replica is
  // mid-rebuild on its own thread and about to come back (or retire on
  // rebuild failure): only a fully retired fleet is beyond recovery.
  return !options_.rebuild_quarantined ||
         retired_replicas_ == replicas_.size();
}

void ServingPool::resolve(Queued&& request, ServingResult&& outcome) {
  // Statistics are recorded under the same lock that fulfills the promise:
  // a caller that observes a resolved future must also observe its
  // completion in stats(). std::promise::set_value runs no user code, so
  // holding mutex_ across it cannot deadlock.
  const auto now = Clock::now();
  ClassStats& pc = stats_.per_class[class_index(request.priority)];
  switch (outcome.status) {
    case RequestStatus::kOk: {
      ++stats_.completed;
      ++pc.ok;
      latencies_ms_.push_back(
          std::chrono::duration_cast<
              std::chrono::duration<double, std::milli>>(now -
                                                         request.admitted)
              .count());
      if (outcome.replica >= 0)
        stats_.per_replica[static_cast<std::size_t>(outcome.replica)] += 1;
      stats_.bottleneck_cycles = std::max(
          stats_.bottleneck_cycles, worst_stage_cycles(outcome.result));
      last_complete_ = now;
      break;
    }
    case RequestStatus::kRejected:
      ++stats_.rejected;
      ++pc.rejected;
      break;
    case RequestStatus::kDeadlineExceeded:
      ++stats_.deadline_exceeded;
      ++pc.deadline_exceeded;
      break;
    case RequestStatus::kReplicaFailed:
      ++stats_.failed;
      ++pc.failed;
      last_complete_ = now;
      break;
    case RequestStatus::kCancelled:
      ++stats_.cancelled;
      ++pc.cancelled;
      break;
  }
  request.promise.set_value(std::move(outcome));
}

void ServingPool::flush_queue(RequestStatus status,
                              const std::string& error) {
  while (!queue_.empty()) {
    Queued request = std::move(queue_.front());
    queue_.pop_front();
    ServingResult outcome;
    outcome.status = status;
    outcome.error = error;
    outcome.attempts = request.attempts;
    resolve(std::move(request), std::move(outcome));
  }
  cv_not_full_.notify_all();
}

bool ServingPool::admit(TensorI&& codes, const RequestOptions& request,
                        std::future<ServingResult>* ticket, bool blocking,
                        bool allow_evict) {
  RSNN_REQUIRE(request.deadline_ms >= 0.0,
               "request deadline must be >= 0, got " << request.deadline_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  ClassStats& pc = stats_.per_class[class_index(request.priority)];
  ++pc.submitted;
  for (;;) {
    if (closed_) {
      ++stats_.rejected;
      ++pc.rejected;
      *ticket = ready_outcome(RequestStatus::kRejected, "pool is shut down");
      return false;
    }
    if (fleet_unrecoverable_locked()) {
      ++stats_.failed;
      ++pc.failed;
      *ticket = ready_outcome(RequestStatus::kReplicaFailed,
                              "no active replicas remain");
      return false;
    }
    if (queue_.size() < options_.queue_capacity) break;
    // Degradation order under overload: the bulk lane is shed first. A full
    // queue holding undispatched bulk work evicts its newest bulk request
    // to admit latency-class work.
    if (allow_evict && request.priority == PriorityClass::kLatency) {
      std::size_t victim = queue_.size();
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        const Queued& queued = queue_[i];
        if (queued.priority != PriorityClass::kBulk || queued.attempts != 0)
          continue;
        if (victim == queue_.size() || queued.seq > queue_[victim].seq)
          victim = i;
      }
      if (victim != queue_.size()) {
        Queued evicted = std::move(queue_[victim]);
        queue_.erase(queue_.begin() +
                     static_cast<std::deque<Queued>::difference_type>(victim));
        ++stats_.shed_bulk;
        ServingResult outcome;
        outcome.status = RequestStatus::kRejected;
        outcome.error = "shed: bulk evicted for latency-class work";
        resolve(std::move(evicted), std::move(outcome));
        continue;  // re-check: there is room now
      }
    }
    if (!blocking) {
      ++stats_.rejected;
      ++pc.rejected;
      *ticket = ready_outcome(RequestStatus::kRejected,
                              "admission queue is full");
      return false;
    }
    cv_not_full_.wait(lock);
  }

  Queued admitted;
  admitted.codes = std::move(codes);
  admitted.admitted = Clock::now();
  admitted.deadline = request.deadline_ms > 0.0
                          ? admitted.admitted + ms_duration(request.deadline_ms)
                          : Clock::time_point::max();
  admitted.not_before = admitted.admitted;
  admitted.priority = request.priority;
  admitted.seq = next_seq_++;
  *ticket = admitted.promise.get_future();
  ++stats_.submitted;
  if (!saw_admit_) {
    saw_admit_ = true;
    first_admit_ = admitted.admitted;
  }
  queue_.push_back(std::move(admitted));
  cv_not_empty_.notify_one();
  return true;
}

std::future<ServingResult> ServingPool::submit(Request request,
                                               bool* admitted) {
  // Routing backstop: a request explicitly addressed to a different model
  // never queues here. The registry routes before this check; it exists so
  // a misrouted direct submission resolves typed instead of computing the
  // wrong model's logits.
  if (request.model_id != options_.model_id && !request.model_id.empty()) {
    if (admitted != nullptr) *admitted = false;
    const std::lock_guard<std::mutex> lock(mutex_);
    ClassStats& pc = stats_.per_class[class_index(request.options.priority)];
    ++pc.submitted;
    ++pc.rejected;
    ++stats_.rejected;
    return ready_outcome(RequestStatus::kRejected,
                         "unknown model '" + request.model_id +
                             "' (this pool serves '" + options_.model_id +
                             "')");
  }
  const bool blocking =
      request.options.admission == AdmissionMode::kBlocking &&
      options_.policy != AdmissionPolicy::kReject;
  const bool allow_evict =
      request.options.admission == AdmissionMode::kBlocking;
  std::future<ServingResult> ticket;
  const bool entered = admit(std::move(request.codes), request.options,
                             &ticket, blocking, allow_evict);
  if (admitted != nullptr) *admitted = entered;
  return ticket;  // always valid: shed requests resolve immediately
}

std::future<ServingResult> ServingPool::submit(TensorI codes,
                                               const RequestOptions& request) {
  Request typed;
  typed.codes = std::move(codes);
  typed.options = request;
  return submit(std::move(typed));
}

bool ServingPool::try_submit(TensorI codes,
                             std::future<ServingResult>* ticket,
                             const RequestOptions& request) {
  RSNN_REQUIRE(ticket != nullptr, "try_submit needs a ticket out-param");
  Request typed;
  typed.codes = std::move(codes);
  typed.options = request;
  typed.options.admission = AdmissionMode::kNonBlocking;
  bool admitted = false;
  std::future<ServingResult> attempt = submit(std::move(typed), &admitted);
  if (!admitted) return false;
  *ticket = std::move(attempt);
  return true;
}

std::vector<ServingPool::Queued> ServingPool::acquire_work(
    std::size_t replica_index) {
  std::unique_lock<std::mutex> lock(mutex_);

  // Dispatch order: latency class before bulk, earliest deadline first
  // within a class, admission order otherwise.
  const auto ranks_before = [](const Queued& a, const Queued& b) {
    const int ca = class_index(a.priority), cb = class_index(b.priority);
    if (ca != cb) return ca < cb;
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.seq < b.seq;
  };

  // Pick the best eligible queued request, failing expired requests fast as
  // a side effect. Eligibility honors retry gates unless the pool is
  // draining: a retried request waits out its backoff and prefers a replica
  // other than the one that just failed it (when another is active).
  const auto pick_best = [&](Clock::time_point now) -> std::size_t {
    for (std::size_t i = 0; i < queue_.size();) {
      if (queue_[i].deadline <= now) {
        Queued expired = std::move(queue_[i]);
        queue_.erase(queue_.begin() +
                     static_cast<std::deque<Queued>::difference_type>(i));
        cv_not_full_.notify_all();
        ServingResult outcome;
        outcome.status = RequestStatus::kDeadlineExceeded;
        outcome.error = "deadline expired before dispatch";
        outcome.attempts = expired.attempts;
        resolve(std::move(expired), std::move(outcome));
      } else {
        ++i;
      }
    }
    int other_active = 0;
    for (std::size_t r = 0; r < health_.size(); ++r)
      if (r != replica_index && health_[r] != ReplicaHealth::kQuarantined)
        ++other_active;
    std::size_t best = queue_.size();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Queued& req = queue_[i];
      if (!closed_) {
        if (req.not_before > now) continue;
        if (req.attempts > 0 && other_active > 0 &&
            req.last_replica == static_cast<int>(replica_index))
          continue;
      }
      if (best == queue_.size() || ranks_before(req, queue_[best])) best = i;
    }
    return best;
  };

  // Earliest instant at which an ineligible queued request changes state —
  // a backoff gate opening or a deadline to fail fast.
  const auto next_wake = [&](Clock::time_point now) {
    auto wake = Clock::time_point::max();
    for (const Queued& req : queue_) {
      if (req.not_before > now) wake = std::min(wake, req.not_before);
      wake = std::min(wake, req.deadline);
    }
    return wake;
  };

  const auto pop_at = [&](std::size_t index) {
    Queued picked = std::move(queue_[index]);
    queue_.erase(queue_.begin() +
                 static_cast<std::deque<Queued>::difference_type>(index));
    cv_not_full_.notify_all();
    ++picked.attempts;
    return picked;
  };

  std::vector<Queued> work;
  for (;;) {
    const auto now = Clock::now();
    const std::size_t best = pick_best(now);
    if (best != queue_.size()) {
      work.push_back(pop_at(best));
      break;
    }
    if (closed_ && queue_.empty()) return {};
    const auto wake = next_wake(now);
    if (wake == Clock::time_point::max())
      cv_not_empty_.wait(lock);
    else
      cv_not_empty_.wait_until(lock, wake);
  }

  if (options_.policy == AdmissionPolicy::kBatch && options_.max_batch > 1) {
    // Accumulate until the batch fills or the *oldest* request's window
    // expires — a window that passes with one pending item dispatches that
    // item alone rather than holding it for company. Under overload the
    // window shrinks to zero: a queue already holding work at or above the
    // shrink occupancy dispatches immediately instead of waiting for more.
    bool shrink = false;
    if (options_.queue_capacity > 0 &&
        static_cast<double>(queue_.size()) /
                static_cast<double>(options_.queue_capacity) >=
            options_.overload_shrink_occupancy) {
      shrink = true;
      ++stats_.window_shrinks;
    }
    const auto window =
        work.front().admitted + ms_duration(options_.max_wait_ms);
    while (work.size() < options_.max_batch) {
      const auto now = Clock::now();
      const std::size_t best = pick_best(now);
      if (best != queue_.size()) {
        work.push_back(pop_at(best));
        continue;
      }
      if (closed_ || shrink || now >= window) break;
      cv_not_empty_.wait_until(lock, std::min(window, next_wake(now)));
    }
  }
  return work;
}

std::int64_t ServingPool::worst_stage_cycles(
    const hw::AccelRunResult& result) const {
  if (options_.segments.empty()) return result.total_cycles;
  std::int64_t worst = 0;
  for (const ir::ProgramSegment& segment : options_.segments) {
    std::int64_t stage = 0;
    for (std::size_t op = segment.begin;
         op < segment.end && op < result.layers.size(); ++op)
      stage += result.layers[op].cycles;
    worst = std::max(worst, stage);
  }
  return worst;
}

bool ServingPool::record_dispatch_health(std::size_t replica_index,
                                         bool success, bool replica_fault,
                                         bool stalled, bool dead) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (replica_fault) {
    ++consecutive_failures_[replica_index];
    ++stats_.replica_failures;
  } else if (success) {
    consecutive_failures_[replica_index] = 0;
  }
  if (stalled) {
    ++stall_count_[replica_index];
    ++stats_.stalls;
  }
  const ReplicaHealth before = health_[replica_index];
  ReplicaHealth after = ReplicaHealth::kHealthy;
  if (dead ||
      consecutive_failures_[replica_index] >=
          options_.quarantine_after_failures ||
      stall_count_[replica_index] >= options_.quarantine_after_stalls)
    after = ReplicaHealth::kQuarantined;
  else if (consecutive_failures_[replica_index] >=
               options_.degrade_after_failures ||
           stall_count_[replica_index] > 0)
    after = ReplicaHealth::kDegraded;
  if (before != ReplicaHealth::kQuarantined) health_[replica_index] = after;
  return before != ReplicaHealth::kQuarantined &&
         health_[replica_index] == ReplicaHealth::kQuarantined;
}

bool ServingPool::handle_quarantine(std::size_t replica_index) {
  if (!options_.rebuild_quarantined) return false;
  // A rebuilt replica models a re-flashed device: fresh submitter, fault
  // injector dead-flag cleared, health and supervision counters reset. The
  // swap is safe without further coordination — only this replica's own
  // dispatcher thread ever touches replicas_[replica_index].
  std::unique_ptr<Submitter> rebuilt;
  try {
    rebuilt = make_submitter(program_, kind_, options_.segments,
                             options_.workers_per_replica,
                             options_.stage_queue_capacity, injector_.get(),
                             static_cast<int>(replica_index));
  } catch (...) {
    return false;  // rebuild failed: retire the replica
  }
  if (injector_) injector_->revive(static_cast<int>(replica_index));
  replicas_[replica_index] = std::move(rebuilt);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    health_[replica_index] = ReplicaHealth::kHealthy;
    consecutive_failures_[replica_index] = 0;
    stall_count_[replica_index] = 0;
    ++stats_.rebuilds;
  }
  cv_not_full_.notify_all();  // an active replica is back
  return true;
}

void ServingPool::retry_or_fail(Queued&& request, const std::string& error,
                                std::size_t replica_index,
                                std::int64_t dispatch_seq) {
  request.last_replica = static_cast<int>(replica_index);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (request.attempts > options_.max_retries ||
      fleet_unrecoverable_locked()) {
    ServingResult outcome;
    outcome.status = RequestStatus::kReplicaFailed;
    outcome.error = error;
    outcome.attempts = request.attempts;
    outcome.dispatch_seq = dispatch_seq;
    resolve(std::move(request), std::move(outcome));
    return;
  }
  // Bounded exponential backoff before the next attempt; inference is pure,
  // so re-running the same codes on another replica is always safe.
  const double backoff_ms =
      std::min(options_.backoff_cap_ms,
               options_.backoff_base_ms *
                   std::pow(2.0, static_cast<double>(request.attempts - 1)));
  request.not_before = Clock::now() + ms_duration(backoff_ms);
  ++stats_.retries;
  queue_.push_back(std::move(request));
  cv_not_empty_.notify_all();
}

void ServingPool::replica_main(std::size_t replica_index) {
  for (;;) {
    std::vector<Queued> work = acquire_work(replica_index);
    if (work.empty()) return;  // closed and drained

    std::int64_t dispatch_seq = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      dispatch_seq = next_dispatch_seq_++;
      ++stats_.dispatches;
      dispatched_requests_ += static_cast<std::int64_t>(work.size());
    }

    // The request keeps its codes: a failed dispatch re-queues the same
    // tensor for retry on another replica.
    std::vector<TensorI> codes;
    codes.reserve(work.size());
    for (const Queued& request : work) codes.push_back(request.codes);

    std::vector<hw::AccelRunResult> results;
    bool failed = false, bad_request = false, dead = false;
    std::string error_text;
    const auto begin = Clock::now();
    try {
      results = replicas_[replica_index]->submit(codes);
    } catch (const ReplicaDeadError& e) {
      failed = dead = true;
      error_text = e.what();
    } catch (const ContractViolation& e) {
      // Deterministic request errors (malformed codes) are the caller's
      // fault, not the replica's: the retry path still bounds them, but
      // they never poison the replica's health.
      failed = bad_request = true;
      error_text = e.what();
    } catch (const std::exception& e) {
      failed = true;
      error_text = e.what();
    } catch (...) {
      failed = true;
      error_text = "unknown replica error";
    }
    const double duration_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            Clock::now() - begin)
            .count();
    const bool stalled = options_.stall_timeout_ms > 0.0 &&
                         duration_ms > options_.stall_timeout_ms;

    const bool just_quarantined = record_dispatch_health(
        replica_index, /*success=*/!failed, /*replica_fault=*/
        failed && !bad_request, stalled, dead);
    bool serving = true;
    if (just_quarantined) serving = handle_quarantine(replica_index);

    if (!failed) {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t i = 0; i < work.size(); ++i) {
        ServingResult outcome;
        outcome.status = RequestStatus::kOk;
        outcome.result = std::move(results[i]);
        outcome.attempts = work[i].attempts;
        outcome.replica = static_cast<int>(replica_index);
        outcome.dispatch_seq = dispatch_seq;
        resolve(std::move(work[i]), std::move(outcome));
      }
    } else {
      for (Queued& request : work)
        retry_or_fail(std::move(request), error_text, replica_index,
                      dispatch_seq);
    }

    if (!serving) {
      // Retiring (quarantined with rebuild off, or the rebuild failed). If
      // the fleet cannot recover, nothing will ever drain the queue: fail
      // it fast, and wake producers blocked on a queue no replica will
      // empty.
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++retired_replicas_;
        if (fleet_unrecoverable_locked())
          flush_queue(RequestStatus::kReplicaFailed,
                      "no active replicas remain");
      }
      cv_not_empty_.notify_all();
      cv_not_full_.notify_all();
      return;
    }
  }
}

ServingPool::BatchRun ServingPool::run_batch(const std::vector<TensorI>& codes,
                                             const RequestOptions& request) {
  BatchRun run;
  std::vector<std::future<ServingResult>> tickets;
  tickets.reserve(codes.size());
  for (const TensorI& image : codes) {
    Request typed;
    typed.codes = image;
    typed.options = request;
    tickets.push_back(submit(std::move(typed)));
  }
  run.results.reserve(codes.size());
  for (auto& ticket : tickets) run.results.push_back(ticket.get());
  return run;
}

std::size_t ServingPool::BatchRun::ok_count() const {
  std::size_t ok = 0;
  for (const ServingResult& r : results)
    if (r.status == RequestStatus::kOk) ++ok;
  return ok;
}

namespace {
double percentile(std::vector<double> sorted_samples, double q) {
  if (sorted_samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_samples.size() - 1));
  return sorted_samples[rank];
}
}  // namespace

void ServingPool::reset_stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_ = ServingStats{};
  stats_.per_replica.assign(replicas_.size(), 0);
  latencies_ms_.clear();
  dispatched_requests_ = 0;
  saw_admit_ = false;
}

ServingStats ServingPool::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  ServingStats out = stats_;
  out.replica_health = health_;
  out.active_replicas = active_replicas_locked();
  std::vector<double> samples = latencies_ms_;
  const std::int64_t dispatched = dispatched_requests_;
  const bool windowed = saw_admit_ && (out.completed + out.failed) > 0;
  const double wall_s =
      windowed ? std::chrono::duration_cast<std::chrono::duration<double>>(
                     last_complete_ - first_admit_)
                     .count()
               : 0.0;
  lock.unlock();

  std::sort(samples.begin(), samples.end());
  out.p50_latency_ms = percentile(samples, 0.50);
  out.p99_latency_ms = percentile(samples, 0.99);
  out.mean_batch = out.dispatches > 0
                       ? static_cast<double>(dispatched) /
                             static_cast<double>(out.dispatches)
                       : 0.0;
  for (ClassStats& pc : out.per_class) {
    const std::int64_t accepted = pc.submitted - pc.rejected;
    pc.goodput = accepted > 0
                     ? static_cast<double>(pc.ok) /
                           static_cast<double>(accepted)
                     : 0.0;
  }
  out.wall_ms = wall_s * 1e3;
  out.wall_images_per_sec =
      wall_s > 0.0 ? static_cast<double>(out.completed) / wall_s : 0.0;
  if (out.bottleneck_cycles > 0 && out.active_replicas > 0) {
    const double image_s = static_cast<double>(out.bottleneck_cycles) *
                           program_.config().cycle_ns() * 1e-9;
    out.modeled_images_per_sec =
        static_cast<double>(out.active_replicas) / image_s;
  }
  return out;
}

}  // namespace rsnn::engine
