// StreamingExecutor: a persistent worker pool over a lowered LayerProgram.
//
// The batch API on hw::Accelerator spawns threads and allocates unit state
// per call; for high-throughput serving that overhead dominates small
// batches. The streaming executor instead keeps N workers alive for its
// whole lifetime, each owning one Engine instance — and therefore its
// pre-allocated unit simulators, ping-pong bookkeeping and per-op scratch
// (Accelerator::WorkerState) — so a warm stream performs no per-inference
// allocation in the hot path. Batches submitted with run_stream() are
// distributed dynamically (workers pull the next image index) and results
// are index-aligned and bit-identical to sequential execution.
//
// Throughput accounting: every run_stream() records wall time and derives
// images/sec (the serving metric) alongside ns/inference (the latency
// metric the microbench tracks).
//
// Not reentrant: one run_stream() at a time (the caller is the stream).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/submitter.hpp"
#include "hw/accelerator.hpp"
#include "ir/layer_program.hpp"

namespace rsnn::engine {

/// Throughput record of the most recent run_stream() call.
struct StreamStats {
  std::int64_t images = 0;
  int workers = 0;
  double wall_ms = 0.0;
  double images_per_sec = 0.0;
  double ns_per_inference = 0.0;  ///< wall time / images (aggregate, not per-image latency)
};

class FaultInjector;

/// Tunables of a StreamingExecutor.
struct StreamOptions {
  /// Images a worker pulls per queue visit, handed as one call to the
  /// engine's batched entry (one prepared-weight traversal per chunk). The
  /// default of 8 is the microbench sweet spot on LeNet-scale models: big
  /// enough that the batched kernels amortize the weight stream (~1.7x over
  /// chunk 1), small enough that tail imbalance at batch ends stays
  /// negligible. Must be >= 1; forced to 1 under fault injection so fault
  /// plans replay against individual inference attempts.
  std::size_t chunk = 8;
};

class StreamingExecutor : public Submitter {
 public:
  /// Spawns `num_workers` persistent workers (hardware concurrency when
  /// <= 0), each constructing its own engine of `kind` over `program`.
  /// When `injector` is non-null, every image execution first consults it
  /// (as replica `replica_index`) — injected faults surface as the batch
  /// exception from run_stream(). The program (and its network) must
  /// outlive the executor; so must the injector.
  StreamingExecutor(const ir::LayerProgram& program, EngineKind kind,
                    int num_workers = 0, FaultInjector* injector = nullptr,
                    int replica_index = 0, StreamOptions options = {});
  ~StreamingExecutor();
  StreamingExecutor(const StreamingExecutor&) = delete;
  StreamingExecutor& operator=(const StreamingExecutor&) = delete;

  /// Run a batch of pre-encoded activation codes through the pool; results
  /// are index-aligned with `codes`.
  std::vector<hw::AccelRunResult> run_stream(const std::vector<TensorI>& codes);

  /// As run_stream(), reusing `results`' storage (resized to the batch).
  /// With a warm results vector and the fast path enabled, a whole batch
  /// executes without any heap allocation — the multi-inference batched
  /// entry point for serving loops.
  void run_stream_into(const std::vector<TensorI>& codes,
                       std::vector<hw::AccelRunResult>& results);

  /// Encode float images (values in [0,1)) and run them.
  std::vector<hw::AccelRunResult> run_stream_images(
      const std::vector<TensorF>& images);

  // Submitter: a monolithic serving replica — one simulated device, its
  // workers time-sharing it.
  std::vector<hw::AccelRunResult> submit(
      const std::vector<TensorI>& codes) override {
    return run_stream(codes);
  }
  int lanes() const override { return workers(); }
  std::string shape() const override {
    return "stream(" + std::to_string(workers()) + ")";
  }
  int devices() const override { return 1; }

  const StreamStats& last_stats() const { return stats_; }
  int workers() const { return static_cast<int>(threads_.size()); }
  EngineKind kind() const { return kind_; }

 private:
  void worker_main();

  const ir::LayerProgram& program_;
  EngineKind kind_;
  FaultInjector* injector_;  ///< optional, shared across the fleet
  const int replica_index_;
  const std::size_t chunk_;  ///< validated StreamOptions::chunk

  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::vector<TensorI>* batch_ = nullptr;
  std::vector<hw::AccelRunResult>* results_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;          ///< workers yet to check in this batch
  std::uint64_t generation_ = 0;    ///< bumped per submitted batch
  bool shutdown_ = false;
  std::exception_ptr error_;

  StreamStats stats_;
  std::vector<std::thread> threads_;
};

}  // namespace rsnn::engine
