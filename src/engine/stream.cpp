#include "engine/stream.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"
#include "engine/fault.hpp"

namespace rsnn::engine {

StreamingExecutor::StreamingExecutor(const ir::LayerProgram& program,
                                     EngineKind kind, int num_workers,
                                     FaultInjector* injector,
                                     int replica_index, StreamOptions options)
    : program_(program),
      kind_(kind),
      injector_(injector),
      replica_index_(replica_index),
      chunk_(options.chunk) {
  RSNN_REQUIRE(program.has_hw_annotations(),
               "streaming needs a hardware-lowered program");
  RSNN_REQUIRE(options.chunk >= 1,
               "StreamOptions::chunk must be >= 1 (got " << options.chunk
                                                         << ")");
  std::size_t workers =
      num_workers > 0 ? static_cast<std::size_t>(num_workers)
                      : std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(workers);
  try {
    for (std::size_t w = 0; w < workers; ++w)
      threads_.emplace_back([this] { worker_main(); });
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& thread : threads_) thread.join();
    throw;
  }
}

StreamingExecutor::~StreamingExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void StreamingExecutor::worker_main() {
  // Each worker constructs its engine (and thus its pre-allocated state)
  // once, on its own thread, and keeps it for the pool's lifetime.
  std::unique_ptr<Engine> engine;
  try {
    engine = make_engine(kind_, program_);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
    engine = nullptr;
  }

  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }

    // Drain: pull the next chunk of image indices until the batch is
    // exhausted, handing each chunk to the engine's batched entry so the
    // fast path traverses its prepared weights once per chunk instead of
    // once per image. Fault injection forces chunk size 1: injected fault
    // plans replay against individual inference attempts.
    const std::size_t stride = injector_ != nullptr ? 1 : chunk_;
    for (;;) {
      const std::size_t i = next_.fetch_add(stride);
      if (batch_ == nullptr || i >= batch_->size()) break;
      const std::size_t count = std::min(stride, batch_->size() - i);
      try {
        RSNN_REQUIRE(engine != nullptr, "worker engine failed to construct");
        if (injector_ != nullptr) injector_->before_attempt(replica_index_);
        engine->run_codes_batched_into(batch_->data() + i, count,
                                       results_->data() + i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
        next_.store(batch_->size());  // drain the queue: fail fast
      }
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

std::vector<hw::AccelRunResult> StreamingExecutor::run_stream(
    const std::vector<TensorI>& codes) {
  std::vector<hw::AccelRunResult> results(codes.size());
  run_stream_into(codes, results);
  return results;
}

void StreamingExecutor::run_stream_into(
    const std::vector<TensorI>& codes,
    std::vector<hw::AccelRunResult>& results) {
  results.resize(codes.size());
  // Reset before the empty-batch early return: last_stats() must describe
  // *this* call (a zeroed record), never a previous batch's throughput.
  stats_ = StreamStats{};
  stats_.workers = workers();
  if (codes.empty()) return;

  const auto begin = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &codes;
    results_ = &results;
    next_.store(0);
    active_ = threads_.size();
    ++generation_;
  }
  cv_work_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    batch_ = nullptr;
    results_ = nullptr;
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
  const auto end = std::chrono::steady_clock::now();

  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - begin)
          .count();
  stats_.images = static_cast<std::int64_t>(codes.size());
  stats_.wall_ms = seconds * 1e3;
  stats_.images_per_sec =
      seconds > 0.0 ? static_cast<double>(codes.size()) / seconds : 0.0;
  stats_.ns_per_inference =
      seconds * 1e9 / static_cast<double>(codes.size());
}

std::vector<hw::AccelRunResult> StreamingExecutor::run_stream_images(
    const std::vector<TensorF>& images) {
  std::vector<TensorI> codes;
  codes.reserve(images.size());
  const int T = program_.time_bits();
  for (const TensorF& image : images)
    codes.push_back(quant::encode_activations(image, T));
  return run_stream(codes);
}

}  // namespace rsnn::engine
