#include "engine/submitter.hpp"

#include "engine/pipeline.hpp"
#include "engine/stream.hpp"

namespace rsnn::engine {

std::unique_ptr<Submitter> make_submitter(
    const ir::LayerProgram& program, EngineKind kind,
    const std::vector<ir::ProgramSegment>& segments, int workers,
    std::size_t queue_capacity, FaultInjector* injector, int replica_index) {
  if (segments.empty())
    return std::make_unique<StreamingExecutor>(program, kind, workers,
                                               injector, replica_index);
  return std::make_unique<PipelineExecutor>(program, segments, kind,
                                            queue_capacity, injector,
                                            replica_index);
}

}  // namespace rsnn::engine
