// PipelineExecutor: pipeline-parallel execution of a partitioned program
// across multiple simulated accelerator instances.
//
// The accelerator is a layer-wise dataflow machine, so a LayerProgram cuts
// cleanly at op boundaries (ir::ProgramSegment). This executor models one
// device per segment: each stage is a persistent worker thread owning its
// own stage engine — and therefore its own pre-allocated execution state
// (the cycle-accurate stage owns an Accelerator::WorkerState) — and stages
// are connected by bounded queues carrying the activation codes that cross
// each cut. Images stream through the stages concurrently: stage 0 works on
// image i+1 while stage 1 finishes image i, which is how a multi-FPGA
// deployment of the paper's design would serve traffic.
//
// Results are index-aligned with the submitted batch. Logits are always
// bit-identical to monolithic execution. Timing depends on the segments'
// lowering mode (ir::ProgramSegment):
//   * inherited segments — per-op stats merge to exactly the monolithic
//     cycles / adder ops / traffic (tests/test_pipeline.cpp enforces this
//     for all four engines);
//   * re-lowered segments — each worker runs its stage's own per-device
//     program, so stage cycles reflect the device-local placement and are
//     allowed (and expected) to beat the inherited plan
//     (tests/test_relower.cpp).
//
// Not reentrant: one run_pipeline() at a time (the caller is the stream).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/submitter.hpp"
#include "hw/accelerator.hpp"
#include "ir/layer_program.hpp"

namespace rsnn::engine {

/// Throughput record of the most recent run_pipeline() call.
struct PipelineStats {
  std::int64_t images = 0;
  int stages = 0;
  double wall_ms = 0.0;
  double images_per_sec = 0.0;
  double ns_per_inference = 0.0;  ///< wall time / images (aggregate)
};

class FaultInjector;

class PipelineExecutor : public Submitter {
 public:
  /// Spawns one persistent worker per segment, each constructing its own
  /// stage engine of `kind` on its own thread. `segments` must be a
  /// contiguous partition of `program` (as produced by ir::make_segments or
  /// the compiler partitioners). Adjacent stages exchange work through
  /// bounded queues of `queue_capacity` in-flight images. When `injector`
  /// is non-null, stage 0 consults it (as replica `replica_index`) once per
  /// image — injected faults abort the batch and surface as the exception
  /// from run_pipeline(). The program (and its network) must outlive the
  /// executor; so must the injector.
  PipelineExecutor(const ir::LayerProgram& program,
                   std::vector<ir::ProgramSegment> segments, EngineKind kind,
                   std::size_t queue_capacity = 4,
                   FaultInjector* injector = nullptr, int replica_index = 0);
  ~PipelineExecutor();
  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  /// Stream a batch of pre-encoded activation codes through the stages;
  /// results are index-aligned with `codes` and carry the merged per-op
  /// stats of every stage plus the final stage's logits.
  std::vector<hw::AccelRunResult> run_pipeline(
      const std::vector<TensorI>& codes);

  /// Encode float images (values in [0,1)) and run them.
  std::vector<hw::AccelRunResult> run_pipeline_images(
      const std::vector<TensorF>& images);

  // Submitter: a pipelined serving replica — its segments must cover the
  // whole program (the constructor already enforces that), one simulated
  // device per stage.
  std::vector<hw::AccelRunResult> submit(
      const std::vector<TensorI>& codes) override {
    return run_pipeline(codes);
  }
  int lanes() const override { return stages(); }
  std::string shape() const override {
    return "pipeline(" + std::to_string(stages()) + ")";
  }
  int devices() const override { return stages(); }

  const PipelineStats& last_stats() const { return stats_; }
  int stages() const { return static_cast<int>(segments_.size()); }
  EngineKind kind() const { return kind_; }
  const std::vector<ir::ProgramSegment>& segments() const { return segments_; }
  /// True when the stages run re-lowered per-device programs.
  bool relowered() const { return segments_.front().is_relowered(); }

 private:
  /// One image in flight between stages: its batch index, the activation
  /// codes entering the next stage, and the upstream stages' merged stats.
  struct Token {
    std::size_t index = 0;
    TensorI codes;
    hw::AccelRunResult partial;
  };

  /// Bounded SPSC queue between adjacent stages. Push blocks on a full
  /// queue, pop on an empty one; both return false once the executor aborts
  /// (batch failure or shutdown) so stages can drain promptly.
  class BoundedQueue {
   public:
    BoundedQueue(std::size_t capacity, const std::atomic<bool>* abort)
        : capacity_(capacity), abort_(abort) {}
    bool push(Token&& token);
    bool pop(Token& token);
    void clear();
    /// Wake waiters after the abort flag was set. Passes through the queue
    /// mutex first: a waiter that read abort_ == false inside its wait
    /// predicate still holds the mutex, so acquiring it here orders this
    /// notification after that waiter blocks — without it the wakeup could
    /// land in the gap and be lost, deadlocking the stage.
    void notify_abort() {
      { const std::lock_guard<std::mutex> lock(mutex_); }
      cv_.notify_all();
    }

   private:
    const std::size_t capacity_;
    const std::atomic<bool>* abort_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Token> items_;
  };

  void stage_main(std::size_t stage);
  void record_error();
  void abort_batch();

  const ir::LayerProgram& program_;
  const std::vector<ir::ProgramSegment> segments_;
  EngineKind kind_;
  FaultInjector* injector_;  ///< optional, shared across the fleet
  const int replica_index_;

  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::vector<TensorI>* batch_ = nullptr;
  std::vector<hw::AccelRunResult>* results_ = nullptr;
  std::size_t active_ = 0;          ///< stages yet to finish this batch
  std::uint64_t generation_ = 0;    ///< bumped per submitted batch
  bool shutdown_ = false;
  std::exception_ptr error_;
  std::atomic<bool> abort_{false};

  std::vector<std::unique_ptr<BoundedQueue>> queues_;  ///< stage s -> s+1
  PipelineStats stats_;
  std::vector<std::thread> threads_;
};

}  // namespace rsnn::engine
