// Deterministic fault injection for the serving stack.
//
// The serving pool's failure story (replica supervision, retries, typed
// request outcomes) is only trustworthy if every failure mode has a
// reproducible test. A FaultPlan describes *when* faults fire — on a
// replica's Nth execution attempt, or per-attempt with a seeded
// probability — and a FaultInjector arms the plan across the fleet: each
// replica's executors (StreamingExecutor / PipelineExecutor, threaded
// through make_submitter) consult the injector before running an image.
//
// Three injectable faults:
//   * kError — the attempt throws ReplicaFaultError (a transient failure:
//     a dropped link packet, a flipped DRAM word caught by ECC). The
//     replica survives; the pool retries the work elsewhere.
//   * kStall — the attempt sleeps for `stall_ms` before executing (a
//     clock-domain hiccup, a hot DRAM bank). Work completes late; the pool
//     detects the stall from the dispatch duration.
//   * kKill  — the replica dies permanently: this and every later attempt
//     throws ReplicaDeadError until revive() (modelling a rebuilt replica —
//     a re-flashed bitstream) clears the dead flag.
//
// Determinism: the per-attempt ordinal is tracked per replica, and
// probabilistic faults draw from a per-replica Rng seeded with
// plan.seed + replica — so a given replica sees the same fault sequence at
// the same attempt ordinals on every run, regardless of how the OS
// schedules the other replicas.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace rsnn::engine {

/// Transient injected failure: the attempt is lost but the replica lives.
class ReplicaFaultError : public std::runtime_error {
 public:
  explicit ReplicaFaultError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Permanent injected failure: the replica is dead until revived.
class ReplicaDeadError : public ReplicaFaultError {
 public:
  explicit ReplicaDeadError(const std::string& what)
      : ReplicaFaultError(what) {}
};

enum class FaultKind { kError, kStall, kKill };

/// Canonical fault name: "err" / "stall" / "kill".
const char* fault_kind_name(FaultKind kind);

/// One arming rule: fire `kind` on `replica` (or every replica when -1)
/// either at an exact per-replica attempt ordinal, or per-attempt with a
/// seeded probability. Exactly one of `at_attempt` / `probability` should
/// be set; a spec with neither never fires.
struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  int replica = -1;             ///< target replica index; -1 = any replica
  std::int64_t at_attempt = 0;  ///< fire on this 1-based attempt (0 = off)
  double probability = 0.0;     ///< fire per attempt with this chance
  double stall_ms = 0.0;        ///< kStall: sleep this long, then execute
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> specs;
  bool empty() const { return specs.empty(); }
};

/// Parse a comma-separated fault plan, e.g.
///   "seed:42,kill:r2@5,stall:r0@3x25,err:p0.05,err:r1@7"
///   * seed:<u64>         — RNG seed for probabilistic specs
///   * kill:r<R>@<N>      — replica R dies permanently at its Nth attempt
///   * stall:r<R>@<N>x<MS>— replica R stalls MS milliseconds at attempt N
///   * err:r<R>@<N>       — replica R throws transiently at attempt N
///   * err:p<PROB>        — every attempt on every replica fails with
///                          probability PROB
/// Returns false (with a friendly one-liner in *error) on malformed input.
bool parse_fault_plan(const std::string& text, FaultPlan* plan,
                      std::string* error);

/// Human-readable plan summary, e.g. "kill:r2@5, err:p0.05 (seed 42)".
std::string describe_fault_plan(const FaultPlan& plan);

/// Arms a FaultPlan across a fleet of replicas. Thread-safe: one injector
/// is shared by every replica's executor workers.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int replicas);

  /// Consult the plan before one execution attempt on `replica`. Increments
  /// the replica's attempt ordinal, then applies the first matching spec:
  /// throws ReplicaFaultError / ReplicaDeadError, or sleeps (kStall) and
  /// returns. A dead replica throws on every attempt until revive().
  void before_attempt(int replica);

  bool is_dead(int replica) const;
  /// Clear the dead flag — the pool rebuilt the replica (fresh bitstream).
  void revive(int replica);

  std::int64_t attempts(int replica) const;
  std::int64_t injected_errors() const;
  std::int64_t injected_stalls() const;
  std::int64_t injected_kills() const;

 private:
  const FaultPlan plan_;
  mutable std::mutex mutex_;
  std::vector<std::int64_t> attempts_;
  std::vector<bool> dead_;
  std::vector<Rng> rngs_;  ///< per-replica streams: seed + replica index
  std::int64_t errors_ = 0;
  std::int64_t stalls_ = 0;
  std::int64_t kills_ = 0;
};

}  // namespace rsnn::engine
