// Engine: uniform execution interface over a lowered ir::LayerProgram.
//
// Five engines run the same program and must agree bit-identically on LeNet
// (logits, cycles, adder ops, traffic — enforced by
// tests/test_equivalence_packed.cpp):
//   * cycle_accurate — the simulator's default exact mode: the code-domain
//     fast path (hw::Accelerator, SimMode::kCycleAccurate) when the config
//     enables it, the stepped dataflow otherwise. Exact timing either way.
//   * stepped        — always the golden stepped dataflow on the bit-true
//     unit simulators (SimMode::kStepped). The anchor the fast path is
//     pinned against.
//   * analytic       — exact code-domain arithmetic + the program's
//     precomputed latency annotations (hw::Accelerator, SimMode::kAnalytic;
//     runs the fast-path kernels when the config enables them).
//   * behavioral     — the functional radix-SNN simulator (snn::RadixSnn):
//     event-driven spikes, no dataflow stepping; timing and traffic come
//     from the program annotations.
//   * reference      — the QuantizedNetwork integer reference model walked
//     directly over the program; timing and traffic from the annotations.
//
// Engines are not thread-safe: each one owns pre-allocated execution state
// (the cycle-accurate engine owns an Accelerator::WorkerState), so create
// one per worker thread — that is exactly what the StreamingExecutor does.
//
// Segment scope: an engine executes one ir::ProgramSegment — by default the
// whole program, but make_engine(kind, program, segment) builds a stage
// engine over a sub-program for pipeline-parallel execution. run_segment()
// is the uniform entry point: it consumes the activation codes entering the
// segment and yields per-op stats plus either logits (final segment) or the
// boundary codes crossing the downstream cut.
//
// Lifetime: an engine borrows the program (and, through it, the network);
// both must outlive the engine.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hw/accelerator.hpp"
#include "ir/layer_program.hpp"

namespace rsnn::engine {

enum class EngineKind {
  kCycleAccurate,
  kStepped,
  kAnalytic,
  kBehavioral,
  kReference
};

/// Canonical engine name: "cycle_accurate" / "stepped" / "analytic" /
/// "behavioral" / "reference".
const char* engine_name(EngineKind kind);

/// Parse an engine name (the canonical names plus the shorthand "cycle");
/// throws ContractViolation on unknown names.
EngineKind parse_engine(const std::string& name);

/// All five engine kinds, for parameterized tests and sweeps.
std::vector<EngineKind> all_engines();

/// What one segment-scoped run produces: the executed ops' stats, and the
/// activation codes crossing the downstream cut (empty on the final
/// segment, whose stats carry the logits instead).
struct SegmentRunResult {
  hw::AccelRunResult stats;
  TensorI boundary_codes;
};

class Engine {
 public:
  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  virtual EngineKind kind() const = 0;
  const char* name() const { return engine_name(kind()); }
  const ir::LayerProgram& program() const { return program_; }
  const ir::ProgramSegment& segment() const { return segment_; }

  /// Run the activation codes entering this engine's segment through its op
  /// range (shaped as segment().in_shape).
  virtual SegmentRunResult run_segment(const TensorI& codes) = 0;

  /// Run pre-encoded activation codes through the program. Whole-program
  /// engines only (a stage engine cannot produce logits on its own).
  hw::AccelRunResult run_codes(const TensorI& codes);

  /// As run_codes(), reusing `out`'s storage. The accelerator-backed
  /// engines forward to the zero-allocation fast path when it is enabled;
  /// the default delegates to run_codes().
  virtual void run_codes_into(const TensorI& codes, hw::AccelRunResult& out);

  /// Run `count` images through the engine, reusing the results' storage.
  /// The accelerator-backed engines forward to the batched fast path (one
  /// prepared-weight traversal for the whole batch) when it is enabled;
  /// the default loops run_codes_into(). Results are bit-identical to the
  /// sequential loop either way.
  virtual void run_codes_batched_into(const TensorI* codes, std::size_t count,
                                      hw::AccelRunResult* results);

  /// Encode a float image (values in [0,1)) and run it.
  hw::AccelRunResult run_image(const TensorF& image);

 protected:
  Engine(const ir::LayerProgram& program, ir::ProgramSegment segment)
      : program_(program), segment_(std::move(segment)) {}
  const ir::LayerProgram& program_;
  const ir::ProgramSegment segment_;
};

/// Create an engine of `kind` over a hardware-lowered program.
std::unique_ptr<Engine> make_engine(EngineKind kind,
                                    const ir::LayerProgram& program);

/// Create a stage engine of `kind` scoped to `segment` of `program`.
std::unique_ptr<Engine> make_engine(EngineKind kind,
                                    const ir::LayerProgram& program,
                                    const ir::ProgramSegment& segment);

}  // namespace rsnn::engine
