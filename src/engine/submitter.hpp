// Submitter: the uniform batch-submission interface a serving replica runs
// behind.
//
// A replica of the serving pool (engine::ServingPool) is one independent copy
// of the accelerator deployment — either a monolithic engine fronted by a
// StreamingExecutor worker pool, or a PipelineExecutor spreading the program's
// ProgramSegments across K simulated devices. The pool does not care which:
// both executors implement this interface, so replica shape is a construction-
// time choice (make_submitter) and the admission/dispatch machinery is written
// once against Submitter.
//
// Contract: submit() runs a batch of pre-encoded activation codes end to end
// through the whole program and returns results index-aligned with the input,
// bit-identical to monolithic single-image execution (the executors' own
// equivalence guarantees carry over). Submitters are not reentrant — one
// submit() at a time per instance; the pool gives each replica its own.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "hw/accelerator.hpp"
#include "ir/layer_program.hpp"

namespace rsnn::engine {

enum class EngineKind;
class FaultInjector;

class Submitter {
 public:
  virtual ~Submitter() = default;

  /// Run a batch of pre-encoded activation codes through the replica;
  /// results are index-aligned with `codes`.
  virtual std::vector<hw::AccelRunResult> submit(
      const std::vector<TensorI>& codes) = 0;

  /// Execution lanes backing the replica: streaming workers, or pipeline
  /// stages.
  virtual int lanes() const = 0;

  /// Short human-readable replica shape, e.g. "stream(1)" or "pipeline(3)".
  virtual std::string shape() const = 0;

  /// Simulated devices this replica occupies (1 for a monolithic replica,
  /// one per stage for a pipelined one).
  virtual int devices() const = 0;
};

/// Build one serving replica over `program`: a PipelineExecutor when
/// `segments` is non-empty (one device per segment), otherwise a monolithic
/// StreamingExecutor with `workers` persistent workers. `queue_capacity`
/// bounds the pipeline's inter-stage queues (ignored for monolithic
/// replicas). When `injector` is non-null the replica consults it (as
/// replica `replica_index`) before every execution attempt — the fault-
/// injection hook the chaos tests arm. The program — and, for re-lowered
/// segments, the segment vector's shared per-device programs — must outlive
/// the submitter; so must the injector.
std::unique_ptr<Submitter> make_submitter(
    const ir::LayerProgram& program, EngineKind kind,
    const std::vector<ir::ProgramSegment>& segments, int workers = 1,
    std::size_t queue_capacity = 4, FaultInjector* injector = nullptr,
    int replica_index = 0);

}  // namespace rsnn::engine
