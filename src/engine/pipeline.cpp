#include "engine/pipeline.hpp"

#include <chrono>
#include <utility>

#include "common/assert.hpp"
#include "engine/fault.hpp"

namespace rsnn::engine {

bool PipelineExecutor::BoundedQueue::push(Token&& token) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] {
    return items_.size() < capacity_ || abort_->load(std::memory_order_acquire);
  });
  if (abort_->load(std::memory_order_acquire)) return false;
  items_.push_back(std::move(token));
  cv_.notify_all();
  return true;
}

bool PipelineExecutor::BoundedQueue::pop(Token& token) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] {
    return !items_.empty() || abort_->load(std::memory_order_acquire);
  });
  if (items_.empty()) return false;  // aborted with nothing left to drain
  token = std::move(items_.front());
  items_.pop_front();
  cv_.notify_all();
  return true;
}

void PipelineExecutor::BoundedQueue::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  items_.clear();
}

PipelineExecutor::PipelineExecutor(const ir::LayerProgram& program,
                                   std::vector<ir::ProgramSegment> segments,
                                   EngineKind kind, std::size_t queue_capacity,
                                   FaultInjector* injector, int replica_index)
    : program_(program),
      segments_(std::move(segments)),
      kind_(kind),
      injector_(injector),
      replica_index_(replica_index) {
  RSNN_REQUIRE(program.has_hw_annotations(),
               "pipelining needs a hardware-lowered program");
  RSNN_REQUIRE(!segments_.empty(), "pipeline needs at least one segment");
  RSNN_REQUIRE(queue_capacity >= 1, "queue capacity must be positive");
  RSNN_REQUIRE(segments_.front().begin == 0 &&
                   segments_.back().end == program.size(),
               "segments must cover the whole program");
  for (std::size_t s = 0; s + 1 < segments_.size(); ++s)
    RSNN_REQUIRE(segments_[s].end == segments_[s + 1].begin,
                 "segments must be contiguous (segment " << s << " ends at "
                     << segments_[s].end << ", segment " << s + 1
                     << " begins at " << segments_[s + 1].begin << ")");
  for (std::size_t s = 0; s < segments_.size(); ++s)
    RSNN_REQUIRE(segments_[s].is_relowered() == segments_.front().is_relowered(),
                 "segments mix inherited and re-lowered annotations (segment "
                     << s << " differs from segment 0)");

  queues_.reserve(segments_.size() - 1);
  for (std::size_t s = 0; s + 1 < segments_.size(); ++s)
    queues_.push_back(std::make_unique<BoundedQueue>(queue_capacity, &abort_));

  threads_.reserve(segments_.size());
  try {
    for (std::size_t s = 0; s < segments_.size(); ++s)
      threads_.emplace_back([this, s] { stage_main(s); });
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& thread : threads_) thread.join();
    throw;
  }
}

PipelineExecutor::~PipelineExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void PipelineExecutor::record_error() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!error_) error_ = std::current_exception();
}

void PipelineExecutor::abort_batch() {
  abort_.store(true, std::memory_order_release);
  for (const auto& queue : queues_) queue->notify_abort();
}

void PipelineExecutor::stage_main(std::size_t stage) {
  // Each stage constructs its engine (and thus its pre-allocated state)
  // once, on its own thread, and keeps it for the executor's lifetime.
  std::unique_ptr<Engine> engine;
  try {
    engine = make_engine(kind_, program_, segments_[stage]);
  } catch (...) {
    record_error();
  }

  const bool is_first = stage == 0;
  const bool is_last = stage + 1 == segments_.size();
  const double cycle_ns = program_.config().cycle_ns();

  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }

    const std::size_t total = batch_->size();
    for (std::size_t processed = 0; processed < total; ++processed) {
      if (abort_.load(std::memory_order_acquire)) break;
      Token token;
      if (is_first) {
        token.index = processed;
        token.codes = (*batch_)[processed];
      } else if (!queues_[stage - 1]->pop(token)) {
        break;  // aborted upstream
      }
      try {
        RSNN_REQUIRE(engine != nullptr, "stage engine failed to construct");
        if (is_first && injector_ != nullptr)
          injector_->before_attempt(replica_index_);
        SegmentRunResult seg = engine->run_segment(token.codes);
        hw::merge_segment_result(token.partial, std::move(seg.stats));
        if (is_last) {
          hw::finalize_run(token.partial, cycle_ns);
          (*results_)[token.index] = std::move(token.partial);
        } else {
          token.codes = std::move(seg.boundary_codes);
          if (!queues_[stage]->push(std::move(token))) break;
        }
      } catch (...) {
        record_error();
        abort_batch();  // fail fast: unblock every stage
        break;
      }
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

std::vector<hw::AccelRunResult> PipelineExecutor::run_pipeline(
    const std::vector<TensorI>& codes) {
  std::vector<hw::AccelRunResult> results(codes.size());
  stats_ = PipelineStats{};
  stats_.stages = stages();
  if (codes.empty()) return results;

  const auto begin = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& queue : queues_) queue->clear();  // stale aborted tokens
    abort_.store(false, std::memory_order_release);
    batch_ = &codes;
    results_ = &results;
    active_ = threads_.size();
    ++generation_;
  }
  cv_work_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    batch_ = nullptr;
    results_ = nullptr;
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
  const auto end = std::chrono::steady_clock::now();

  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - begin)
          .count();
  stats_.images = static_cast<std::int64_t>(codes.size());
  stats_.wall_ms = seconds * 1e3;
  stats_.images_per_sec =
      seconds > 0.0 ? static_cast<double>(codes.size()) / seconds : 0.0;
  stats_.ns_per_inference = seconds * 1e9 / static_cast<double>(codes.size());
  return results;
}

std::vector<hw::AccelRunResult> PipelineExecutor::run_pipeline_images(
    const std::vector<TensorF>& images) {
  std::vector<TensorI> codes;
  codes.reserve(images.size());
  const int T = program_.time_bits();
  for (const TensorF& image : images)
    codes.push_back(quant::encode_activations(image, T));
  return run_pipeline(codes);
}

}  // namespace rsnn::engine
