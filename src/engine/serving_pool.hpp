// ServingPool: replicated, fault-tolerant serving of a lowered LayerProgram
// behind one bounded admission queue.
//
// PR 3/4 made the pipeline segment the unit of compilation and execution;
// this module combines those pipeline stages with data-parallel replication,
// which is how the paper's accelerator would serve heavy traffic: a fleet of
// N identical deployments (each a monolithic device or a K-stage multi-FPGA
// pipeline), all fed from a single admission queue.
//
//     clients --> [ bounded admission queue | policy ] --> replica 0
//                      (EDF within priority class)    --> replica 1
//                                                     --> ...
//
// Every replica is a Submitter (engine-agnostic: StreamingExecutor or
// PipelineExecutor), owned by one dispatcher thread that pulls work from the
// queue per the admission policy:
//   * kFifo   — dispatch requests one at a time; a full queue blocks the
//     producer (backpressure by blocking).
//   * kBatch  — accumulate up to max_batch requests before dispatching, but
//     never hold the oldest request past its max-wait deadline: a deadline
//     that expires with a single pending item dispatches that item alone.
//     A full queue blocks the producer. Under overload (queue occupancy at
//     or above overload_shrink_occupancy) the accumulation window shrinks
//     to zero — dispatch whatever is pending rather than waiting for
//     company the queue already has.
//   * kReject — FIFO dispatch, but a full queue sheds new work immediately
//     (a ready future with RequestStatus::kRejected) instead of blocking —
//     the load-shedding policy for latency-sensitive front ends.
//
// Request lifecycle (every submitted request resolves with exactly one
// typed RequestStatus — there are no invalid futures and no hangs):
//
//   submit ──> rejected (queue full under kReject / bulk evicted / closed)
//     │
//     ▼              deadline passed before dispatch
//   queued ─────────────────────────────────────────> deadline-exceeded
//     │  EDF within class; latency class first
//     ▼
//   dispatched ──ok──> ok
//     │  replica threw (injected or real)
//     ▼
//   retry with bounded exponential backoff on a different healthy replica
//     │  attempts exhausted, or no replica left
//     ▼
//   replica-failed            (cancelled: undispatched at shutdown(false))
//
// Replica supervision: each replica carries a health state machine
// (healthy -> degraded -> quarantined) driven by consecutive dispatch
// failures and stall detections (a dispatch whose wall duration exceeds
// stall_timeout_ms). Quarantined replicas stop serving; with
// rebuild_quarantined set they are rebuilt via make_submitter (and the
// fault injector's dead flag revived) and rejoin the fleet. If every
// replica quarantines, queued and future work fails fast with
// kReplicaFailed instead of waiting forever.
//
// Inference is pure — a retried request recomputes exactly the same logits
// — so retry-elsewhere is always safe. The correctness contract carries
// over from PR 5: results delivered with status kOk are bit-identical to
// monolithic execution for every replica shape and policy
// (tests/test_serving.cpp, tests/test_faults.cpp cross-check logits, the
// latter under seeded fault plans).
//
// Shutdown is graceful: work that was admitted is always completed — the
// destructor drains the queue (retries included) before joining the
// dispatchers, so futures obtained from submit() remain valid and resolve
// across pool destruction. shutdown(/*drain=*/false) instead cancels
// undispatched work with kCancelled (in-flight dispatches still complete).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/fault.hpp"
#include "engine/submitter.hpp"
#include "hw/accelerator.hpp"
#include "ir/layer_program.hpp"

namespace rsnn::engine {

enum class AdmissionPolicy { kFifo, kBatch, kReject };

/// Canonical policy name: "fifo" / "batch" / "reject".
const char* policy_name(AdmissionPolicy policy);

/// Parse a policy name; throws ContractViolation on unknown names.
AdmissionPolicy parse_policy(const std::string& name);

/// Friendly one-line diagnostic for a policy name the CLI cannot parse;
/// empty when `name` is valid.
std::string policy_parse_error(const std::string& name);

/// Typed outcome of one serving request — every future resolves with
/// exactly one of these.
enum class RequestStatus {
  kOk,                ///< served; `result` holds the logits and stats
  kRejected,          ///< shed at admission (full queue / bulk eviction)
  kDeadlineExceeded,  ///< expired in the queue before any replica ran it
  kReplicaFailed,     ///< every (bounded) attempt failed
  kCancelled,         ///< undispatched when shutdown(false) cancelled it
};

/// Canonical status name: "ok" / "rejected" / "deadline_exceeded" /
/// "replica_failed" / "cancelled".
const char* status_name(RequestStatus status);

/// Request priority class: the latency lane is dispatched first and is the
/// last to be shed; the bulk lane absorbs overload.
enum class PriorityClass { kLatency, kBulk };
inline constexpr int kNumPriorityClasses = 2;

/// Canonical class name: "latency" / "bulk".
const char* priority_name(PriorityClass priority);

/// How a request behaves at the admission queue.
enum class AdmissionMode {
  /// Block while the queue is full (under the blocking policies); a full
  /// queue holding undispatched bulk work may evict its newest bulk request
  /// to admit latency-class work. The submit() default.
  kBlocking,
  /// Never block and never evict: a full queue (or a closed pool) resolves
  /// the request immediately with kRejected — the polite probe try_submit()
  /// is built on.
  kNonBlocking,
};

/// Per-request submission options.
struct RequestOptions {
  PriorityClass priority = PriorityClass::kLatency;
  /// Deadline relative to admission; 0 = none. A request whose deadline
  /// passes while still queued fails fast with kDeadlineExceeded instead of
  /// occupying a replica. Dispatch order within a class is earliest-
  /// deadline-first (deadline-less requests rank last, FIFO among
  /// themselves).
  double deadline_ms = 0.0;
  AdmissionMode admission = AdmissionMode::kBlocking;
};

/// The unified typed serving request: every admission path — in-process
/// callers, the CLI --serve loop, and the rsnn_serve wire protocol — builds
/// one of these and hands it to ServingPool::submit(Request) (directly, or
/// routed by model_id through a serve::ModelRegistry). The legacy
/// submit(codes)/try_submit/run_batch entry points are thin wrappers that
/// construct a Request internally.
struct Request {
  /// Routing key. Empty targets whichever pool receives the request; a
  /// non-empty id must match the pool's configured model_id or the request
  /// resolves kRejected without queueing (the registry normally routes
  /// before this check — it backstops misrouted direct submissions).
  std::string model_id;
  TensorI codes;  ///< pre-encoded activation codes (CHW, T-bit)
  RequestOptions options;
};

/// What a serving future resolves to.
struct ServingResult {
  RequestStatus status = RequestStatus::kCancelled;
  hw::AccelRunResult result;  ///< valid when status == kOk
  std::string error;          ///< diagnostic for non-ok outcomes
  int attempts = 0;           ///< dispatch attempts consumed (1 = no retry)
  int replica = -1;           ///< replica that served it (kOk only)
  /// Global dispatch sequence number of the final attempt (-1 when never
  /// dispatched) — lets tests assert dispatch ordering (EDF, class
  /// priority) without racing on wall clocks.
  std::int64_t dispatch_seq = -1;
};

/// Replica health, as driven by the supervision thresholds.
enum class ReplicaHealth { kHealthy, kDegraded, kQuarantined };

/// Canonical health name: "healthy" / "degraded" / "quarantined".
const char* health_name(ReplicaHealth health);

struct ServingPoolOptions {
  /// Model id this pool serves, checked against Request::model_id (empty
  /// accepts only unrouted requests — see Request::model_id).
  std::string model_id;
  /// Identical replicas behind the queue (>= 1).
  int replicas = 1;
  /// Replica shape: a K-stage pipeline over these segments when non-empty
  /// (must cover the whole program), a monolithic engine otherwise.
  std::vector<ir::ProgramSegment> segments;
  /// Streaming workers per monolithic replica (ignored for pipelined
  /// replicas, whose lanes are their stages).
  int workers_per_replica = 1;
  /// Inter-stage queue depth inside each pipelined replica.
  std::size_t stage_queue_capacity = 4;

  /// Admission-queue capacity in requests. Must be >= 1 for the blocking
  /// policies; 0 is legal only with kReject (every request is shed — the
  /// drain-for-maintenance configuration). Retried requests re-enter the
  /// queue without counting against the capacity (they were admitted once).
  std::size_t queue_capacity = 64;
  AdmissionPolicy policy = AdmissionPolicy::kFifo;
  /// kBatch: dispatch as soon as this many requests accumulated (>= 1).
  std::size_t max_batch = 8;
  /// kBatch: never hold the oldest pending request longer than this.
  double max_wait_ms = 1.0;
  /// kBatch: at or above this queue occupancy (fraction of capacity) the
  /// accumulation window shrinks to zero — graceful degradation under
  /// sustained overload.
  double overload_shrink_occupancy = 0.5;

  // --- fault tolerance ---
  /// Failed dispatch attempts are retried (preferentially on a different
  /// healthy replica) up to this many times before the request resolves
  /// with kReplicaFailed. 0 disables retry.
  int max_retries = 2;
  /// Exponential backoff before each retry: base * 2^(attempt-1), capped.
  double backoff_base_ms = 0.1;
  double backoff_cap_ms = 10.0;
  /// A dispatch whose wall duration exceeds this counts as a stall for the
  /// replica's health (its results are still delivered). 0 disables stall
  /// detection.
  double stall_timeout_ms = 0.0;
  /// Consecutive dispatch failures before a replica degrades / quarantines.
  int degrade_after_failures = 1;
  int quarantine_after_failures = 3;
  /// Stall detections (not necessarily consecutive) before quarantine.
  int quarantine_after_stalls = 2;
  /// Rebuild quarantined replicas via make_submitter (reviving the fault
  /// injector's dead flag) instead of retiring them.
  bool rebuild_quarantined = false;
  /// Deterministic fault plan armed across the fleet; empty = no injection.
  FaultPlan fault_plan;
};

/// Per-priority-class slice of the pool statistics.
struct ClassStats {
  std::int64_t submitted = 0;  ///< admission attempts (admitted + shed)
  std::int64_t ok = 0;
  std::int64_t rejected = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  /// ok / (submitted - rejected): of the work the pool accepted, how much
  /// it actually served. The fault_sweep bench's availability metric.
  double goodput = 0.0;
};

/// Cumulative pool statistics (since construction). Latency percentiles are
/// wall-clock admission-to-completion times of kOk requests; the modeled
/// fields translate the replicas' cycle counts into deployed-fleet hardware
/// throughput.
struct ServingStats {
  std::int64_t submitted = 0;   ///< admitted requests
  std::int64_t rejected = 0;    ///< shed (admission backpressure + eviction)
  std::int64_t completed = 0;   ///< resolved kOk
  std::int64_t failed = 0;      ///< resolved kReplicaFailed
  std::int64_t deadline_exceeded = 0;  ///< resolved kDeadlineExceeded
  std::int64_t cancelled = 0;   ///< resolved kCancelled
  std::int64_t dispatches = 0;  ///< batches handed to replicas
  double mean_batch = 0.0;      ///< dispatched requests / dispatches
  std::int64_t retries = 0;     ///< requests re-queued after a failure
  std::int64_t replica_failures = 0;  ///< failed dispatch attempts
  std::int64_t stalls = 0;      ///< dispatches exceeding stall_timeout_ms
  std::int64_t rebuilds = 0;    ///< quarantined replicas rebuilt
  std::int64_t shed_bulk = 0;   ///< bulk requests evicted for latency work
  std::int64_t window_shrinks = 0;  ///< batch windows zeroed by overload
  ClassStats per_class[kNumPriorityClasses];  ///< by PriorityClass
  double wall_ms = 0.0;         ///< first admission to last completion
  double wall_images_per_sec = 0.0;    ///< simulator wall-clock throughput
  double p50_latency_ms = 0.0;  ///< wall-clock, queueing + service, kOk only
  double p99_latency_ms = 0.0;
  /// Modeled hardware throughput of the replicated deployment:
  /// active replicas * clock_hz / bottleneck_cycles, from measured
  /// per-image stage cycles (0 until a request completes).
  double modeled_images_per_sec = 0.0;
  std::int64_t bottleneck_cycles = 0;  ///< worst measured stage, per image
  std::vector<std::int64_t> per_replica;  ///< images served by each replica
  std::vector<ReplicaHealth> replica_health;
  int active_replicas = 0;  ///< replicas not quarantined
};

class ServingPool {
 public:
  /// Spawns `options.replicas` dispatcher threads, each owning one replica
  /// (make_submitter over `program` / `options.segments`). The program (and
  /// its network, and any re-lowered segment programs) must outlive the
  /// pool.
  ServingPool(const ir::LayerProgram& program, EngineKind kind,
              ServingPoolOptions options);
  ~ServingPool();
  ServingPool(const ServingPool&) = delete;
  ServingPool& operator=(const ServingPool&) = delete;

  /// The single typed admission path — every other entry point (the legacy
  /// wrappers below, the CLI --serve loop, the rsnn_serve wire protocol via
  /// serve::ModelRegistry) funnels through here. Always returns a valid
  /// future resolving with exactly one typed RequestStatus: a mismatched
  /// model_id, a closed pool, or a full queue under kNonBlocking /
  /// kReject resolve immediately with kRejected. Under kBlocking a full
  /// queue blocks (kFifo/kBatch) and may evict the newest undispatched
  /// bulk request to admit latency-class work (degradation order: bulk
  /// first). `admitted`, when given, reports whether the request entered
  /// the queue (false = the returned future is already resolved).
  std::future<ServingResult> submit(Request request,
                                    bool* admitted = nullptr);

  /// Thin wrapper over submit(Request): admit one request of pre-encoded
  /// activation codes with no routing key, honoring
  /// `request.admission` (kBlocking by default).
  std::future<ServingResult> submit(TensorI codes,
                                    const RequestOptions& request = {});

  /// Thin wrapper over submit(Request) with admission forced to
  /// kNonBlocking: returns false (and leaves `ticket` untouched) when the
  /// queue is full or the pool is shutting down. No bulk eviction — this is
  /// the polite probe.
  bool try_submit(TensorI codes, std::future<ServingResult>* ticket,
                  const RequestOptions& request = {});

  /// Convenience wrapper over submit(Request): submit the whole batch (per
  /// the pool's policy), wait for every request, and return results
  /// index-aligned with `codes`.
  struct BatchRun {
    std::vector<ServingResult> results;
    /// Requests resolved kOk.
    std::size_t ok_count() const;
  };
  BatchRun run_batch(const std::vector<TensorI>& codes,
                     const RequestOptions& request = {});

  /// The routing key this pool serves (ServingPoolOptions::model_id).
  const std::string& model_id() const { return options_.model_id; }

  /// Stop admitting work. drain=true completes everything already admitted
  /// (the destructor's behavior); drain=false resolves undispatched queued
  /// requests with kCancelled (in-flight dispatches still complete).
  /// Idempotent; safe to call before destruction.
  void shutdown(bool drain = true);

  /// Snapshot of the cumulative statistics (percentiles computed here).
  ServingStats stats() const;

  /// Zero the cumulative statistics — e.g. after a warm-up batch, so a
  /// measurement window excludes cold-start engine construction. Health
  /// state and the fault injector's attempt ordinals are preserved.
  void reset_stats();

  int replicas() const { return static_cast<int>(replica_threads_.size()); }
  /// Simulated devices across the fleet (replicas * stages-or-1).
  int devices() const;
  EngineKind kind() const { return kind_; }
  const ServingPoolOptions& options() const { return options_; }
  /// Shape of replica 0 (all replicas are identical), e.g. "pipeline(2)".
  std::string replica_shape() const;
  /// The armed fault injector; nullptr when the plan is empty.
  const FaultInjector* fault_injector() const { return injector_.get(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Queued {
    TensorI codes;
    std::promise<ServingResult> promise;
    Clock::time_point admitted;
    Clock::time_point deadline;    ///< time_point::max() when none
    Clock::time_point not_before;  ///< retry backoff gate
    PriorityClass priority = PriorityClass::kLatency;
    int attempts = 0;       ///< dispatch attempts consumed so far
    int last_replica = -1;  ///< replica of the last failed attempt
    std::uint64_t seq = 0;  ///< admission order, FIFO tiebreak
  };

  void replica_main(std::size_t replica_index);
  /// Pop the next dispatch per the admission policy (EDF within class,
  /// latency class first, honoring backoff gates and retry-elsewhere);
  /// fails expired requests fast. Empty once the pool is closed and
  /// drained, or this replica should stop serving.
  std::vector<Queued> acquire_work(std::size_t replica_index);
  bool admit(TensorI&& codes, const RequestOptions& request,
             std::future<ServingResult>* ticket, bool blocking,
             bool allow_evict);
  /// Record the outcome in stats_ and fulfill the promise, in that order —
  /// a caller that observes a resolved future must also observe its
  /// completion in stats(). Requires mutex_ held (set_value runs no user
  /// code, so fulfilling under the lock cannot deadlock).
  void resolve(Queued&& request, ServingResult&& outcome);
  /// Re-queue a failed request with backoff, or fail it typed once its
  /// attempts are exhausted (or no replica remains to serve it).
  void retry_or_fail(Queued&& request, const std::string& error,
                     std::size_t replica_index, std::int64_t dispatch_seq);
  /// Health bookkeeping after a dispatch. `replica_fault` excludes
  /// deterministic request errors (ContractViolation), which never poison
  /// the replica's health; `dead` (a ReplicaDeadError) quarantines
  /// immediately. Returns true when the replica just transitioned to
  /// quarantined.
  bool record_dispatch_health(std::size_t replica_index, bool success,
                              bool replica_fault, bool stalled, bool dead);
  /// Handle this replica's quarantine: rebuild (when configured) or retire.
  /// Returns false when the replica thread should exit.
  bool handle_quarantine(std::size_t replica_index);
  /// Fail every queued request with `status` (used when the last active
  /// replica retires, and by shutdown(false)).
  void flush_queue(RequestStatus status, const std::string& error);
  std::int64_t worst_stage_cycles(const hw::AccelRunResult& result) const;
  int active_replicas_locked() const;
  /// True when no replica is active and none can come back: with
  /// rebuild_quarantined, a quarantine is a transient state (the replica's
  /// own thread rebuilds it synchronously), so the fleet is only
  /// unrecoverable once every replica thread has actually retired.
  bool fleet_unrecoverable_locked() const;

  const ir::LayerProgram& program_;
  EngineKind kind_;
  const ServingPoolOptions options_;
  std::unique_ptr<FaultInjector> injector_;  ///< armed when plan non-empty

  mutable std::mutex mutex_;
  std::condition_variable cv_not_empty_;
  std::condition_variable cv_not_full_;
  std::deque<Queued> queue_;
  bool closed_ = false;
  std::uint64_t next_seq_ = 0;
  std::int64_t next_dispatch_seq_ = 0;

  // Supervision state, guarded by mutex_.
  std::vector<ReplicaHealth> health_;
  std::vector<int> consecutive_failures_;
  std::vector<int> stall_count_;
  std::size_t retired_replicas_ = 0;  ///< replica threads that have exited

  // Statistics, guarded by mutex_.
  ServingStats stats_;
  std::int64_t dispatched_requests_ = 0;  ///< for mean_batch
  std::vector<double> latencies_ms_;
  Clock::time_point first_admit_;
  Clock::time_point last_complete_;
  bool saw_admit_ = false;

  std::vector<std::unique_ptr<Submitter>> replicas_;
  std::vector<std::thread> replica_threads_;
};

}  // namespace rsnn::engine
