// ServingPool: replicated serving of a lowered LayerProgram behind one
// bounded admission queue.
//
// PR 3/4 made the pipeline segment the unit of compilation and execution;
// this module combines those pipeline stages with data-parallel replication,
// which is how the paper's accelerator would serve heavy traffic: a fleet of
// N identical deployments (each a monolithic device or a K-stage multi-FPGA
// pipeline), all fed from a single admission queue.
//
//     clients --> [ bounded admission queue | policy ] --> replica 0
//                                                      --> replica 1
//                                                      --> ...
//
// Every replica is a Submitter (engine-agnostic: StreamingExecutor or
// PipelineExecutor), owned by one dispatcher thread that pulls work from the
// queue per the admission policy:
//   * kFifo   — dispatch requests one at a time in arrival order; a full
//     queue blocks the producer (backpressure by blocking).
//   * kBatch  — accumulate up to max_batch requests before dispatching, but
//     never hold the oldest request past its max-wait deadline: a deadline
//     that expires with a single pending item dispatches that item alone.
//     A full queue blocks the producer.
//   * kReject — FIFO dispatch, but a full queue rejects new work immediately
//     (submit() returns an invalid future) instead of blocking — the
//     load-shedding policy for latency-sensitive front ends.
//
// Correctness contract: results are bit-identical to monolithic execution
// for every replica shape and policy (tests/test_serving.cpp cross-checks
// logits across pool configurations). Shutdown is graceful: work that was
// admitted is always completed — the destructor drains the queue before
// joining the dispatchers, so futures obtained from submit() remain valid
// across pool destruction.
//
// Throughput accounting: the pool records wall-clock per-request latency
// (admission to completion — queueing plus service) and derives p50/p99, and
// models the *hardware* fleet throughput from the replicas' measured cycle
// counts: replicas * clock / bottleneck-stage cycles. On a simulator host
// with few cores the wall-clock numbers measure the simulator, while the
// modeled numbers measure the deployment being simulated; the serving
// benchmarks report both.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/submitter.hpp"
#include "hw/accelerator.hpp"
#include "ir/layer_program.hpp"

namespace rsnn::engine {

enum class AdmissionPolicy { kFifo, kBatch, kReject };

/// Canonical policy name: "fifo" / "batch" / "reject".
const char* policy_name(AdmissionPolicy policy);

/// Parse a policy name; throws ContractViolation on unknown names.
AdmissionPolicy parse_policy(const std::string& name);

/// Friendly one-line diagnostic for a policy name the CLI cannot parse;
/// empty when `name` is valid.
std::string policy_parse_error(const std::string& name);

struct ServingPoolOptions {
  /// Identical replicas behind the queue (>= 1).
  int replicas = 1;
  /// Replica shape: a K-stage pipeline over these segments when non-empty
  /// (must cover the whole program), a monolithic engine otherwise.
  std::vector<ir::ProgramSegment> segments;
  /// Streaming workers per monolithic replica (ignored for pipelined
  /// replicas, whose lanes are their stages).
  int workers_per_replica = 1;
  /// Inter-stage queue depth inside each pipelined replica.
  std::size_t stage_queue_capacity = 4;

  /// Admission-queue capacity in requests. Must be >= 1 for the blocking
  /// policies; 0 is legal only with kReject (every request is shed — the
  /// drain-for-maintenance configuration).
  std::size_t queue_capacity = 64;
  AdmissionPolicy policy = AdmissionPolicy::kFifo;
  /// kBatch: dispatch as soon as this many requests accumulated (>= 1).
  std::size_t max_batch = 8;
  /// kBatch: never hold the oldest pending request longer than this.
  double max_wait_ms = 1.0;
};

/// Cumulative pool statistics (since construction). Latency percentiles are
/// wall-clock admission-to-completion times; the modeled fields translate
/// the replicas' cycle counts into deployed-fleet hardware throughput.
struct ServingStats {
  std::int64_t submitted = 0;   ///< admitted requests
  std::int64_t rejected = 0;    ///< shed by kReject backpressure
  std::int64_t completed = 0;
  std::int64_t failed = 0;      ///< completed exceptionally
  std::int64_t dispatches = 0;  ///< batches handed to replicas
  double mean_batch = 0.0;      ///< (completed + failed) / dispatches
  double wall_ms = 0.0;         ///< first admission to last completion
  double wall_images_per_sec = 0.0;    ///< simulator wall-clock throughput
  double p50_latency_ms = 0.0;  ///< wall-clock, queueing + service
  double p99_latency_ms = 0.0;
  /// Modeled hardware throughput of the replicated deployment:
  /// replicas * clock_hz / bottleneck_cycles, from measured per-image stage
  /// cycles (0 until a request completes).
  double modeled_images_per_sec = 0.0;
  std::int64_t bottleneck_cycles = 0;  ///< worst measured stage, per image
  std::vector<std::int64_t> per_replica;  ///< images served by each replica
};

class ServingPool {
 public:
  /// Spawns `options.replicas` dispatcher threads, each owning one replica
  /// (make_submitter over `program` / `options.segments`). The program (and
  /// its network, and any re-lowered segment programs) must outlive the
  /// pool.
  ServingPool(const ir::LayerProgram& program, EngineKind kind,
              ServingPoolOptions options);
  ~ServingPool();
  ServingPool(const ServingPool&) = delete;
  ServingPool& operator=(const ServingPool&) = delete;

  /// Admit one request of pre-encoded activation codes. Blocks while the
  /// queue is full under kFifo/kBatch; under kReject a full queue sheds the
  /// request and returns an invalid future (future.valid() == false).
  std::future<hw::AccelRunResult> submit(TensorI codes);

  /// Non-blocking admission under any policy: returns false (and leaves
  /// `ticket` untouched) when the queue is full or the pool is shutting
  /// down.
  bool try_submit(TensorI codes, std::future<hw::AccelRunResult>* ticket);

  /// Convenience: submit the whole batch (per the pool's policy), wait for
  /// every admitted request, and return results index-aligned with `codes`.
  /// `accepted[i]` is false for requests shed by kReject; their result slot
  /// is default-constructed.
  struct BatchRun {
    std::vector<hw::AccelRunResult> results;
    std::vector<bool> accepted;
  };
  BatchRun run_batch(const std::vector<TensorI>& codes);

  /// Snapshot of the cumulative statistics (percentiles computed here).
  ServingStats stats() const;

  /// Zero the cumulative statistics — e.g. after a warm-up batch, so a
  /// measurement window excludes cold-start engine construction.
  void reset_stats();

  int replicas() const { return static_cast<int>(replica_threads_.size()); }
  /// Simulated devices across the fleet (replicas * stages-or-1).
  int devices() const;
  EngineKind kind() const { return kind_; }
  const ServingPoolOptions& options() const { return options_; }
  /// Shape of replica 0 (all replicas are identical), e.g. "pipeline(2)".
  std::string replica_shape() const;

 private:
  struct Request {
    TensorI codes;
    std::promise<hw::AccelRunResult> promise;
    std::chrono::steady_clock::time_point admitted;
  };

  void replica_main(std::size_t replica_index);
  /// Pop the next dispatch per the admission policy; empty once the pool is
  /// closed and drained.
  std::vector<Request> acquire_work();
  bool admit(TensorI&& codes, std::future<hw::AccelRunResult>* ticket,
             bool blocking);
  void record_dispatch(std::size_t replica_index, std::size_t count,
                       const std::vector<double>& latencies_ms,
                       std::int64_t worst_stage_cycles, bool failed);
  /// Worst per-stage cycle count of one completed image (total cycles for a
  /// monolithic replica) — the measured pipeline bottleneck.
  std::int64_t worst_stage_cycles(const hw::AccelRunResult& result) const;

  const ir::LayerProgram& program_;
  EngineKind kind_;
  const ServingPoolOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_not_empty_;
  std::condition_variable cv_not_full_;
  std::deque<Request> queue_;
  bool closed_ = false;

  // Statistics, guarded by mutex_.
  ServingStats stats_;
  std::vector<double> latencies_ms_;
  std::chrono::steady_clock::time_point first_admit_;
  std::chrono::steady_clock::time_point last_complete_;
  bool saw_admit_ = false;

  std::vector<std::unique_ptr<Submitter>> replicas_;
  std::vector<std::thread> replica_threads_;
};

}  // namespace rsnn::engine
