#include "quant/quantize.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/fake_quant.hpp"
#include "quant/fold.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pool2d.hpp"

namespace rsnn::quant {
namespace {

bool is_power_of_two(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

int log2_exact(std::int64_t v) {
  int log = 0;
  while ((std::int64_t{1} << log) < v) ++log;
  return log;
}

/// Bias values scaled into the accumulator domain: B = round(b * 2^(T+f)).
TensorI64 scale_bias(const TensorF& bias, int time_bits, int frac_bits) {
  TensorI64 out(bias.shape());
  const double scale = std::ldexp(1.0, time_bits + frac_bits);
  for (std::int64_t i = 0; i < bias.numel(); ++i)
    out.at_flat(i) =
        static_cast<std::int64_t>(std::llround(static_cast<double>(bias.at_flat(i)) * scale));
  return out;
}

/// Per-output-channel quantization of a weight tensor whose leading axis is
/// the output channel. Fills `weight_out` (int grid values), `bias_out`
/// (channel-scaled) and `channel_frac`.
void quantize_per_channel(const TensorF& weights, const TensorF& bias,
                          int weight_bits, int time_bits, TensorI& weight_out,
                          TensorI64& bias_out, TensorI& channel_frac) {
  const std::int64_t channels = weights.dim(0);
  const std::int64_t per_channel = weights.numel() / channels;
  weight_out = TensorI(weights.shape());
  bias_out = TensorI64(Shape{channels});
  channel_frac = TensorI(Shape{channels});

  for (std::int64_t c = 0; c < channels; ++c) {
    TensorF slice(Shape{per_channel});
    for (std::int64_t i = 0; i < per_channel; ++i)
      slice.at_flat(i) = weights.at_flat(c * per_channel + i);
    const int f = choose_frac_bits(slice, weight_bits);
    channel_frac.at_flat(c) = f;
    const TensorI q = quantize_weights(slice, f, weight_bits);
    for (std::int64_t i = 0; i < per_channel; ++i)
      weight_out.at_flat(c * per_channel + i) = q.at_flat(i);
    const double scale = std::ldexp(1.0, time_bits + f);
    bias_out.at_flat(c) = static_cast<std::int64_t>(
        std::llround(static_cast<double>(bias.at_flat(c)) * scale));
  }
}

/// True if layer index `i` is the last parameterized layer of the network.
bool is_last_parameterized(const nn::Network& network, int index) {
  for (int j = index + 1; j < network.num_layers(); ++j) {
    const auto& layer = const_cast<nn::Network&>(network).layer(j);
    if (dynamic_cast<const nn::Conv2d*>(&layer) != nullptr ||
        dynamic_cast<const nn::Linear*>(&layer) != nullptr)
      return false;
  }
  return true;
}

}  // namespace

// The weight grid is defined once in nn/fake_quant so that QAT training and
// conversion are guaranteed to agree; these wrappers keep the quant API.
int choose_frac_bits(const TensorF& weights, int weight_bits) {
  return nn::choose_weight_frac_bits(weights, weight_bits);
}

TensorI quantize_weights(const TensorF& weights, int frac_bits,
                         int weight_bits) {
  return nn::quantize_weights_to_int(weights, frac_bits, weight_bits);
}

QuantizedNetwork quantize(const nn::Network& network,
                          const QuantizeConfig& config) {
  RSNN_REQUIRE(config.time_bits >= 1 && config.time_bits <= 16);
  auto& net = const_cast<nn::Network&>(network);  // layer() is non-const only

  QuantizedNetwork qnet;
  qnet.time_bits = config.time_bits;
  qnet.weight_bits = config.weight_bits;
  qnet.input_shape = network.input_shape();

  for (int i = 0; i < net.num_layers(); ++i) {
    nn::Layer& layer = net.layer(i);

    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      QConv2d q;
      q.in_channels = conv->config().in_channels;
      q.out_channels = conv->config().out_channels;
      q.kernel = conv->config().kernel;
      q.stride = conv->config().stride;
      q.padding = conv->config().padding;
      if (config.per_channel) {
        quantize_per_channel(conv->weight().value, conv->bias().value,
                             config.weight_bits, config.time_bits, q.weight,
                             q.bias, q.channel_frac);
      } else {
        q.frac_bits =
            choose_frac_bits(conv->weight().value, config.weight_bits);
        q.weight = quantize_weights(conv->weight().value, q.frac_bits,
                                    config.weight_bits);
        q.bias = scale_bias(conv->bias().value, config.time_bits, q.frac_bits);
      }
      q.requantize = !is_last_parameterized(network, i);
      qnet.layers.emplace_back(std::move(q));
    } else if (auto* fc = dynamic_cast<nn::Linear*>(&layer)) {
      QLinear q;
      q.in_features = fc->config().in_features;
      q.out_features = fc->config().out_features;
      if (config.per_channel) {
        quantize_per_channel(fc->weight().value, fc->bias().value,
                             config.weight_bits, config.time_bits, q.weight,
                             q.bias, q.channel_frac);
      } else {
        q.frac_bits = choose_frac_bits(fc->weight().value, config.weight_bits);
        q.weight = quantize_weights(fc->weight().value, q.frac_bits,
                                    config.weight_bits);
        q.bias = scale_bias(fc->bias().value, config.time_bits, q.frac_bits);
      }
      q.requantize = !is_last_parameterized(network, i);
      qnet.layers.emplace_back(std::move(q));
    } else if (auto* pool = dynamic_cast<nn::Pool2d*>(&layer)) {
      RSNN_REQUIRE(pool->config().kind == nn::PoolKind::kAverage,
                   "accelerator supports average pooling only");
      RSNN_REQUIRE(pool->config().effective_stride() == pool->config().kernel,
                   "pooling stride must equal kernel");
      RSNN_REQUIRE(is_power_of_two(pool->config().kernel),
                   "pooling kernel must be a power of two");
      QPool2d q;
      q.kernel = pool->config().kernel;
      q.shift = 2 * log2_exact(pool->config().kernel);
      qnet.layers.emplace_back(q);
    } else if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
      qnet.layers.emplace_back(QFlatten{});
    } else if (dynamic_cast<nn::BatchNorm2d*>(&layer) != nullptr) {
      // Normalization must have been absorbed into the preceding conv.
      RSNN_REQUIRE(!has_unfolded_batchnorm(network),
                   "network contains active BatchNorm2d layers; run "
                   "quant::fold_batchnorm before quantize");
    } else if (auto* act = dynamic_cast<nn::ClippedReLU*>(&layer)) {
      // Activation is absorbed into the preceding layer's requantizer; only
      // the canonical ceiling of 1.0 maps onto the radix grid.
      RSNN_REQUIRE(std::abs(act->config().ceiling - 1.0f) < 1e-6f,
                   "ClippedReLU ceiling must be 1.0 for radix conversion");
    } else {
      RSNN_REQUIRE(false, "unsupported layer for conversion: " << layer.name());
    }
  }

  RSNN_INFO("quantized network: " << qnet.num_params() << " params, "
                                  << qnet.param_bits() / 8 << " bytes");
  return qnet;
}

QuantEvalResult evaluate_quantized(const QuantizedNetwork& qnet,
                                   const std::vector<TensorF>& images,
                                   const std::vector<int>& labels) {
  RSNN_REQUIRE(images.size() == labels.size());
  QuantEvalResult result;
  result.total = static_cast<std::int64_t>(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    const TensorI input = encode_activations(images[i], qnet.time_bits);
    if (qnet.classify(input) == labels[i]) ++result.correct;
  }
  if (result.total > 0)
    result.accuracy =
        static_cast<double>(result.correct) / static_cast<double>(result.total);
  return result;
}

}  // namespace rsnn::quant
