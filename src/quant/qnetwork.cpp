#include "quant/qnetwork.hpp"

#include <cmath>
#include <sstream>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "ir/layer_program.hpp"

namespace rsnn::quant {
namespace {

TensorI64 conv_forward(const QConv2d& conv, const TensorI64& input,
                       int time_bits) {
  RSNN_REQUIRE(input.rank() == 3, "conv expects CHW");
  RSNN_REQUIRE(input.dim(0) == conv.in_channels, "conv channel mismatch");
  const std::int64_t ih = input.dim(1), iw = input.dim(2);
  const std::int64_t k = conv.kernel, str = conv.stride, pad = conv.padding;
  const std::int64_t oh = (ih + 2 * pad - k) / str + 1;
  const std::int64_t ow = (iw + 2 * pad - k) / str + 1;

  TensorI64 out(Shape{conv.out_channels, oh, ow});
  for (std::int64_t oc = 0; oc < conv.out_channels; ++oc) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        std::int64_t acc = 0;
        for (std::int64_t ic = 0; ic < conv.in_channels; ++ic) {
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t iy = oy * str + ky - pad;
            if (iy < 0 || iy >= ih) continue;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ix = ox * str + kx - pad;
              if (ix < 0 || ix >= iw) continue;
              acc += static_cast<std::int64_t>(conv.weight(oc, ic, ky, kx)) *
                     input(ic, iy, ix);
            }
          }
        }
        out(oc, oy, ox) =
            conv.requantize
                ? requantize_value(acc, conv.bias(oc), conv.frac_for(oc),
                                   time_bits)
                : acc + conv.bias(oc);
      }
    }
  }
  return out;
}

TensorI64 pool_forward(const QPool2d& pool, const TensorI64& input) {
  RSNN_REQUIRE(input.rank() == 3, "pool expects CHW");
  const std::int64_t ch = input.dim(0);
  const std::int64_t k = pool.kernel;
  const std::int64_t oh = input.dim(1) / k, ow = input.dim(2) / k;
  TensorI64 out(Shape{ch, oh, ow});
  for (std::int64_t c = 0; c < ch; ++c) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        std::int64_t acc = 0;
        for (std::int64_t ky = 0; ky < k; ++ky)
          for (std::int64_t kx = 0; kx < k; ++kx)
            acc += input(c, oy * k + ky, ox * k + kx);
        out(c, oy, ox) = acc >> pool.shift;
      }
    }
  }
  return out;
}

TensorI64 linear_forward(const QLinear& fc, const TensorI64& input,
                         int time_bits) {
  RSNN_REQUIRE(input.rank() == 1, "linear expects flat input");
  RSNN_REQUIRE(input.dim(0) == fc.in_features, "linear feature mismatch");
  TensorI64 out(Shape{fc.out_features});
  for (std::int64_t o = 0; o < fc.out_features; ++o) {
    std::int64_t acc = 0;
    for (std::int64_t i = 0; i < fc.in_features; ++i)
      acc += static_cast<std::int64_t>(fc.weight(o, i)) * input(i);
    out(o) = fc.requantize
                 ? requantize_value(acc, fc.bias(o), fc.frac_for(o), time_bits)
                 : acc + fc.bias(o);
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> QuantizedNetwork::forward(const TensorI& input) const {
  return forward_traced(input, nullptr);
}

std::vector<std::int64_t> QuantizedNetwork::forward_traced(
    const TensorI& input, std::vector<TensorI64>* layer_outputs) const {
  RSNN_REQUIRE(input.shape() == input_shape,
               "input shape " << input.shape().to_string() << " != expected "
                              << input_shape.to_string());
  return forward_layers(input.cast<std::int64_t>(), 0, layers.size(),
                        layer_outputs)
      .to_vector();
}

TensorI64 QuantizedNetwork::forward_layers(
    const TensorI64& input, std::size_t begin, std::size_t end,
    std::vector<TensorI64>* layer_outputs) const {
  RSNN_REQUIRE(!layers.empty(), "empty network");
  RSNN_REQUIRE(begin < end && end <= layers.size(),
               "layer range [" << begin << ", " << end << ") outside [0, "
                               << layers.size() << ")");
  TensorI64 x = input;
  if (layer_outputs) layer_outputs->clear();

  // Lowered fresh per call: it can never be stale against `layers` (which is
  // publicly mutable), and its cost — a handful of small vector allocations —
  // is noise against the dense per-layer arithmetic below.
  const ir::LayerProgram program = ir::lower(*this);
  RSNN_REQUIRE(x.shape() == program.op(begin).in_shape,
               "input shape " << x.shape().to_string() << " != layer " << begin
                              << " input " << program.op(begin).in_shape.to_string());
  for (std::size_t li = begin; li < end; ++li) {
    const ir::LayerOp& op = program.op(li);
    switch (op.kind) {
      case ir::OpKind::kConv:
        x = conv_forward(*op.conv, x, time_bits);
        break;
      case ir::OpKind::kPool:
        x = pool_forward(*op.pool, x);
        break;
      case ir::OpKind::kLinear:
        x = linear_forward(*op.linear, x, time_bits);
        break;
      case ir::OpKind::kFlatten:
        x = x.reshaped(Shape{x.numel()});
        break;
    }
    if (layer_outputs) layer_outputs->push_back(x);
  }

  // Networks normally end in a linear layer; conv-only stacks (used in unit
  // tests) expose their final accumulators instead.
  return x;
}

int QuantizedNetwork::classify(const TensorI& input) const {
  const auto logits = forward(input);
  int best = 0;
  for (std::size_t c = 1; c < logits.size(); ++c)
    if (logits[c] > logits[static_cast<std::size_t>(best)])
      best = static_cast<int>(c);
  return best;
}

std::vector<Shape> QuantizedNetwork::layer_output_shapes() const {
  Shape shape = input_shape;
  std::vector<Shape> shapes;
  shapes.reserve(layers.size());
  for (const QLayer& layer : layers) {
    shape = ir::op_output_shape(layer, shape);
    shapes.push_back(shape);
  }
  return shapes;
}

std::int64_t QuantizedNetwork::num_params() const {
  std::int64_t n = 0;
  const ir::LayerProgram program = ir::lower(*this);
  for (const ir::LayerOp& op : program.ops()) {
    if (op.kind == ir::OpKind::kConv)
      n += op.conv->weight.numel() + op.conv->bias.numel();
    else if (op.kind == ir::OpKind::kLinear)
      n += op.linear->weight.numel() + op.linear->bias.numel();
  }
  return n;
}

std::int64_t QuantizedNetwork::param_bits() const {
  std::int64_t bits = 0;
  for (const QLayer& layer : layers)
    bits += ir::layer_param_bits(layer, weight_bits, time_bits);
  return bits;
}

std::string QuantizedNetwork::summary() const {
  std::ostringstream os;
  os << "QuantizedNetwork(T=" << time_bits << ", wbits=" << weight_bits
     << ", input=" << input_shape.to_string() << ")\n";
  const ir::LayerProgram program = ir::lower(*this);
  for (const ir::LayerOp& op : program.ops()) {
    os << "  [" << op.layer_index << "] ";
    switch (op.kind) {
      case ir::OpKind::kConv:
        os << "QConv2d(" << op.conv->in_channels << "->"
           << op.conv->out_channels << ", k=" << op.conv->kernel
           << ", f=" << op.conv->frac_bits
           << (op.conv->requantize ? "" : ", raw") << ")";
        break;
      case ir::OpKind::kPool:
        os << "QAvgPool2d(k=" << op.pool->kernel << ")";
        break;
      case ir::OpKind::kLinear:
        os << "QLinear(" << op.linear->in_features << "->"
           << op.linear->out_features << ", f=" << op.linear->frac_bits
           << (op.linear->requantize ? "" : ", raw") << ")";
        break;
      case ir::OpKind::kFlatten:
        os << "QFlatten";
        break;
    }
    os << " -> " << op.out_shape.to_string() << "\n";
  }
  return os.str();
}

TensorI encode_activations(const TensorF& image, int time_bits) {
  RSNN_REQUIRE(time_bits >= 1 && time_bits <= 30);
  const std::int64_t levels = std::int64_t{1} << time_bits;
  TensorI out(image.shape());
  for (std::int64_t i = 0; i < image.numel(); ++i) {
    const float a = image.at_flat(i);
    RSNN_REQUIRE(a >= 0.0f && a < 1.0f,
                 "activation " << a << " outside [0, 1)");
    out.at_flat(i) = static_cast<std::int32_t>(
        std::min<std::int64_t>(static_cast<std::int64_t>(a * static_cast<float>(levels)),
                               levels - 1));
  }
  return out;
}

}  // namespace rsnn::quant
