// QuantizedNetwork: the integer reference model of a converted SNN.
//
// This is the arithmetic contract shared by the radix-SNN functional
// simulator and the cycle-level accelerator: all three must produce
// bit-identical results (DESIGN.md invariants 1 and 2).
//
// Number system
// -------------
//   * Activations are unsigned T-bit integers A in [0, 2^T): the radix
//     encoding of a real activation a in [0, 1), A = floor(a * 2^T).
//     T is the spike train length ("time steps" in the paper).
//   * Weights are signed `weight_bits`-bit integers W with a per-layer
//     power-of-two scale 2^-f ("frac_bits" f): w ~= W * 2^-f.
//   * A conv/linear layer computes M = sum(W * A) in full precision
//     (paper: "partial sums are stored at full integer precision"), adds the
//     pre-scaled bias B = round(bias * 2^(T+f)), then requantizes:
//         A_out = clamp((M + B) >> f, 0, 2^T - 1)        [ReLU + requantize]
//     The shift-only requantizer is exactly what a multiplier-free FPGA
//     fabric implements (paper Sec. IV-A: carry logic + LUTs, no DSP).
//   * Average pooling over a k x k window (k a power of two) is
//         A_out = sum(A) >> (2 * log2(k))
//   * The final layer omits requantization and exposes raw accumulators
//     (membrane potentials); classification is their argmax.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bits.hpp"
#include "tensor/tensor.hpp"

namespace rsnn::quant {

/// Requantize an accumulator: add bias, shift by frac_bits, clamp to T bits.
/// Arithmetic right shift floors toward -inf, matching the hardware
/// truncating requantizer; negative frac_bits means scale-up (left shift).
/// The one copy of the requantizer rule, shared by the reference model and
/// the simulator fast path.
inline std::int64_t requantize_value(std::int64_t acc, std::int64_t bias,
                                     int frac_bits, int time_bits) {
  std::int64_t v = acc + bias;
  if (frac_bits >= 0)
    v >>= frac_bits;
  else
    v <<= -frac_bits;
  return saturate_unsigned(v, time_bits);
}

/// Quantized convolution parameters.
struct QConv2d {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 0;
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  TensorI weight;     ///< [Cout, Cin, K, K], signed, |w| < 2^(weight_bits-1)
  TensorI64 bias;     ///< [Cout], pre-scaled by 2^(T+frac_bits(oc))
  int frac_bits = 0;  ///< requantization shift f (may be negative)
  /// Optional per-output-channel shifts ([Cout]); empty means the uniform
  /// `frac_bits` applies. Per-channel scales stay powers of two, so the
  /// hardware requantizer remains a (per-channel-constant) shift.
  TensorI channel_frac;
  bool requantize = true;  ///< false for the network's final layer

  int frac_for(std::int64_t oc) const {
    return channel_frac.numel() > 0 ? channel_frac.at_flat(oc) : frac_bits;
  }
};

/// Quantized average pooling. Requires power-of-two kernel.
struct QPool2d {
  std::int64_t kernel = 2;
  int shift = 2;  ///< 2 * log2(kernel)
};

/// Quantized fully-connected parameters.
struct QLinear {
  std::int64_t in_features = 0;
  std::int64_t out_features = 0;
  TensorI weight;  ///< [out, in]
  TensorI64 bias;  ///< [out], pre-scaled by 2^(T+frac_bits(o))
  int frac_bits = 0;
  TensorI channel_frac;  ///< optional per-output shifts; see QConv2d
  bool requantize = true;

  int frac_for(std::int64_t o) const {
    return channel_frac.numel() > 0 ? channel_frac.at_flat(o) : frac_bits;
  }
};

/// Marker for the 2-D -> 1-D buffer transfer.
struct QFlatten {};

using QLayer = std::variant<QConv2d, QPool2d, QLinear, QFlatten>;

/// Integer-only network; see file comment for semantics.
class QuantizedNetwork {
 public:
  int time_bits = 0;    ///< T: activation bits == spike train length
  int weight_bits = 0;  ///< parameter resolution (3 in the paper)
  Shape input_shape;    ///< CHW of the T-bit input activation tensor
  std::vector<QLayer> layers;

  /// Reference integer inference for one sample.
  /// `input`: CHW tensor of T-bit activation codes.
  /// Returns the final layer's raw accumulators (logits), one per class.
  std::vector<std::int64_t> forward(const TensorI& input) const;

  /// As forward(), but also records every layer's output activation codes
  /// (for equivalence checks against the SNN / hardware simulators).
  std::vector<std::int64_t> forward_traced(
      const TensorI& input, std::vector<TensorI64>* layer_outputs) const;

  /// Partial forward over the layer range [begin, end): `input` must be
  /// shaped as layer `begin`'s input (requantized activation codes when
  /// begin > 0). Returns the tensor leaving layer end-1 — requantized codes
  /// for an interior range, raw accumulators when the range includes the
  /// final layer. Records each layer's output into `layer_outputs` if given.
  /// This is the entry point for segment-scoped execution (pipeline stages
  /// execute contiguous sub-programs).
  TensorI64 forward_layers(const TensorI64& input, std::size_t begin,
                           std::size_t end,
                           std::vector<TensorI64>* layer_outputs) const;

  /// argmax of forward().
  int classify(const TensorI& input) const;

  /// Shapes after each layer (flatten collapses CHW to C).
  std::vector<Shape> layer_output_shapes() const;

  /// Total parameter (weight + bias) count.
  std::int64_t num_params() const;

  /// Parameter storage in bits: weights at weight_bits each, biases at
  /// (time_bits + frac_bits + weight_bits + 8) each — used by the memory
  /// planner to decide BRAM vs DRAM placement.
  std::int64_t param_bits() const;

  std::string summary() const;
};

/// Encode a float image (values in [0,1)) into T-bit activation codes.
TensorI encode_activations(const TensorF& image, int time_bits);

}  // namespace rsnn::quant
