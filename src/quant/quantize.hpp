// ANN-to-SNN conversion (the role of E3NE [14] in the paper's flow).
//
// Takes a float network trained with ClippedReLU(ceiling=1) activations and
// produces a QuantizedNetwork with:
//   * signed `weight_bits`-bit weights under a per-layer power-of-two scale
//     chosen to maximize resolution without clipping,
//   * biases pre-scaled into the accumulator domain,
//   * T-bit activation requantization between layers (radix encoding).
#pragma once

#include "nn/network.hpp"
#include "quant/qnetwork.hpp"

namespace rsnn::quant {

struct QuantizeConfig {
  int weight_bits = 3;  ///< paper Sec. IV-A: "resolution ... set to 3 bits"
  int time_bits = 4;    ///< spike train length T
  /// Per-output-channel power-of-two weight scales instead of one scale per
  /// layer. Channels with small weights gain resolution; the hardware
  /// requantizer stays a shift (one constant per channel in the output
  /// logic). Off by default to match the paper's per-layer description.
  bool per_channel = false;
};

/// Convert a trained float network. Throws if the architecture contains
/// layers the accelerator does not support (e.g. max pooling, non-ClippedReLU
/// activations between parameterized layers).
QuantizedNetwork quantize(const nn::Network& network,
                          const QuantizeConfig& config);

/// Pick the largest power-of-two scale exponent f such that
/// round(w * 2^f) fits in `weight_bits` signed bits for all weights.
int choose_frac_bits(const TensorF& weights, int weight_bits);

/// Round weights onto the grid: W = round(w * 2^f), clamped to the signed
/// range of weight_bits.
TensorI quantize_weights(const TensorF& weights, int frac_bits, int weight_bits);

/// Evaluate a quantized network's classification accuracy on a float dataset
/// (images in [0,1)); encodes inputs at the network's T.
struct QuantEvalResult {
  double accuracy = 0.0;
  std::int64_t correct = 0;
  std::int64_t total = 0;
};
QuantEvalResult evaluate_quantized(const QuantizedNetwork& qnet,
                                   const std::vector<TensorF>& images,
                                   const std::vector<int>& labels);

}  // namespace rsnn::quant
