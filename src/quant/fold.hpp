// BatchNorm folding — the conversion pre-pass that absorbs normalization
// into the preceding convolution, exactly (inference semantics):
//
//   scale_c = gamma_c / sqrt(var_c + eps)
//   w'[c,:,:,:] = w[c,:,:,:] * scale_c
//   b'[c]       = (b[c] - mean_c) * scale_c + beta_c
//
// After folding, the BatchNorm2d layer is neutralized to an exact identity
// (gamma=1, beta=0, mean=0, var=1-eps) so it can stay in the layer stack;
// quant::quantize accepts only neutralized batch norms.
#pragma once

#include "nn/network.hpp"

namespace rsnn::quant {

/// Fold every Conv2d -> BatchNorm2d pair in place. Returns the number of
/// batch norms folded. Throws if a BatchNorm2d is not directly preceded by
/// a biased Conv2d.
int fold_batchnorm(nn::Network& network);

/// True if the given network contains a BatchNorm2d that has not been
/// neutralized by fold_batchnorm.
bool has_unfolded_batchnorm(const nn::Network& network);

}  // namespace rsnn::quant
