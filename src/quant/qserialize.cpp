#include "quant/qserialize.hpp"

#include <cstdint>
#include <fstream>

#include "common/assert.hpp"
#include "ir/layer_program.hpp"

namespace rsnn::quant {
namespace {

constexpr char kMagic[4] = {'Q', 'S', 'N', 'N'};
constexpr std::uint32_t kVersion = 2;  // v2 added per-channel requantizer shifts

enum class LayerTag : std::uint32_t {
  kConv = 1,
  kPool = 2,
  kLinear = 3,
  kFlatten = 4,
};

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i32(std::ostream& os, std::int32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::int32_t read_i32(std::istream& is) {
  std::int32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::int64_t read_i64(std::istream& is) {
  std::int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_shape(std::ostream& os, const Shape& shape) {
  write_u32(os, static_cast<std::uint32_t>(shape.rank()));
  for (int axis = 0; axis < shape.rank(); ++axis) write_i64(os, shape.dim(axis));
}

Shape read_shape(std::istream& is) {
  const std::uint32_t rank = read_u32(is);
  RSNN_REQUIRE(rank <= 8, "implausible tensor rank " << rank);
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) d = read_i64(is);
  return Shape{dims};
}

void write_tensor_i(std::ostream& os, const TensorI& t) {
  write_shape(os, t.shape());
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(std::int32_t)));
}

TensorI read_tensor_i(std::istream& is) {
  TensorI t(read_shape(is));
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(std::int32_t)));
  return t;
}

void write_tensor_i64(std::ostream& os, const TensorI64& t) {
  write_shape(os, t.shape());
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(std::int64_t)));
}

TensorI64 read_tensor_i64(std::istream& is) {
  TensorI64 t(read_shape(is));
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(std::int64_t)));
  return t;
}

}  // namespace

void save_quantized(const QuantizedNetwork& qnet, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  RSNN_REQUIRE(os.good(), "cannot open " << path << " for writing");

  os.write(kMagic, sizeof(kMagic));
  write_u32(os, kVersion);
  write_i32(os, qnet.time_bits);
  write_i32(os, qnet.weight_bits);
  write_shape(os, qnet.input_shape);
  write_u32(os, static_cast<std::uint32_t>(qnet.layers.size()));

  const ir::LayerProgram program = ir::lower(qnet);
  for (const ir::LayerOp& op : program.ops()) {
    switch (op.kind) {
      case ir::OpKind::kConv: {
        const QConv2d& conv = *op.conv;
        write_u32(os, static_cast<std::uint32_t>(LayerTag::kConv));
        write_i64(os, conv.in_channels);
        write_i64(os, conv.out_channels);
        write_i64(os, conv.kernel);
        write_i64(os, conv.stride);
        write_i64(os, conv.padding);
        write_i32(os, conv.frac_bits);
        write_i32(os, conv.requantize ? 1 : 0);
        write_i32(os, conv.channel_frac.numel() > 0 ? 1 : 0);
        write_tensor_i(os, conv.weight);
        write_tensor_i64(os, conv.bias);
        if (conv.channel_frac.numel() > 0) write_tensor_i(os, conv.channel_frac);
        break;
      }
      case ir::OpKind::kPool:
        write_u32(os, static_cast<std::uint32_t>(LayerTag::kPool));
        write_i64(os, op.pool->kernel);
        write_i32(os, op.pool->shift);
        break;
      case ir::OpKind::kLinear: {
        const QLinear& fc = *op.linear;
        write_u32(os, static_cast<std::uint32_t>(LayerTag::kLinear));
        write_i64(os, fc.in_features);
        write_i64(os, fc.out_features);
        write_i32(os, fc.frac_bits);
        write_i32(os, fc.requantize ? 1 : 0);
        write_i32(os, fc.channel_frac.numel() > 0 ? 1 : 0);
        write_tensor_i(os, fc.weight);
        write_tensor_i64(os, fc.bias);
        if (fc.channel_frac.numel() > 0) write_tensor_i(os, fc.channel_frac);
        break;
      }
      case ir::OpKind::kFlatten:
        write_u32(os, static_cast<std::uint32_t>(LayerTag::kFlatten));
        break;
    }
  }
  RSNN_REQUIRE(os.good(), "write failure on " << path);
}

QuantizedNetwork load_quantized(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  RSNN_REQUIRE(is.good(), "cannot open " << path << " for reading");

  char magic[4];
  is.read(magic, sizeof(magic));
  RSNN_REQUIRE(is.good() && std::equal(magic, magic + 4, kMagic),
               "bad magic in " << path);
  const std::uint32_t version = read_u32(is);
  RSNN_REQUIRE(version == kVersion, "unsupported .qsnn version " << version);

  QuantizedNetwork qnet;
  qnet.time_bits = read_i32(is);
  qnet.weight_bits = read_i32(is);
  RSNN_REQUIRE(qnet.time_bits >= 1 && qnet.time_bits <= 30, "corrupt header");
  qnet.input_shape = read_shape(is);
  const std::uint32_t layer_count = read_u32(is);
  RSNN_REQUIRE(layer_count <= 4096, "implausible layer count");

  for (std::uint32_t i = 0; i < layer_count; ++i) {
    const auto tag = static_cast<LayerTag>(read_u32(is));
    switch (tag) {
      case LayerTag::kConv: {
        QConv2d conv;
        conv.in_channels = read_i64(is);
        conv.out_channels = read_i64(is);
        conv.kernel = read_i64(is);
        conv.stride = read_i64(is);
        conv.padding = read_i64(is);
        conv.frac_bits = read_i32(is);
        conv.requantize = read_i32(is) != 0;
        const bool has_channel_frac = read_i32(is) != 0;
        conv.weight = read_tensor_i(is);
        conv.bias = read_tensor_i64(is);
        if (has_channel_frac) conv.channel_frac = read_tensor_i(is);
        qnet.layers.emplace_back(std::move(conv));
        break;
      }
      case LayerTag::kPool: {
        QPool2d pool;
        pool.kernel = read_i64(is);
        pool.shift = read_i32(is);
        qnet.layers.emplace_back(pool);
        break;
      }
      case LayerTag::kLinear: {
        QLinear fc;
        fc.in_features = read_i64(is);
        fc.out_features = read_i64(is);
        fc.frac_bits = read_i32(is);
        fc.requantize = read_i32(is) != 0;
        const bool has_channel_frac = read_i32(is) != 0;
        fc.weight = read_tensor_i(is);
        fc.bias = read_tensor_i64(is);
        if (has_channel_frac) fc.channel_frac = read_tensor_i(is);
        qnet.layers.emplace_back(std::move(fc));
        break;
      }
      case LayerTag::kFlatten:
        qnet.layers.emplace_back(QFlatten{});
        break;
      default:
        RSNN_REQUIRE(false, "unknown layer tag in " << path);
    }
    RSNN_REQUIRE(is.good(), "truncated file " << path);
  }
  return qnet;
}

bool is_quantized_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  char magic[4];
  is.read(magic, sizeof(magic));
  return is.good() && std::equal(magic, magic + 4, kMagic);
}

}  // namespace rsnn::quant
