// Binary save/load of converted (quantized) networks — the deployment
// artifact: unlike nn::serialize (float training checkpoints), a .qsnn file
// carries the full integer model (topology + weights + requantizer
// constants) and can be executed without the float network.
#pragma once

#include <string>

#include "quant/qnetwork.hpp"

namespace rsnn::quant {

/// Write `qnet` to `path`. Throws on I/O failure.
void save_quantized(const QuantizedNetwork& qnet, const std::string& path);

/// Load a network saved by save_quantized. Throws on malformed input.
QuantizedNetwork load_quantized(const std::string& path);

/// True if `path` exists and carries the .qsnn magic.
bool is_quantized_file(const std::string& path);

}  // namespace rsnn::quant
