#include "quant/fold.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"

namespace rsnn::quant {
namespace {

bool is_neutralized(const nn::BatchNorm2d& bn) {
  for (std::int64_t c = 0; c < bn.config().channels; ++c) {
    const float inv_std = 1.0f / std::sqrt(bn.running_var()(c) +
                                           bn.config().epsilon);
    const float scale = bn.gamma().value(c) * inv_std;
    const float shift =
        bn.beta().value(c) - bn.gamma().value(c) * bn.running_mean()(c) * inv_std;
    if (std::abs(scale - 1.0f) > 1e-5f || std::abs(shift) > 1e-6f) return false;
  }
  return true;
}

}  // namespace

int fold_batchnorm(nn::Network& network) {
  int folded = 0;
  for (int i = 0; i < network.num_layers(); ++i) {
    auto* bn = dynamic_cast<nn::BatchNorm2d*>(&network.layer(i));
    if (bn == nullptr || is_neutralized(*bn)) continue;

    RSNN_REQUIRE(i > 0, "BatchNorm2d at layer 0 has no conv to fold into");
    auto* conv = dynamic_cast<nn::Conv2d*>(&network.layer(i - 1));
    RSNN_REQUIRE(conv != nullptr,
                 "BatchNorm2d must directly follow a Conv2d to be folded");
    RSNN_REQUIRE(conv->config().has_bias,
                 "folding requires the preceding conv to have a bias");
    RSNN_REQUIRE(conv->config().out_channels == bn->config().channels,
                 "channel mismatch between conv and batch norm");

    const auto& cfg = conv->config();
    for (std::int64_t c = 0; c < cfg.out_channels; ++c) {
      const float inv_std =
          1.0f / std::sqrt(bn->running_var()(c) + bn->config().epsilon);
      const float scale = bn->gamma().value(c) * inv_std;
      for (std::int64_t ic = 0; ic < cfg.in_channels; ++ic)
        for (std::int64_t ky = 0; ky < cfg.kernel; ++ky)
          for (std::int64_t kx = 0; kx < cfg.kernel; ++kx)
            conv->weight().value(c, ic, ky, kx) *= scale;
      conv->bias().value(c) =
          (conv->bias().value(c) - bn->running_mean()(c)) * scale +
          bn->beta().value(c);
    }

    // Neutralize: var = 1 - eps makes inv_std exactly 1, so the layer is an
    // exact identity at inference.
    bn->gamma().value.fill(1.0f);
    bn->beta().value.fill(0.0f);
    bn->set_running_stats(TensorF(Shape{bn->config().channels}, 0.0f),
                          TensorF(Shape{bn->config().channels},
                                  1.0f - bn->config().epsilon));
    ++folded;
  }
  return folded;
}

bool has_unfolded_batchnorm(const nn::Network& network) {
  auto& net = const_cast<nn::Network&>(network);
  for (int i = 0; i < net.num_layers(); ++i) {
    const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(&net.layer(i));
    if (bn != nullptr && !is_neutralized(*bn)) return true;
  }
  return false;
}

}  // namespace rsnn::quant
