#include "serve/wire.hpp"

#include <cstdio>
#include <cstring>

namespace rsnn::serve {
namespace {

/// Decoded tensors must describe a sane shape before Shape's own contracts
/// see it — the wire is untrusted input, so malformed dims get a friendly
/// diagnostic, not a ContractViolation.
constexpr std::uint32_t kMaxTensorRank = 8;
constexpr std::int64_t kMaxTensorDim = 1 << 24;

void put_le(std::vector<std::uint8_t>* bytes, std::uint64_t value,
            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    bytes->push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
}

std::uint64_t get_le(const std::uint8_t* bytes, std::size_t n) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < n; ++i)
    value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return value;
}

/// Validate a wire byte as an enum with inclusive maximum `max_value`.
template <typename E>
bool enum_from_u8(std::uint8_t raw, std::uint8_t max_value, E* out) {
  if (raw > max_value) return false;
  *out = static_cast<E>(raw);
  return true;
}

std::string bad_enum(const char* what, std::uint8_t raw) {
  return std::string("malformed frame: bad ") + what + " value " +
         std::to_string(static_cast<int>(raw));
}

void write_health_vector(Writer* w,
                         const std::vector<engine::ReplicaHealth>& health) {
  w->u32(static_cast<std::uint32_t>(health.size()));
  for (const engine::ReplicaHealth h : health)
    w->u8(static_cast<std::uint8_t>(h));
}

std::string read_health_vector(Reader* r,
                               std::vector<engine::ReplicaHealth>* out) {
  const std::uint32_t count = r->u32();
  out->clear();
  for (std::uint32_t i = 0; i < count && r->ok(); ++i) {
    const std::uint8_t raw = r->u8();
    engine::ReplicaHealth health;
    if (!r->ok()) break;
    if (!enum_from_u8(raw, 2, &health)) return bad_enum("replica health", raw);
    out->push_back(health);
  }
  return {};
}

}  // namespace

const char* frame_name(FrameType type) {
  switch (type) {
    case FrameType::kInfer:
      return "infer";
    case FrameType::kLoadModel:
      return "load_model";
    case FrameType::kUnloadModel:
      return "unload_model";
    case FrameType::kHealth:
      return "health";
    case FrameType::kMetrics:
      return "metrics";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kInferReply:
      return "infer_reply";
    case FrameType::kLoadModelReply:
      return "load_model_reply";
    case FrameType::kUnloadModelReply:
      return "unload_model_reply";
    case FrameType::kHealthReply:
      return "health_reply";
    case FrameType::kMetricsReply:
      return "metrics_reply";
    case FrameType::kShutdownReply:
      return "shutdown_reply";
    case FrameType::kError:
      return "error";
  }
  return "unknown";
}

void encode_header(FrameType type, std::uint32_t payload_len,
                   std::uint8_t* out) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kHeaderBytes);
  put_le(&bytes, kMagic, 4);
  put_le(&bytes, kProtocolVersion, 2);
  put_le(&bytes, static_cast<std::uint16_t>(type), 2);
  put_le(&bytes, payload_len, 4);
  std::memcpy(out, bytes.data(), kHeaderBytes);
}

std::string decode_header(const std::uint8_t* bytes, FrameHeader* out) {
  const std::uint32_t magic = static_cast<std::uint32_t>(get_le(bytes, 4));
  if (magic != kMagic)
    return "bad magic 0x" + [magic] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", magic);
      return std::string(buf);
    }() + " (not an rsnn_serve frame)";
  out->version = static_cast<std::uint16_t>(get_le(bytes + 4, 2));
  if (out->version != kProtocolVersion)
    return "protocol version " + std::to_string(out->version) +
           " unsupported (this build speaks version " +
           std::to_string(kProtocolVersion) + ")";
  const std::uint16_t raw_type =
      static_cast<std::uint16_t>(get_le(bytes + 6, 2));
  out->type = static_cast<FrameType>(raw_type);
  if (std::string(frame_name(out->type)) == "unknown")
    return "unknown frame type " + std::to_string(raw_type);
  out->payload_len = static_cast<std::uint32_t>(get_le(bytes + 8, 4));
  if (out->payload_len > kMaxPayloadBytes)
    return "payload length " + std::to_string(out->payload_len) +
           " exceeds the " + std::to_string(kMaxPayloadBytes) + "-byte cap";
  return {};
}

// ----------------------------------------------------------------- Writer

void Writer::u8(std::uint8_t value) { put_le(&bytes_, value, 1); }
void Writer::u16(std::uint16_t value) { put_le(&bytes_, value, 2); }
void Writer::u32(std::uint32_t value) { put_le(&bytes_, value, 4); }
void Writer::u64(std::uint64_t value) { put_le(&bytes_, value, 8); }
void Writer::i32(std::int32_t value) {
  put_le(&bytes_, static_cast<std::uint32_t>(value), 4);
}
void Writer::i64(std::int64_t value) {
  put_le(&bytes_, static_cast<std::uint64_t>(value), 8);
}
void Writer::f64(double value) {
  std::uint64_t raw = 0;
  std::memcpy(&raw, &value, sizeof(raw));
  put_le(&bytes_, raw, 8);
}
void Writer::str(const std::string& value) {
  u32(static_cast<std::uint32_t>(value.size()));
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}
void Writer::tensor(const TensorI& value) {
  u32(static_cast<std::uint32_t>(value.shape().rank()));
  for (const std::int64_t dim : value.shape().dims()) i64(dim);
  for (std::int64_t i = 0; i < value.numel(); ++i) i32(value.data()[i]);
}

// ----------------------------------------------------------------- Reader

bool Reader::take(std::size_t n, const char* what) {
  if (!ok()) return false;
  if (size_ - pos_ < n) {
    fail(std::string("truncated frame: ") + what + " needs " +
         std::to_string(n) + " byte(s), " + std::to_string(size_ - pos_) +
         " left");
    return false;
  }
  return true;
}

void Reader::fail(const std::string& message) {
  if (error_.empty()) error_ = message;
}

std::uint8_t Reader::u8() {
  if (!take(1, "u8")) return 0;
  return static_cast<std::uint8_t>(get_le(data_ + pos_++, 1));
}
std::uint16_t Reader::u16() {
  if (!take(2, "u16")) return 0;
  const auto value = static_cast<std::uint16_t>(get_le(data_ + pos_, 2));
  pos_ += 2;
  return value;
}
std::uint32_t Reader::u32() {
  if (!take(4, "u32")) return 0;
  const auto value = static_cast<std::uint32_t>(get_le(data_ + pos_, 4));
  pos_ += 4;
  return value;
}
std::uint64_t Reader::u64() {
  if (!take(8, "u64")) return 0;
  const std::uint64_t value = get_le(data_ + pos_, 8);
  pos_ += 8;
  return value;
}
std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }
std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }
double Reader::f64() {
  const std::uint64_t raw = u64();
  double value = 0.0;
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}
std::string Reader::str() {
  const std::uint32_t len = u32();
  if (!take(len, "string body")) return {};
  std::string value(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return value;
}
TensorI Reader::tensor() {
  const std::uint32_t rank = u32();
  if (!ok()) return {};
  if (rank == 0 || rank > kMaxTensorRank) {
    fail("malformed frame: tensor rank " + std::to_string(rank) +
         " outside [1, " + std::to_string(kMaxTensorRank) + "]");
    return {};
  }
  std::vector<std::int64_t> dims;
  std::int64_t numel = 1;
  for (std::uint32_t d = 0; d < rank; ++d) {
    const std::int64_t dim = i64();
    if (!ok()) return {};
    if (dim < 1 || dim > kMaxTensorDim) {
      fail("malformed frame: tensor dim " + std::to_string(dim) +
           " outside [1, " + std::to_string(kMaxTensorDim) + "]");
      return {};
    }
    dims.push_back(dim);
    numel *= dim;
    if (numel > static_cast<std::int64_t>(kMaxPayloadBytes)) {
      fail("malformed frame: tensor larger than the payload cap");
      return {};
    }
  }
  // Size-check before allocating: the element bytes must actually be here.
  if (!take(static_cast<std::size_t>(numel) * 4, "tensor elements")) return {};
  std::vector<std::int32_t> data(static_cast<std::size_t>(numel));
  for (std::int64_t i = 0; i < numel; ++i) data[static_cast<std::size_t>(i)] = i32();
  return TensorI(Shape(std::move(dims)), std::move(data));
}

std::string Reader::finish() const {
  if (!ok()) return error_;
  if (!exhausted())
    return "malformed frame: " + std::to_string(size_ - pos_) +
           " trailing byte(s) after the payload";
  return {};
}

// ----------------------------------------------------------------- frames

std::vector<std::uint8_t> encode(const InferRequest& frame) {
  Writer w;
  w.str(frame.model_id);
  w.u8(static_cast<std::uint8_t>(frame.options.priority));
  w.u8(static_cast<std::uint8_t>(frame.options.admission));
  w.f64(frame.options.deadline_ms);
  w.tensor(frame.codes);
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload,
                   InferRequest* out) {
  Reader r(payload);
  out->model_id = r.str();
  const std::uint8_t priority = r.u8();
  const std::uint8_t admission = r.u8();
  out->options.deadline_ms = r.f64();
  out->codes = r.tensor();
  std::string error = r.finish();
  if (!error.empty()) return error;
  if (!enum_from_u8(priority, 1, &out->options.priority))
    return bad_enum("priority class", priority);
  if (!enum_from_u8(admission, 1, &out->options.admission))
    return bad_enum("admission mode", admission);
  if (out->options.deadline_ms < 0.0)
    return "malformed frame: negative deadline";
  return {};
}

std::vector<std::uint8_t> encode(const InferReply& frame) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(frame.status));
  w.str(frame.error);
  w.u32(static_cast<std::uint32_t>(frame.logits.size()));
  for (const std::int64_t logit : frame.logits) w.i64(logit);
  w.i32(frame.predicted_class);
  w.i64(frame.total_cycles);
  w.f64(frame.latency_us);
  w.i32(frame.attempts);
  w.i32(frame.replica);
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload, InferReply* out) {
  Reader r(payload);
  const std::uint8_t status = r.u8();
  out->error = r.str();
  const std::uint32_t num_logits = r.u32();
  out->logits.clear();
  for (std::uint32_t i = 0; i < num_logits && r.ok(); ++i)
    out->logits.push_back(r.i64());
  out->predicted_class = r.i32();
  out->total_cycles = r.i64();
  out->latency_us = r.f64();
  out->attempts = r.i32();
  out->replica = r.i32();
  std::string error = r.finish();
  if (!error.empty()) return error;
  if (!enum_from_u8(status, 4, &out->status))
    return bad_enum("request status", status);
  return {};
}

std::vector<std::uint8_t> encode(const LoadModelRequest& frame) {
  Writer w;
  w.str(frame.model_id);
  w.str(frame.path);
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload,
                   LoadModelRequest* out) {
  Reader r(payload);
  out->model_id = r.str();
  out->path = r.str();
  return r.finish();
}

std::vector<std::uint8_t> encode(const LoadModelReply& frame) {
  Writer w;
  w.u8(frame.ok ? 1 : 0);
  w.u8(frame.swapped ? 1 : 0);
  w.str(frame.detail);
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload,
                   LoadModelReply* out) {
  Reader r(payload);
  out->ok = r.u8() != 0;
  out->swapped = r.u8() != 0;
  out->detail = r.str();
  return r.finish();
}

std::vector<std::uint8_t> encode(const UnloadModelRequest& frame) {
  Writer w;
  w.str(frame.model_id);
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload,
                   UnloadModelRequest* out) {
  Reader r(payload);
  out->model_id = r.str();
  return r.finish();
}

std::vector<std::uint8_t> encode(const UnloadModelReply& frame) {
  Writer w;
  w.u8(frame.ok ? 1 : 0);
  w.str(frame.detail);
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload,
                   UnloadModelReply* out) {
  Reader r(payload);
  out->ok = r.u8() != 0;
  out->detail = r.str();
  return r.finish();
}

std::vector<std::uint8_t> encode(const HealthRequest& frame) {
  Writer w;
  w.str(frame.model_id);
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload,
                   HealthRequest* out) {
  Reader r(payload);
  out->model_id = r.str();
  return r.finish();
}

std::vector<std::uint8_t> encode(const HealthReply& frame) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(frame.models.size()));
  for (const ModelHealth& model : frame.models) {
    w.str(model.model_id);
    w.u64(model.generation);
    w.i32(model.time_bits);
    w.u32(static_cast<std::uint32_t>(model.input_dims.size()));
    for (const std::int64_t dim : model.input_dims) w.i64(dim);
    w.i32(model.replicas);
    w.i32(model.active_replicas);
    write_health_vector(&w, model.replica_health);
  }
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload,
                   HealthReply* out) {
  Reader r(payload);
  const std::uint32_t count = r.u32();
  out->models.clear();
  for (std::uint32_t m = 0; m < count && r.ok(); ++m) {
    ModelHealth model;
    model.model_id = r.str();
    model.generation = r.u64();
    model.time_bits = r.i32();
    const std::uint32_t rank = r.u32();
    for (std::uint32_t d = 0; d < rank && r.ok(); ++d)
      model.input_dims.push_back(r.i64());
    model.replicas = r.i32();
    model.active_replicas = r.i32();
    const std::string error = read_health_vector(&r, &model.replica_health);
    if (!error.empty()) return error;
    out->models.push_back(std::move(model));
  }
  return r.finish();
}

std::vector<std::uint8_t> encode(const MetricsRequest& frame) {
  Writer w;
  w.str(frame.model_id);
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload,
                   MetricsRequest* out) {
  Reader r(payload);
  out->model_id = r.str();
  return r.finish();
}

std::vector<std::uint8_t> encode(const MetricsReply& frame) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(frame.models.size()));
  for (const ModelMetrics& m : frame.models) {
    w.str(m.model_id);
    w.i64(m.submitted);
    w.i64(m.rejected);
    w.i64(m.completed);
    w.i64(m.failed);
    w.i64(m.deadline_exceeded);
    w.i64(m.cancelled);
    w.i64(m.retries);
    w.i64(m.replica_failures);
    w.i64(m.stalls);
    w.i64(m.rebuilds);
    w.f64(m.latency_goodput);
    w.f64(m.bulk_goodput);
    w.f64(m.p50_latency_ms);
    w.f64(m.p99_latency_ms);
    w.f64(m.wall_images_per_sec);
    w.f64(m.mean_batch);
    w.f64(m.expected_attempts_per_image);
    w.i32(m.active_replicas);
    write_health_vector(&w, m.replica_health);
  }
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload,
                   MetricsReply* out) {
  Reader r(payload);
  const std::uint32_t count = r.u32();
  out->models.clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    ModelMetrics m;
    m.model_id = r.str();
    m.submitted = r.i64();
    m.rejected = r.i64();
    m.completed = r.i64();
    m.failed = r.i64();
    m.deadline_exceeded = r.i64();
    m.cancelled = r.i64();
    m.retries = r.i64();
    m.replica_failures = r.i64();
    m.stalls = r.i64();
    m.rebuilds = r.i64();
    m.latency_goodput = r.f64();
    m.bulk_goodput = r.f64();
    m.p50_latency_ms = r.f64();
    m.p99_latency_ms = r.f64();
    m.wall_images_per_sec = r.f64();
    m.mean_batch = r.f64();
    m.expected_attempts_per_image = r.f64();
    m.active_replicas = r.i32();
    const std::string error = read_health_vector(&r, &m.replica_health);
    if (!error.empty()) return error;
    out->models.push_back(std::move(m));
  }
  return r.finish();
}

std::vector<std::uint8_t> encode(const ShutdownRequest& frame) {
  Writer w;
  w.u8(frame.drain ? 1 : 0);
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload,
                   ShutdownRequest* out) {
  Reader r(payload);
  out->drain = r.u8() != 0;
  return r.finish();
}

std::vector<std::uint8_t> encode(const ShutdownReply& frame) {
  Writer w;
  w.str(frame.detail);
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload,
                   ShutdownReply* out) {
  Reader r(payload);
  out->detail = r.str();
  return r.finish();
}

std::vector<std::uint8_t> encode(const ErrorReply& frame) {
  Writer w;
  w.str(frame.message);
  return w.take();
}

std::string decode(const std::vector<std::uint8_t>& payload, ErrorReply* out) {
  Reader r(payload);
  out->message = r.str();
  return r.finish();
}

}  // namespace rsnn::serve
