// Thin RAII layer over POSIX TCP sockets, scoped to what the serving
// daemon needs: loopback listeners (port 0 = kernel-assigned, for tests),
// blocking connections with exact-read/exact-write helpers, and frame-level
// send/receive built on the wire module.
//
// Error reporting follows the repo's front-end convention: operations
// return a friendly one-line diagnostic string (empty = success) instead of
// throwing — peers sending garbage is an expected runtime condition, not a
// contract violation. EINTR is retried; SIGPIPE is suppressed per-send.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace rsnn::serve {

/// One connected TCP stream. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Read exactly `n` bytes. `*clean_eof` (optional) is set when the peer
  /// closed before the first byte — the normal end of a connection, which
  /// returns a non-empty diagnostic but is not a protocol error.
  std::string read_exact(void* buffer, std::size_t n,
                         bool* clean_eof = nullptr);

  /// Write exactly `n` bytes.
  std::string write_all(const void* data, std::size_t n);

  /// Send one frame: header + payload.
  std::string send_frame(FrameType type,
                         const std::vector<std::uint8_t>& payload);

  /// Receive one frame: validates the header (magic, version, payload cap)
  /// and reads the payload. `*clean_eof` as in read_exact.
  std::string recv_frame(FrameType* type, std::vector<std::uint8_t>* payload,
                         bool* clean_eof = nullptr);

  /// Shut down both directions (unblocks a reader in another thread)
  /// without closing the descriptor.
  void shutdown_rw();
  void close();

  /// Blocking connect to 127.0.0.1:port.
  static Socket connect_loopback(int port, std::string* error);

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and listen.
  /// Returns a diagnostic, empty on success.
  std::string listen_loopback(int port);

  /// The actual bound port (resolves port-0 binds).
  int port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Block until a client connects. Returns an invalid Socket (with a
  /// diagnostic) on failure — including when close() unblocked the accept.
  Socket accept_connection(std::string* error);

  /// Shut down + close the listening socket; unblocks accept_connection.
  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace rsnn::serve
