#include "serve/registry.hpp"

#include <utility>

#include "quant/qserialize.hpp"

namespace rsnn::serve {
namespace {

/// An already-resolved kRejected future, for requests no pool ever sees.
std::future<engine::ServingResult> rejected(std::string error) {
  std::promise<engine::ServingResult> promise;
  engine::ServingResult outcome;
  outcome.status = engine::RequestStatus::kRejected;
  outcome.error = std::move(error);
  promise.set_value(std::move(outcome));
  return promise.get_future();
}

}  // namespace

ModelRegistry::ModelRegistry(RegistryOptions options)
    : options_(std::move(options)) {}

ModelRegistry::~ModelRegistry() { shutdown(/*drain=*/true); }

std::shared_ptr<ModelRegistry::Instance> ModelRegistry::build_instance(
    const std::string& model_id, quant::QuantizedNetwork&& qnet,
    std::string* error) {
  auto instance = std::make_shared<Instance>();
  try {
    instance->qnet =
        std::make_unique<quant::QuantizedNetwork>(std::move(qnet));
    instance->design = compiler::compile(*instance->qnet, options_.compile);
    engine::ServingPoolOptions pool_options = options_.pool;
    pool_options.model_id = model_id;
    instance->pool = std::make_unique<engine::ServingPool>(
        instance->design.program, options_.kind, std::move(pool_options));
  } catch (const std::exception& e) {
    *error = "cannot serve model '" + model_id + "': " + e.what();
    return nullptr;
  }
  return instance;
}

std::string ModelRegistry::install(const std::string& model_id,
                                   std::shared_ptr<Instance> instance,
                                   bool* swapped) {
  std::shared_ptr<Instance> displaced;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return "registry is shut down";
    instance->generation = next_generation_++;
    auto& slot = models_[model_id];
    displaced = std::move(slot);
    slot = std::move(instance);
  }
  if (swapped != nullptr) *swapped = displaced != nullptr;
  // The displaced generation stops admitting now; work it already admitted
  // keeps its futures and drains on the old pool — in the background if a
  // routed submit still holds the shared_ptr, else as this reference dies.
  if (displaced != nullptr) displaced->pool->shutdown(/*drain=*/true);
  return {};
}

std::string ModelRegistry::load_model(const std::string& model_id,
                                      const std::string& path, bool* swapped) {
  if (model_id.empty()) return "model id must be non-empty";
  if (!quant::is_quantized_file(path))
    return "'" + path + "' is not a .qsnn file";
  quant::QuantizedNetwork qnet;
  try {
    qnet = quant::load_quantized(path);
  } catch (const std::exception& e) {
    return "cannot load '" + path + "': " + e.what();
  }
  return load_network(model_id, std::move(qnet), swapped);
}

std::string ModelRegistry::load_network(const std::string& model_id,
                                        quant::QuantizedNetwork qnet,
                                        bool* swapped) {
  if (model_id.empty()) return "model id must be non-empty";
  std::string error;
  auto instance = build_instance(model_id, std::move(qnet), &error);
  if (instance == nullptr) return error;
  return install(model_id, std::move(instance), swapped);
}

std::string ModelRegistry::unload_model(const std::string& model_id) {
  std::shared_ptr<Instance> removed;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = models_.find(model_id);
    if (it == models_.end()) return "unknown model '" + model_id + "'";
    removed = std::move(it->second);
    models_.erase(it);
  }
  removed->pool->shutdown(/*drain=*/true);
  return {};
}

std::future<engine::ServingResult> ModelRegistry::submit(
    engine::Request request, bool* admitted) {
  // Copy the shared_ptr under the lock, submit outside it: a hot-swap or
  // unload during the (possibly blocking) admission cannot free the pool
  // out from under us, and its drain guarantees cover this request.
  const std::shared_ptr<Instance> instance = find(request.model_id);
  if (instance == nullptr) {
    if (admitted != nullptr) *admitted = false;
    return rejected("unknown model '" + request.model_id + "'");
  }
  return instance->pool->submit(std::move(request), admitted);
}

std::shared_ptr<ModelRegistry::Instance> ModelRegistry::find(
    const std::string& model_id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(model_id);
  return it == models_.end() ? nullptr : it->second;
}

bool ModelRegistry::has_model(const std::string& model_id) const {
  return find(model_id) != nullptr;
}

std::vector<std::string> ModelRegistry::model_ids() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(models_.size());
  for (const auto& [id, instance] : models_) ids.push_back(id);
  return ids;
}

std::vector<ModelInfo> ModelRegistry::snapshot(
    const std::string& model_id) const {
  std::vector<std::shared_ptr<Instance>> instances;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, instance] : models_)
      if (model_id.empty() || id == model_id) instances.push_back(instance);
  }
  // stats() takes the pool's own lock; snapshot off the registry lock so a
  // slow pool never stalls routing.
  std::vector<ModelInfo> infos;
  infos.reserve(instances.size());
  for (const auto& instance : instances) {
    ModelInfo info;
    info.model_id = instance->pool->model_id();
    info.generation = instance->generation;
    info.time_bits = instance->qnet->time_bits;
    info.input_shape = instance->qnet->input_shape;
    info.replicas = instance->pool->replicas();
    info.stats = instance->pool->stats();
    infos.push_back(std::move(info));
  }
  return infos;
}

void ModelRegistry::shutdown(bool drain) {
  std::map<std::string, std::shared_ptr<Instance>> models;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    models.swap(models_);
  }
  for (auto& [id, instance] : models) instance->pool->shutdown(drain);
  // Instances die here (or when the last routed submit releases its ref);
  // ~ServingPool joins the dispatchers, so admitted work has fully resolved
  // for every slot this call actually released.
}

}  // namespace rsnn::serve
