// rsnn_serve wire protocol: length-prefixed binary frames over a byte
// stream (TCP). One frame = a fixed 12-byte header + a typed payload.
//
//   header (little-endian):
//     u32 magic        0x52534E56 ("RSNV")
//     u16 version      kProtocolVersion (currently 1)
//     u16 type         FrameType
//     u32 payload_len  bytes following the header (<= kMaxPayloadBytes)
//
// Request frames (client -> server) and their replies (server -> client):
//
//   | type | frame        | payload                                        |
//   |------|--------------|------------------------------------------------|
//   |    1 | Infer        | model_id, options(priority,admission,deadline),|
//   |      |              | codes tensor                                   |
//   |  129 | InferReply   | status, error, logits, predicted_class, cycles,|
//   |      |              | latency_us, attempts, replica                  |
//   |    2 | LoadModel    | model_id, qsnn path (server-side)              |
//   |  130 | LoadReply    | ok, swapped(hot-swap), detail                  |
//   |    3 | UnloadModel  | model_id                                       |
//   |  131 | UnloadReply  | ok, detail                                     |
//   |    4 | Health       | model_id ("" = all models)                     |
//   |  132 | HealthReply  | per model: id, generation, time_bits,          |
//   |      |              | input dims, replicas, active, health[]         |
//   |    5 | Metrics      | model_id ("" = all models)                     |
//   |  133 | MetricsReply | per model: ServingStats counters, goodput,     |
//   |      |              | percentiles, expected attempts/image, health[] |
//   |    6 | Shutdown     | drain flag                                     |
//   |  134 | ShutdownReply| detail                                         |
//   |  255 | Error        | message (protocol-level failure; the server    |
//   |      |              | closes the connection after sending one)       |
//
// Reply types are request | 0x80. Application-level failures (unknown model
// id on Infer, load failure) travel inside the typed reply — an Error frame
// means the *protocol* broke (bad magic, bad version, malformed payload,
// oversized frame) and the connection is done.
//
// Version policy: the version field is checked for exact equality. Any
// change to the header or to an existing payload layout bumps
// kProtocolVersion; adding a new frame type does not (old servers answer
// unknown types with an Error frame, which clients surface verbatim).
//
// Encoding primitives: integers little-endian; strings are u32 length +
// bytes (no terminator); tensors are u32 rank + u32 dims + i32 elements,
// row-major. Decoders are bounds-checked and never trust payload_len:
// truncated or trailing bytes fail with a one-line diagnostic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/serving_pool.hpp"
#include "tensor/tensor.hpp"

namespace rsnn::serve {

inline constexpr std::uint32_t kMagic = 0x52534E56;  // "RSNV"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;
inline constexpr std::size_t kHeaderBytes = 12;

enum class FrameType : std::uint16_t {
  kInfer = 1,
  kLoadModel = 2,
  kUnloadModel = 3,
  kHealth = 4,
  kMetrics = 5,
  kShutdown = 6,
  kInferReply = 129,
  kLoadModelReply = 130,
  kUnloadModelReply = 131,
  kHealthReply = 132,
  kMetricsReply = 133,
  kShutdownReply = 134,
  kError = 255,
};

/// Canonical frame name ("infer", "load_model", ...); "unknown" otherwise.
const char* frame_name(FrameType type);

struct FrameHeader {
  std::uint16_t version = 0;
  FrameType type = FrameType::kError;
  std::uint32_t payload_len = 0;
};

/// Serialize a header into `out[kHeaderBytes]`.
void encode_header(FrameType type, std::uint32_t payload_len,
                   std::uint8_t* out);

/// Parse and validate a header: magic, version, payload cap. Returns a
/// friendly one-line diagnostic, empty on success.
std::string decode_header(const std::uint8_t* bytes, FrameHeader* out);

// --------------------------------------------------------------- payloads

/// Append-only little-endian payload builder.
class Writer {
 public:
  void u8(std::uint8_t value);
  void u16(std::uint16_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i32(std::int32_t value);
  void i64(std::int64_t value);
  void f64(double value);
  void str(const std::string& value);
  void tensor(const TensorI& value);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian payload cursor. The first out-of-bounds or
/// malformed read latches a failure (`ok()` false, `error()` describes it);
/// subsequent reads return zero values. Decoders check ok() + exhausted()
/// once at the end instead of after every field.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& payload)
      : Reader(payload.data(), payload.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  std::string str();
  TensorI tensor();

  bool ok() const { return error_.empty(); }
  /// True when every payload byte was consumed (trailing garbage is a
  /// protocol error).
  bool exhausted() const { return ok() && pos_ == size_; }
  const std::string& error() const { return error_; }
  /// ok() && exhausted(), else the diagnostic (for decode_* returns).
  std::string finish() const;

 private:
  bool take(std::size_t n, const char* what);
  void fail(const std::string& message);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ----------------------------------------------------------------- frames
//
// Each frame is a plain struct with encode() -> payload bytes and
// decode_*(payload, out) -> diagnostic ("" on success).

struct InferRequest {
  std::string model_id;
  engine::RequestOptions options;
  TensorI codes;
};

struct InferReply {
  engine::RequestStatus status = engine::RequestStatus::kCancelled;
  std::string error;
  std::vector<std::int64_t> logits;
  std::int32_t predicted_class = -1;
  std::int64_t total_cycles = 0;
  double latency_us = 0.0;
  std::int32_t attempts = 0;
  std::int32_t replica = -1;
};

struct LoadModelRequest {
  std::string model_id;
  std::string path;  ///< .qsnn path resolved on the server's filesystem
};

struct LoadModelReply {
  bool ok = false;
  bool swapped = false;  ///< an existing model with this id was hot-swapped
  std::string detail;
};

struct UnloadModelRequest {
  std::string model_id;
};

struct UnloadModelReply {
  bool ok = false;
  std::string detail;
};

struct HealthRequest {
  std::string model_id;  ///< empty = all models
};

struct ModelHealth {
  std::string model_id;
  std::uint64_t generation = 0;  ///< bumped on every (re)load
  std::int32_t time_bits = 0;
  std::vector<std::int64_t> input_dims;  ///< CHW of the expected input
  std::int32_t replicas = 0;
  std::int32_t active_replicas = 0;
  std::vector<engine::ReplicaHealth> replica_health;
};

struct HealthReply {
  std::vector<ModelHealth> models;
};

struct MetricsRequest {
  std::string model_id;  ///< empty = all models
};

struct ModelMetrics {
  std::string model_id;
  std::int64_t submitted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t cancelled = 0;
  std::int64_t retries = 0;
  std::int64_t replica_failures = 0;
  std::int64_t stalls = 0;
  std::int64_t rebuilds = 0;
  double latency_goodput = 0.0;
  double bulk_goodput = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double wall_images_per_sec = 0.0;
  double mean_batch = 0.0;
  /// Measured dispatch attempts per served image (the
  /// compiler::expected_attempts_per_image fold's input, served back so a
  /// planner can re-run plan_serving against live fleet health).
  double expected_attempts_per_image = 1.0;
  std::int32_t active_replicas = 0;
  std::vector<engine::ReplicaHealth> replica_health;
};

struct MetricsReply {
  std::vector<ModelMetrics> models;
};

struct ShutdownRequest {
  bool drain = true;
};

struct ShutdownReply {
  std::string detail;
};

struct ErrorReply {
  std::string message;
};

std::vector<std::uint8_t> encode(const InferRequest& frame);
std::vector<std::uint8_t> encode(const InferReply& frame);
std::vector<std::uint8_t> encode(const LoadModelRequest& frame);
std::vector<std::uint8_t> encode(const LoadModelReply& frame);
std::vector<std::uint8_t> encode(const UnloadModelRequest& frame);
std::vector<std::uint8_t> encode(const UnloadModelReply& frame);
std::vector<std::uint8_t> encode(const HealthRequest& frame);
std::vector<std::uint8_t> encode(const HealthReply& frame);
std::vector<std::uint8_t> encode(const MetricsRequest& frame);
std::vector<std::uint8_t> encode(const MetricsReply& frame);
std::vector<std::uint8_t> encode(const ShutdownRequest& frame);
std::vector<std::uint8_t> encode(const ShutdownReply& frame);
std::vector<std::uint8_t> encode(const ErrorReply& frame);

std::string decode(const std::vector<std::uint8_t>& payload,
                   InferRequest* out);
std::string decode(const std::vector<std::uint8_t>& payload, InferReply* out);
std::string decode(const std::vector<std::uint8_t>& payload,
                   LoadModelRequest* out);
std::string decode(const std::vector<std::uint8_t>& payload,
                   LoadModelReply* out);
std::string decode(const std::vector<std::uint8_t>& payload,
                   UnloadModelRequest* out);
std::string decode(const std::vector<std::uint8_t>& payload,
                   UnloadModelReply* out);
std::string decode(const std::vector<std::uint8_t>& payload,
                   HealthRequest* out);
std::string decode(const std::vector<std::uint8_t>& payload,
                   HealthReply* out);
std::string decode(const std::vector<std::uint8_t>& payload,
                   MetricsRequest* out);
std::string decode(const std::vector<std::uint8_t>& payload,
                   MetricsReply* out);
std::string decode(const std::vector<std::uint8_t>& payload,
                   ShutdownRequest* out);
std::string decode(const std::vector<std::uint8_t>& payload,
                   ShutdownReply* out);
std::string decode(const std::vector<std::uint8_t>& payload, ErrorReply* out);

}  // namespace rsnn::serve
