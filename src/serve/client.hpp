// serve::Client — a synchronous wire-protocol client: one connection, one
// request/reply round trip per call. Shared by the rsnn_client CLI, the
// loopback end-to-end tests, and the CI smoke job.
//
// Every call returns a friendly one-line diagnostic (empty = success).
// A server-sent Error frame surfaces as that diagnostic verbatim — after
// one, the server has closed the connection, so reconnect before retrying.
#pragma once

#include <string>
#include <vector>

#include "serve/socket.hpp"
#include "serve/wire.hpp"

namespace rsnn::serve {

class Client {
 public:
  /// Blocking connect to 127.0.0.1:port.
  std::string connect_loopback(int port);
  bool connected() const { return socket_.valid(); }
  void close() { socket_.close(); }

  std::string infer(const InferRequest& request, InferReply* reply);
  std::string load_model(const std::string& model_id, const std::string& path,
                         LoadModelReply* reply);
  std::string unload_model(const std::string& model_id,
                           UnloadModelReply* reply);
  std::string health(const std::string& model_id, HealthReply* reply);
  std::string metrics(const std::string& model_id, MetricsReply* reply);
  std::string shutdown_server(bool drain, ShutdownReply* reply);

  /// Send a pre-encoded frame and receive the reply — the escape hatch the
  /// malformed-frame tests use to speak protocol violations on purpose.
  std::string round_trip(FrameType request_type,
                         const std::vector<std::uint8_t>& request_payload,
                         FrameType expected_reply,
                         std::vector<std::uint8_t>* reply_payload);

  /// Raw socket access for tests that corrupt bytes below the frame layer.
  Socket& socket() { return socket_; }

 private:
  Socket socket_;
};

}  // namespace rsnn::serve
