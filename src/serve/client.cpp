#include "serve/client.hpp"

namespace rsnn::serve {

std::string Client::connect_loopback(int port) {
  std::string error;
  socket_ = Socket::connect_loopback(port, &error);
  return error;
}

std::string Client::round_trip(FrameType request_type,
                               const std::vector<std::uint8_t>& request_payload,
                               FrameType expected_reply,
                               std::vector<std::uint8_t>* reply_payload) {
  if (!socket_.valid()) return "not connected";
  std::string error = socket_.send_frame(request_type, request_payload);
  if (!error.empty()) return error;
  FrameType reply_type;
  error = socket_.recv_frame(&reply_type, reply_payload);
  if (!error.empty()) return error;
  if (reply_type == FrameType::kError) {
    ErrorReply err;
    const std::string decode_error = decode(*reply_payload, &err);
    return decode_error.empty() ? "server error: " + err.message
                                : decode_error;
  }
  if (reply_type != expected_reply)
    return std::string("expected a ") + frame_name(expected_reply) +
           " frame, got " + frame_name(reply_type);
  return {};
}

std::string Client::infer(const InferRequest& request, InferReply* reply) {
  std::vector<std::uint8_t> payload;
  const std::string error = round_trip(FrameType::kInfer, encode(request),
                                       FrameType::kInferReply, &payload);
  if (!error.empty()) return error;
  return decode(payload, reply);
}

std::string Client::load_model(const std::string& model_id,
                               const std::string& path,
                               LoadModelReply* reply) {
  LoadModelRequest request;
  request.model_id = model_id;
  request.path = path;
  std::vector<std::uint8_t> payload;
  const std::string error = round_trip(FrameType::kLoadModel, encode(request),
                                       FrameType::kLoadModelReply, &payload);
  if (!error.empty()) return error;
  return decode(payload, reply);
}

std::string Client::unload_model(const std::string& model_id,
                                 UnloadModelReply* reply) {
  UnloadModelRequest request;
  request.model_id = model_id;
  std::vector<std::uint8_t> payload;
  const std::string error =
      round_trip(FrameType::kUnloadModel, encode(request),
                 FrameType::kUnloadModelReply, &payload);
  if (!error.empty()) return error;
  return decode(payload, reply);
}

std::string Client::health(const std::string& model_id, HealthReply* reply) {
  HealthRequest request;
  request.model_id = model_id;
  std::vector<std::uint8_t> payload;
  const std::string error = round_trip(FrameType::kHealth, encode(request),
                                       FrameType::kHealthReply, &payload);
  if (!error.empty()) return error;
  return decode(payload, reply);
}

std::string Client::metrics(const std::string& model_id, MetricsReply* reply) {
  MetricsRequest request;
  request.model_id = model_id;
  std::vector<std::uint8_t> payload;
  const std::string error = round_trip(FrameType::kMetrics, encode(request),
                                       FrameType::kMetricsReply, &payload);
  if (!error.empty()) return error;
  return decode(payload, reply);
}

std::string Client::shutdown_server(bool drain, ShutdownReply* reply) {
  ShutdownRequest request;
  request.drain = drain;
  std::vector<std::uint8_t> payload;
  const std::string error = round_trip(FrameType::kShutdown, encode(request),
                                       FrameType::kShutdownReply, &payload);
  if (!error.empty()) return error;
  return decode(payload, reply);
}

}  // namespace rsnn::serve
