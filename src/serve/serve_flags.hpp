// The shared serving-pool flag table: the single declaration of every
// --serve knob (admission policy, queue, batching, fault tolerance), used
// by `rsnn_cli run --serve`, the `rsnn_serve` daemon, and any future front
// end. One table means the two binaries stay option-compatible and their
// generated usage text cannot drift from the parser.
#pragma once

#include <string>
#include <vector>

#include "common/flags.hpp"
#include "engine/serving_pool.hpp"

namespace rsnn::serve {

/// Flags that configure an engine::ServingPoolOptions: replicas, policy,
/// queue-depth, max-batch, max-wait-ms, max-retries, backoff-ms,
/// stall-timeout-ms, rebuild, fault.
std::vector<flags::FlagSpec> serving_pool_flags();

/// Per-request flags layered on top by front ends that submit work
/// themselves: deadline-ms, bulk-every.
std::vector<flags::FlagSpec> serving_request_flags();

/// Build pool options from a parsed FlagSet containing serving_pool_flags().
/// Validates the text-typed domains (policy name, fault plan) and returns a
/// friendly diagnostic, empty on success. Fields without a flag (segments,
/// model_id, workers) keep `options`' incoming values.
std::string pool_options_from_flags(const flags::FlagSet& flag_set,
                                    engine::ServingPoolOptions* options);

}  // namespace rsnn::serve
