// ModelRegistry: several quantized networks served concurrently, each
// behind its own engine::ServingPool, routed by model id.
//
// Lifecycle of one model slot:
//
//   load_model(id, path)            load_model(id, path')        unload(id)
//        │                               │ hot-swap                  │
//        ▼                               ▼                           ▼
//   [generation 1] ──serving──► [generation 2] ──serving──► (drained, gone)
//                        │ old generation
//                        ▼
//            drain admitted work, retire
//
// Each slot owns its full lifetime chain in one Instance: the heap-pinned
// QuantizedNetwork, the CompiledDesign whose program borrows it, and the
// ServingPool executing that program — kept alive by shared_ptr so a
// hot-swap can replace the slot immediately while requests already admitted
// to the old generation finish on the old pool (ServingPool's destructor
// drains before joining, so their futures resolve kOk with the *old*
// model's bit-identical logits). New work routed after the swap lands on
// the new generation; a racing submit that caught the old instance after
// its shutdown resolves typed kRejected — admitted work is never dropped.
//
// Routing: submit() looks the pool up by Request::model_id and forwards to
// ServingPool::submit(Request) — the same typed core every in-process
// caller uses. Unknown ids resolve immediately with kRejected (no queueing,
// connection stays usable).
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "engine/serving_pool.hpp"
#include "quant/qnetwork.hpp"

namespace rsnn::serve {

struct RegistryOptions {
  /// Design derivation for every loaded model (units, clock, fast path).
  compiler::CompileOptions compile;
  engine::EngineKind kind = engine::EngineKind::kAnalytic;
  /// Pool template applied to every model (replicas, policy, queue, fault
  /// tolerance). model_id is overwritten per slot.
  engine::ServingPoolOptions pool;
};

/// Snapshot of one served model, for Health/Metrics frames and reports.
struct ModelInfo {
  std::string model_id;
  std::uint64_t generation = 0;  ///< bumped on every load of this id
  int time_bits = 0;
  Shape input_shape;
  int replicas = 0;
  engine::ServingStats stats;
};

class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryOptions options);
  /// Drains every pool (admitted work completes) before returning.
  ~ModelRegistry();
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Load (or hot-swap) `model_id` from a .qsnn file. The new instance is
  /// built off-lock — compile time never blocks serving — then swapped in;
  /// the displaced generation (if any) stops admitting and drains in the
  /// background. Returns a diagnostic, empty on success; `*swapped`
  /// (optional) reports whether an existing generation was replaced.
  std::string load_model(const std::string& model_id, const std::string& path,
                         bool* swapped = nullptr);

  /// As load_model, from an in-memory network (tests, embedded callers).
  std::string load_network(const std::string& model_id,
                           quant::QuantizedNetwork qnet,
                           bool* swapped = nullptr);

  /// Remove `model_id`; admitted work drains before the slot's resources
  /// are released. Returns a diagnostic, empty on success.
  std::string unload_model(const std::string& model_id);

  /// Route a typed request to its model's pool. Unknown model ids (and a
  /// shut-down registry) resolve immediately with kRejected. `admitted` as
  /// in ServingPool::submit.
  std::future<engine::ServingResult> submit(engine::Request request,
                                            bool* admitted = nullptr);

  bool has_model(const std::string& model_id) const;
  std::vector<std::string> model_ids() const;

  /// Snapshot one model (empty vector when the id is unknown) or, with an
  /// empty id, every model ordered by id.
  std::vector<ModelInfo> snapshot(const std::string& model_id = {}) const;

  /// Stop admitting everywhere and drain (or cancel) every pool.
  void shutdown(bool drain = true);

  const RegistryOptions& options() const { return options_; }

 private:
  /// One generation of one model slot. Member order is the teardown
  /// contract reversed: the pool dies first, then the design whose program
  /// it ran, then the network the program borrows.
  struct Instance {
    std::unique_ptr<quant::QuantizedNetwork> qnet;  ///< heap-pinned
    compiler::CompiledDesign design;  ///< program borrows *qnet
    std::uint64_t generation = 0;
    std::unique_ptr<engine::ServingPool> pool;
  };

  std::shared_ptr<Instance> build_instance(const std::string& model_id,
                                           quant::QuantizedNetwork&& qnet,
                                           std::string* error);
  std::string install(const std::string& model_id,
                      std::shared_ptr<Instance> instance, bool* swapped);
  std::shared_ptr<Instance> find(const std::string& model_id) const;

  RegistryOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Instance>> models_;
  std::uint64_t next_generation_ = 1;
  bool closed_ = false;
};

}  // namespace rsnn::serve
