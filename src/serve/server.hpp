// serve::Server — the daemon's network front end: accept loop + one
// blocking connection thread per client, translating wire frames into
// ModelRegistry calls.
//
// Threading model: frame handling is synchronous per connection (a client
// wanting pipelined inferences opens several connections); concurrency
// comes from the per-model ServingPools behind the registry, exactly as for
// in-process callers. Infer blocks its connection thread on the typed
// future — admission policy, deadlines and retries all apply unchanged,
// because the wire path funnels into the same ServingPool::submit(Request)
// core.
//
// Protocol errors (bad magic/version, malformed payload, a reply-typed
// frame from a client) answer with one Error frame and close the
// connection. Application errors (unknown model id, failed load) travel
// inside the typed reply and leave the connection open.
//
// A Shutdown frame acknowledges, then marks the server done —
// wait_until_shutdown() returns and the owner (rsnn_serve's main, or a
// test) calls stop(), which closes the listener, unblocks every
// connection, and joins all threads. request_stop() is the in-process
// equivalent for SIGINT handling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.hpp"
#include "serve/socket.hpp"
#include "serve/wire.hpp"

namespace rsnn::serve {

struct ServerOptions {
  /// 127.0.0.1 port to bind; 0 = kernel-assigned (tests read port()).
  int port = 0;
};

class Server {
 public:
  /// The registry must outlive the server.
  Server(ModelRegistry& registry, ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept thread. Diagnostic, empty on success.
  std::string start();

  /// The bound port (valid after start()).
  int port() const { return listener_.port(); }

  /// Block until a Shutdown frame arrives or request_stop() is called.
  /// `drain_requested` reports the Shutdown frame's drain flag (true for
  /// request_stop).
  void wait_until_shutdown(bool* drain_requested = nullptr);

  bool shutdown_requested() const { return shutdown_requested_.load(); }

  /// Unblock wait_until_shutdown (the daemon's SIGINT path).
  void request_stop();

  /// Close the listener, unblock every connection read, join all threads.
  /// Idempotent. Does NOT shut down the registry — the owner decides how
  /// (drain vs cancel) after the server is quiet.
  void stop();

  /// Connections accepted so far (monotonic; for tests and reports).
  std::int64_t connections_accepted() const { return accepted_.load(); }

 private:
  /// A connection thread and the socket it reads, kept so stop() can
  /// shutdown_rw() the fd to unblock a blocked recv before joining.
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_main();
  void connection_main(Connection* connection);
  /// Dispatch one frame; returns false when the connection must close
  /// (protocol error already answered, or clean shutdown).
  bool handle_frame(Socket& socket, FrameType type,
                    const std::vector<std::uint8_t>& payload);

  ModelRegistry& registry_;
  ServerOptions options_;
  Listener listener_;
  std::thread accept_thread_;

  std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stopping_{false};
  bool drain_on_shutdown_ = true;
  std::atomic<std::int64_t> accepted_{0};
};

}  // namespace rsnn::serve
