#include "serve/server.hpp"

#include <utility>

#include "common/log.hpp"
#include "compiler/partition.hpp"

namespace rsnn::serve {
namespace {

InferReply reply_from(const engine::ServingResult& outcome) {
  InferReply reply;
  reply.status = outcome.status;
  reply.error = outcome.error;
  reply.attempts = outcome.attempts;
  reply.replica = outcome.replica;
  if (outcome.status == engine::RequestStatus::kOk) {
    reply.logits = outcome.result.logits;
    reply.predicted_class = outcome.result.predicted_class;
    reply.total_cycles = outcome.result.total_cycles;
    reply.latency_us = outcome.result.latency_us;
  }
  return reply;
}

ModelHealth health_from(const ModelInfo& info) {
  ModelHealth health;
  health.model_id = info.model_id;
  health.generation = info.generation;
  health.time_bits = info.time_bits;
  health.input_dims = info.input_shape.dims();
  health.replicas = info.replicas;
  health.active_replicas = info.stats.active_replicas;
  health.replica_health = info.stats.replica_health;
  return health;
}

ModelMetrics metrics_from(const ModelInfo& info) {
  const engine::ServingStats& s = info.stats;
  ModelMetrics m;
  m.model_id = info.model_id;
  m.submitted = s.submitted;
  m.rejected = s.rejected;
  m.completed = s.completed;
  m.failed = s.failed;
  m.deadline_exceeded = s.deadline_exceeded;
  m.cancelled = s.cancelled;
  m.retries = s.retries;
  m.replica_failures = s.replica_failures;
  m.stalls = s.stalls;
  m.rebuilds = s.rebuilds;
  m.latency_goodput = s.per_class[0].goodput;
  m.bulk_goodput = s.per_class[1].goodput;
  m.p50_latency_ms = s.p50_latency_ms;
  m.p99_latency_ms = s.p99_latency_ms;
  m.wall_images_per_sec = s.wall_images_per_sec;
  m.mean_batch = s.mean_batch;
  m.expected_attempts_per_image =
      compiler::expected_attempts_per_image(s.completed, s.retries, s.stalls);
  m.active_replicas = s.active_replicas;
  m.replica_health = s.replica_health;
  return m;
}

/// Best-effort protocol-error answer; the connection closes either way.
void send_error(Socket& socket, const std::string& message) {
  ErrorReply reply;
  reply.message = message;
  socket.send_frame(FrameType::kError, encode(reply));
}

}  // namespace

Server::Server(ModelRegistry& registry, ServerOptions options)
    : registry_(registry), options_(options) {}

Server::~Server() { stop(); }

std::string Server::start() {
  const std::string error = listener_.listen_loopback(options_.port);
  if (!error.empty()) return error;
  accept_thread_ = std::thread([this] { accept_main(); });
  return {};
}

void Server::accept_main() {
  while (!stopping_.load()) {
    std::string error;
    Socket socket = listener_.accept_connection(&error);
    if (!socket.valid()) {
      // close() shut the listener down (stop path); anything else on a
      // closed-over loopback listener is equally terminal.
      break;
    }
    ++accepted_;
    // Reap finished connections so a long-lived daemon doesn't accumulate
    // one joinable thread per client ever served.
    std::vector<std::unique_ptr<Connection>> finished;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->done.load()) {
          finished.push_back(std::move(*it));
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& connection : finished) connection->thread.join();

    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(socket);
    Connection* raw = connection.get();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { connection_main(raw); });
  }
}

void Server::connection_main(Connection* connection) {
  Socket& socket = connection->socket;
  for (;;) {
    FrameType type;
    std::vector<std::uint8_t> payload;
    bool clean_eof = false;
    const std::string error = socket.recv_frame(&type, &payload, &clean_eof);
    if (!error.empty()) {
      // Clean EOF is the normal end of a session; everything else (bad
      // magic, unsupported version, oversized frame, truncated read) gets
      // one best-effort Error frame before the close.
      if (!clean_eof && !stopping_.load()) {
        RSNN_WARN("serve: dropping connection: " << error);
        send_error(socket, error);
      }
      break;
    }
    if (!handle_frame(socket, type, payload)) break;
  }
  socket.shutdown_rw();
  connection->done.store(true);
}

bool Server::handle_frame(Socket& socket, FrameType type,
                          const std::vector<std::uint8_t>& payload) {
  switch (type) {
    case FrameType::kInfer: {
      InferRequest request;
      const std::string error = decode(payload, &request);
      if (!error.empty()) {
        send_error(socket, error);
        return false;
      }
      engine::Request typed;
      typed.model_id = std::move(request.model_id);
      typed.codes = std::move(request.codes);
      typed.options = request.options;
      const engine::ServingResult outcome =
          registry_.submit(std::move(typed)).get();
      return socket
          .send_frame(FrameType::kInferReply, encode(reply_from(outcome)))
          .empty();
    }
    case FrameType::kLoadModel: {
      LoadModelRequest request;
      const std::string error = decode(payload, &request);
      if (!error.empty()) {
        send_error(socket, error);
        return false;
      }
      LoadModelReply reply;
      const std::string load_error =
          registry_.load_model(request.model_id, request.path, &reply.swapped);
      reply.ok = load_error.empty();
      reply.detail = reply.ok
                         ? (reply.swapped ? "hot-swapped '" : "loaded '") +
                               request.model_id + "' from " + request.path
                         : load_error;
      RSNN_INFO("serve: " << reply.detail);
      return socket.send_frame(FrameType::kLoadModelReply, encode(reply))
          .empty();
    }
    case FrameType::kUnloadModel: {
      UnloadModelRequest request;
      const std::string error = decode(payload, &request);
      if (!error.empty()) {
        send_error(socket, error);
        return false;
      }
      UnloadModelReply reply;
      const std::string unload_error = registry_.unload_model(request.model_id);
      reply.ok = unload_error.empty();
      reply.detail =
          reply.ok ? "unloaded '" + request.model_id + "'" : unload_error;
      RSNN_INFO("serve: " << reply.detail);
      return socket.send_frame(FrameType::kUnloadModelReply, encode(reply))
          .empty();
    }
    case FrameType::kHealth: {
      HealthRequest request;
      const std::string error = decode(payload, &request);
      if (!error.empty()) {
        send_error(socket, error);
        return false;
      }
      HealthReply reply;
      for (const ModelInfo& info : registry_.snapshot(request.model_id))
        reply.models.push_back(health_from(info));
      return socket.send_frame(FrameType::kHealthReply, encode(reply))
          .empty();
    }
    case FrameType::kMetrics: {
      MetricsRequest request;
      const std::string error = decode(payload, &request);
      if (!error.empty()) {
        send_error(socket, error);
        return false;
      }
      MetricsReply reply;
      for (const ModelInfo& info : registry_.snapshot(request.model_id))
        reply.models.push_back(metrics_from(info));
      return socket.send_frame(FrameType::kMetricsReply, encode(reply))
          .empty();
    }
    case FrameType::kShutdown: {
      ShutdownRequest request;
      const std::string error = decode(payload, &request);
      if (!error.empty()) {
        send_error(socket, error);
        return false;
      }
      ShutdownReply reply;
      reply.detail = request.drain
                         ? "shutting down: draining admitted work"
                         : "shutting down: cancelling undispatched work";
      RSNN_INFO("serve: " << reply.detail);
      socket.send_frame(FrameType::kShutdownReply, encode(reply));
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        drain_on_shutdown_ = request.drain;
        shutdown_requested_.store(true);
      }
      shutdown_cv_.notify_all();
      return false;
    }
    default:
      // A client must never send reply-typed or Error frames.
      send_error(socket, std::string("unexpected ") + frame_name(type) +
                             " frame from a client");
      return false;
  }
}

void Server::wait_until_shutdown(bool* drain_requested) {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_.load(); });
  if (drain_requested != nullptr) *drain_requested = drain_on_shutdown_;
}

void Server::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_requested_.store(true);
  }
  shutdown_cv_.notify_all();
}

void Server::stop() {
  if (stopping_.exchange(true)) return;
  request_stop();
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) connection->socket.shutdown_rw();
  for (auto& connection : connections) connection->thread.join();
}

}  // namespace rsnn::serve
