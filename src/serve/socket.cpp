#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rsnn::serve {
namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

std::string Socket::read_exact(void* buffer, std::size_t n, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  if (!valid()) return "read on a closed socket";
  auto* bytes = static_cast<std::uint8_t*>(buffer);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, bytes + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0 && clean_eof != nullptr) *clean_eof = true;
      return "connection closed by peer (" + std::to_string(got) + " of " +
             std::to_string(n) + " byte(s) read)";
    }
    if (errno == EINTR) continue;
    return errno_message("recv failed");
  }
  return {};
}

std::string Socket::write_all(const void* data, std::size_t n) {
  if (!valid()) return "write on a closed socket";
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, bytes + sent, n - sent, kSendFlags);
    if (w >= 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    return errno_message("send failed");
  }
  return {};
}

std::string Socket::send_frame(FrameType type,
                               const std::vector<std::uint8_t>& payload) {
  std::uint8_t header[kHeaderBytes];
  encode_header(type, static_cast<std::uint32_t>(payload.size()), header);
  // One buffered write per frame, so a concurrent sender on another
  // connection never interleaves header and payload bytes mid-frame.
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.insert(frame.end(), header, header + kHeaderBytes);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return write_all(frame.data(), frame.size());
}

std::string Socket::recv_frame(FrameType* type,
                               std::vector<std::uint8_t>* payload,
                               bool* clean_eof) {
  std::uint8_t header_bytes[kHeaderBytes];
  std::string error = read_exact(header_bytes, kHeaderBytes, clean_eof);
  if (!error.empty()) return error;
  FrameHeader header;
  error = decode_header(header_bytes, &header);
  if (!error.empty()) return error;
  *type = header.type;
  payload->assign(header.payload_len, 0);
  if (header.payload_len > 0) {
    error = read_exact(payload->data(), payload->size());
    if (!error.empty()) return "truncated payload: " + error;
  }
  return {};
}

void Socket::shutdown_rw() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect_loopback(int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = errno_message("socket failed");
    return Socket();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    *error = errno_message(
        ("connect to 127.0.0.1:" + std::to_string(port)).c_str());
    ::close(fd);
    return Socket();
  }
  // Frames are request/response; never batch small writes behind Nagle.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  error->clear();
  return Socket(fd);
}

Listener::~Listener() { close(); }

std::string Listener::listen_loopback(int port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return errno_message("socket failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = errno_message(
        ("bind 127.0.0.1:" + std::to_string(port)).c_str());
    close();
    return error;
  }
  if (::listen(fd_, 16) < 0) {
    const std::string error = errno_message("listen failed");
    close();
    return error;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string error = errno_message("getsockname failed");
    close();
    return error;
  }
  port_ = ntohs(bound.sin_port);
  return {};
}

Socket Listener::accept_connection(std::string* error) {
  if (!valid()) {
    *error = "listener is closed";
    return Socket();
  }
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    *error = errno_message("accept failed");
    return Socket();
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  error->clear();
  return Socket(fd);
}

void Listener::close() {
  if (valid()) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace rsnn::serve
