#include "serve/serve_flags.hpp"

#include <algorithm>

#include "engine/fault.hpp"

namespace rsnn::serve {

using flags::count_flag;
using flags::FlagSpec;
using flags::number_flag;
using flags::text_flag;
using flags::toggle_flag;

std::vector<FlagSpec> serving_pool_flags() {
  return {
      count_flag("replicas", "1",
                 "identical replicas behind the admission queue", 1),
      text_flag("policy", "fifo", "admission policy: fifo|batch|reject",
                "NAME"),
      count_flag("queue-depth", "64",
                 "bounded admission-queue capacity in requests"),
      count_flag("max-batch", "8",
                 "batch policy: dispatch once this many accumulate", 1),
      number_flag("max-wait-ms", "1",
                  "batch policy: never hold the oldest request longer", 0.0,
                  flags::kUnbounded, "MS"),
      count_flag("max-retries", "2",
                 "failed-dispatch retry budget per request (0 = off)"),
      number_flag("backoff-ms", "0.1", "retry backoff base (exponential, capped)",
                  0.0, flags::kUnbounded, "MS"),
      number_flag("stall-timeout-ms", "0",
                  "dispatches slower than this count as stalls (0 = off)",
                  0.0, flags::kUnbounded, "MS"),
      toggle_flag("rebuild", "0",
                  "rebuild quarantined replicas instead of retiring them"),
      text_flag("fault", "", "seeded fault plan, e.g. seed:7,kill:r2@5,err:p0.05",
                "PLAN"),
  };
}

std::vector<FlagSpec> serving_request_flags() {
  return {
      number_flag("deadline-ms", "0",
                  "per-request queueing deadline (0 = none)", 0.0,
                  flags::kUnbounded, "MS"),
      count_flag("bulk-every", "0",
                 "submit every Nth request on the bulk lane (0 = off)"),
  };
}

std::string pool_options_from_flags(const flags::FlagSet& flag_set,
                                    engine::ServingPoolOptions* options) {
  const std::string policy_error =
      engine::policy_parse_error(flag_set.text("policy"));
  if (!policy_error.empty()) return policy_error;
  options->policy = engine::parse_policy(flag_set.text("policy"));
  options->replicas = static_cast<int>(flag_set.count("replicas"));
  options->queue_capacity =
      static_cast<std::size_t>(flag_set.count("queue-depth"));
  options->max_batch = static_cast<std::size_t>(flag_set.count("max-batch"));
  options->max_wait_ms = flag_set.number("max-wait-ms");
  options->max_retries = static_cast<int>(flag_set.count("max-retries"));
  options->backoff_base_ms = flag_set.number("backoff-ms");
  options->backoff_cap_ms =
      std::max(options->backoff_cap_ms, options->backoff_base_ms);
  options->stall_timeout_ms = flag_set.number("stall-timeout-ms");
  options->rebuild_quarantined = flag_set.toggle("rebuild");
  const std::string& fault = flag_set.text("fault");
  if (!fault.empty()) {
    std::string fault_error;
    if (!engine::parse_fault_plan(fault, &options->fault_plan, &fault_error))
      return fault_error;
  }
  return {};
}

}  // namespace rsnn::serve
