// Radix encoding (Wang et al. 2021, the "emerging neural encoding").
//
// A real activation a in [0, 1) is quantized to T bits:
//   A = floor(a * 2^T),   a ~= sum_t s_t * 2^(T-1-t) / 2^T,
// and the spike at time step t is s_t = bit (T-1-t) of A — i.e. the spike
// train is the binary expansion of A, most significant bit first. A spike at
// step t therefore carries weight 2^(T-1-t), which the accelerator realizes
// with a left-shift of the accumulator between steps (paper Alg. 1 line 12).
#pragma once

#include "encoding/spike_train.hpp"

namespace rsnn::encoding {

/// Encode integer activation codes (values in [0, 2^T)) into spike trains.
SpikeTrain radix_encode_codes(const TensorI& codes, int time_steps);

/// Encode into an existing train, reusing its storage (no allocation once
/// the train has reached its steady-state capacity). `out` is reset to the
/// codes' shape. Overloaded for the 64-bit accumulator tensors the unit
/// simulators produce, avoiding a narrowing copy.
void radix_encode_codes_into(const TensorI& codes, int time_steps,
                             SpikeTrain& out);
void radix_encode_codes_into(const TensorI64& codes, int time_steps,
                             SpikeTrain& out);

/// Encode real activations in [0, 1): quantize to T bits, then encode.
SpikeTrain radix_encode(const TensorF& activations, int time_steps);

/// Decode back to integer codes: A = sum_t s_t << (T-1-t).
TensorI radix_decode_codes(const SpikeTrain& train);

/// Decode to real values A / 2^T (the quantized-grid representative).
TensorF radix_decode(const SpikeTrain& train);

}  // namespace rsnn::encoding
