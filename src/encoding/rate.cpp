#include "encoding/rate.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rsnn::encoding {

SpikeTrain rate_encode(const TensorF& activations, int time_steps) {
  RSNN_REQUIRE(time_steps >= 1);
  SpikeTrain train(activations.shape(), time_steps);
  for (std::int64_t i = 0; i < activations.numel(); ++i) {
    const float a = activations.at_flat(i);
    RSNN_REQUIRE(a >= 0.0f && a <= 1.0f, "activation " << a << " outside [0,1]");
    const int count = static_cast<int>(
        std::lround(static_cast<double>(a) * time_steps));
    // Evenly spaced spikes via Bresenham-style accumulation.
    int emitted = 0;
    for (int t = 0; t < time_steps && emitted < count; ++t) {
      const int due = ((t + 1) * count) / time_steps;
      if (due > emitted) {
        train.set_spike(t, i, true);
        ++emitted;
      }
    }
  }
  return train;
}

SpikeTrain rate_encode_stochastic(const TensorF& activations, int time_steps,
                                  Rng& rng) {
  RSNN_REQUIRE(time_steps >= 1);
  SpikeTrain train(activations.shape(), time_steps);
  for (std::int64_t i = 0; i < activations.numel(); ++i) {
    const float a = activations.at_flat(i);
    RSNN_REQUIRE(a >= 0.0f && a <= 1.0f, "activation " << a << " outside [0,1]");
    for (int t = 0; t < time_steps; ++t)
      train.set_spike(t, i, rng.next_bool(a));
  }
  return train;
}

TensorF rate_decode(const SpikeTrain& train) {
  TensorF out(train.neuron_shape());
  const float inv_T = 1.0f / static_cast<float>(train.time_steps());
  for (std::int64_t i = 0; i < out.numel(); ++i)
    out.at_flat(i) = static_cast<float>(train.spike_count(i)) * inv_T;
  return out;
}

}  // namespace rsnn::encoding
