#include "encoding/analysis.hpp"

#include <cmath>

#include "encoding/radix.hpp"
#include "encoding/rate.hpp"

namespace rsnn::encoding {
namespace {

EncodingErrorStats error_between(const TensorF& original,
                                 const TensorF& decoded,
                                 std::int64_t total_spikes) {
  EncodingErrorStats stats;
  stats.total_spikes = total_spikes;
  double sum_abs = 0.0, sum_sq = 0.0;
  for (std::int64_t i = 0; i < original.numel(); ++i) {
    const double err = static_cast<double>(original.at_flat(i)) -
                       static_cast<double>(decoded.at_flat(i));
    stats.max_abs_error = std::max(stats.max_abs_error, std::abs(err));
    sum_abs += std::abs(err);
    sum_sq += err * err;
  }
  const double n = static_cast<double>(original.numel());
  stats.mean_abs_error = sum_abs / n;
  stats.rms_error = std::sqrt(sum_sq / n);
  return stats;
}

}  // namespace

EncodingErrorStats radix_error(const TensorF& values, int time_steps) {
  const SpikeTrain train = radix_encode(values, time_steps);
  return error_between(values, radix_decode(train), train.total_spikes());
}

EncodingErrorStats rate_error(const TensorF& values, int time_steps) {
  const SpikeTrain train = rate_encode(values, time_steps);
  return error_between(values, rate_decode(train), train.total_spikes());
}

EncodingErrorStats rate_error_stochastic(const TensorF& values, int time_steps,
                                         int trials, Rng& rng) {
  EncodingErrorStats accumulated;
  for (int trial = 0; trial < trials; ++trial) {
    const SpikeTrain train = rate_encode_stochastic(values, time_steps, rng);
    const EncodingErrorStats stats =
        error_between(values, rate_decode(train), train.total_spikes());
    accumulated.max_abs_error =
        std::max(accumulated.max_abs_error, stats.max_abs_error);
    accumulated.mean_abs_error += stats.mean_abs_error;
    accumulated.rms_error += stats.rms_error;
    accumulated.total_spikes += stats.total_spikes;
  }
  accumulated.mean_abs_error /= trials;
  accumulated.rms_error /= trials;
  accumulated.total_spikes /= trials;
  return accumulated;
}

TensorF uniform_test_values(std::int64_t count, Rng& rng) {
  TensorF values(Shape{count});
  for (std::int64_t i = 0; i < count; ++i)
    values.at_flat(i) = static_cast<float>(rng.next_double() * 0.999);
  return values;
}

}  // namespace rsnn::encoding
