// SpikeTrain: binary events over `time_steps` steps for a tensor of neurons.
//
// Storage is bit-packed and time-major: each time step owns a contiguous row
// of `words_per_step()` 64-bit words, and step t of neuron i is bit (i % 64)
// of word [t * words_per_step + i / 64]. That matches the hardware's
// processing order (the accelerator streams one time step of a whole feature
// map before moving to the next) while letting the simulators consume 64
// neurons per load, count spikes with popcount, and skip all-zero words.
//
// Invariant: the padding bits of each step's last word (bit positions at or
// beyond num_neurons()) are always zero, so whole-word operations
// (total_spikes, operator==, for_each_set_bit) need no tail masking.
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace rsnn::encoding {

class SpikeTrain {
 public:
  SpikeTrain() = default;
  SpikeTrain(Shape neuron_shape, int time_steps)
      : shape_(std::move(neuron_shape)),
        numel_(shape_.numel()),
        time_steps_(time_steps),
        words_per_step_((numel_ + 63) / 64),
        words_(static_cast<std::size_t>(time_steps) *
                   static_cast<std::size_t>(words_per_step_),
               0) {
    RSNN_REQUIRE(time_steps >= 1);
  }

  /// Reinitialize in place to a (possibly different) shape and length,
  /// reusing the word storage's capacity. All spikes cleared. This is the
  /// allocation-free path the streaming scheduler uses between inferences.
  void reset(Shape neuron_shape, int time_steps) {
    RSNN_REQUIRE(time_steps >= 1);
    shape_ = std::move(neuron_shape);
    numel_ = shape_.numel();
    time_steps_ = time_steps;
    words_per_step_ = (numel_ + 63) / 64;
    words_.assign(static_cast<std::size_t>(time_steps) *
                      static_cast<std::size_t>(words_per_step_),
                  0);
  }

  const Shape& neuron_shape() const { return shape_; }
  int time_steps() const { return time_steps_; }
  std::int64_t num_neurons() const { return numel_; }

  bool spike(int t, std::int64_t neuron) const {
    return ((words_[word_index(t, neuron)] >> (neuron & 63)) & 1u) != 0;
  }
  void set_spike(int t, std::int64_t neuron, bool value) {
    const std::uint64_t mask = std::uint64_t{1} << (neuron & 63);
    std::uint64_t& word = words_[word_index(t, neuron)];
    if (value)
      word |= mask;
    else
      word &= ~mask;
  }

  /// Number of 64-bit words per time step (ceil(num_neurons / 64)).
  std::int64_t words_per_step() const { return words_per_step_; }

  /// Word `w` of time step `t` (neurons 64*w .. 64*w+63, LSB first).
  std::uint64_t word(int t, std::int64_t w) const {
    RSNN_DCHECK(t >= 0 && t < time_steps_, "time step " << t);
    RSNN_DCHECK(w >= 0 && w < words_per_step_, "word " << w);
    return words_[static_cast<std::size_t>(t) *
                      static_cast<std::size_t>(words_per_step_) +
                  static_cast<std::size_t>(w)];
  }

  /// Pointer to time step `t`'s packed word row.
  const std::uint64_t* step_words(int t) const {
    RSNN_DCHECK(t >= 0 && t < time_steps_, "time step " << t);
    return words_.data() + static_cast<std::size_t>(t) *
                               static_cast<std::size_t>(words_per_step_);
  }

  /// Total number of spikes (events) — the quantity that drives dynamic
  /// energy in event-driven hardware.
  std::int64_t total_spikes() const {
    std::int64_t n = 0;
    for (const std::uint64_t w : words_) n += std::popcount(w);
    return n;
  }

  /// Spikes emitted during one time step.
  std::int64_t spikes_at_step(int t) const {
    const std::uint64_t* row = step_words(t);
    std::int64_t n = 0;
    for (std::int64_t w = 0; w < words_per_step_; ++w)
      n += std::popcount(row[w]);
    return n;
  }

  /// Spikes emitted by one neuron across all steps.
  int spike_count(std::int64_t neuron) const {
    int n = 0;
    for (int t = 0; t < time_steps_; ++t) n += spike(t, neuron) ? 1 : 0;
    return n;
  }

  /// Event iterator: invoke `fn(neuron)` for every neuron that spiked at
  /// step `t`, in ascending neuron order, skipping zero words wholesale.
  template <typename Fn>
  void for_each_set_bit(int t, Fn&& fn) const {
    for_each_set_bit_in_range(t, 0, numel_, std::forward<Fn>(fn));
  }

  /// Event iterator over the half-open neuron range [begin, end).
  template <typename Fn>
  void for_each_set_bit_in_range(int t, std::int64_t begin, std::int64_t end,
                                 Fn&& fn) const {
    RSNN_DCHECK(t >= 0 && t < time_steps_, "time step " << t);
    RSNN_DCHECK(begin >= 0 && begin <= end && end <= numel_,
                "range [" << begin << ", " << end << ")");
    if (begin >= end) return;
    const std::uint64_t* row = step_words(t);
    const std::int64_t first_word = begin / 64;
    const std::int64_t last_word = (end - 1) / 64;
    for (std::int64_t w = first_word; w <= last_word; ++w) {
      std::uint64_t bits = row[w];
      if (bits == 0) continue;
      if (w == first_word && (begin & 63) != 0)
        bits &= ~std::uint64_t{0} << (begin & 63);
      if (w == last_word && (end & 63) != 0)
        bits &= ~std::uint64_t{0} >> (64 - (end & 63));
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        fn(w * 64 + bit);
        bits &= bits - 1;
      }
    }
  }

  /// Same events, different neuron shape (element count must match). The
  /// packed layout depends only on the flat neuron index, so this is a pure
  /// relabeling — the accelerator's flatten transfer. The rvalue overload
  /// moves the word storage, so `train = std::move(train).reshaped(s)` is
  /// zero-copy.
  SpikeTrain reshaped(Shape new_shape) const& {
    SpikeTrain out = *this;
    return std::move(out).reshaped(std::move(new_shape));
  }
  SpikeTrain reshaped(Shape new_shape) && {
    RSNN_REQUIRE(new_shape.numel() == numel_,
                 "reshape " << shape_.to_string() << " -> "
                            << new_shape.to_string());
    SpikeTrain out = std::move(*this);
    out.shape_ = std::move(new_shape);
    return out;
  }

  bool operator==(const SpikeTrain& other) const {
    return shape_ == other.shape_ && time_steps_ == other.time_steps_ &&
           words_ == other.words_;
  }

 private:
  std::size_t word_index(int t, std::int64_t neuron) const {
    RSNN_DCHECK(t >= 0 && t < time_steps_, "time step " << t);
    RSNN_DCHECK(neuron >= 0 && neuron < numel_, "neuron " << neuron);
    return static_cast<std::size_t>(t) *
               static_cast<std::size_t>(words_per_step_) +
           static_cast<std::size_t>(neuron / 64);
  }

  Shape shape_;
  std::int64_t numel_ = 0;
  int time_steps_ = 0;
  std::int64_t words_per_step_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rsnn::encoding
