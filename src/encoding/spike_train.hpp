// SpikeTrain: binary events over `time_steps` steps for a tensor of neurons.
//
// Storage is time-major: step t of neuron i is bits[t * numel + i]. That
// matches the hardware's processing order (the accelerator streams one time
// step of a whole feature map before moving to the next).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace rsnn::encoding {

class SpikeTrain {
 public:
  SpikeTrain() = default;
  SpikeTrain(Shape neuron_shape, int time_steps)
      : shape_(std::move(neuron_shape)),
        time_steps_(time_steps),
        bits_(static_cast<std::size_t>(time_steps) *
                  static_cast<std::size_t>(shape_.numel()),
              0) {
    RSNN_REQUIRE(time_steps >= 1);
  }

  const Shape& neuron_shape() const { return shape_; }
  int time_steps() const { return time_steps_; }
  std::int64_t num_neurons() const { return shape_.numel(); }

  bool spike(int t, std::int64_t neuron) const {
    return bits_[index(t, neuron)] != 0;
  }
  void set_spike(int t, std::int64_t neuron, bool value) {
    bits_[index(t, neuron)] = value ? 1 : 0;
  }

  /// Total number of spikes (events) — the quantity that drives dynamic
  /// energy in event-driven hardware.
  std::int64_t total_spikes() const {
    std::int64_t n = 0;
    for (const auto b : bits_) n += b;
    return n;
  }

  /// Spikes emitted by one neuron across all steps.
  int spike_count(std::int64_t neuron) const {
    int n = 0;
    for (int t = 0; t < time_steps_; ++t) n += spike(t, neuron) ? 1 : 0;
    return n;
  }

  bool operator==(const SpikeTrain& other) const {
    return shape_ == other.shape_ && time_steps_ == other.time_steps_ &&
           bits_ == other.bits_;
  }

 private:
  std::size_t index(int t, std::int64_t neuron) const {
    RSNN_REQUIRE(t >= 0 && t < time_steps_, "time step " << t);
    RSNN_REQUIRE(neuron >= 0 && neuron < shape_.numel(), "neuron " << neuron);
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(shape_.numel()) +
           static_cast<std::size_t>(neuron);
  }

  Shape shape_;
  int time_steps_ = 0;
  std::vector<std::uint8_t> bits_;
};

}  // namespace rsnn::encoding
