#include "encoding/spike_train.hpp"

// SpikeTrain is header-only; this translation unit anchors the library.
namespace rsnn::encoding {}
