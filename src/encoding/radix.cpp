#include "encoding/radix.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace rsnn::encoding {

namespace {

template <typename TensorT>
void encode_codes_into(const TensorT& codes, int time_steps, SpikeTrain& out) {
  RSNN_REQUIRE(time_steps >= 1 && time_steps <= 30);
  const std::int64_t levels = std::int64_t{1} << time_steps;
  out.reset(codes.shape(), time_steps);
  for (std::int64_t i = 0; i < codes.numel(); ++i) {
    const std::int64_t code = codes.at_flat(i);
    RSNN_REQUIRE(code >= 0 && code < levels,
                 "code " << code << " not in [0, 2^" << time_steps << ")");
    // Unconditional set: the value-select compiles branchless, which beats a
    // conditional store on the (data-dependent, unpredictable) spike bits.
    for (int t = 0; t < time_steps; ++t)
      out.set_spike(t, i, test_bit(static_cast<std::uint64_t>(code),
                                   time_steps - 1 - t));
  }
}

}  // namespace

void radix_encode_codes_into(const TensorI& codes, int time_steps,
                             SpikeTrain& out) {
  encode_codes_into(codes, time_steps, out);
}

void radix_encode_codes_into(const TensorI64& codes, int time_steps,
                             SpikeTrain& out) {
  encode_codes_into(codes, time_steps, out);
}

SpikeTrain radix_encode_codes(const TensorI& codes, int time_steps) {
  SpikeTrain train;
  radix_encode_codes_into(codes, time_steps, train);
  return train;
}

SpikeTrain radix_encode(const TensorF& activations, int time_steps) {
  RSNN_REQUIRE(time_steps >= 1 && time_steps <= 30);
  const std::int64_t levels = std::int64_t{1} << time_steps;
  TensorI codes(activations.shape());
  for (std::int64_t i = 0; i < activations.numel(); ++i) {
    const float a = activations.at_flat(i);
    RSNN_REQUIRE(a >= 0.0f && a < 1.0f, "activation " << a << " outside [0,1)");
    codes.at_flat(i) = static_cast<std::int32_t>(std::min<std::int64_t>(
        static_cast<std::int64_t>(a * static_cast<float>(levels)), levels - 1));
  }
  return radix_encode_codes(codes, time_steps);
}

TensorI radix_decode_codes(const SpikeTrain& train) {
  TensorI codes(train.neuron_shape());
  const int T = train.time_steps();
  for (std::int64_t i = 0; i < codes.numel(); ++i) {
    std::int32_t code = 0;
    for (int t = 0; t < T; ++t)
      if (train.spike(t, i)) code |= std::int32_t{1} << (T - 1 - t);
    codes.at_flat(i) = code;
  }
  return codes;
}

TensorF radix_decode(const SpikeTrain& train) {
  const TensorI codes = radix_decode_codes(train);
  const float scale = std::ldexp(1.0f, -train.time_steps());
  TensorF out(codes.shape());
  for (std::int64_t i = 0; i < codes.numel(); ++i)
    out.at_flat(i) = static_cast<float>(codes.at_flat(i)) * scale;
  return out;
}

}  // namespace rsnn::encoding
