// Encoding error analysis: quantifies why radix encoding shortens spike
// trains (DESIGN.md invariant 5; feeds the encoding ablation bench).
#pragma once

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace rsnn::encoding {

struct EncodingErrorStats {
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
  double rms_error = 0.0;
  std::int64_t total_spikes = 0;  ///< event count (energy proxy)
};

/// Round-trip error of radix encoding at T steps over the given values.
EncodingErrorStats radix_error(const TensorF& values, int time_steps);

/// Round-trip error of deterministic rate encoding at T steps.
EncodingErrorStats rate_error(const TensorF& values, int time_steps);

/// Round-trip error of stochastic rate encoding (averaged over trials).
EncodingErrorStats rate_error_stochastic(const TensorF& values, int time_steps,
                                         int trials, Rng& rng);

/// Uniform test values in [0, 1) for error sweeps.
TensorF uniform_test_values(std::int64_t count, Rng& rng);

}  // namespace rsnn::encoding
