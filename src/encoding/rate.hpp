// Rate encoding — the traditional scheme the paper compares against.
//
// The spike *frequency* encodes the value: a neuron with activation a emits
// approximately a*T spikes over T steps. Order carries no information, so
// decoding is count/T and the quantization error decays only as O(1/T) —
// versus O(2^-T) for radix encoding. Two generators are provided:
//   * deterministic: evenly spaced spikes (error <= 1/T, no variance),
//   * stochastic: Bernoulli(a) per step (classic Poisson-like input).
#pragma once

#include "common/rng.hpp"
#include "encoding/spike_train.hpp"

namespace rsnn::encoding {

/// Deterministic rate encoding: round(a*T) spikes, evenly spaced.
SpikeTrain rate_encode(const TensorF& activations, int time_steps);

/// Stochastic rate encoding: each step spikes with probability a.
SpikeTrain rate_encode_stochastic(const TensorF& activations, int time_steps,
                                  Rng& rng);

/// Decode: spike count / T.
TensorF rate_decode(const SpikeTrain& train);

}  // namespace rsnn::encoding
