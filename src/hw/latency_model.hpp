// Analytic latency and memory-access model of the accelerator.
//
// These closed-form cycle counts are derived from the row-based dataflow of
// paper Alg. 1 / Fig. 2 and are the single timing contract of the design:
// the cycle-accurate unit simulators step the same state machine cycle by
// cycle and must report identical totals (DESIGN.md invariant 4, tested in
// tests/hw and swept in bench/ablation_cycle_model).
//
// Pass structure of one convolution unit (one group, one time step, one
// input channel):
//
//   setup | row 0 | row 1 | ... | row R-1 |        R = ih + 2*pad rows
//          <-- row_period cycles each -->
//
//   row_period = max(Kc, row_fetch)   — the input shift register shifts Kc
//   times per row while the next row is prefetched from the activation
//   buffer (double buffering); fetch takes ceil(iw / act_read_bits) cycles,
//   multiplied by the port-contention factor when several conv units share
//   the activation buffer ports.
//
// Output channels: a unit holds `share = floor(X / ow)` output channels side
// by side (paper: "multiple output channels can share a single convolution
// unit"); U units work on different channels, so a layer needs
// `groups = ceil(cout / (U * share))` sequential group phases. If ow > X the
// feature map is tiled (`tiles` column tiles), which the paper's sizing rule
// X >= max(ow) avoids.
#pragma once

#include <cstdint>

#include "hw/arch.hpp"

namespace rsnn::hw {

/// Dimensions of a convolution layer instance.
struct ConvDims {
  std::int64_t cin = 0, cout = 0;
  std::int64_t ih = 0, iw = 0;
  std::int64_t kernel = 0, stride = 1, padding = 0;

  std::int64_t oh() const { return (ih + 2 * padding - kernel) / stride + 1; }
  std::int64_t ow() const { return (iw + 2 * padding - kernel) / stride + 1; }
};

/// Memory traffic of one layer, in bits.
struct MemTraffic {
  std::int64_t act_read_bits = 0;    ///< activation buffer reads
  std::int64_t act_write_bits = 0;   ///< activation buffer writes
  std::int64_t weight_read_bits = 0; ///< weight BRAM reads
  std::int64_t dram_bits = 0;        ///< external DRAM traffic
};

/// Cycle breakdown of one layer on the accelerator.
struct LayerLatency {
  std::int64_t total_cycles = 0;
  std::int64_t compute_cycles = 0;   ///< unit-busy cycles (incl. stalls)
  std::int64_t dram_cycles = 0;      ///< serial parameter fetch before compute
  std::int64_t writeback_cycles = 0; ///< output store to the ping-pong buffer
  // Structural quantities (exposed for tests and ablations):
  std::int64_t groups = 0;
  std::int64_t channels_per_unit = 0;
  std::int64_t tiles = 0;
  std::int64_t row_period = 0;
  MemTraffic traffic;
};

/// Effective row fetch cycles including port contention.
std::int64_t conv_row_fetch_cycles(std::int64_t iw, const TimingParams& timing,
                                   int active_units);

/// Latency of a convolution layer.
LayerLatency conv_latency(const ConvDims& dims, const AcceleratorConfig& cfg,
                          int time_steps, WeightPlacement placement,
                          int weight_bits);

/// Latency of an average pooling layer (kernel == stride == k).
LayerLatency pool_latency(std::int64_t channels, std::int64_t ih,
                          std::int64_t iw, std::int64_t kernel,
                          const AcceleratorConfig& cfg, int time_steps);

/// Latency of a fully-connected layer.
LayerLatency linear_latency(std::int64_t in_features, std::int64_t out_features,
                            const AcceleratorConfig& cfg, int time_steps,
                            WeightPlacement placement, int weight_bits);

/// Cycles to move a flattened feature map from the 2-D to the 1-D buffers.
std::int64_t flatten_transfer_cycles(std::int64_t numel, int time_steps,
                                     const TimingParams& timing);

/// Cycles to move `bits` of cut-tensor activations across an inter-device
/// stream link of `link_bits_per_cycle` (plus a fixed per-transfer handshake
/// cost) — the communication term the pipeline partitioners trade against
/// bottleneck latency. Zero-bit transfers are free.
std::int64_t inter_device_transfer_cycles(std::int64_t bits,
                                          std::int64_t link_bits_per_cycle,
                                          std::int64_t setup_cycles);

/// Activation-buffer reads of a *naive* (sliding window, no row reuse)
/// convolution dataflow, for the memory-access ablation: every output pixel
/// re-reads its full Kr x Kc window.
std::int64_t naive_conv_act_reads_bits(const ConvDims& dims, int time_steps);

}  // namespace rsnn::hw
