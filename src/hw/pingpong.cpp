#include "hw/pingpong.hpp"

#include "common/assert.hpp"

namespace rsnn::hw {

PingPongPair::PingPongPair(std::string name, std::int64_t capacity_bits_each)
    : capacity_(capacity_bits_each) {
  RSNN_REQUIRE(capacity_bits_each > 0);
  buffers_[0].name = name + "/ping";
  buffers_[1].name = name + "/pong";
  buffers_[0].capacity_bits = buffers_[1].capacity_bits = capacity_bits_each;
}

void PingPongPair::store_output(std::int64_t bits) {
  RSNN_REQUIRE(bits >= 0);
  ActivationBuffer& buffer = pong();
  RSNN_REQUIRE(bits <= buffer.capacity_bits,
               buffer.name << ": feature map of " << bits
                           << " bits exceeds capacity " << buffer.capacity_bits
                           << " (compiler must size the ping-pong buffers)");
  buffer.used_bits = bits;
  buffer.writes += 1;
  buffer.write_bits += bits;
}

void PingPongPair::load_input(std::int64_t bits) {
  RSNN_REQUIRE(bits >= 0);
  ActivationBuffer& buffer = ping();
  buffer.reads += 1;
  buffer.read_bits += bits;
}

void PingPongPair::swap() {
  active_ = 1 - active_;
  ++swaps_;
}

void PingPongPair::reset() {
  for (ActivationBuffer& buffer : buffers_) {
    buffer.used_bits = 0;
    buffer.reads = buffer.writes = 0;
    buffer.read_bits = buffer.write_bits = 0;
  }
  active_ = 0;
  swaps_ = 0;
}

std::int64_t PingPongPair::total_read_bits() const {
  return buffers_[0].read_bits + buffers_[1].read_bits;
}

std::int64_t PingPongPair::total_write_bits() const {
  return buffers_[0].write_bits + buffers_[1].write_bits;
}

std::int64_t activation_bits(const Shape& shape, int time_steps) {
  return shape.numel() * time_steps;
}

}  // namespace rsnn::hw
