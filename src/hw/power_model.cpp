#include "hw/power_model.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rsnn::hw {
namespace {

// Calibration against Table II (100 MHz, LeNet design):
//   P(U) ~= 3.05 W + 0.028 W * U  for U = 1, 2, 4, 8 conv units.
// A conv unit is ~4.6k LUTs (resource model), so the per-unit increment
// gives c_lut ~= 0.028 / (4.6k * 100 MHz) ~= 6.1e-8 W per LUT-MHz at the
// measured toggle rate; we fold the toggle baseline into the constant and
// scale with the *measured* activity of the actual run.
constexpr double kStaticW = 2.75;            // XCVU13P-class leakage
constexpr double kClockWPerMhz = 0.0030;     // clock tree + always-on control
constexpr double kLutWPerMhz = 6.1e-9;       // per LUT per MHz at toggle 0.10
constexpr double kToggleBaseline = 0.10;     // activity the calibration assumed
constexpr double kBramWPerGbps = 0.020;      // BRAM access energy
// The paper's VGG-11 row (4.9 W at 115 MHz, 8 units) exceeds the fabric
// estimate by ~1.3 W once DRAM enters the design: memory controller + PHY.
constexpr double kDramInterfaceW = 1.30;
constexpr double kDramWPerGbps = 0.050;      // incremental per-bit transfer

}  // namespace

PowerBreakdown estimate_power(const AcceleratorConfig& config,
                              const ResourceEstimate& resources,
                              const AccelRunResult& run, bool uses_dram) {
  RSNN_REQUIRE(run.total_cycles > 0, "run has no cycles");
  PowerBreakdown p;
  p.static_w = kStaticW;
  p.clock_w = kClockWPerMhz * config.clock_mhz;

  // Toggle rate: fraction of adders doing useful work per cycle. Bounded to
  // keep the model sane for degenerate runs.
  const double adders = static_cast<double>(config.num_conv_units) *
                            config.conv.array_columns * config.conv.kernel_rows +
                        config.pool.array_columns * config.pool.kernel_rows +
                        config.linear.lanes;
  const double toggle = std::clamp(
      static_cast<double>(run.total_adder_ops) /
          (static_cast<double>(run.total_cycles) * std::max(adders, 1.0)),
      0.02, 1.0);

  p.logic_w = kLutWPerMhz * static_cast<double>(resources.luts) *
              config.clock_mhz * (toggle / kToggleBaseline);

  const double seconds = run.latency_us * 1e-6;
  const double bram_gbits =
      static_cast<double>(run.traffic_total.act_read_bits +
                          run.traffic_total.act_write_bits +
                          run.traffic_total.weight_read_bits) *
      1e-9;
  p.bram_w = seconds > 0.0 ? kBramWPerGbps * bram_gbits / seconds : 0.0;

  if (uses_dram) {
    p.dram_w = kDramInterfaceW;
    if (seconds > 0.0)
      p.dram_w += kDramWPerGbps * static_cast<double>(run.dram_bits) * 1e-9 /
                  seconds;
  }
  return p;
}

}  // namespace rsnn::hw
