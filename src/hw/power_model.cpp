#include "hw/power_model.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rsnn::hw {
namespace {

// Calibration against Table II (100 MHz, LeNet design):
//   P(U) ~= 3.05 W + 0.028 W * U  for U = 1, 2, 4, 8 conv units.
// A conv unit is ~4.6k LUTs (resource model), so the per-unit increment
// gives c_lut ~= 0.028 / (4.6k * 100 MHz) ~= 6.1e-8 W per LUT-MHz at the
// measured toggle rate; we fold the toggle baseline into the constant and
// scale with the *measured* activity of the actual run.
constexpr double kStaticW = 2.75;            // XCVU13P-class leakage
constexpr double kClockWPerMhz = 0.0030;     // clock tree + always-on control
constexpr double kLutWPerMhz = 6.1e-9;       // per LUT per MHz at toggle 0.10
constexpr double kToggleBaseline = 0.10;     // activity the calibration assumed
constexpr double kBramWPerGbps = 0.020;      // BRAM access energy
// The paper's VGG-11 row (4.9 W at 115 MHz, 8 units) exceeds the fabric
// estimate by ~1.3 W once DRAM enters the design: memory controller + PHY.
constexpr double kDramInterfaceW = 1.30;
constexpr double kDramWPerGbps = 0.050;      // incremental per-bit transfer

}  // namespace

PowerBreakdown estimate_power(const AcceleratorConfig& config,
                              const ResourceEstimate& resources,
                              const AccelRunResult& run, bool uses_dram) {
  RSNN_REQUIRE(run.total_cycles > 0, "run has no cycles");
  PowerBreakdown p;
  p.static_w = kStaticW;
  p.clock_w = kClockWPerMhz * config.clock_mhz;

  // Toggle rate: fraction of adders doing useful work per cycle. Bounded to
  // keep the model sane for degenerate runs.
  const double adders = static_cast<double>(config.num_conv_units) *
                            config.conv.array_columns * config.conv.kernel_rows +
                        config.pool.array_columns * config.pool.kernel_rows +
                        config.linear.lanes;
  const double toggle = std::clamp(
      static_cast<double>(run.total_adder_ops) /
          (static_cast<double>(run.total_cycles) * std::max(adders, 1.0)),
      0.02, 1.0);

  p.logic_w = kLutWPerMhz * static_cast<double>(resources.luts) *
              config.clock_mhz * (toggle / kToggleBaseline);

  const double seconds = run.latency_us * 1e-6;
  const double bram_gbits =
      static_cast<double>(run.traffic_total.act_read_bits +
                          run.traffic_total.act_write_bits +
                          run.traffic_total.weight_read_bits) *
      1e-9;
  p.bram_w = seconds > 0.0 ? kBramWPerGbps * bram_gbits / seconds : 0.0;

  if (uses_dram) {
    p.dram_w = kDramInterfaceW;
    if (seconds > 0.0)
      p.dram_w += kDramWPerGbps * static_cast<double>(run.dram_bits) * 1e-9 /
                  seconds;
  }
  return p;
}

namespace {

/// Split a double `total` across weights; the last non-zero-weight share is
/// computed as the residual (total minus the others) so that summing the
/// shares in index order reproduces `total` exactly, floating point and
/// all. All-zero weights put everything on the first share.
std::vector<double> split_residual(double total,
                                   const std::vector<double>& weights) {
  std::vector<double> shares(weights.size(), 0.0);
  if (weights.empty()) return shares;
  double weight_sum = 0.0;
  for (const double w : weights) weight_sum += w;
  if (weight_sum <= 0.0) {
    shares[0] = total;
    return shares;
  }
  std::size_t last = 0;
  for (std::size_t i = 0; i < weights.size(); ++i)
    if (weights[i] > 0.0) last = i;
  double assigned = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (i == last) continue;
    shares[i] = total * (weights[i] / weight_sum);
    assigned += shares[i];
  }
  shares[last] = total - assigned;
  return shares;
}

}  // namespace

std::vector<PowerBreakdown> partition_power(
    const AcceleratorConfig& config,
    const std::vector<ResourceEstimate>& segment_resources,
    const std::vector<ir::ProgramSegment>& segments, const AccelRunResult& run,
    bool uses_dram) {
  RSNN_REQUIRE(!segments.empty() &&
                   segment_resources.size() == segments.size(),
               "need one resource estimate per segment");
  RSNN_REQUIRE(segments.front().begin == 0,
               "segments must start at op 0 (non-covering partitions would "
               "silently drop activity)");
  for (std::size_t s = 0; s + 1 < segments.size(); ++s)
    RSNN_REQUIRE(segments[s].end == segments[s + 1].begin,
                 "segments must be contiguous");
  RSNN_REQUIRE(run.layers.size() == segments.back().end,
               "run record does not cover the partitioned program");

  const std::size_t n = segments.size();
  ResourceEstimate total_resources;
  for (const ResourceEstimate& r : segment_resources) total_resources += r;
  const PowerBreakdown whole =
      estimate_power(config, total_resources, run, uses_dram);

  // Attribution keys, per segment, from the run's per-layer records.
  std::vector<double> luts(n, 0.0), adder_ops(n, 0.0), bram_bits(n, 0.0),
      dram_bits(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    luts[s] = static_cast<double>(segment_resources[s].luts);
    for (std::size_t li = segments[s].begin; li < segments[s].end; ++li) {
      const LayerStats& layer = run.layers[li];
      adder_ops[s] += static_cast<double>(layer.adder_ops);
      bram_bits[s] += static_cast<double>(layer.traffic.act_read_bits +
                                          layer.traffic.act_write_bits +
                                          layer.traffic.weight_read_bits);
      dram_bits[s] += static_cast<double>(layer.traffic.dram_bits);
    }
  }

  const std::vector<double> static_w = split_residual(whole.static_w, luts);
  const std::vector<double> clock_w = split_residual(whole.clock_w, luts);
  const std::vector<double> logic_w =
      split_residual(whole.logic_w, adder_ops);
  const std::vector<double> bram_w = split_residual(whole.bram_w, bram_bits);
  const std::vector<double> dram_w = split_residual(whole.dram_w, dram_bits);

  std::vector<PowerBreakdown> out(n);
  for (std::size_t s = 0; s < n; ++s) {
    out[s].static_w = static_w[s];
    out[s].clock_w = clock_w[s];
    out[s].logic_w = logic_w[s];
    out[s].bram_w = bram_w[s];
    out[s].dram_w = dram_w[s];
  }
  return out;
}

}  // namespace rsnn::hw
