// Power model: static + clock-tree + per-resource dynamic + DRAM interface.
//
//   P = P_static                      (device leakage, always present)
//     + c_clock * f                   (clock distribution)
//     + c_lut * LUTs * f * toggle     (fabric dynamic power; `toggle` is the
//                                      measured adder activity per cycle)
//     + c_bram * bram_accesses/s      (activation + weight buffer energy)
//     + P_dram_interface              (memory controller + PHY, when used)
//     + e_dram * dram_bits/s          (per-bit DRAM transfer energy)
//
// Calibration (documented per constant in the .cpp): the paper's Table II
// (3.07/3.09/3.17/3.28 W for 1/2/4/8 conv units at 100 MHz) pins P_static,
// c_clock and the per-unit dynamic term; the VGG-11 row (4.9 W at 115 MHz
// with DRAM) pins the DRAM interface power. As with any power model fitted
// to published totals, *shape* (monotone scaling with units/frequency, DRAM
// penalty) is the reproducible claim.
#pragma once

#include "hw/accelerator.hpp"
#include "hw/resource_model.hpp"

namespace rsnn::hw {

struct PowerBreakdown {
  double static_w = 0.0;
  double clock_w = 0.0;
  double logic_w = 0.0;
  double bram_w = 0.0;
  double dram_w = 0.0;

  double total_w() const {
    return static_w + clock_w + logic_w + bram_w + dram_w;
  }
};

/// Estimate power for a design instance.
/// `resources`: the synthesized footprint.
/// `run`: a representative inference (provides activity factors: adder ops
/// per cycle, memory traffic per second). Pass the result of either sim mode.
PowerBreakdown estimate_power(const AcceleratorConfig& config,
                              const ResourceEstimate& resources,
                              const AccelRunResult& run, bool uses_dram);

/// Per-segment attribution of the monolithic power estimate across a
/// pipeline partition — the budgeting view of one design's power split over
/// its stages. The breakdowns sum (field for field) exactly to
/// estimate_power() of the whole design. Attribution keys: static and clock
/// power by each segment's LUT share (`segment_resources`, from
/// partition_resources); logic power by fired adder ops; BRAM power by
/// activation+weight traffic; DRAM power by DRAM bits — all read from the
/// per-layer records of `run`, which must cover the whole program (a
/// monolithic run or a merged pipeline result).
std::vector<PowerBreakdown> partition_power(
    const AcceleratorConfig& config,
    const std::vector<ResourceEstimate>& segment_resources,
    const std::vector<ir::ProgramSegment>& segments, const AccelRunResult& run,
    bool uses_dram);

}  // namespace rsnn::hw
