// ConvUnit: cycle-accurate, bit-true simulator of one convolution unit
// (paper Fig. 2).
//
// The unit is a Y x X adder array fed by an input shift register:
//   * The input logic fetches one binary feature-map row into the shift
//     register (one fetch per row, double-buffered against compute).
//   * Adder column x taps the register at position x*stride + s after s
//     shifts; Kc shifts expose the whole kernel window to every column.
//   * Adder row y holds kernel row y of the current output channel; a
//     multiplexer feeds 0 when no spike occurred (no multipliers anywhere).
//   * Partial sums advance one adder row per input row, so output row `oy`
//     flows through stage y while input row oy*stride + y streams; after Kr
//     stages it exits to the output logic.
//   * The output logic accumulates exited rows over input channels and time
//     steps, left-shifting by one bit between time steps (radix weighting),
//     and finally applies bias + ReLU + requantization.
//
// X may be split into `share = X / ow` column segments so several output
// channels of the same layer are computed in one pass (they consume the
// same input row). If ow > X the feature map is processed in column tiles.
//
// The simulator advances an explicit cycle counter with the same pass
// structure as hw/latency_model.hpp; the totals must agree exactly
// (DESIGN.md invariant 4) and the computed feature maps must match the
// QuantizedNetwork reference bit for bit (invariant 2).
#pragma once

#include <cstdint>
#include <vector>

#include "encoding/spike_train.hpp"
#include "hw/arch.hpp"
#include "hw/latency_model.hpp"
#include "quant/qnetwork.hpp"
#include "tensor/tensor.hpp"

namespace rsnn::hw {

/// Result of one unit processing its channel slice of a conv layer.
struct ConvSliceResult {
  std::int64_t cycles = 0;           ///< unit-busy cycles (setup + row periods)
  std::int64_t writeback_cycles = 0; ///< output-store cycles; reported
                                     ///< separately because units compute in
                                     ///< parallel but share the buffer write
                                     ///< port, so writebacks serialize
  std::int64_t adder_ops = 0;        ///< additions actually performed (spikes)
  std::int64_t row_fetches = 0;      ///< shift-register fills
  MemTraffic traffic;
};

class ConvUnit {
 public:
  ConvUnit(ConvUnitGeometry geometry, TimingParams timing);

  /// Process output channels `oc_begin .. oc_end-1` (at most `share` many)
  /// of `conv` for all time steps and input channels, writing requantized
  /// activation codes (or raw accumulators if conv.requantize is false)
  /// into `out(oc, oy, ox)`.
  ///
  /// `active_units` is the number of conv units running concurrently in
  /// this group phase — it determines activation-port contention.
  ConvSliceResult run_layer_slice(const quant::QConv2d& conv,
                                  const encoding::SpikeTrain& input,
                                  std::int64_t oc_begin, std::int64_t oc_end,
                                  int time_steps, int active_units,
                                  TensorI64& out);

  const ConvUnitGeometry& geometry() const { return geometry_; }

 private:
  ConvUnitGeometry geometry_;
  TimingParams timing_;

  // Datapath state, re-initialized per pass. The shift register is modeled
  // event-wise: row_events_ holds the padded register positions of this
  // row's spikes (extracted word-wise from the packed input train).
  std::vector<std::int32_t> row_events_;
  std::vector<std::int32_t> weight_cache_;  ///< [Cin][local][Kr][Kc] kernels
  std::vector<std::int64_t> membrane_;      ///< [local][oh][ow] output logic
  std::vector<std::vector<std::int64_t>> pipeline_;  ///< [Y][X] partial sums
};

}  // namespace rsnn::hw
