// FPGA resource estimation (LUTs, flip-flops, BRAM).
//
// The paper implements all arithmetic in carry logic and LUTs (no DSP
// slices). This model composes per-component estimates:
//   * convolution unit: adder array (X*Y adders at accumulator width),
//     input shift register, kernel registers, output-logic accumulator and
//     requantizer, local control;
//   * pooling unit: adder array without kernel storage;
//   * linear unit: one adder row plus weight-fetch pipeline;
//   * shared: controller, buffer addressing, top-level interconnect;
//   * optional DRAM subsystem (memory controller + AXI plumbing) when any
//     layer streams parameters from DRAM.
//
// Coefficients are calibrated against the paper's Table II (LeNet design
// points: 11k/15k/24k/42k LUTs and 10k/14k/23k/39k FFs for 1/2/4/8 conv
// units); the derivation is documented next to each constant. EXPERIMENTS.md
// reports model-vs-paper for every published cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/accelerator.hpp"
#include "hw/arch.hpp"

namespace rsnn::hw {

struct ResourceEstimate {
  std::int64_t luts = 0;
  std::int64_t flip_flops = 0;
  std::int64_t bram_bits = 0;

  ResourceEstimate& operator+=(const ResourceEstimate& other) {
    luts += other.luts;
    flip_flops += other.flip_flops;
    bram_bits += other.bram_bits;
    return *this;
  }
};

/// One convolution unit of the given geometry.
ResourceEstimate conv_unit_resources(const ConvUnitGeometry& geometry);

/// The (single) pooling unit.
ResourceEstimate pool_unit_resources(const PoolUnitGeometry& geometry);

/// The (single) linear unit.
ResourceEstimate linear_unit_resources(const LinearUnitGeometry& geometry,
                                       int weight_bits);

/// Controller, buffer addressing and top-level interconnect.
ResourceEstimate shared_control_resources();

/// DRAM memory controller subsystem (present only when used).
ResourceEstimate dram_subsystem_resources();

/// Whole design: units + control + buffers (+ DRAM subsystem if needed).
/// `buffer_plan` contributes BRAM bits (two pairs, double buffered);
/// `weight_bram_bits` is the parameter storage actually used on chip.
ResourceEstimate design_resources(const AcceleratorConfig& config,
                                  const BufferPlan& buffer_plan,
                                  std::int64_t weight_bram_bits_used,
                                  bool uses_dram, int weight_bits);

/// Convenience: resources of an accelerator instance bound to a network.
ResourceEstimate estimate_resources(const Accelerator& accelerator);

/// Resources of a hardware-lowered program (same estimate as an Accelerator
/// bound to it).
ResourceEstimate estimate_resources(const ir::LayerProgram& program);

/// Per-segment attribution of the monolithic design's resources across a
/// pipeline partition. The estimates form an exact breakdown — summing them
/// reproduces estimate_resources(program) field for field (enforced with an
/// internal invariant). Attribution rules:
///   * on-chip parameter BRAM: exact, each segment carries its own ops'
///     on-chip param bits;
///   * unit logic (conv / pool / linear LUTs+FFs): split across segments in
///     proportion to the predicted cycles each segment spends on that unit
///     class (a stage that never pools carries none of the pooling unit);
///   * shared control, DRAM subsystem and activation-buffer BRAM: split in
///     proportion to total predicted segment cycles.
/// Integer fields are distributed with the largest-remainder method so the
/// sums are exact, not approximate. Inherited segments only (a re-lowered
/// partition is a set of independent designs — use relowered_resources).
std::vector<ResourceEstimate> partition_resources(
    const ir::LayerProgram& program,
    const std::vector<ir::ProgramSegment>& segments);

/// Per-device resources of a *re-lowered* partition: each stage is a full
/// design instance estimated from its own segment program (units, control,
/// its own buffer plan, its own on-chip parameters, and the DRAM subsystem
/// only where that stage still streams). Unlike partition_resources this is
/// not an attribution of one monolithic design — sums are expected to
/// differ from (typically beat) the monolithic estimate. Every segment must
/// carry a re-lowered program.
std::vector<ResourceEstimate> relowered_resources(
    const std::vector<ir::ProgramSegment>& segments);

std::string to_string(const ResourceEstimate& estimate);

}  // namespace rsnn::hw
