#include "hw/conv_unit.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace rsnn::hw {

ConvUnit::ConvUnit(ConvUnitGeometry geometry, TimingParams timing)
    : geometry_(geometry), timing_(timing) {
  RSNN_REQUIRE(geometry_.array_columns >= 1 && geometry_.kernel_rows >= 1);
}

ConvSliceResult ConvUnit::run_layer_slice(const quant::QConv2d& conv,
                                          const encoding::SpikeTrain& input,
                                          std::int64_t oc_begin,
                                          std::int64_t oc_end, int time_steps,
                                          int active_units, TensorI64& out) {
  RSNN_REQUIRE(conv.kernel <= geometry_.kernel_rows,
               "kernel " << conv.kernel << " exceeds unit rows "
                         << geometry_.kernel_rows);
  RSNN_REQUIRE(oc_begin >= 0 && oc_begin < oc_end && oc_end <= conv.out_channels);

  const Shape& in_shape = input.neuron_shape();
  RSNN_REQUIRE(in_shape.rank() == 3 && in_shape.dim(0) == conv.in_channels);
  RSNN_REQUIRE(conv.weight.shape() ==
                   Shape({conv.out_channels, conv.in_channels, conv.kernel,
                          conv.kernel}),
               "weight tensor shape mismatch");
  const std::int64_t ih = in_shape.dim(1), iw = in_shape.dim(2);
  const std::int64_t k = conv.kernel, str = conv.stride, pad = conv.padding;
  const std::int64_t oh = (ih + 2 * pad - k) / str + 1;
  const std::int64_t ow = (iw + 2 * pad - k) / str + 1;
  RSNN_REQUIRE(out.rank() == 3 && out.dim(1) == oh && out.dim(2) == ow);

  const std::int64_t X = geometry_.array_columns;
  const std::int64_t share =
      std::clamp<std::int64_t>(X / ow, 1, conv.out_channels);
  RSNN_REQUIRE(oc_end - oc_begin <= share,
               "slice of " << (oc_end - oc_begin)
                           << " channels exceeds unit share " << share);
  const std::int64_t tiles = ow > X ? ceil_div(ow, X) : 1;
  const std::int64_t cols_per_tile = tiles == 1 ? ow : X;

  const std::int64_t rows_streamed = ih + 2 * pad;
  const std::int64_t fetch = conv_row_fetch_cycles(iw, timing_, active_units);
  const std::int64_t row_period = std::max<std::int64_t>(k, fetch);

  // Output-logic accumulator RAM: one membrane per (local channel, oy, ox).
  const std::int64_t n_local = oc_end - oc_begin;
  membrane_.assign(static_cast<std::size_t>(n_local * oh * ow), 0);
  std::int64_t* mem = membrane_.data();

  // Kernel values for this slice, re-packed once per call so the inner loops
  // read them unchecked: weight_cache_[(ic * n_local + local) * k * k +
  // y * k + s].
  weight_cache_.resize(
      static_cast<std::size_t>(conv.in_channels * n_local * k * k));
  {
    const std::int32_t* wsrc = conv.weight.data();
    for (std::int64_t local = 0; local < n_local; ++local) {
      for (std::int64_t ic = 0; ic < conv.in_channels; ++ic) {
        const std::int32_t* w =
            wsrc + (((oc_begin + local) * conv.in_channels + ic) * k) * k;
        std::int32_t* cache =
            weight_cache_.data() + (ic * n_local + local) * k * k;
        for (std::int64_t i = 0; i < k * k; ++i) cache[i] = w[i];
      }
    }
  }

  ConvSliceResult result;

  pipeline_.assign(static_cast<std::size_t>(k),
                   std::vector<std::int64_t>(static_cast<std::size_t>(X), 0));

  for (int t = 0; t < time_steps; ++t) {
    // Radix weighting: one left shift of all accumulators per time step
    // (paper Alg. 1 line 12), performed in the output logic.
    for (std::int64_t i = 0; i < n_local * oh * ow; ++i) mem[i] <<= 1;

    for (std::int64_t ic = 0; ic < conv.in_channels; ++ic) {
      // The adder rows hold kernel rows of (oc_begin + local, ic).
      const std::int32_t* wcache =
          weight_cache_.data() + ic * n_local * k * k;

      for (std::int64_t tile = 0; tile < tiles; ++tile) {
        const std::int64_t col0 = tile * cols_per_tile;
        const std::int64_t cols =
            std::min<std::int64_t>(cols_per_tile, ow - col0);

        result.cycles += timing_.pass_setup_cycles;
        for (auto& stage : pipeline_)
          std::fill(stage.begin(), stage.end(), std::int64_t{0});

        for (std::int64_t r = 0; r < rows_streamed; ++r) {
          // -- Fetch: gather the events of input row (r - pad) into padded
          //    shift-register coordinates; padding rows produce no events.
          //    Only the register span this tile taps is gathered — positions
          //    [col0*str, (col0+cols-1)*str + k - 1] — so tiled layers do
          //    not re-scan out-of-tile words. Fetch accounting covers the
          //    whole row regardless (the hardware streams it).
          const std::int64_t src_row = r - pad;
          row_events_.clear();
          if (src_row >= 0 && src_row < ih) {
            const std::int64_t src_lo =
                std::max<std::int64_t>(0, col0 * str - pad);
            const std::int64_t src_hi = std::min<std::int64_t>(
                iw, (col0 + cols - 1) * str + k - pad);
            if (src_lo < src_hi) {
              const std::int64_t base = (ic * ih + src_row) * iw;
              input.for_each_set_bit_in_range(
                  t, base + src_lo, base + src_hi, [&](std::int64_t neuron) {
                    row_events_.push_back(
                        static_cast<std::int32_t>(neuron - base + pad));
                  });
            }
            ++result.row_fetches;
            result.traffic.act_read_bits += iw;
          }

          // -- Shift & accumulate: Kc shift cycles; kernel values rotate in
          //    lock-step with the shifts. We model the taps directly: after
          //    s shifts, column x reads register position (col0 + x)*stride
          //    + s — equivalently, a spike at register position p feeds
          //    column x = (p - s)/stride - col0 for each kernel column s.
          //    Rows with no spikes skip the adder array entirely; cycle
          //    counts are unaffected (the register still shifts).
          if (!row_events_.empty() && str == 1) {
            // Stride-1 fast path: the kernel columns a spike feeds form the
            // contiguous range s in [p - col0 - cols + 1, p - col0] ∩ [0, k),
            // so the inner loop reads weights and partial sums contiguously.
            const std::int64_t y_lo = std::max<std::int64_t>(0, r - (oh - 1));
            const std::int64_t y_hi = std::min<std::int64_t>(k - 1, r);
            for (const std::int32_t p : row_events_) {
              const std::int64_t pc = p - col0;
              const std::int64_t s_lo = std::max<std::int64_t>(0, pc - cols + 1);
              const std::int64_t s_hi = std::min<std::int64_t>(k - 1, pc);
              if (s_hi < s_lo) continue;
              for (std::int64_t y = y_lo; y <= y_hi; ++y) {
                std::int64_t* stage =
                    pipeline_[static_cast<std::size_t>(y)].data();
                for (std::int64_t local = 0; local < n_local; ++local) {
                  const std::int32_t* wrow = wcache + (local * k + y) * k;
                  std::int64_t* srow = stage + local * cols;
                  for (std::int64_t s = s_lo; s <= s_hi; ++s)
                    srow[pc - s] += wrow[s];
                }
                result.adder_ops += (s_hi - s_lo + 1) * n_local;
              }
            }
          } else if (!row_events_.empty()) {
            for (std::int64_t y = 0; y < k; ++y) {
              // Stage y works on output row (r - y) / stride when aligned.
              const std::int64_t num = r - y;
              if (num < 0 || num % str != 0) continue;
              if (num / str >= oh) continue;
              std::int64_t* stage =
                  pipeline_[static_cast<std::size_t>(y)].data();
              for (const std::int32_t p : row_events_) {
                for (std::int64_t s = 0; s < k; ++s) {
                  const std::int64_t shifted = p - s;
                  if (shifted < 0 || shifted % str != 0) continue;
                  const std::int64_t x = shifted / str - col0;
                  if (x < 0 || x >= cols) continue;
                  const std::int32_t* wrow = wcache + y * k + s;
                  for (std::int64_t local = 0; local < n_local; ++local)
                    stage[local * cols + x] += wrow[local * k * k];
                  result.adder_ops += n_local;
                }
              }
            }
          }

          // -- End of row: retire the bottom stage into the output logic if
          //    it completed an output row, then advance the pipeline by
          //    rotating the stage buffers (a pointer swap, not a copy).
          const std::int64_t exit_num = r - (k - 1);
          if (exit_num >= 0 && exit_num % str == 0 && exit_num / str < oh) {
            const std::int64_t oy = exit_num / str;
            const std::int64_t* bottom =
                pipeline_[static_cast<std::size_t>(k - 1)].data();
            for (std::int64_t local = 0; local < n_local; ++local) {
              std::int64_t* mrow = mem + (local * oh + oy) * ow + col0;
              for (std::int64_t x = 0; x < cols; ++x)
                mrow[x] += bottom[local * cols + x];
            }
          }
          std::rotate(pipeline_.begin(), pipeline_.end() - 1, pipeline_.end());
          std::fill(pipeline_[0].begin(), pipeline_[0].end(), std::int64_t{0});

          result.cycles += row_period;
        }
      }
    }
  }

  // Kernel words streamed: Kr*Kc values per local channel per pass, in words
  // (the accelerator scales to bits with the configured weight width).
  const std::int64_t passes =
      static_cast<std::int64_t>(time_steps) * conv.in_channels * tiles;
  result.traffic.weight_read_bits = passes * k * k * n_local;

  // Output logic: bias + ReLU + requantize, then writeback per row segment.
  for (std::int64_t local = 0; local < n_local; ++local) {
    const std::int64_t oc = oc_begin + local;
    const std::int64_t bias = conv.bias(oc);
    const int frac = conv.frac_for(oc);
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      const std::int64_t* mrow = mem + (local * oh + oy) * ow;
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        std::int64_t v = mrow[ox] + bias;
        if (conv.requantize) {
          if (frac >= 0)
            v >>= frac;
          else
            v <<= -frac;
          v = saturate_unsigned(v, time_steps);
        }
        out(oc, oy, ox) = v;
      }
      result.writeback_cycles += tiles * timing_.writeback_cycles_per_row;
    }
  }
  result.traffic.act_write_bits = n_local * oh * ow * time_steps;

  return result;
}

}  // namespace rsnn::hw
