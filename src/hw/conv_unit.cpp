#include "hw/conv_unit.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace rsnn::hw {

ConvUnit::ConvUnit(ConvUnitGeometry geometry, TimingParams timing)
    : geometry_(geometry), timing_(timing) {
  RSNN_REQUIRE(geometry_.array_columns >= 1 && geometry_.kernel_rows >= 1);
}

ConvSliceResult ConvUnit::run_layer_slice(const quant::QConv2d& conv,
                                          const encoding::SpikeTrain& input,
                                          std::int64_t oc_begin,
                                          std::int64_t oc_end, int time_steps,
                                          int active_units, TensorI64& out) {
  RSNN_REQUIRE(conv.kernel <= geometry_.kernel_rows,
               "kernel " << conv.kernel << " exceeds unit rows "
                         << geometry_.kernel_rows);
  RSNN_REQUIRE(oc_begin >= 0 && oc_begin < oc_end && oc_end <= conv.out_channels);

  const Shape& in_shape = input.neuron_shape();
  RSNN_REQUIRE(in_shape.rank() == 3 && in_shape.dim(0) == conv.in_channels);
  const std::int64_t ih = in_shape.dim(1), iw = in_shape.dim(2);
  const std::int64_t k = conv.kernel, str = conv.stride, pad = conv.padding;
  const std::int64_t oh = (ih + 2 * pad - k) / str + 1;
  const std::int64_t ow = (iw + 2 * pad - k) / str + 1;
  RSNN_REQUIRE(out.rank() == 3 && out.dim(1) == oh && out.dim(2) == ow);

  const std::int64_t X = geometry_.array_columns;
  const std::int64_t share =
      std::clamp<std::int64_t>(X / ow, 1, conv.out_channels);
  RSNN_REQUIRE(oc_end - oc_begin <= share,
               "slice of " << (oc_end - oc_begin)
                           << " channels exceeds unit share " << share);
  const std::int64_t tiles = ow > X ? ceil_div(ow, X) : 1;
  const std::int64_t cols_per_tile = tiles == 1 ? ow : X;

  const std::int64_t rows_streamed = ih + 2 * pad;
  const std::int64_t fetch = conv_row_fetch_cycles(iw, timing_, active_units);
  const std::int64_t row_period = std::max<std::int64_t>(k, fetch);
  const std::int64_t padded_width = iw + 2 * pad;

  // Output-logic accumulator RAM: one membrane per (local channel, oy, ox).
  const std::int64_t n_local = oc_end - oc_begin;
  TensorI64 membrane(Shape{n_local, oh, ow}, std::int64_t{0});

  ConvSliceResult result;

  shift_register_.assign(static_cast<std::size_t>(padded_width), 0);
  pipeline_.assign(static_cast<std::size_t>(k),
                   std::vector<std::int64_t>(static_cast<std::size_t>(X), 0));

  for (int t = 0; t < time_steps; ++t) {
    // Radix weighting: one left shift of all accumulators per time step
    // (paper Alg. 1 line 12), performed in the output logic.
    for (std::int64_t i = 0; i < membrane.numel(); ++i)
      membrane.at_flat(i) <<= 1;

    for (std::int64_t ic = 0; ic < conv.in_channels; ++ic) {
      for (std::int64_t tile = 0; tile < tiles; ++tile) {
        const std::int64_t col0 = tile * cols_per_tile;
        const std::int64_t cols =
            std::min<std::int64_t>(cols_per_tile, ow - col0);

        result.cycles += timing_.pass_setup_cycles;
        for (auto& stage : pipeline_)
          std::fill(stage.begin(), stage.end(), std::int64_t{0});

        for (std::int64_t r = 0; r < rows_streamed; ++r) {
          // -- Fetch: fill the shift register with input row (r - pad);
          //    padding rows are generated, not read from the buffer.
          const std::int64_t src_row = r - pad;
          for (std::int64_t col = 0; col < padded_width; ++col) {
            const std::int64_t src_col = col - pad;
            bool bit = false;
            if (src_row >= 0 && src_row < ih && src_col >= 0 && src_col < iw) {
              const std::int64_t neuron = (ic * ih + src_row) * iw + src_col;
              bit = input.spike(t, neuron);
            }
            shift_register_[static_cast<std::size_t>(col)] = bit ? 1 : 0;
          }
          if (src_row >= 0 && src_row < ih) {
            ++result.row_fetches;
            result.traffic.act_read_bits += iw;
          }

          // -- Shift & accumulate: Kc shift cycles; kernel values rotate in
          //    lock-step with the shifts (paper: "Coinciding with the shift
          //    of the input row, the adder logic loads the new kernel
          //    values"). We model the taps directly: after s shifts, column
          //    x reads register position (col0 + x)*stride + s.
          for (std::int64_t y = 0; y < k; ++y) {
            // Stage y works on output row (r - y) / stride when aligned.
            const std::int64_t num = r - y;
            if (num < 0 || num % str != 0) continue;
            const std::int64_t oy = num / str;
            if (oy >= oh) continue;
            auto& stage = pipeline_[static_cast<std::size_t>(y)];
            for (std::int64_t s = 0; s < k; ++s) {
              for (std::int64_t local = 0; local < n_local; ++local) {
                const std::int32_t kval =
                    conv.weight(oc_begin + local, ic, y, s);
                for (std::int64_t x = 0; x < cols; ++x) {
                  const std::int64_t tap = (col0 + x) * str + s;
                  if (!shift_register_[static_cast<std::size_t>(tap)]) continue;
                  stage[static_cast<std::size_t>(local * cols + x)] += kval;
                  ++result.adder_ops;
                }
              }
            }
          }

          // -- End of row: retire the bottom stage into the output logic if
          //    it completed an output row, then advance the pipeline.
          const std::int64_t exit_num = r - (k - 1);
          if (exit_num >= 0 && exit_num % str == 0 && exit_num / str < oh) {
            const std::int64_t oy = exit_num / str;
            const auto& bottom = pipeline_[static_cast<std::size_t>(k - 1)];
            for (std::int64_t local = 0; local < n_local; ++local)
              for (std::int64_t x = 0; x < cols; ++x)
                membrane(local, oy, col0 + x) +=
                    bottom[static_cast<std::size_t>(local * cols + x)];
          }
          for (std::int64_t y = k - 1; y >= 1; --y)
            pipeline_[static_cast<std::size_t>(y)] =
                pipeline_[static_cast<std::size_t>(y - 1)];
          std::fill(pipeline_[0].begin(), pipeline_[0].end(), std::int64_t{0});

          result.cycles += row_period;
        }
      }
    }
  }

  // Kernel words streamed: Kr*Kc values per local channel per pass, in words
  // (the accelerator scales to bits with the configured weight width).
  const std::int64_t passes =
      static_cast<std::int64_t>(time_steps) * conv.in_channels * tiles;
  result.traffic.weight_read_bits = passes * k * k * n_local;

  // Output logic: bias + ReLU + requantize, then writeback per row segment.
  for (std::int64_t local = 0; local < n_local; ++local) {
    const std::int64_t oc = oc_begin + local;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        std::int64_t v = membrane(local, oy, ox) + conv.bias(oc);
        if (conv.requantize) {
          const int frac = conv.frac_for(oc);
          if (frac >= 0)
            v >>= frac;
          else
            v <<= -frac;
          v = saturate_unsigned(v, time_steps);
        }
        out(oc, oy, ox) = v;
      }
      result.writeback_cycles += tiles * timing_.writeback_cycles_per_row;
    }
  }
  result.traffic.act_write_bits = n_local * oh * ow * time_steps;

  return result;
}

}  // namespace rsnn::hw
