#include "hw/arch.hpp"

namespace rsnn::hw {

AcceleratorConfig lenet_reference_config() {
  AcceleratorConfig cfg;
  cfg.name = "lenet5@100MHz";
  cfg.clock_mhz = 100.0;
  cfg.num_conv_units = 2;
  cfg.conv = ConvUnitGeometry{30, 5, 24};
  cfg.pool = PoolUnitGeometry{14, 2, 16};
  cfg.linear = LinearUnitGeometry{16, 24};
  return cfg;
}

AcceleratorConfig lenet_table3_config() {
  AcceleratorConfig cfg = lenet_reference_config();
  cfg.name = "lenet5@200MHz";
  cfg.clock_mhz = 200.0;
  cfg.num_conv_units = 4;
  return cfg;
}

AcceleratorConfig vgg11_table3_config() {
  AcceleratorConfig cfg;
  cfg.name = "vgg11@115MHz";
  cfg.clock_mhz = 115.0;
  cfg.num_conv_units = 8;
  // VGG uses 3x3 kernels on rows up to 32 wide.
  cfg.conv = ConvUnitGeometry{32, 3, 24};
  cfg.pool = PoolUnitGeometry{16, 2, 16};
  cfg.linear = LinearUnitGeometry{16, 24};
  // 28.5M parameters at 3 bits exceed practical BRAM; layers fall back to
  // DRAM streaming (paper Sec. IV-D mentions 4.5 MB BRAM just for feature
  // maps, with parameters in external DRAM).
  cfg.memory.weight_bram_bits = std::int64_t{4} * 1024 * 1024 * 8;
  return cfg;
}

}  // namespace rsnn::hw
