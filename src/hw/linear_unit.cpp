#include "hw/linear_unit.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace rsnn::hw {

LinearUnit::LinearUnit(LinearUnitGeometry geometry, TimingParams timing)
    : geometry_(geometry), timing_(timing) {
  RSNN_REQUIRE(geometry_.lanes >= 1);
}

LinearRunResult LinearUnit::run_layer(const quant::QLinear& fc,
                                      const encoding::SpikeTrain& input,
                                      int time_steps, TensorI64& out) {
  RSNN_REQUIRE(input.neuron_shape().numel() == fc.in_features,
               "input size mismatch");
  RSNN_REQUIRE(out.rank() == 1 && out.dim(0) == fc.out_features);
  RSNN_REQUIRE(fc.weight.shape() == Shape({fc.out_features, fc.in_features}),
               "weight tensor shape mismatch");

  const std::int64_t lanes = geometry_.lanes;
  const std::int64_t lane_groups = ceil_div(fc.out_features, lanes);

  // The engine's cycle behaviour is input-independent: one weight-word fetch
  // per (time step, lane group, input neuron), whether or not the neuron
  // spiked. Account for it in closed form and spend the loop only on events.
  LinearRunResult result;
  result.cycles =
      static_cast<std::int64_t>(time_steps) * lane_groups * fc.in_features;
  result.weight_fetches = result.cycles;
  result.traffic.act_read_bits =
      static_cast<std::int64_t>(time_steps) * fc.in_features;

  // Transpose the weights so each spike touches one contiguous row. Paid per
  // call, but it is a single pass over the weights — an order less than the
  // T passes the dense formulation made. (Not cached by identity: a pointer
  // key could serve stale weights after an in-place update.)
  const std::int32_t* w = fc.weight.data();
  weight_t_.resize(static_cast<std::size_t>(fc.in_features * fc.out_features));
  for (std::int64_t o = 0; o < fc.out_features; ++o)
    for (std::int64_t i = 0; i < fc.in_features; ++i)
      weight_t_[static_cast<std::size_t>(i * fc.out_features + o)] =
          w[o * fc.in_features + i];

  membrane_.assign(static_cast<std::size_t>(fc.out_features), 0);
  std::int64_t* mem = membrane_.data();

  for (int t = 0; t < time_steps; ++t) {
    for (std::int64_t o = 0; o < fc.out_features; ++o) mem[o] <<= 1;
    input.for_each_set_bit(t, [&](std::int64_t i) {
      const std::int32_t* wrow = weight_t_.data() + i * fc.out_features;
      for (std::int64_t o = 0; o < fc.out_features; ++o) mem[o] += wrow[o];
      result.adder_ops += fc.out_features;
    });
  }

  for (std::int64_t o = 0; o < fc.out_features; ++o) {
    std::int64_t v = mem[o] + fc.bias(o);
    if (fc.requantize) {
      const int frac = fc.frac_for(o);
      if (frac >= 0)
        v >>= frac;
      else
        v <<= -frac;
      v = saturate_unsigned(v, time_steps);
    }
    out(o) = v;
  }
  result.writeback_cycles =
      ceil_div(fc.out_features * time_steps, timing_.act_read_bits_per_cycle);
  result.traffic.act_write_bits = fc.out_features * time_steps;
  // Weight words actually consumed (the last lane group may be partial).
  result.traffic.weight_read_bits =
      static_cast<std::int64_t>(time_steps) * fc.in_features * fc.out_features;
  return result;
}

}  // namespace rsnn::hw
