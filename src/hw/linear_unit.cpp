#include "hw/linear_unit.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace rsnn::hw {

LinearUnit::LinearUnit(LinearUnitGeometry geometry, TimingParams timing)
    : geometry_(geometry), timing_(timing) {
  RSNN_REQUIRE(geometry_.lanes >= 1);
}

LinearRunResult LinearUnit::run_layer(const quant::QLinear& fc,
                                      const encoding::SpikeTrain& input,
                                      int time_steps, TensorI64& out) {
  RSNN_REQUIRE(input.neuron_shape().numel() == fc.in_features,
               "input size mismatch");
  RSNN_REQUIRE(out.rank() == 1 && out.dim(0) == fc.out_features);

  const std::int64_t lanes = geometry_.lanes;
  const std::int64_t lane_groups = ceil_div(fc.out_features, lanes);

  TensorI64 membrane(Shape{fc.out_features}, std::int64_t{0});
  LinearRunResult result;

  for (int t = 0; t < time_steps; ++t) {
    for (std::int64_t i = 0; i < membrane.numel(); ++i)
      membrane.at_flat(i) <<= 1;

    for (std::int64_t g = 0; g < lane_groups; ++g) {
      const std::int64_t o_begin = g * lanes;
      const std::int64_t o_end =
          std::min<std::int64_t>(o_begin + lanes, fc.out_features);
      for (std::int64_t i = 0; i < fc.in_features; ++i) {
        // One cycle: fetch the weight word for (input i, lane group g).
        ++result.cycles;
        ++result.weight_fetches;
        if (!input.spike(t, i)) continue;
        for (std::int64_t o = o_begin; o < o_end; ++o) {
          membrane(o) += fc.weight(o, i);
          ++result.adder_ops;
        }
      }
    }
    result.traffic.act_read_bits += fc.in_features;
  }

  for (std::int64_t o = 0; o < fc.out_features; ++o) {
    std::int64_t v = membrane(o) + fc.bias(o);
    if (fc.requantize) {
      const int frac = fc.frac_for(o);
      if (frac >= 0)
        v >>= frac;
      else
        v <<= -frac;
      v = saturate_unsigned(v, time_steps);
    }
    out(o) = v;
  }
  result.writeback_cycles =
      ceil_div(fc.out_features * time_steps, timing_.act_read_bits_per_cycle);
  result.traffic.act_write_bits = fc.out_features * time_steps;
  // Weight words actually consumed (the last lane group may be partial).
  result.traffic.weight_read_bits =
      static_cast<std::int64_t>(time_steps) * fc.in_features * fc.out_features;
  return result;
}

}  // namespace rsnn::hw
