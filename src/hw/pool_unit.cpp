#include "hw/pool_unit.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace rsnn::hw {

PoolUnit::PoolUnit(PoolUnitGeometry geometry, TimingParams timing)
    : geometry_(geometry), timing_(timing) {
  RSNN_REQUIRE(geometry_.array_columns >= 1 && geometry_.kernel_rows >= 1);
}

PoolSliceResult PoolUnit::run_layer_slice(const quant::QPool2d& pool,
                                          const encoding::SpikeTrain& input,
                                          std::int64_t c_begin,
                                          std::int64_t c_end, int time_steps,
                                          TensorI64& out) {
  RSNN_REQUIRE(pool.kernel <= geometry_.kernel_rows,
               "pool kernel " << pool.kernel << " exceeds unit rows "
                              << geometry_.kernel_rows);
  const Shape& in_shape = input.neuron_shape();
  RSNN_REQUIRE(in_shape.rank() == 3);
  const std::int64_t channels = in_shape.dim(0);
  RSNN_REQUIRE(c_begin >= 0 && c_begin < c_end && c_end <= channels);
  const std::int64_t ih = in_shape.dim(1), iw = in_shape.dim(2);
  const std::int64_t k = pool.kernel;
  const std::int64_t oh = ih / k, ow = iw / k;
  RSNN_REQUIRE(ih % k == 0, "input height " << ih << " not divisible by " << k);

  const std::int64_t X = geometry_.array_columns;
  const std::int64_t share = std::clamp<std::int64_t>(X / ow, 1, channels);
  RSNN_REQUIRE(c_end - c_begin <= share, "slice exceeds unit share");
  const std::int64_t tiles = ow > X ? ceil_div(ow, X) : 1;
  const std::int64_t cols_per_tile = tiles == 1 ? ow : X;

  const std::int64_t n_local = c_end - c_begin;
  // Row fetch scales with the *configured* share (the unit is sized for it),
  // matching the analytic model even for a partial last slice.
  const std::int64_t fetch =
      share * conv_row_fetch_cycles(iw, timing_, /*active_units=*/1);
  const std::int64_t row_period = std::max<std::int64_t>(k, fetch);

  membrane_.assign(static_cast<std::size_t>(n_local * oh * ow), 0);
  std::int64_t* mem = membrane_.data();
  PoolSliceResult result;

  // Cycle and read-traffic behaviour is input-independent (the unit streams
  // every row regardless of spikes): account for it in closed form.
  result.cycles = static_cast<std::int64_t>(time_steps) * tiles *
                  (timing_.pass_setup_cycles + ih * row_period);
  result.traffic.act_read_bits =
      static_cast<std::int64_t>(time_steps) * tiles * ih * n_local * iw;

  // Window counting is event-driven: each spike within a tile's column span
  // increments its window's accumulator.
  for (int t = 0; t < time_steps; ++t) {
    for (std::int64_t i = 0; i < n_local * oh * ow; ++i) mem[i] <<= 1;

    for (std::int64_t tile = 0; tile < tiles; ++tile) {
      const std::int64_t col0 = tile * cols_per_tile;
      const std::int64_t cols = std::min<std::int64_t>(cols_per_tile, ow - col0);
      const std::int64_t col_lo = col0 * k;
      const std::int64_t col_hi = (col0 + cols) * k;
      for (std::int64_t local = 0; local < n_local; ++local) {
        const std::int64_t c = c_begin + local;
        std::int64_t* mplane = mem + local * oh * ow;
        for (std::int64_t r = 0; r < ih; ++r) {
          const std::int64_t row_base = (c * ih + r) * iw;
          const std::int64_t oy = r / k;
          input.for_each_set_bit_in_range(
              t, row_base + col_lo, row_base + col_hi,
              [&](std::int64_t neuron) {
                const std::int64_t ox = (neuron - row_base) / k;
                mplane[oy * ow + ox] += 1;
                ++result.adder_ops;
              });
        }
      }
    }
  }

  // Output logic: divide by window area (right shift) and write back.
  for (std::int64_t local = 0; local < n_local; ++local) {
    const std::int64_t c = c_begin + local;
    const std::int64_t* mplane = mem + local * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const std::int64_t v = mplane[oy * ow + ox] >> pool.shift;
        out(c, oy, ox) = saturate_unsigned(v, time_steps);
      }
      result.writeback_cycles += tiles * timing_.writeback_cycles_per_row;
    }
  }
  result.traffic.act_write_bits = n_local * oh * ow * time_steps;
  return result;
}

}  // namespace rsnn::hw
