#include "hw/pool_unit.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace rsnn::hw {

PoolUnit::PoolUnit(PoolUnitGeometry geometry, TimingParams timing)
    : geometry_(geometry), timing_(timing) {
  RSNN_REQUIRE(geometry_.array_columns >= 1 && geometry_.kernel_rows >= 1);
}

PoolSliceResult PoolUnit::run_layer_slice(const quant::QPool2d& pool,
                                          const encoding::SpikeTrain& input,
                                          std::int64_t c_begin,
                                          std::int64_t c_end, int time_steps,
                                          TensorI64& out) {
  RSNN_REQUIRE(pool.kernel <= geometry_.kernel_rows,
               "pool kernel " << pool.kernel << " exceeds unit rows "
                              << geometry_.kernel_rows);
  const Shape& in_shape = input.neuron_shape();
  RSNN_REQUIRE(in_shape.rank() == 3);
  const std::int64_t channels = in_shape.dim(0);
  RSNN_REQUIRE(c_begin >= 0 && c_begin < c_end && c_end <= channels);
  const std::int64_t ih = in_shape.dim(1), iw = in_shape.dim(2);
  const std::int64_t k = pool.kernel;
  const std::int64_t oh = ih / k, ow = iw / k;

  const std::int64_t X = geometry_.array_columns;
  const std::int64_t share = std::clamp<std::int64_t>(X / ow, 1, channels);
  RSNN_REQUIRE(c_end - c_begin <= share, "slice exceeds unit share");
  const std::int64_t tiles = ow > X ? ceil_div(ow, X) : 1;
  const std::int64_t cols_per_tile = tiles == 1 ? ow : X;

  const std::int64_t n_local = c_end - c_begin;
  // Row fetch scales with the *configured* share (the unit is sized for it),
  // matching the analytic model even for a partial last slice.
  const std::int64_t fetch =
      share * conv_row_fetch_cycles(iw, timing_, /*active_units=*/1);
  const std::int64_t row_period = std::max<std::int64_t>(k, fetch);

  TensorI64 membrane(Shape{n_local, oh, ow}, std::int64_t{0});
  PoolSliceResult result;

  for (int t = 0; t < time_steps; ++t) {
    for (std::int64_t i = 0; i < membrane.numel(); ++i)
      membrane.at_flat(i) <<= 1;

    for (std::int64_t tile = 0; tile < tiles; ++tile) {
      const std::int64_t col0 = tile * cols_per_tile;
      const std::int64_t cols = std::min<std::int64_t>(cols_per_tile, ow - col0);
      result.cycles += timing_.pass_setup_cycles;

      // Window rows accumulate directly: input row r contributes to output
      // row r / k (kernel == stride).
      for (std::int64_t r = 0; r < ih; ++r) {
        const std::int64_t oy = r / k;
        for (std::int64_t local = 0; local < n_local; ++local) {
          const std::int64_t c = c_begin + local;
          for (std::int64_t x = 0; x < cols; ++x) {
            const std::int64_t ox = col0 + x;
            std::int64_t count = 0;
            for (std::int64_t s = 0; s < k; ++s) {
              const std::int64_t neuron = (c * ih + r) * iw + (ox * k + s);
              if (input.spike(t, neuron)) {
                ++count;
                ++result.adder_ops;
              }
            }
            membrane(local, oy, ox) += count;
          }
          result.traffic.act_read_bits += iw;
        }
        result.cycles += row_period;
      }
    }
  }

  // Output logic: divide by window area (right shift) and write back.
  for (std::int64_t local = 0; local < n_local; ++local) {
    const std::int64_t c = c_begin + local;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const std::int64_t v = membrane(local, oy, ox) >> pool.shift;
        out(c, oy, ox) = saturate_unsigned(v, time_steps);
      }
      result.writeback_cycles += tiles * timing_.writeback_cycles_per_row;
    }
  }
  result.traffic.act_write_bits = n_local * oh * ow * time_steps;
  return result;
}

}  // namespace rsnn::hw
