#include "hw/report.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace rsnn::hw {

RunMetrics compute_metrics(const AcceleratorConfig& config,
                           const AccelRunResult& run,
                           const PowerBreakdown& power) {
  RSNN_REQUIRE(run.total_cycles > 0);
  RunMetrics m;
  m.latency_us = run.latency_us;
  m.throughput_fps = 1e6 / run.latency_us;
  m.energy_mj = power.total_w() * run.latency_us * 1e-3;  // W * us = uJ; /1e3 = mJ
  const double seconds = run.latency_us * 1e-6;
  m.synaptic_ops_per_second =
      seconds > 0.0 ? static_cast<double>(run.total_adder_ops) / seconds : 0.0;
  const double adders =
      static_cast<double>(config.num_conv_units) * config.conv.array_columns *
          config.conv.kernel_rows +
      config.pool.array_columns * config.pool.kernel_rows + config.linear.lanes;
  m.avg_adder_utilization =
      static_cast<double>(run.total_adder_ops) /
      (static_cast<double>(run.total_cycles) * adders);
  return m;
}

std::string layer_report(const AccelRunResult& run) {
  std::ostringstream os;
  os << "layer  kind     cycles       dram      spikes      adds        "
        "act-R[b]    act-W[b]    wgt-R[b]\n";
  for (std::size_t i = 0; i < run.layers.size(); ++i) {
    const LayerStats& s = run.layers[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-6zu %-8s %-12lld %-10lld %-11lld %-11lld %-11lld %-11lld %lld\n",
                  i, s.name.c_str(), static_cast<long long>(s.cycles),
                  static_cast<long long>(s.dram_cycles),
                  static_cast<long long>(s.input_spikes),
                  static_cast<long long>(s.adder_ops),
                  static_cast<long long>(s.traffic.act_read_bits),
                  static_cast<long long>(s.traffic.act_write_bits),
                  static_cast<long long>(s.traffic.weight_read_bits));
    os << line;
  }
  return os.str();
}

std::string layer_csv(const AccelRunResult& run) {
  std::ostringstream os;
  os << "layer,kind,cycles,dram_cycles,input_spikes,adder_ops,act_read_bits,"
        "act_write_bits,weight_read_bits,dram_bits\n";
  for (std::size_t i = 0; i < run.layers.size(); ++i) {
    const LayerStats& s = run.layers[i];
    os << i << ',' << s.name << ',' << s.cycles << ',' << s.dram_cycles << ','
       << s.input_spikes << ',' << s.adder_ops << ','
       << s.traffic.act_read_bits << ',' << s.traffic.act_write_bits << ','
       << s.traffic.weight_read_bits << ',' << s.traffic.dram_bits << '\n';
  }
  return os.str();
}

std::string run_summary(const AcceleratorConfig& config,
                        const AccelRunResult& run,
                        const ResourceEstimate& resources,
                        const PowerBreakdown& power) {
  const RunMetrics m = compute_metrics(config, run, power);
  std::ostringstream os;
  os << config.name << " @ " << config.clock_mhz << " MHz, "
     << config.num_conv_units << " conv units\n"
     << "  latency " << m.latency_us << " us (" << run.total_cycles
     << " cycles), throughput " << m.throughput_fps << " fps\n"
     << "  power " << power.total_w() << " W, energy/inference " << m.energy_mj
     << " mJ\n"
     << "  " << to_string(resources) << "\n"
     << "  synaptic ops/s " << m.synaptic_ops_per_second
     << ", adder utilization " << m.avg_adder_utilization << "\n";
  return os.str();
}

}  // namespace rsnn::hw
