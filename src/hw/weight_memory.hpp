// Weight memory system (paper Sec. III-C, Fig. 1 green blocks).
//
// Two placement options per layer:
//   * on-chip BRAM when all parameters fit — single-cycle, full-width
//     access, no extra latency;
//   * external DRAM otherwise — parameters are streamed into the units'
//     local buffers *before* each layer's computation ("parameters are
//     fetched from off-chip DRAM before the computation of each layer"),
//     costing setup + bits/width cycles and DRAM energy.
//
// plan_placement() implements the greedy policy: if the whole model fits in
// the BRAM budget, everything is on chip; otherwise every layer streams
// from DRAM (the paper's VGG-11 case).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/arch.hpp"
#include "quant/qnetwork.hpp"

namespace rsnn::hw {

struct WeightFetchCost {
  std::int64_t cycles = 0;     ///< serial prefetch cycles before compute
  std::int64_t dram_bits = 0;  ///< DRAM traffic
};

class WeightMemory {
 public:
  explicit WeightMemory(MemoryConfig config) : config_(config) {}

  /// Prefetch cost of a layer's parameters under the given placement.
  WeightFetchCost fetch_layer(std::int64_t param_bits,
                              WeightPlacement placement);

  /// Record streaming reads during compute (BRAM side).
  void record_reads(std::int64_t bits) { bram_read_bits_ += bits; }

  std::int64_t bram_read_bits() const { return bram_read_bits_; }
  std::int64_t dram_bits_total() const { return dram_bits_total_; }
  const MemoryConfig& config() const { return config_; }

 private:
  MemoryConfig config_;
  std::int64_t bram_read_bits_ = 0;
  std::int64_t dram_bits_total_ = 0;
};

/// Per-layer placement for a whole network: on-chip if the *total* parameter
/// footprint fits the BRAM budget, DRAM streaming otherwise.
std::vector<WeightPlacement> plan_placement(const quant::QuantizedNetwork& qnet,
                                            const MemoryConfig& config);

/// Per-layer placement for the layer range [begin, end) evaluated against
/// one device's budget — the per-device planning rule behind segment
/// re-lowering: only the range's own parameters compete for the BRAM pool,
/// so a pipeline stage whose slice fits goes on chip even when the whole
/// model would stream from DRAM. Returns end - begin entries.
std::vector<WeightPlacement> plan_placement(const quant::QuantizedNetwork& qnet,
                                            std::size_t begin, std::size_t end,
                                            const MemoryConfig& config);

}  // namespace rsnn::hw
