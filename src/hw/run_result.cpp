#include "hw/run_result.hpp"

#include <iterator>
#include <utility>

namespace rsnn::hw {

void reset_run_result(AccelRunResult& result) {
  result.logits.clear();
  result.predicted_class = -1;
  result.total_cycles = 0;
  result.latency_us = 0.0;
  result.layers.clear();
  result.total_adder_ops = 0;
  result.dram_bits = 0;
  result.traffic_total = MemTraffic{};
}

void merge_segment_result(AccelRunResult& aggregate, AccelRunResult&& part) {
  aggregate.total_cycles += part.total_cycles;
  aggregate.total_adder_ops += part.total_adder_ops;
  aggregate.dram_bits += part.dram_bits;
  aggregate.traffic_total.act_read_bits += part.traffic_total.act_read_bits;
  aggregate.traffic_total.act_write_bits += part.traffic_total.act_write_bits;
  aggregate.traffic_total.weight_read_bits +=
      part.traffic_total.weight_read_bits;
  aggregate.traffic_total.dram_bits += part.traffic_total.dram_bits;
  if (!part.logits.empty()) aggregate.logits = std::move(part.logits);
  aggregate.layers.insert(aggregate.layers.end(),
                          std::make_move_iterator(part.layers.begin()),
                          std::make_move_iterator(part.layers.end()));
}

void finalize_run(AccelRunResult& result, double cycle_ns) {
  result.latency_us =
      static_cast<double>(result.total_cycles) * cycle_ns / 1000.0;
  if (result.logits.empty()) {
    result.predicted_class = -1;
    return;
  }
  int best = 0;
  for (std::size_t c = 1; c < result.logits.size(); ++c)
    if (result.logits[c] > result.logits[static_cast<std::size_t>(best)])
      best = static_cast<int>(c);
  result.predicted_class = best;
}

void accumulate_layer(AccelRunResult& result, LayerStats&& stats) {
  result.total_cycles += stats.cycles;
  result.total_adder_ops += stats.adder_ops;
  result.dram_bits += stats.traffic.dram_bits;
  result.traffic_total.act_read_bits += stats.traffic.act_read_bits;
  result.traffic_total.act_write_bits += stats.traffic.act_write_bits;
  result.traffic_total.weight_read_bits += stats.traffic.weight_read_bits;
  result.traffic_total.dram_bits += stats.traffic.dram_bits;
  result.layers.push_back(std::move(stats));
}

}  // namespace rsnn::hw
