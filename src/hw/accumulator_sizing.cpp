#include "hw/accumulator_sizing.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "ir/layer_program.hpp"

namespace rsnn::hw {
namespace {

/// Two's-complement bits needed for the inclusive range [lo, hi].
int bits_for_range(std::int64_t lo, std::int64_t hi) {
  int bits = 1;
  while (saturate_signed(lo, bits) != lo || saturate_signed(hi, bits) != hi) {
    ++bits;
    RSNN_ENSURE(bits <= 63);
  }
  return bits;
}

/// Range of one output channel: per step the partial sum lies in
/// [neg, pos] (a silent input gives 0, so neg <= 0 <= pos); the radix
/// accumulation over T steps scales both extremes by (2^T - 1) and the
/// channel's bias is added once.
AccumulatorRange channel_range(std::int64_t neg, std::int64_t pos,
                               std::int64_t bias, int time_steps) {
  const std::int64_t weight = (std::int64_t{1} << time_steps) - 1;
  AccumulatorRange r;
  r.min_value = neg * weight + bias;
  r.max_value = pos * weight + bias;
  r.required_bits = bits_for_range(r.min_value, r.max_value);
  return r;
}

void merge(AccumulatorRange& total, const AccumulatorRange& channel) {
  total.min_value = std::min(total.min_value, channel.min_value);
  total.max_value = std::max(total.max_value, channel.max_value);
  total.required_bits = std::max(total.required_bits, channel.required_bits);
}

}  // namespace

AccumulatorRange conv_accumulator_range(const quant::QConv2d& conv,
                                        int time_steps) {
  RSNN_REQUIRE(time_steps >= 1 && time_steps <= 30);
  // Worst case per output channel: positive weights all firing (max) or
  // negative weights all firing (min), across the Cin * K * K receptive
  // field; then the widest channel wins.
  AccumulatorRange total;
  for (std::int64_t oc = 0; oc < conv.out_channels; ++oc) {
    std::int64_t pos = 0, neg = 0;
    for (std::int64_t ic = 0; ic < conv.in_channels; ++ic)
      for (std::int64_t ky = 0; ky < conv.kernel; ++ky)
        for (std::int64_t kx = 0; kx < conv.kernel; ++kx) {
          const std::int64_t w = conv.weight(oc, ic, ky, kx);
          if (w > 0) pos += w;
          if (w < 0) neg += w;
        }
    merge(total, channel_range(neg, pos, conv.bias(oc), time_steps));
  }
  return total;
}

AccumulatorRange linear_accumulator_range(const quant::QLinear& fc,
                                          int time_steps) {
  RSNN_REQUIRE(time_steps >= 1 && time_steps <= 30);
  AccumulatorRange total;
  for (std::int64_t o = 0; o < fc.out_features; ++o) {
    std::int64_t pos = 0, neg = 0;
    for (std::int64_t i = 0; i < fc.in_features; ++i) {
      const std::int64_t w = fc.weight(o, i);
      if (w > 0) pos += w;
      if (w < 0) neg += w;
    }
    merge(total, channel_range(neg, pos, fc.bias(o), time_steps));
  }
  return total;
}

AccumulatorRange pool_range_for_window(std::int64_t window, int time_steps) {
  // Unsigned: up to `window` spikes per step, radix-weighted over T steps.
  AccumulatorRange r;
  r.min_value = 0;
  r.max_value = window * ((std::int64_t{1} << time_steps) - 1);
  r.required_bits = bits_for_range(0, r.max_value);
  return r;
}

AccumulatorRange pool_accumulator_range(const quant::QPool2d& pool,
                                        int time_steps) {
  RSNN_REQUIRE(time_steps >= 1 && time_steps <= 30);
  return pool_range_for_window(pool.kernel * pool.kernel, time_steps);
}

std::vector<AccumulatorRange> network_accumulator_ranges(
    const quant::QuantizedNetwork& qnet) {
  std::vector<AccumulatorRange> ranges;
  ranges.reserve(qnet.layers.size());
  const ir::LayerProgram program = ir::lower(qnet);
  for (const ir::LayerOp& op : program.ops()) {
    switch (op.kind) {
      case ir::OpKind::kConv:
        ranges.push_back(conv_accumulator_range(*op.conv, qnet.time_bits));
        break;
      case ir::OpKind::kLinear:
        ranges.push_back(linear_accumulator_range(*op.linear, qnet.time_bits));
        break;
      case ir::OpKind::kPool:
        ranges.push_back(pool_accumulator_range(*op.pool, qnet.time_bits));
        break;
      case ir::OpKind::kFlatten:
        ranges.push_back(AccumulatorRange{});
        break;
    }
  }
  return ranges;
}

AccumulatorPlan plan_accumulators(const quant::QuantizedNetwork& qnet) {
  AccumulatorPlan plan;
  const ir::LayerProgram program = ir::lower(qnet);
  for (const ir::LayerOp& op : program.ops()) {
    switch (op.kind) {
      case ir::OpKind::kConv:
        plan.conv_bits = std::max(
            plan.conv_bits,
            conv_accumulator_range(*op.conv, qnet.time_bits).required_bits);
        break;
      case ir::OpKind::kLinear:
        plan.linear_bits = std::max(
            plan.linear_bits,
            linear_accumulator_range(*op.linear, qnet.time_bits).required_bits);
        break;
      case ir::OpKind::kPool:
        plan.pool_bits = std::max(
            plan.pool_bits,
            pool_accumulator_range(*op.pool, qnet.time_bits).required_bits);
        break;
      case ir::OpKind::kFlatten:
        break;
    }
  }
  return plan;
}

}  // namespace rsnn::hw
