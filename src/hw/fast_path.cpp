#include "hw/fast_path.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstring>
#include <iterator>
#include <map>
#include <mutex>
#include <tuple>

#include "common/assert.hpp"
#include "common/simd.hpp"
#include "quant/qnetwork.hpp"

namespace rsnn::hw {
namespace {

using common::simd::Kernels;
using quant::QConv2d;
using quant::QLinear;
using quant::QPool2d;

/// Read-only software prefetch into all cache levels. A pure hint: never
/// faults (prefetching past the end of an array is fine) and never changes
/// results, so none of the bit-identity sweeps care about placement.
inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// How many weight rows ahead the streaming inner loops prefetch. Tuned with
/// `microbench` on an AVX2 Xeon (see README "Threading model"): the win
/// plateaus at 2 rows — the axpy over one row takes long enough to cover one
/// row of load latency, and further distance only risks eviction before use.
/// Smaller than the hardware stride prefetcher's window, but these loops
/// *skip* rows (zero codes, zero weights), which is exactly where the
/// hardware predictor loses the stream.
constexpr std::int64_t kPrefetchRows = 2;

std::int64_t popcount_sum(const std::int64_t* values, std::int64_t count) {
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < count; ++i)
    total += std::popcount(static_cast<std::uint64_t>(values[i]));
  return total;
}

/// Output positions [lo, hi) reached by kernel offset `j` along one axis:
/// those o with 0 <= o*str + j - pad < in_extent. Hoisting the bound out of
/// the inner loops removes every per-tap validity branch.
struct AxisBounds {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

AxisBounds out_bounds(std::int64_t j, std::int64_t pad, std::int64_t str,
                      std::int64_t in_extent, std::int64_t out_extent) {
  const std::int64_t lo_num = pad - j;
  std::int64_t lo = lo_num <= 0 ? 0 : (lo_num + str - 1) / str;
  const std::int64_t hi_num = in_extent - 1 + pad - j;
  std::int64_t hi = hi_num < 0 ? 0 : hi_num / str + 1;
  hi = std::min(hi, out_extent);
  lo = std::min(lo, hi);
  return {lo, hi};
}

/// exact_adder_ops for a conv op, via the prepared coverage tables: a spike
/// at (ic, iy, ix) fires county[iy] * countx[ix] adders in each of the Cout
/// output planes.
std::int64_t conv_adder_ops(const std::int64_t* in, std::int64_t cin,
                            std::int64_t ih, std::int64_t iw,
                            const std::int64_t* county,
                            const std::int64_t* countx, std::int64_t cout) {
  std::int64_t ops = 0;
  const std::int64_t* p = in;
  for (std::int64_t c = 0; c < cin; ++c) {
    for (std::int64_t y = 0; y < ih; ++y) {
      const std::int64_t cy = county[y];
      for (std::int64_t x = 0; x < iw; ++x, ++p)
        ops += std::popcount(static_cast<std::uint64_t>(*p)) * cy * countx[x];
    }
  }
  return ops * cout;
}

/// exact_adder_ops for a pool op: spikes within the covered region
/// (iy / k < oh, ix / k < ow) each fire one adder.
std::int64_t pool_covered_spikes(const std::int64_t* in, std::int64_t channels,
                                 std::int64_t ih, std::int64_t iw,
                                 std::int64_t k, std::int64_t oh,
                                 std::int64_t ow) {
  std::int64_t spikes = 0;
  const std::int64_t* p = in;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t y = 0; y < ih; ++y) {
      const bool y_covered = y / k < oh;
      for (std::int64_t x = 0; x < iw; ++x, ++p) {
        if (y_covered && x / k < ow)
          spikes += std::popcount(static_cast<std::uint64_t>(*p));
      }
    }
  }
  return spikes;
}

// --- Per-image counter variants over an interleaved batch ------------------
// Batched activations are stored image-minor (buf[idx * B + b]); each
// counter is the same expression as the scalar version, accumulated into a
// per-image slot so every image's stats match its solo run exactly.

void popcount_per_image(const std::int64_t* buf, std::int64_t n,
                        std::int64_t batch, std::int64_t* out) {
  std::fill(out, out + batch, std::int64_t{0});
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t* px = buf + i * batch;
    for (std::int64_t b = 0; b < batch; ++b)
      out[b] += std::popcount(static_cast<std::uint64_t>(px[b]));
  }
}

void conv_adder_ops_per_image(const std::int64_t* in, std::int64_t cin,
                              std::int64_t ih, std::int64_t iw,
                              const std::int64_t* county,
                              const std::int64_t* countx, std::int64_t cout,
                              std::int64_t batch, std::int64_t* out) {
  std::fill(out, out + batch, std::int64_t{0});
  const std::int64_t* p = in;
  for (std::int64_t c = 0; c < cin; ++c) {
    for (std::int64_t y = 0; y < ih; ++y) {
      const std::int64_t cy = county[y];
      for (std::int64_t x = 0; x < iw; ++x, p += batch) {
        const std::int64_t f = cy * countx[x];
        if (f == 0) continue;
        for (std::int64_t b = 0; b < batch; ++b)
          out[b] += std::popcount(static_cast<std::uint64_t>(p[b])) * f;
      }
    }
  }
  for (std::int64_t b = 0; b < batch; ++b) out[b] *= cout;
}

void pool_covered_per_image(const std::int64_t* in, std::int64_t channels,
                            std::int64_t ih, std::int64_t iw, std::int64_t k,
                            std::int64_t oh, std::int64_t ow,
                            std::int64_t batch, std::int64_t* out) {
  std::fill(out, out + batch, std::int64_t{0});
  const std::int64_t* p = in;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t y = 0; y < ih; ++y) {
      const bool y_covered = y / k < oh;
      for (std::int64_t x = 0; x < iw; ++x, p += batch) {
        if (!y_covered || x / k >= ow) continue;
        for (std::int64_t b = 0; b < batch; ++b)
          out[b] += std::popcount(static_cast<std::uint64_t>(p[b]));
      }
    }
  }
}

// --- Conv kernels, CHW -----------------------------------------------------

/// One conv output channel in CHW order: accumulate into acc[oh*ow], then
/// requantize in place. Taps iterate (ic, ky, kx)-outer so the inner loop is
/// a contiguous row axpy (handed to the SIMD dispatch table); zero weights
/// (common at 3-bit resolution) skip their whole plane pass.
void conv_channel_chw(const QConv2d& conv, const std::int64_t* in,
                      std::int64_t ih, std::int64_t iw, std::int64_t oh,
                      std::int64_t ow, std::int64_t oc, const Kernels& K,
                      std::int64_t* acc) {
  std::fill(acc, acc + oh * ow, std::int64_t{0});
  const std::int64_t k = conv.kernel, str = conv.stride, pad = conv.padding;
  const std::int32_t* wbase =
      conv.weight.data() + oc * conv.in_channels * k * k;
  for (std::int64_t ic = 0; ic < conv.in_channels; ++ic) {
    const std::int64_t* plane = in + ic * ih * iw;
    const std::int32_t* wch = wbase + ic * k * k;
    for (std::int64_t ky = 0; ky < k; ++ky) {
      const AxisBounds by = out_bounds(ky, pad, str, ih, oh);
      for (std::int64_t kx = 0; kx < k; ++kx) {
        const std::int64_t w = wch[ky * k + kx];
        if (w == 0) continue;
        const AxisBounds bx = out_bounds(kx, pad, str, iw, ow);
        const std::int64_t x0 = kx - pad;
        for (std::int64_t oy = by.lo; oy < by.hi; ++oy) {
          const std::int64_t* row = plane + (oy * str + ky - pad) * iw;
          std::int64_t* arow = acc + oy * ow;
          prefetch_ro(row + str * iw);  // next oy's input row
          if (str == 1) {
            K.axpy_code_i64(arow + bx.lo, row + x0 + bx.lo, w, bx.hi - bx.lo);
          } else {
            for (std::int64_t ox = bx.lo; ox < bx.hi; ++ox)
              arow[ox] += w * row[x0 + ox * str];
          }
        }
      }
    }
  }
}

/// Batched CHW conv channel over image-minor interleaved activations: with
/// stride 1 consecutive output pixels read consecutive interleaved input
/// pixels, so a whole row segment of all B images is ONE contiguous axpy of
/// length (hi-lo)*B — the weight is loaded once for the entire batch row.
void conv_channel_chw_batched(const QConv2d& conv, const std::int64_t* in,
                              std::int64_t ih, std::int64_t iw, std::int64_t oh,
                              std::int64_t ow, std::int64_t oc,
                              std::int64_t batch, const Kernels& K,
                              std::int64_t* acc) {
  std::fill(acc, acc + oh * ow * batch, std::int64_t{0});
  const std::int64_t k = conv.kernel, str = conv.stride, pad = conv.padding;
  const std::int32_t* wbase =
      conv.weight.data() + oc * conv.in_channels * k * k;
  for (std::int64_t ic = 0; ic < conv.in_channels; ++ic) {
    const std::int64_t* plane = in + ic * ih * iw * batch;
    const std::int32_t* wch = wbase + ic * k * k;
    for (std::int64_t ky = 0; ky < k; ++ky) {
      const AxisBounds by = out_bounds(ky, pad, str, ih, oh);
      for (std::int64_t kx = 0; kx < k; ++kx) {
        const std::int64_t w = wch[ky * k + kx];
        if (w == 0) continue;
        const AxisBounds bx = out_bounds(kx, pad, str, iw, ow);
        const std::int64_t x0 = kx - pad;
        for (std::int64_t oy = by.lo; oy < by.hi; ++oy) {
          const std::int64_t iy = oy * str + ky - pad;
          std::int64_t* arow = acc + (oy * ow + bx.lo) * batch;
          if (str == 1) {
            const std::int64_t* src = plane + (iy * iw + x0 + bx.lo) * batch;
            prefetch_ro(src + str * iw * batch);  // next oy's input row
            K.axpy_code_i64(arow, src, w, (bx.hi - bx.lo) * batch);
          } else {
            for (std::int64_t ox = bx.lo; ox < bx.hi; ++ox, arow += batch)
              K.axpy_code_i64(arow, plane + (iy * iw + x0 + ox * str) * batch,
                              w, batch);
          }
        }
      }
    }
  }
}

/// Requantize (or bias-add, for the raw final layer) one output channel's
/// accumulator plane in place. Works unchanged on interleaved batch planes:
/// the transform is elementwise and identical for every image.
void finish_channel(const QConv2d& conv, std::int64_t oc, int time_bits,
                    std::int64_t* acc, std::int64_t count) {
  const std::int64_t bias = conv.bias.data()[oc];
  if (!conv.requantize) {
    for (std::int64_t i = 0; i < count; ++i) acc[i] += bias;
    return;
  }
  const int frac = conv.channel_frac.numel() > 0
                       ? conv.channel_frac.data()[oc]
                       : conv.frac_bits;
  for (std::int64_t i = 0; i < count; ++i)
    acc[i] = quant::requantize_value(acc[i], bias, frac, time_bits);
}

// --- Conv kernels, HWC -----------------------------------------------------

/// Byte budget for one repacked HWC input strip. Sized to sit inside L2 so
/// the repack is written once and every kernel-window read after it hits
/// cache; VGG-scale inputs (e.g. 64ch × 224² ≈ 26 MB as int64) are repacked
/// strip by strip instead of whole.
constexpr std::int64_t kHwcTileBytes = 256 * 1024;

/// Output rows per HWC strip: as many as keep the strip's input rows
/// ((strip-1)*stride + k of them) under the tile budget, at least 1.
std::int64_t hwc_strip_height(std::int64_t iw, std::int64_t cin,
                              std::int64_t batch, std::int64_t k,
                              std::int64_t str, std::int64_t oh) {
  const std::int64_t row_bytes =
      iw * cin * batch * static_cast<std::int64_t>(sizeof(std::int64_t));
  std::int64_t rows = kHwcTileBytes / std::max<std::int64_t>(row_bytes, 1);
  if (rows < k) rows = k;
  const std::int64_t strip = (rows - k) / str + 1;
  return std::clamp<std::int64_t>(strip, 1, oh);
}

/// Whole conv layer in HWC order, writing finished codes to
/// out_hwc[oh*ow][Cout]. The input is repacked CHW -> HWC one output-row
/// strip at a time (the strip stays cache-resident; halo rows between strips
/// are repacked twice). Per output pixel an acc[Cout] register block
/// accumulates with the prepared [ky][kx][Cin][Cout] weights, skipping zero
/// activations (spike sparsity), with the contiguous output-channel inner
/// loop handed to the SIMD dispatch table.
void conv_hwc(const QConv2d& conv, const std::int64_t* in, std::int64_t ih,
              std::int64_t iw, std::int64_t oh, std::int64_t ow,
              const std::int32_t* whwc, int time_bits, const Kernels& K,
              common::Arena& arena, std::int64_t* out_hwc) {
  const std::int64_t cin = conv.in_channels, cout = conv.out_channels;
  const std::int64_t k = conv.kernel, str = conv.stride, pad = conv.padding;

  const std::int64_t strip_oh = hwc_strip_height(iw, cin, 1, k, str, oh);
  const std::int64_t rows_cap = std::min(ih, (strip_oh - 1) * str + k);
  std::int64_t* tile = arena.alloc<std::int64_t>(rows_cap * iw * cin);
  std::int64_t* acc = arena.alloc<std::int64_t>(cout);
  const std::int64_t* bias = conv.bias.data();
  const std::int32_t* cf =
      conv.channel_frac.numel() > 0 ? conv.channel_frac.data() : nullptr;

  for (std::int64_t oy0 = 0; oy0 < oh; oy0 += strip_oh) {
    const std::int64_t oy1 = std::min(oh, oy0 + strip_oh);
    const std::int64_t ty0 = std::max<std::int64_t>(0, oy0 * str - pad);
    const std::int64_t ty1 =
        std::max(ty0, std::min(ih, (oy1 - 1) * str + k - pad));
    for (std::int64_t c = 0; c < cin; ++c) {
      const std::int64_t* plane = in + c * ih * iw;
      for (std::int64_t iy = ty0; iy < ty1; ++iy)
        for (std::int64_t ix = 0; ix < iw; ++ix)
          tile[((iy - ty0) * iw + ix) * cin + c] = plane[iy * iw + ix];
    }
    for (std::int64_t oy = oy0; oy < oy1; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        std::fill(acc, acc + cout, std::int64_t{0});
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = oy * str + ky - pad;
          if (iy < 0 || iy >= ih) continue;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ox * str + kx - pad;
            if (ix < 0 || ix >= iw) continue;
            const std::int64_t* px = tile + ((iy - ty0) * iw + ix) * cin;
            const std::int32_t* wk = whwc + (ky * k + kx) * cin * cout;
            for (std::int64_t ic = 0; ic < cin; ++ic) {
              const std::int64_t a = px[ic];
              if (a == 0) continue;
              // [cin][cout] rows are contiguous across taps, so the
              // prefetch rolls into the next tap's tile at block ends.
              prefetch_ro(wk + (ic + kPrefetchRows) * cout);
              K.axpy_w32(acc, wk + ic * cout, a, cout);
            }
          }
        }
        std::int64_t* dst = out_hwc + (oy * ow + ox) * cout;
        if (conv.requantize) {
          for (std::int64_t oc = 0; oc < cout; ++oc)
            dst[oc] = quant::requantize_value(
                acc[oc], bias[oc], cf ? cf[oc] : conv.frac_bits, time_bits);
        } else {
          for (std::int64_t oc = 0; oc < cout; ++oc)
            dst[oc] = acc[oc] + bias[oc];
        }
      }
    }
  }
}

/// Batched HWC conv: the repacked strip interleaves images per input pixel
/// ([row][x][Cin][B]) and the accumulator block holds all images
/// ([B][Cout]), so each prepared weight row is applied to every image in the
/// batch while it is hot in cache. Output goes to out_hwcb[pix][B][Cout]
/// (finished codes, contiguous per image).
void conv_hwc_batched(const QConv2d& conv, const std::int64_t* in,
                      std::int64_t ih, std::int64_t iw, std::int64_t oh,
                      std::int64_t ow, const std::int32_t* whwc, int time_bits,
                      std::int64_t batch, const Kernels& K,
                      common::Arena& arena, std::int64_t* out_hwcb) {
  const std::int64_t cin = conv.in_channels, cout = conv.out_channels;
  const std::int64_t k = conv.kernel, str = conv.stride, pad = conv.padding;

  const std::int64_t strip_oh = hwc_strip_height(iw, cin, batch, k, str, oh);
  const std::int64_t rows_cap = std::min(ih, (strip_oh - 1) * str + k);
  std::int64_t* tile = arena.alloc<std::int64_t>(rows_cap * iw * cin * batch);
  std::int64_t* acc = arena.alloc<std::int64_t>(batch * cout);
  const std::int64_t* bias = conv.bias.data();
  const std::int32_t* cf =
      conv.channel_frac.numel() > 0 ? conv.channel_frac.data() : nullptr;

  for (std::int64_t oy0 = 0; oy0 < oh; oy0 += strip_oh) {
    const std::int64_t oy1 = std::min(oh, oy0 + strip_oh);
    const std::int64_t ty0 = std::max<std::int64_t>(0, oy0 * str - pad);
    const std::int64_t ty1 =
        std::max(ty0, std::min(ih, (oy1 - 1) * str + k - pad));
    for (std::int64_t c = 0; c < cin; ++c) {
      for (std::int64_t iy = ty0; iy < ty1; ++iy) {
        const std::int64_t* srow = in + ((c * ih + iy) * iw) * batch;
        for (std::int64_t ix = 0; ix < iw; ++ix)
          std::memcpy(tile + (((iy - ty0) * iw + ix) * cin + c) * batch,
                      srow + ix * batch,
                      static_cast<std::size_t>(batch) * sizeof(std::int64_t));
      }
    }
    for (std::int64_t oy = oy0; oy < oy1; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        std::fill(acc, acc + batch * cout, std::int64_t{0});
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = oy * str + ky - pad;
          if (iy < 0 || iy >= ih) continue;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ox * str + kx - pad;
            if (ix < 0 || ix >= iw) continue;
            const std::int64_t* px =
                tile + ((iy - ty0) * iw + ix) * cin * batch;
            const std::int32_t* wk = whwc + (ky * k + kx) * cin * cout;
            for (std::int64_t ic = 0; ic < cin; ++ic) {
              const std::int32_t* wrow = wk + ic * cout;
              const std::int64_t* a_b = px + ic * batch;
              prefetch_ro(wrow + kPrefetchRows * cout);
              for (std::int64_t b = 0; b < batch; ++b) {
                const std::int64_t a = a_b[b];
                if (a == 0) continue;
                K.axpy_w32(acc + b * cout, wrow, a, cout);
              }
            }
          }
        }
        std::int64_t* dst = out_hwcb + (oy * ow + ox) * batch * cout;
        for (std::int64_t b = 0; b < batch; ++b) {
          const std::int64_t* arow = acc + b * cout;
          std::int64_t* drow = dst + b * cout;
          if (conv.requantize) {
            for (std::int64_t oc = 0; oc < cout; ++oc)
              drow[oc] = quant::requantize_value(
                  arow[oc], bias[oc], cf ? cf[oc] : conv.frac_bits, time_bits);
          } else {
            for (std::int64_t oc = 0; oc < cout; ++oc)
              drow[oc] = arow[oc] + bias[oc];
          }
        }
      }
    }
  }
}

// --- Pool kernels ----------------------------------------------------------

/// Average-pool one CHW plane into out (CHW), mirroring
/// quant pool_forward: window sum then arithmetic right shift.
void pool_plane(const std::int64_t* plane, std::int64_t iw, std::int64_t k,
                int shift, std::int64_t oh, std::int64_t ow,
                std::int64_t* out) {
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      std::int64_t acc = 0;
      const std::int64_t* win = plane + oy * k * iw + ox * k;
      for (std::int64_t ky = 0; ky < k; ++ky)
        for (std::int64_t kx = 0; kx < k; ++kx) acc += win[ky * iw + kx];
      out[oy * ow + ox] = acc >> shift;
    }
  }
}

/// Batched pool over one interleaved CHW plane: each window tap is an
/// elementwise add of all B images' pixels. `acc` is caller scratch of B.
void pool_plane_batched(const std::int64_t* plane, std::int64_t iw,
                        std::int64_t k, int shift, std::int64_t oh,
                        std::int64_t ow, std::int64_t batch, const Kernels& K,
                        std::int64_t* acc, std::int64_t* out) {
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      std::fill(acc, acc + batch, std::int64_t{0});
      const std::int64_t* win = plane + (oy * k * iw + ox * k) * batch;
      for (std::int64_t ky = 0; ky < k; ++ky)
        for (std::int64_t kx = 0; kx < k; ++kx)
          K.add_i64(acc, win + (ky * iw + kx) * batch, batch);
      std::int64_t* o = out + (oy * ow + ox) * batch;
      for (std::int64_t b = 0; b < batch; ++b) o[b] = acc[b] >> shift;
    }
  }
}

// --- Linear kernels --------------------------------------------------------

/// Linear layer with the prepared transposed weights [in][out]: zero input
/// codes (no spikes) skip their whole weight row; live rows are one
/// contiguous SIMD axpy over the output features.
void linear_fast(const QLinear& fc, const std::int64_t* in,
                 const std::int32_t* wt, int time_bits, const Kernels& K,
                 std::int64_t* out) {
  const std::int64_t nin = fc.in_features, nout = fc.out_features;
  std::fill(out, out + nout, std::int64_t{0});
  for (std::int64_t i = 0; i < nin; ++i) {
    const std::int64_t a = in[i];
    if (a == 0) continue;
    prefetch_ro(wt + (i + kPrefetchRows) * nout);
    K.axpy_w32(out, wt + i * nout, a, nout);
  }
  const std::int64_t* bias = fc.bias.data();
  if (!fc.requantize) {
    for (std::int64_t o = 0; o < nout; ++o) out[o] += bias[o];
    return;
  }
  const std::int32_t* cf =
      fc.channel_frac.numel() > 0 ? fc.channel_frac.data() : nullptr;
  for (std::int64_t o = 0; o < nout; ++o)
    out[o] = quant::requantize_value(out[o], bias[o],
                                     cf ? cf[o] : fc.frac_bits, time_bits);
}

/// Batched linear: per-image contiguous accumulator rows ([B][nout] in
/// `scratch`), with each transposed weight row applied to all images while
/// resident — the weight matrix is streamed once per batch instead of once
/// per image. Output is re-interleaved image-minor into `out`.
void linear_fast_batched(const QLinear& fc, const std::int64_t* in,
                         const std::int32_t* wt, int time_bits,
                         std::int64_t batch, const Kernels& K,
                         std::int64_t* scratch, std::int64_t* out) {
  const std::int64_t nin = fc.in_features, nout = fc.out_features;
  std::fill(scratch, scratch + batch * nout, std::int64_t{0});
  for (std::int64_t i = 0; i < nin; ++i) {
    const std::int64_t* px = in + i * batch;
    const std::int32_t* wrow = wt + i * nout;
    prefetch_ro(wrow + kPrefetchRows * nout);
    for (std::int64_t b = 0; b < batch; ++b) {
      const std::int64_t a = px[b];
      if (a == 0) continue;
      K.axpy_w32(scratch + b * nout, wrow, a, nout);
    }
  }
  const std::int64_t* bias = fc.bias.data();
  const std::int32_t* cf =
      fc.channel_frac.numel() > 0 ? fc.channel_frac.data() : nullptr;
  for (std::int64_t b = 0; b < batch; ++b) {
    std::int64_t* row = scratch + b * nout;
    if (!fc.requantize) {
      for (std::int64_t o = 0; o < nout; ++o) row[o] += bias[o];
    } else {
      for (std::int64_t o = 0; o < nout; ++o)
        row[o] = quant::requantize_value(row[o], bias[o],
                                         cf ? cf[o] : fc.frac_bits, time_bits);
    }
    for (std::int64_t o = 0; o < nout; ++o) out[o * batch + b] = row[o];
  }
}

/// Annotation-derived skeleton of one op's stats (name, cycles, traffic);
/// adder_ops and input_spikes are filled by the caller.
LayerStats annotated_stats(const ir::LayerOp& op) {
  LayerStats stats;
  stats.name = op.name();
  stats.cycles = op.latency.total_cycles;
  stats.dram_cycles = op.latency.dram_cycles;
  stats.traffic = op.latency.traffic;
  return stats;
}

}  // namespace

FastPrepared prepare_fast_path(const ir::LayerProgram& program) {
  FastPrepared prep;
  prep.ops.resize(program.size());
  for (std::size_t i = 0; i < program.size(); ++i) {
    const ir::LayerOp& op = program.op(i);
    FastPrepared::OpPrep& p = prep.ops[i];
    if (op.kind == ir::OpKind::kConv) {
      const QConv2d& conv = *op.conv;
      const std::int64_t ih = op.in_shape.dim(1), iw = op.in_shape.dim(2);
      const std::int64_t oh = op.out_shape.dim(1), ow = op.out_shape.dim(2);
      p.county.resize(static_cast<std::size_t>(ih));
      for (std::int64_t y = 0; y < ih; ++y)
        p.county[static_cast<std::size_t>(y)] = ir::axis_coverage(
            y, conv.kernel, conv.stride, conv.padding, oh);
      p.countx.resize(static_cast<std::size_t>(iw));
      for (std::int64_t x = 0; x < iw; ++x)
        p.countx[static_cast<std::size_t>(x)] = ir::axis_coverage(
            x, conv.kernel, conv.stride, conv.padding, ow);
      if (op.fast_layout == DataLayout::kHwc) {
        const std::int64_t k = conv.kernel;
        const std::int64_t cin = conv.in_channels, cout = conv.out_channels;
        p.weights.resize(static_cast<std::size_t>(k * k * cin * cout));
        const std::int32_t* w = conv.weight.data();
        for (std::int64_t oc = 0; oc < cout; ++oc)
          for (std::int64_t ic = 0; ic < cin; ++ic)
            for (std::int64_t ky = 0; ky < k; ++ky)
              for (std::int64_t kx = 0; kx < k; ++kx)
                p.weights[static_cast<std::size_t>(
                    ((ky * k + kx) * cin + ic) * cout + oc)] =
                    w[((oc * cin + ic) * k + ky) * k + kx];
      }
    } else if (op.kind == ir::OpKind::kLinear) {
      const QLinear& fc = *op.linear;
      const std::int64_t nin = fc.in_features, nout = fc.out_features;
      p.weights.resize(static_cast<std::size_t>(nin * nout));
      const std::int32_t* w = fc.weight.data();
      for (std::int64_t o = 0; o < nout; ++o)
        for (std::int64_t in = 0; in < nin; ++in)
          p.weights[static_cast<std::size_t>(in * nout + o)] = w[o * nin + in];
    }
  }
  return prep;
}

void run_fast_path(const ir::LayerProgram& program, const FastPrepared& prep,
                   common::Arena& arena, const TensorI& codes,
                   std::size_t begin, std::size_t end, TensorI* boundary_codes,
                   AccelRunResult& result) {
  arena.reset();
  const Kernels& K = common::simd::kernels();
  const int T = program.time_bits();
  const std::size_t n_layers = program.network().layers.size();
  result.layers.reserve(end - begin);

  // Activations travel between ops as dense int64 code tensors in CHW order
  // (the canonical order of the reference model); HWC is an intra-op layout.
  const std::int64_t n_in = codes.numel();
  std::int64_t* cur = arena.alloc<std::int64_t>(n_in);
  const std::int32_t* cp = codes.data();
  for (std::int64_t i = 0; i < n_in; ++i) cur[i] = cp[i];

  std::size_t li = begin;
  while (li < end) {
    const ir::LayerOp& op = program.op(li);
    const bool network_final =
        static_cast<std::size_t>(op.layer_index) + 1 == n_layers;
    RSNN_ENSURE(op.requantize || network_final || op.kind == ir::OpKind::kPool ||
                    op.kind == ir::OpKind::kFlatten,
                "non-final layer must requantize");
    LayerStats stats = annotated_stats(op);
    stats.input_spikes = popcount_sum(cur, op.in_shape.numel());
    const FastPrepared::OpPrep& p = prep.ops[li];
    std::size_t consumed = 1;

    switch (op.kind) {
      case ir::OpKind::kFlatten: {
        // CHW -> flat is the identity on a contiguous buffer; the op only
        // moves data between the 2-D and 1-D ping-pong pairs.
        stats.adder_ops = 0;
        accumulate_layer(result, std::move(stats));
        break;
      }
      case ir::OpKind::kConv: {
        const QConv2d& conv = *op.conv;
        const std::int64_t ih = op.in_shape.dim(1), iw = op.in_shape.dim(2);
        const std::int64_t oh = op.out_shape.dim(1), ow = op.out_shape.dim(2);
        const std::int64_t cout = conv.out_channels;
        stats.adder_ops =
            conv_adder_ops(cur, conv.in_channels, ih, iw, p.county.data(),
                           p.countx.data(), cout);
        // A fused pair must lie entirely inside the executed range: a conv
        // at a segment cut runs unfused so the boundary codes stay its own.
        const bool fuse = op.fuse_with_next && li + 1 < end;
        if (!fuse) {
          std::int64_t* out = arena.alloc<std::int64_t>(cout * oh * ow);
          if (op.fast_layout == DataLayout::kHwc) {
            std::int64_t* out_hwc = arena.alloc<std::int64_t>(oh * ow * cout);
            conv_hwc(conv, cur, ih, iw, oh, ow, p.weights.data(), T, K, arena,
                     out_hwc);
            for (std::int64_t oc = 0; oc < cout; ++oc)
              for (std::int64_t i = 0; i < oh * ow; ++i)
                out[oc * oh * ow + i] = out_hwc[i * cout + oc];
          } else {
            for (std::int64_t oc = 0; oc < cout; ++oc) {
              std::int64_t* plane = out + oc * oh * ow;
              conv_channel_chw(conv, cur, ih, iw, oh, ow, oc, K, plane);
              finish_channel(conv, oc, T, plane, oh * ow);
            }
          }
          accumulate_layer(result, std::move(stats));
          cur = out;
          break;
        }

        // Fused conv+pool: the pool consumes conv codes straight from
        // scratch, skipping the intermediate CHW activation tensor. Both
        // ops' stats are emitted exactly as if they ran back to back.
        const ir::LayerOp& pool_op = program.op(li + 1);
        const QPool2d& pool = *pool_op.pool;
        const std::int64_t k = pool.kernel;
        const std::int64_t poh = pool_op.out_shape.dim(1);
        const std::int64_t pow_ = pool_op.out_shape.dim(2);
        LayerStats pool_stats = annotated_stats(pool_op);
        std::int64_t* out = arena.alloc<std::int64_t>(cout * poh * pow_);
        if (op.fast_layout == DataLayout::kHwc) {
          std::int64_t* out_hwc = arena.alloc<std::int64_t>(oh * ow * cout);
          conv_hwc(conv, cur, ih, iw, oh, ow, p.weights.data(), T, K, arena,
                   out_hwc);
          pool_stats.input_spikes = popcount_sum(out_hwc, oh * ow * cout);
          std::int64_t covered = 0;
          for (std::int64_t y = 0; y < oh; ++y) {
            const bool y_covered = y / k < poh;
            for (std::int64_t x = 0; x < ow; ++x) {
              if (y_covered && x / k < pow_)
                covered += popcount_sum(out_hwc + (y * ow + x) * cout, cout);
            }
          }
          pool_stats.adder_ops = covered;
          std::int64_t* pacc = arena.alloc<std::int64_t>(cout);
          for (std::int64_t py = 0; py < poh; ++py) {
            for (std::int64_t px = 0; px < pow_; ++px) {
              std::fill(pacc, pacc + cout, std::int64_t{0});
              for (std::int64_t ky = 0; ky < k; ++ky) {
                for (std::int64_t kx = 0; kx < k; ++kx) {
                  const std::int64_t* src =
                      out_hwc + ((py * k + ky) * ow + px * k + kx) * cout;
                  K.add_i64(pacc, src, cout);
                }
              }
              for (std::int64_t oc = 0; oc < cout; ++oc)
                out[(oc * poh + py) * pow_ + px] = pacc[oc] >> pool.shift;
            }
          }
        } else {
          std::int64_t* plane = arena.alloc<std::int64_t>(oh * ow);
          std::int64_t conv_spikes = 0, covered = 0;
          for (std::int64_t oc = 0; oc < cout; ++oc) {
            conv_channel_chw(conv, cur, ih, iw, oh, ow, oc, K, plane);
            finish_channel(conv, oc, T, plane, oh * ow);
            conv_spikes += popcount_sum(plane, oh * ow);
            covered += pool_covered_spikes(plane, 1, oh, ow, k, poh, pow_);
            pool_plane(plane, ow, k, pool.shift, poh, pow_,
                       out + oc * poh * pow_);
          }
          pool_stats.input_spikes = conv_spikes;
          pool_stats.adder_ops = covered;
        }
        accumulate_layer(result, std::move(stats));
        accumulate_layer(result, std::move(pool_stats));
        cur = out;
        consumed = 2;
        break;
      }
      case ir::OpKind::kPool: {
        const QPool2d& pool = *op.pool;
        const std::int64_t ch = op.in_shape.dim(0);
        const std::int64_t ih = op.in_shape.dim(1), iw = op.in_shape.dim(2);
        const std::int64_t oh = op.out_shape.dim(1), ow = op.out_shape.dim(2);
        stats.adder_ops =
            pool_covered_spikes(cur, ch, ih, iw, pool.kernel, oh, ow);
        std::int64_t* out = arena.alloc<std::int64_t>(ch * oh * ow);
        for (std::int64_t c = 0; c < ch; ++c)
          pool_plane(cur + c * ih * iw, iw, pool.kernel, pool.shift, oh, ow,
                     out + c * oh * ow);
        accumulate_layer(result, std::move(stats));
        cur = out;
        break;
      }
      case ir::OpKind::kLinear: {
        const QLinear& fc = *op.linear;
        stats.adder_ops = stats.input_spikes * fc.out_features;
        std::int64_t* out = arena.alloc<std::int64_t>(fc.out_features);
        linear_fast(fc, cur, p.weights.data(), T, K, out);
        accumulate_layer(result, std::move(stats));
        cur = out;
        break;
      }
    }

    li += consumed;
    const ir::LayerOp& last_op = program.op(li - 1);
    const std::int64_t out_numel = last_op.out_shape.numel();
    if (static_cast<std::size_t>(last_op.layer_index) + 1 == n_layers) {
      result.logits.assign(cur, cur + out_numel);
    } else if (li == end && boundary_codes) {
      TensorI boundary(last_op.out_shape);
      std::int32_t* bp = boundary.data();
      for (std::int64_t i = 0; i < out_numel; ++i)
        bp[i] = static_cast<std::int32_t>(cur[i]);
      *boundary_codes = std::move(boundary);
    }
  }

  finalize_run(result, program.config().cycle_ns());
}

// --- Batched slice execution ------------------------------------------------
//
// A "slice" is a contiguous sub-range of the batch with its own arena,
// image-minor interleaved activation buffer and per-image counter scratch.
// The sequential batched kernel runs ONE slice covering the whole batch; the
// parallel kernel seats one slice per task-pool slot and fork/joins every
// step. Both therefore execute the same per-slice code on the same prepared
// pack — the parallel path's per-image bit-identity is structural, not
// re-proven arithmetic.
namespace {

struct BatchSlice {
  common::Arena* arena = nullptr;
  std::int64_t B = 0;                 ///< images in this slice
  const TensorI* codes = nullptr;     ///< B input tensors
  AccelRunResult* results = nullptr;  ///< B caller-reset results
  TensorI* boundary = nullptr;        ///< B boundary tensors, or nullptr
  std::int64_t* cur = nullptr;        ///< interleaved activations cur[i*B+b]
  std::int64_t* spikes = nullptr;     ///< per-image counter scratch (4x B)
  std::int64_t* adder = nullptr;
  std::int64_t* pool_spikes = nullptr;
  std::int64_t* pool_covered = nullptr;
};

/// Ops consumed by the step starting at `li`: 2 for a fused conv+pool pair
/// lying entirely inside the executed range, else 1. A property of the
/// program alone — every slice of a batch steps through ops identically,
/// which is what lets the parallel driver advance all slices in lockstep.
std::size_t ops_consumed(const ir::LayerProgram& program, std::size_t li,
                         std::size_t end) {
  const ir::LayerOp& op = program.op(li);
  const bool fuse =
      op.kind == ir::OpKind::kConv && op.fuse_with_next && li + 1 < end;
  return fuse ? 2 : 1;
}

/// Rewind the slice's arena and stage its inputs: counter scratch first (so
/// the arena round is stable), then the interleaved activation buffer.
void init_slice(std::size_t begin, std::size_t end, BatchSlice& s) {
  common::Arena& arena = *s.arena;
  arena.reset();
  const std::int64_t B = s.B;
  for (std::int64_t b = 0; b < B; ++b) s.results[b].layers.reserve(end - begin);

  s.spikes = arena.alloc<std::int64_t>(B);
  s.adder = arena.alloc<std::int64_t>(B);
  s.pool_spikes = arena.alloc<std::int64_t>(B);
  s.pool_covered = arena.alloc<std::int64_t>(B);

  // Activations travel between ops interleaved image-minor: cur[i*B + b] is
  // element i (CHW order) of image b.
  const std::int64_t n_in = s.codes[0].numel();
  s.cur = arena.alloc<std::int64_t>(n_in * B);
  for (std::int64_t b = 0; b < B; ++b) {
    RSNN_REQUIRE(s.codes[b].numel() == n_in,
                 "batched input codes must share one shape");
    const std::int32_t* cp = s.codes[b].data();
    for (std::int64_t i = 0; i < n_in; ++i) s.cur[i * B + b] = cp[i];
  }
}

/// Execute the step starting at op `li` (one op, or a fused conv+pool pair)
/// on one slice, including the end-of-range logit / boundary emission.
void run_slice_op(const ir::LayerProgram& program, const FastPrepared& prep,
                  const Kernels& K, int T, std::size_t n_layers, std::size_t li,
                  std::size_t end, BatchSlice& s) {
  common::Arena& arena = *s.arena;
  const std::int64_t B = s.B;
  AccelRunResult* results = s.results;
  std::int64_t* spikes = s.spikes;
  std::int64_t* adder = s.adder;
  std::int64_t* pool_spikes = s.pool_spikes;
  std::int64_t* pool_covered = s.pool_covered;
  std::int64_t* cur = s.cur;

  const ir::LayerOp& op = program.op(li);
  const bool network_final =
      static_cast<std::size_t>(op.layer_index) + 1 == n_layers;
  RSNN_ENSURE(op.requantize || network_final || op.kind == ir::OpKind::kPool ||
                  op.kind == ir::OpKind::kFlatten,
              "non-final layer must requantize");
  popcount_per_image(cur, op.in_shape.numel(), B, spikes);
  const FastPrepared::OpPrep& p = prep.ops[li];
  const std::size_t consumed = ops_consumed(program, li, end);

  switch (op.kind) {
    case ir::OpKind::kFlatten: {
      for (std::int64_t b = 0; b < B; ++b) {
        LayerStats stats = annotated_stats(op);
        stats.input_spikes = spikes[b];
        stats.adder_ops = 0;
        accumulate_layer(results[b], std::move(stats));
      }
      break;
    }
    case ir::OpKind::kConv: {
      const QConv2d& conv = *op.conv;
      const std::int64_t ih = op.in_shape.dim(1), iw = op.in_shape.dim(2);
      const std::int64_t oh = op.out_shape.dim(1), ow = op.out_shape.dim(2);
      const std::int64_t cout = conv.out_channels;
      conv_adder_ops_per_image(cur, conv.in_channels, ih, iw, p.county.data(),
                               p.countx.data(), cout, B, adder);
      if (consumed == 1) {  // unfused
        std::int64_t* out = arena.alloc<std::int64_t>(cout * oh * ow * B);
        if (op.fast_layout == DataLayout::kHwc) {
          std::int64_t* out_hwcb = arena.alloc<std::int64_t>(oh * ow * B * cout);
          conv_hwc_batched(conv, cur, ih, iw, oh, ow, p.weights.data(), T, B, K,
                           arena, out_hwcb);
          for (std::int64_t i = 0; i < oh * ow; ++i)
            for (std::int64_t b = 0; b < B; ++b) {
              const std::int64_t* src = out_hwcb + (i * B + b) * cout;
              for (std::int64_t oc = 0; oc < cout; ++oc)
                out[(oc * oh * ow + i) * B + b] = src[oc];
            }
        } else {
          for (std::int64_t oc = 0; oc < cout; ++oc) {
            std::int64_t* plane = out + oc * oh * ow * B;
            conv_channel_chw_batched(conv, cur, ih, iw, oh, ow, oc, B, K,
                                     plane);
            finish_channel(conv, oc, T, plane, oh * ow * B);
          }
        }
        for (std::int64_t b = 0; b < B; ++b) {
          LayerStats stats = annotated_stats(op);
          stats.input_spikes = spikes[b];
          stats.adder_ops = adder[b];
          accumulate_layer(results[b], std::move(stats));
        }
        cur = out;
        break;
      }

      // Fused conv+pool: the pool consumes conv codes straight from scratch,
      // skipping the intermediate CHW activation tensor.
      const ir::LayerOp& pool_op = program.op(li + 1);
      const QPool2d& pool = *pool_op.pool;
      const std::int64_t k = pool.kernel;
      const std::int64_t poh = pool_op.out_shape.dim(1);
      const std::int64_t pow_ = pool_op.out_shape.dim(2);
      std::int64_t* out = arena.alloc<std::int64_t>(cout * poh * pow_ * B);
      if (op.fast_layout == DataLayout::kHwc) {
        std::int64_t* out_hwcb = arena.alloc<std::int64_t>(oh * ow * B * cout);
        conv_hwc_batched(conv, cur, ih, iw, oh, ow, p.weights.data(), T, B, K,
                         arena, out_hwcb);
        std::fill(pool_spikes, pool_spikes + B, std::int64_t{0});
        std::fill(pool_covered, pool_covered + B, std::int64_t{0});
        for (std::int64_t y = 0; y < oh; ++y) {
          const bool y_covered = y / k < poh;
          for (std::int64_t x = 0; x < ow; ++x) {
            const bool covered = y_covered && x / k < pow_;
            const std::int64_t* base = out_hwcb + ((y * ow + x) * B) * cout;
            for (std::int64_t b = 0; b < B; ++b) {
              const std::int64_t n = popcount_sum(base + b * cout, cout);
              pool_spikes[b] += n;
              if (covered) pool_covered[b] += n;
            }
          }
        }
        std::int64_t* pacc = arena.alloc<std::int64_t>(B * cout);
        for (std::int64_t py = 0; py < poh; ++py) {
          for (std::int64_t px = 0; px < pow_; ++px) {
            std::fill(pacc, pacc + B * cout, std::int64_t{0});
            for (std::int64_t ky = 0; ky < k; ++ky)
              for (std::int64_t kx = 0; kx < k; ++kx)
                K.add_i64(pacc,
                          out_hwcb +
                              (((py * k + ky) * ow + px * k + kx) * B) * cout,
                          B * cout);
            for (std::int64_t b = 0; b < B; ++b)
              for (std::int64_t oc = 0; oc < cout; ++oc)
                out[((oc * poh + py) * pow_ + px) * B + b] =
                    pacc[b * cout + oc] >> pool.shift;
          }
        }
      } else {
        std::int64_t* plane = arena.alloc<std::int64_t>(oh * ow * B);
        std::int64_t* pacc = arena.alloc<std::int64_t>(B);
        std::fill(pool_spikes, pool_spikes + B, std::int64_t{0});
        std::fill(pool_covered, pool_covered + B, std::int64_t{0});
        for (std::int64_t oc = 0; oc < cout; ++oc) {
          conv_channel_chw_batched(conv, cur, ih, iw, oh, ow, oc, B, K, plane);
          finish_channel(conv, oc, T, plane, oh * ow * B);
          const std::int64_t* q = plane;
          for (std::int64_t y = 0; y < oh; ++y) {
            const bool y_covered = y / k < poh;
            for (std::int64_t x = 0; x < ow; ++x, q += B) {
              const bool covered = y_covered && x / k < pow_;
              for (std::int64_t b = 0; b < B; ++b) {
                const std::int64_t n =
                    std::popcount(static_cast<std::uint64_t>(q[b]));
                pool_spikes[b] += n;
                if (covered) pool_covered[b] += n;
              }
            }
          }
          pool_plane_batched(plane, ow, k, pool.shift, poh, pow_, B, K, pacc,
                             out + oc * poh * pow_ * B);
        }
      }
      for (std::int64_t b = 0; b < B; ++b) {
        LayerStats stats = annotated_stats(op);
        stats.input_spikes = spikes[b];
        stats.adder_ops = adder[b];
        accumulate_layer(results[b], std::move(stats));
        LayerStats pstats = annotated_stats(pool_op);
        pstats.input_spikes = pool_spikes[b];
        pstats.adder_ops = pool_covered[b];
        accumulate_layer(results[b], std::move(pstats));
      }
      cur = out;
      break;
    }
    case ir::OpKind::kPool: {
      const QPool2d& pool = *op.pool;
      const std::int64_t ch = op.in_shape.dim(0);
      const std::int64_t ih = op.in_shape.dim(1), iw = op.in_shape.dim(2);
      const std::int64_t oh = op.out_shape.dim(1), ow = op.out_shape.dim(2);
      pool_covered_per_image(cur, ch, ih, iw, pool.kernel, oh, ow, B, adder);
      std::int64_t* out = arena.alloc<std::int64_t>(ch * oh * ow * B);
      std::int64_t* pacc = arena.alloc<std::int64_t>(B);
      for (std::int64_t c = 0; c < ch; ++c)
        pool_plane_batched(cur + c * ih * iw * B, iw, pool.kernel, pool.shift,
                           oh, ow, B, K, pacc, out + c * oh * ow * B);
      for (std::int64_t b = 0; b < B; ++b) {
        LayerStats stats = annotated_stats(op);
        stats.input_spikes = spikes[b];
        stats.adder_ops = adder[b];
        accumulate_layer(results[b], std::move(stats));
      }
      cur = out;
      break;
    }
    case ir::OpKind::kLinear: {
      const QLinear& fc = *op.linear;
      std::int64_t* out = arena.alloc<std::int64_t>(fc.out_features * B);
      std::int64_t* scratch = arena.alloc<std::int64_t>(B * fc.out_features);
      linear_fast_batched(fc, cur, p.weights.data(), T, B, K, scratch, out);
      for (std::int64_t b = 0; b < B; ++b) {
        LayerStats stats = annotated_stats(op);
        stats.input_spikes = spikes[b];
        stats.adder_ops = spikes[b] * fc.out_features;
        accumulate_layer(results[b], std::move(stats));
      }
      cur = out;
      break;
    }
  }

  const ir::LayerOp& last_op = program.op(li + consumed - 1);
  const std::int64_t out_numel = last_op.out_shape.numel();
  if (static_cast<std::size_t>(last_op.layer_index) + 1 == n_layers) {
    for (std::int64_t b = 0; b < B; ++b) {
      auto& logits = results[b].logits;
      logits.resize(static_cast<std::size_t>(out_numel));
      for (std::int64_t i = 0; i < out_numel; ++i)
        logits[static_cast<std::size_t>(i)] = cur[i * B + b];
    }
  } else if (li + consumed == end && s.boundary) {
    for (std::int64_t b = 0; b < B; ++b) {
      TensorI boundary(last_op.out_shape);
      std::int32_t* bp = boundary.data();
      for (std::int64_t i = 0; i < out_numel; ++i)
        bp[i] = static_cast<std::int32_t>(cur[i * B + b]);
      s.boundary[b] = std::move(boundary);
    }
  }
  s.cur = cur;
}

}  // namespace

void run_fast_path_batched(const ir::LayerProgram& program,
                           const FastPrepared& prep, common::Arena& arena,
                           const TensorI* codes, std::size_t batch,
                           std::size_t begin, std::size_t end,
                           TensorI* boundary_codes, AccelRunResult* results) {
  RSNN_REQUIRE(batch >= 1, "batched run needs at least one image");
  const Kernels& K = common::simd::kernels();
  const int T = program.time_bits();
  const std::size_t n_layers = program.network().layers.size();

  BatchSlice s;
  s.arena = &arena;
  s.B = static_cast<std::int64_t>(batch);
  s.codes = codes;
  s.results = results;
  s.boundary = boundary_codes;
  init_slice(begin, end, s);
  for (std::size_t li = begin; li < end; li += ops_consumed(program, li, end))
    run_slice_op(program, prep, K, T, n_layers, li, end, s);

  const double cycle_ns = program.config().cycle_ns();
  for (std::size_t b = 0; b < batch; ++b) finalize_run(results[b], cycle_ns);
}

void run_fast_path_batched_parallel(const ir::LayerProgram& program,
                                    const FastPrepared& prep,
                                    common::TaskPool& pool,
                                    const TensorI* codes, std::size_t batch,
                                    std::size_t begin, std::size_t end,
                                    TensorI* boundary_codes,
                                    AccelRunResult* results,
                                    std::size_t threads) {
  RSNN_REQUIRE(batch >= 1, "batched run needs at least one image");
  // One slice per requested thread — never more slices than images or pool
  // slots. The fixed cap keeps the slice table on the stack (no per-call
  // allocation); past ~64 cores the batch, not the core count, is the limit.
  constexpr std::size_t kMaxSlices = 64;
  const std::size_t n_slices =
      std::min({threads, batch, pool.slots(), kMaxSlices});

  // Slice activation state lives in the pool's slot arenas across the
  // per-op rounds, so the pool is held for the whole run, not per fork.
  auto session = pool.acquire();
  if (n_slices <= 1) {
    run_fast_path_batched(program, prep, pool.arena(0), codes, batch, begin,
                          end, boundary_codes, results);
    return;
  }

  const Kernels& K = common::simd::kernels();
  const int T = program.time_bits();
  const std::size_t n_layers = program.network().layers.size();

  BatchSlice slices[kMaxSlices];
  std::size_t off = 0;
  for (std::size_t c = 0; c < n_slices; ++c) {
    const std::size_t n = batch / n_slices + (c < batch % n_slices ? 1 : 0);
    BatchSlice& s = slices[c];
    s.arena = &pool.arena(c);
    s.B = static_cast<std::int64_t>(n);
    s.codes = codes + off;
    s.results = results + off;
    s.boundary = boundary_codes ? boundary_codes + off : nullptr;
    off += n;
  }

  // Fork/join once per step: every slice executes the SAME op over its own
  // images, so all cores stream one shared weight tap sequence — the taps a
  // slice pulls into the shared cache are the taps its siblings need next.
  pool.run(n_slices, [&](std::size_t c) { init_slice(begin, end, slices[c]); });
  for (std::size_t li = begin; li < end;
       li += ops_consumed(program, li, end)) {
    pool.run(n_slices, [&](std::size_t c) {
      run_slice_op(program, prep, K, T, n_layers, li, end, slices[c]);
    });
  }

  const double cycle_ns = program.config().cycle_ns();
  for (std::size_t b = 0; b < batch; ++b) finalize_run(results[b], cycle_ns);
}

// --- Process-wide prepared-pack cache ---------------------------------------

namespace {

/// Identity of a prepared pack. The program borrows its QuantizedNetwork (a
/// lifetime contract the Accelerator already documents), so the network
/// address plus every op's parameter-struct address pins the weights — a
/// recycled network address with different content would also have recycled
/// each heap-allocated layer, which the per-op pointers catch — while the op
/// range and per-op kinds/layouts pin the repack shapes.
struct PrepKey {
  const void* network;
  std::size_t begin;
  std::size_t n_ops;
  std::uint64_t ops_hash;

  friend bool operator<(const PrepKey& a, const PrepKey& b) {
    return std::tie(a.network, a.begin, a.n_ops, a.ops_hash) <
           std::tie(b.network, b.begin, b.n_ops, b.ops_hash);
  }
};

PrepKey prep_key(const ir::LayerProgram& program) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the op sequence
  const auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  for (std::size_t i = 0; i < program.size(); ++i) {
    const ir::LayerOp& op = program.op(i);
    mix(static_cast<std::uint64_t>(op.kind));
    mix(static_cast<std::uint64_t>(op.fast_layout));
    mix(static_cast<std::uint64_t>(op.layer_index));
    mix(reinterpret_cast<std::uintptr_t>(op.conv));
    mix(reinterpret_cast<std::uintptr_t>(op.pool));
    mix(reinterpret_cast<std::uintptr_t>(op.linear));
  }
  return PrepKey{&program.network(), program.network_begin(), program.size(),
                 h};
}

struct PrepRegistry {
  std::mutex mu;
  std::map<PrepKey, std::weak_ptr<const FastPrepared>> cache;
  std::atomic<std::uint64_t> builds{0};
};

PrepRegistry& prep_registry() {
  static PrepRegistry registry;
  return registry;
}

}  // namespace

std::shared_ptr<const FastPrepared> shared_fast_prepared(
    const ir::LayerProgram& program) {
  PrepRegistry& registry = prep_registry();
  const PrepKey key = prep_key(program);
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto it = registry.cache.begin(); it != registry.cache.end();)
    it = it->second.expired() ? registry.cache.erase(it) : std::next(it);
  if (auto it = registry.cache.find(key); it != registry.cache.end())
    if (auto live = it->second.lock()) return live;
  // Built under the lock: N replicas spinning up concurrently perform
  // exactly one repack — the rest wait here and share it.
  auto built = std::make_shared<const FastPrepared>(prepare_fast_path(program));
  registry.cache[key] = built;
  registry.builds.fetch_add(1, std::memory_order_relaxed);
  return built;
}

std::uint64_t fast_prepared_build_count() {
  return prep_registry().builds.load(std::memory_order_relaxed);
}

}  // namespace rsnn::hw
