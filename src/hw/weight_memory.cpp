#include "hw/weight_memory.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/log.hpp"
#include "ir/layer_program.hpp"

namespace rsnn::hw {

WeightFetchCost WeightMemory::fetch_layer(std::int64_t param_bits,
                                          WeightPlacement placement) {
  RSNN_REQUIRE(param_bits >= 0);
  WeightFetchCost cost;
  if (placement == WeightPlacement::kDram && param_bits > 0) {
    cost.cycles = config_.dram_setup_cycles +
                  ceil_div(param_bits, config_.dram_bits_per_cycle);
    cost.dram_bits = param_bits;
    dram_bits_total_ += param_bits;
  }
  return cost;
}

std::vector<WeightPlacement> plan_placement(const quant::QuantizedNetwork& qnet,
                                            const MemoryConfig& config) {
  return plan_placement(qnet, 0, qnet.layers.size(), config);
}

std::vector<WeightPlacement> plan_placement(const quant::QuantizedNetwork& qnet,
                                            std::size_t begin, std::size_t end,
                                            const MemoryConfig& config) {
  RSNN_REQUIRE(begin < end && end <= qnet.layers.size(),
               "layer range [" << begin << ", " << end << ") outside [0, "
                               << qnet.layers.size() << ")");
  std::int64_t total_bits = 0;
  for (std::size_t li = begin; li < end; ++li)
    total_bits += ir::layer_param_bits(qnet.layers[li], qnet.weight_bits,
                                       qnet.time_bits);

  const bool fits = total_bits <= config.weight_bram_bits;
  if (!fits)
    RSNN_INFO("parameters of layers [" << begin << ", " << end << ") ("
                                       << total_bits / 8 / 1024
                                       << " KiB) exceed BRAM budget ("
                                       << config.weight_bram_bits / 8 / 1024
                                       << " KiB): streaming from DRAM");
  std::vector<WeightPlacement> placement;
  placement.reserve(end - begin);
  for (std::size_t li = begin; li < end; ++li) {
    const bool has_params = ir::layer_param_bits(qnet.layers[li],
                                                 qnet.weight_bits,
                                                 qnet.time_bits) > 0;
    placement.push_back(fits || !has_params ? WeightPlacement::kOnChip
                                            : WeightPlacement::kDram);
  }
  return placement;
}

}  // namespace rsnn::hw
