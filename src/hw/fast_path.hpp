// Code-domain fast path of the cycle-accurate simulator.
//
// Radix-encoded layers are *linear over activation codes*: integrating a
// T-step spike train with the left-shift between steps computes exactly
// sum(code * w) (DESIGN invariant 1), so the whole temporal loop of a layer
// collapses to a single integer pass over the codes. The fast path exploits
// that: it computes every op's output codes with dense word-level kernels
// (per-layout loop orders, fused conv+pool passes) and takes the accounting
// from sources that are already proven bit-identical to the stepped
// dataflow:
//
//   * cycles / dram_cycles / memory traffic — the program's latency
//     annotations (DESIGN invariant 4, enforced per-op by the equivalence
//     suite against the stepped units);
//   * adder ops — the exact activity rule of ir::exact_adder_ops, evaluated
//     through prepared per-op coverage tables;
//   * input spikes — popcount of the input codes (== the spike-train count).
//
// The fast path therefore changes *how* the simulator iterates, never *what*
// it counts: logits, cycles, adder ops and traffic are bit-identical to
// SimMode::kStepped for every layout/fusion plan, which
// tests/test_fastpath.cpp sweeps exhaustively.
//
// Memory model: all intermediate activation buffers are bump-allocated from
// a per-worker common::Arena that is rewound per inference — a warm worker
// performs zero heap allocation (tested). Weight repacks and coverage tables
// live in a FastPrepared built once per Accelerator and shared read-only by
// all of its workers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "hw/run_result.hpp"
#include "ir/layer_program.hpp"
#include "tensor/tensor.hpp"

namespace rsnn::hw {

/// Immutable per-program preparation: weight repacks in the layouts the plan
/// selected, plus the adder-op coverage tables. Indexed by op position.
struct FastPrepared {
  struct OpPrep {
    /// HWC-packed conv weights [ky][kx][Cin][Cout] (conv ops with
    /// fast_layout == kHwc) or the transposed linear weights [in][out]
    /// (linear ops); empty otherwise.
    std::vector<std::int32_t> weights;
    /// Separable adder-op coverage per input row / column (conv ops):
    /// a spike at (iy, ix) feeds county[iy] * countx[ix] kernel windows.
    std::vector<std::int64_t> county;
    std::vector<std::int64_t> countx;
  };
  std::vector<OpPrep> ops;
};

/// Build the prepared state for a hardware-lowered program.
FastPrepared prepare_fast_path(const ir::LayerProgram& program);

/// Execute ops [begin, end) of `program` on the fast path, appending per-op
/// stats to `result` (which the caller has reset). Fills `result.logits`
/// when the range contains the network's final layer; writes the activation
/// codes crossing the downstream cut to `boundary_codes` (if non-null) when
/// it does not. Scratch comes from `arena` (rewound here, per inference).
void run_fast_path(const ir::LayerProgram& program, const FastPrepared& prep,
                   common::Arena& arena, const TensorI& codes,
                   std::size_t begin, std::size_t end, TensorI* boundary_codes,
                   AccelRunResult& result);

/// Batched variant: execute ops [begin, end) for `batch` images in one
/// prepared-weight traversal — every weight tile is loaded once and applied
/// to all images before moving on, amortizing the memory traffic that
/// dominates per-image runs. Activations travel interleaved image-minor
/// (`buf[idx * batch + b]`) so the batched kernels stay dense.
///
/// `codes` points at `batch` equally-shaped tensors; `results` at `batch`
/// caller-reset results, filled exactly as `batch` independent
/// run_fast_path() calls would fill them (bit-identical logits and
/// counters — the batch only reorders independent integer updates). When
/// the range stops short of the final layer and `boundary_codes` is
/// non-null it must also point at `batch` tensors.
void run_fast_path_batched(const ir::LayerProgram& program,
                           const FastPrepared& prep, common::Arena& arena,
                           const TensorI* codes, std::size_t batch,
                           std::size_t begin, std::size_t end,
                           TensorI* boundary_codes, AccelRunResult* results);

}  // namespace rsnn::hw
