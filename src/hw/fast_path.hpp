// Code-domain fast path of the cycle-accurate simulator.
//
// Radix-encoded layers are *linear over activation codes*: integrating a
// T-step spike train with the left-shift between steps computes exactly
// sum(code * w) (DESIGN invariant 1), so the whole temporal loop of a layer
// collapses to a single integer pass over the codes. The fast path exploits
// that: it computes every op's output codes with dense word-level kernels
// (per-layout loop orders, fused conv+pool passes) and takes the accounting
// from sources that are already proven bit-identical to the stepped
// dataflow:
//
//   * cycles / dram_cycles / memory traffic — the program's latency
//     annotations (DESIGN invariant 4, enforced per-op by the equivalence
//     suite against the stepped units);
//   * adder ops — the exact activity rule of ir::exact_adder_ops, evaluated
//     through prepared per-op coverage tables;
//   * input spikes — popcount of the input codes (== the spike-train count).
//
// The fast path therefore changes *how* the simulator iterates, never *what*
// it counts: logits, cycles, adder ops and traffic are bit-identical to
// SimMode::kStepped for every layout/fusion plan, which
// tests/test_fastpath.cpp sweeps exhaustively.
//
// Memory model: all intermediate activation buffers are bump-allocated from
// a per-worker common::Arena that is rewound per inference — a warm worker
// performs zero heap allocation (tested). Weight repacks and coverage tables
// live in a FastPrepared built once per Accelerator and shared read-only by
// all of its workers.
#pragma once

#include <cstdint>
#include <vector>

#include <cstddef>
#include <memory>

#include "common/arena.hpp"
#include "common/parallel.hpp"
#include "hw/run_result.hpp"
#include "ir/layer_program.hpp"
#include "tensor/tensor.hpp"

namespace rsnn::hw {

/// Immutable per-program preparation: weight repacks in the layouts the plan
/// selected, plus the adder-op coverage tables. Indexed by op position.
struct FastPrepared {
  struct OpPrep {
    /// HWC-packed conv weights [ky][kx][Cin][Cout] (conv ops with
    /// fast_layout == kHwc) or the transposed linear weights [in][out]
    /// (linear ops); empty otherwise.
    std::vector<std::int32_t> weights;
    /// Separable adder-op coverage per input row / column (conv ops):
    /// a spike at (iy, ix) feeds county[iy] * countx[ix] kernel windows.
    std::vector<std::int64_t> county;
    std::vector<std::int64_t> countx;
  };
  std::vector<OpPrep> ops;
};

/// Build the prepared state for a hardware-lowered program.
FastPrepared prepare_fast_path(const ir::LayerProgram& program);

/// Process-wide keyed cache over prepare_fast_path(): every Accelerator —
/// and therefore every ServingPool replica and streaming worker — executing
/// the same lowered program receives one shared immutable pack instead of
/// building a private copy (replicas of a VGG-scale model would otherwise
/// each hold megabytes of identical repacked weights and pay the repack on
/// spin-up). Keyed by program identity: the borrowed QuantizedNetwork, the
/// op range and each op's parameters and planned layout. Entries are weak;
/// a pack dies with its last user and is rebuilt on the next request.
std::shared_ptr<const FastPrepared> shared_fast_prepared(
    const ir::LayerProgram& program);

/// Number of prepare_fast_path() builds performed through the shared cache
/// since process start — an observability hook that lets tests assert the
/// replica-sharing guarantee ("N replicas, one build") by accounting.
std::uint64_t fast_prepared_build_count();

/// Execute ops [begin, end) of `program` on the fast path, appending per-op
/// stats to `result` (which the caller has reset). Fills `result.logits`
/// when the range contains the network's final layer; writes the activation
/// codes crossing the downstream cut to `boundary_codes` (if non-null) when
/// it does not. Scratch comes from `arena` (rewound here, per inference).
void run_fast_path(const ir::LayerProgram& program, const FastPrepared& prep,
                   common::Arena& arena, const TensorI& codes,
                   std::size_t begin, std::size_t end, TensorI* boundary_codes,
                   AccelRunResult& result);

/// Batched variant: execute ops [begin, end) for `batch` images in one
/// prepared-weight traversal — every weight tile is loaded once and applied
/// to all images before moving on, amortizing the memory traffic that
/// dominates per-image runs. Activations travel interleaved image-minor
/// (`buf[idx * batch + b]`) so the batched kernels stay dense.
///
/// `codes` points at `batch` equally-shaped tensors; `results` at `batch`
/// caller-reset results, filled exactly as `batch` independent
/// run_fast_path() calls would fill them (bit-identical logits and
/// counters — the batch only reorders independent integer updates). When
/// the range stops short of the final layer and `boundary_codes` is
/// non-null it must also point at `batch` tensors.
void run_fast_path_batched(const ir::LayerProgram& program,
                           const FastPrepared& prep, common::Arena& arena,
                           const TensorI* codes, std::size_t batch,
                           std::size_t begin, std::size_t end,
                           TensorI* boundary_codes, AccelRunResult* results);

/// Multi-core batched variant: the batch splits into at most `threads`
/// contiguous image slices and every op is executed fork/join on `pool` —
/// all slices traverse the same prepared weight pack concurrently, so the
/// taps a slice loads into the shared cache are the taps every other slice
/// needs next. Each slice is the sequential batched kernel over its
/// sub-range (same code path, its own slot arena), so per-image logits and
/// accounting are bit-identical to run_fast_path_batched() by construction,
/// and warm runs allocate nothing. Degrades to the sequential kernel on
/// pool.arena(0) when fewer than two slices make sense. Acquires the pool
/// for the whole run; concurrent callers serialize.
void run_fast_path_batched_parallel(const ir::LayerProgram& program,
                                    const FastPrepared& prep,
                                    common::TaskPool& pool,
                                    const TensorI* codes, std::size_t batch,
                                    std::size_t begin, std::size_t end,
                                    TensorI* boundary_codes,
                                    AccelRunResult* results,
                                    std::size_t threads);

}  // namespace rsnn::hw
