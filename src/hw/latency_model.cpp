#include "hw/latency_model.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace rsnn::hw {

std::int64_t conv_row_fetch_cycles(std::int64_t iw, const TimingParams& timing,
                                   int active_units) {
  RSNN_REQUIRE(iw > 0 && active_units >= 1);
  const std::int64_t fetch = ceil_div(iw, timing.act_read_bits_per_cycle);
  const std::int64_t contention =
      ceil_div(active_units, timing.act_read_ports);
  return fetch * contention;
}

LayerLatency conv_latency(const ConvDims& dims, const AcceleratorConfig& cfg,
                          int time_steps, WeightPlacement placement,
                          int weight_bits) {
  RSNN_REQUIRE(dims.cin > 0 && dims.cout > 0 && dims.kernel > 0);
  RSNN_REQUIRE(dims.kernel <= cfg.conv.kernel_rows,
               "kernel " << dims.kernel << " exceeds unit rows "
                         << cfg.conv.kernel_rows);
  const TimingParams& t = cfg.timing;
  LayerLatency lat;

  const std::int64_t ow = dims.ow();
  const std::int64_t X = cfg.conv.array_columns;

  lat.channels_per_unit = std::clamp<std::int64_t>(X / ow, 1, dims.cout);
  lat.tiles = ow > X ? ceil_div(ow, X) : 1;
  const std::int64_t parallel_channels =
      cfg.num_conv_units * lat.channels_per_unit;
  lat.groups = ceil_div(dims.cout, parallel_channels);

  // Port contention: only units that actually hold output channels fetch
  // rows (a layer narrower than the unit complement leaves units idle).
  const std::int64_t busy_slices_total =
      ceil_div(dims.cout, lat.channels_per_unit);
  const int contending_units = static_cast<int>(std::min<std::int64_t>(
      cfg.num_conv_units, busy_slices_total));
  const std::int64_t fetch =
      conv_row_fetch_cycles(dims.iw, t, contending_units);
  lat.row_period = std::max<std::int64_t>(dims.kernel, fetch);

  const std::int64_t rows_streamed = dims.ih + 2 * dims.padding;
  const std::int64_t pass_cycles =
      t.pass_setup_cycles + rows_streamed * lat.row_period;
  const std::int64_t passes_per_slice =
      static_cast<std::int64_t>(time_steps) * dims.cin * lat.tiles;

  // Groups execute sequentially; units within a group run in lockstep, so a
  // group phase costs one slice's passes. Writeback: each (channel, output
  // row, tile) segment is stored once.
  lat.compute_cycles =
      t.layer_setup_cycles + lat.groups * passes_per_slice * pass_cycles;

  // Busy unit-slices across all groups (the last group may be partial).
  const std::int64_t busy_slices = busy_slices_total;
  lat.writeback_cycles =
      dims.cout * dims.oh() * lat.tiles * t.writeback_cycles_per_row;

  // Parameter traffic: each output channel's Kr*Kc kernel streams through
  // its adder rows once per pass.
  lat.traffic.weight_read_bits =
      passes_per_slice * dims.kernel * dims.kernel * dims.cout * weight_bits;
  const std::int64_t bias_bits = time_steps + weight_bits + 16;
  const std::int64_t layer_param_bits =
      dims.cout * dims.cin * dims.kernel * dims.kernel * weight_bits +
      dims.cout * bias_bits;
  if (placement == WeightPlacement::kDram) {
    lat.traffic.dram_bits = layer_param_bits;
    lat.dram_cycles = cfg.memory.dram_setup_cycles +
                      ceil_div(layer_param_bits, cfg.memory.dram_bits_per_cycle);
  }

  // Activation traffic: every busy unit-slice reads each real input row once
  // per pass (the row-reuse property of the dataflow); each output bit is
  // written exactly once.
  lat.traffic.act_read_bits =
      busy_slices * passes_per_slice * dims.ih * dims.iw;
  lat.traffic.act_write_bits =
      dims.cout * dims.oh() * dims.ow() * time_steps;

  lat.total_cycles = lat.dram_cycles + lat.compute_cycles + lat.writeback_cycles;
  return lat;
}

LayerLatency pool_latency(std::int64_t channels, std::int64_t ih,
                          std::int64_t iw, std::int64_t kernel,
                          const AcceleratorConfig& cfg, int time_steps) {
  RSNN_REQUIRE(channels > 0 && kernel > 0);
  RSNN_REQUIRE(kernel <= cfg.pool.kernel_rows, "pool kernel exceeds unit rows");
  const TimingParams& t = cfg.timing;
  LayerLatency lat;

  const std::int64_t ow = iw / kernel;
  const std::int64_t X = cfg.pool.array_columns;
  lat.channels_per_unit = std::clamp<std::int64_t>(X / ow, 1, channels);
  lat.tiles = ow > X ? ceil_div(ow, X) : 1;
  // There is a single pooling unit (paper Sec. IV-C: "pooling and linear
  // units are not duplicated").
  lat.groups = ceil_div(channels, lat.channels_per_unit);

  // Each pooled channel segment consumes its own channel's rows, so the
  // fetch cost scales with the number of channels sharing the unit.
  const std::int64_t fetch = lat.channels_per_unit *
                             conv_row_fetch_cycles(iw, t, /*active_units=*/1);
  lat.row_period = std::max<std::int64_t>(kernel, fetch);

  const std::int64_t pass_cycles = t.pass_setup_cycles + ih * lat.row_period;
  const std::int64_t passes_per_slice =
      static_cast<std::int64_t>(time_steps) * lat.tiles;

  const std::int64_t oh = ih / kernel;
  lat.compute_cycles =
      t.layer_setup_cycles + lat.groups * passes_per_slice * pass_cycles;
  lat.writeback_cycles = channels * oh * lat.tiles * t.writeback_cycles_per_row;

  lat.traffic.act_read_bits = passes_per_slice * channels * ih * iw;
  lat.traffic.act_write_bits = channels * oh * ow * time_steps;

  lat.total_cycles = lat.compute_cycles + lat.writeback_cycles;
  return lat;
}

LayerLatency linear_latency(std::int64_t in_features, std::int64_t out_features,
                            const AcceleratorConfig& cfg, int time_steps,
                            WeightPlacement placement, int weight_bits) {
  RSNN_REQUIRE(in_features > 0 && out_features > 0);
  const TimingParams& t = cfg.timing;
  LayerLatency lat;

  // One weight-memory fetch feeds `lanes` adders per cycle; every (input
  // neuron, output lane group) pair costs one cycle, repeated per time step
  // (paper: "almost all computations are replicated for each time step").
  lat.groups = ceil_div(out_features, cfg.linear.lanes);
  lat.channels_per_unit = cfg.linear.lanes;
  lat.tiles = 1;
  lat.row_period = 1;

  lat.compute_cycles = t.layer_setup_cycles +
                       static_cast<std::int64_t>(time_steps) * in_features *
                           lat.groups;

  const std::int64_t bias_bits = time_steps + weight_bits + 16;
  const std::int64_t layer_param_bits =
      in_features * out_features * weight_bits + out_features * bias_bits;
  lat.traffic.weight_read_bits = static_cast<std::int64_t>(time_steps) *
                                 in_features * out_features * weight_bits;
  if (placement == WeightPlacement::kDram) {
    lat.traffic.dram_bits = layer_param_bits;
    lat.dram_cycles = cfg.memory.dram_setup_cycles +
                      ceil_div(layer_param_bits, cfg.memory.dram_bits_per_cycle);
  }

  lat.traffic.act_read_bits =
      static_cast<std::int64_t>(time_steps) * in_features;
  lat.traffic.act_write_bits =
      static_cast<std::int64_t>(time_steps) * out_features;
  lat.writeback_cycles = ceil_div(
      out_features * time_steps, t.act_read_bits_per_cycle);

  lat.total_cycles = lat.dram_cycles + lat.compute_cycles + lat.writeback_cycles;
  return lat;
}

std::int64_t flatten_transfer_cycles(std::int64_t numel, int time_steps,
                                     const TimingParams& timing) {
  RSNN_REQUIRE(numel > 0);
  return ceil_div(numel * time_steps, timing.act_read_bits_per_cycle);
}

std::int64_t inter_device_transfer_cycles(std::int64_t bits,
                                          std::int64_t link_bits_per_cycle,
                                          std::int64_t setup_cycles) {
  RSNN_REQUIRE(bits >= 0 && link_bits_per_cycle > 0 && setup_cycles >= 0);
  if (bits == 0) return 0;
  return setup_cycles + ceil_div(bits, link_bits_per_cycle);
}

std::int64_t naive_conv_act_reads_bits(const ConvDims& dims, int time_steps) {
  // Sliding-window dataflow: each output pixel individually fetches its
  // Kr x Kc x Cin window, for every output channel and time step.
  return dims.oh() * dims.ow() * dims.kernel * dims.kernel * dims.cin *
         dims.cout * static_cast<std::int64_t>(time_steps);
}

}  // namespace rsnn::hw
