// Accumulator bit-width sizing.
//
// The paper stores partial sums "at full integer precision"; on an FPGA the
// adder/pipeline width is a synthesis parameter that directly costs LUTs
// and FFs (see resource_model). This analysis computes the exact worst-case
// accumulator range of every layer from the quantized weights:
//
//   per time step, the most positive partial sum is the sum of positive
//   kernel weights over the receptive field (all those inputs spiking) and
//   the most negative is the sum of negative weights; the radix left shift
//   over T steps multiplies both by (2^T - 1); the bias is added once.
//
// The result feeds ConvUnitGeometry::accumulator_bits via the compiler's
// opt-in `size_accumulators` switch.
#pragma once

#include <vector>

#include "quant/qnetwork.hpp"

namespace rsnn::hw {

struct AccumulatorRange {
  std::int64_t min_value = 0;  ///< most negative reachable accumulator
  std::int64_t max_value = 0;  ///< most positive reachable accumulator
  int required_bits = 1;       ///< two's-complement bits incl. sign
};

/// Worst-case range of one convolution layer's output-logic accumulator
/// (includes the T-step radix weighting and the bias).
AccumulatorRange conv_accumulator_range(const quant::QConv2d& conv,
                                        int time_steps);

/// Worst-case range of one fully-connected layer's accumulator.
AccumulatorRange linear_accumulator_range(const quant::QLinear& fc,
                                          int time_steps);

/// Worst-case range of the pooling accumulator (unsigned spike counts).
AccumulatorRange pool_accumulator_range(const quant::QPool2d& pool,
                                        int time_steps);

/// Range per layer, in network order (flatten entries have zero range).
std::vector<AccumulatorRange> network_accumulator_ranges(
    const quant::QuantizedNetwork& qnet);

/// The widest requirement across all conv layers / all linear layers /
/// the pooling path — what the respective unit must be synthesized with.
struct AccumulatorPlan {
  int conv_bits = 1;
  int pool_bits = 1;
  int linear_bits = 1;
};
AccumulatorPlan plan_accumulators(const quant::QuantizedNetwork& qnet);

}  // namespace rsnn::hw
