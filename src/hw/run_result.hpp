// Execution records shared by every simulator path (stepped, fast, analytic)
// and by the engines layered above them. Split out of accelerator.hpp so the
// fast-path kernels (hw/fast_path) can produce results without pulling in the
// unit simulators.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/latency_model.hpp"

namespace rsnn::hw {

/// Per-layer execution record.
struct LayerStats {
  std::string name;
  std::int64_t cycles = 0;
  std::int64_t dram_cycles = 0;
  std::int64_t adder_ops = 0;        ///< fired additions (activity factor)
  std::int64_t input_spikes = 0;
  MemTraffic traffic;                ///< weight traffic in bits
};

/// Result of one inference on the accelerator. For segment-scoped runs
/// (`run_codes_range` stopping short of the final op) `logits` stays empty
/// and `predicted_class` -1; totals and per-layer stats cover only the
/// executed range.
struct AccelRunResult {
  std::vector<std::int64_t> logits;
  int predicted_class = -1;
  std::int64_t total_cycles = 0;
  double latency_us = 0.0;
  std::vector<LayerStats> layers;
  std::int64_t total_adder_ops = 0;
  std::int64_t dram_bits = 0;
  MemTraffic traffic_total;
};

/// Clear a result for reuse without releasing its storage: the logits and
/// per-layer vectors keep their capacity, so refilling a warm result
/// performs no allocation (layer names are short enough for SSO).
void reset_run_result(AccelRunResult& result);

/// Fold the stats of one program segment into an aggregate: totals sum,
/// per-layer records append in op order. Logits, predicted class and latency
/// are untouched — call finalize_run() once every segment is merged.
void merge_segment_result(AccelRunResult& aggregate, AccelRunResult&& part);

/// Recompute latency_us (total cycles at `cycle_ns`) and predicted_class
/// (logit argmax; -1 while logits are empty).
void finalize_run(AccelRunResult& result, double cycle_ns);

/// Fold one layer record into the result's totals and per-layer list.
void accumulate_layer(AccelRunResult& result, LayerStats&& stats);

}  // namespace rsnn::hw
