// PoolUnit: cycle-accurate simulator of the row-based average pooling unit.
//
// Structurally a convolution unit without kernel storage (paper Sec. III-B):
// the adders simply count spikes in each k x k window, the output logic
// accumulates over time steps with the radix left shift and divides by the
// window area with a right shift (k is a power of two). There is exactly one
// pooling unit in the design and it is never duplicated.
//
// Unlike convolution, each channel segment sharing the array needs its own
// channel's input row, so the row fetch cost scales with the channel share.
#pragma once

#include <cstdint>
#include <vector>

#include "encoding/spike_train.hpp"
#include "hw/arch.hpp"
#include "hw/latency_model.hpp"
#include "quant/qnetwork.hpp"
#include "tensor/tensor.hpp"

namespace rsnn::hw {

struct PoolSliceResult {
  std::int64_t cycles = 0;
  std::int64_t writeback_cycles = 0;
  std::int64_t adder_ops = 0;
  MemTraffic traffic;
};

class PoolUnit {
 public:
  PoolUnit(PoolUnitGeometry geometry, TimingParams timing);

  /// Pool channels `c_begin .. c_end-1` for all time steps, writing pooled
  /// activation codes into `out(c, oy, ox)`.
  PoolSliceResult run_layer_slice(const quant::QPool2d& pool,
                                  const encoding::SpikeTrain& input,
                                  std::int64_t c_begin, std::int64_t c_end,
                                  int time_steps, TensorI64& out);

  const PoolUnitGeometry& geometry() const { return geometry_; }

 private:
  PoolUnitGeometry geometry_;
  TimingParams timing_;
  std::vector<std::int64_t> membrane_;  ///< [local][oh][ow] window counters
};

}  // namespace rsnn::hw
