// LinearUnit: cycle-accurate simulator of the fully-connected engine.
//
// A single row of `lanes` adders (paper Sec. III-B): every clock cycle one
// weight-memory word supplies `lanes` weights — one per parallel output
// channel — which are accumulated if the current input neuron spiked.
// Iteration order is (time step, output lane group, input neuron); the
// output logic applies the radix left shift between time steps and the
// final bias + ReLU + requantization.
#pragma once

#include <cstdint>
#include <vector>

#include "encoding/spike_train.hpp"
#include "hw/arch.hpp"
#include "hw/latency_model.hpp"
#include "quant/qnetwork.hpp"
#include "tensor/tensor.hpp"

namespace rsnn::hw {

struct LinearRunResult {
  std::int64_t cycles = 0;
  std::int64_t writeback_cycles = 0;
  std::int64_t adder_ops = 0;
  std::int64_t weight_fetches = 0;  ///< weight-memory words fetched
  MemTraffic traffic;
};

class LinearUnit {
 public:
  LinearUnit(LinearUnitGeometry geometry, TimingParams timing);

  /// Run a full fully-connected layer; writes requantized codes (or raw
  /// accumulators for the final layer) into `out`.
  LinearRunResult run_layer(const quant::QLinear& fc,
                            const encoding::SpikeTrain& input, int time_steps,
                            TensorI64& out);

  const LinearUnitGeometry& geometry() const { return geometry_; }

 private:
  LinearUnitGeometry geometry_;
  TimingParams timing_;
  std::vector<std::int32_t> weight_t_;  ///< [in][out] transposed weights
  std::vector<std::int64_t> membrane_;  ///< [out] accumulators
};

}  // namespace rsnn::hw
