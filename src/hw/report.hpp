// Run reporting: human-readable per-layer breakdowns, CSV export and derived
// efficiency metrics (energy per inference, effective synaptic-op rate) for
// accelerator runs. This is tooling around the simulator, not part of the
// modeled hardware.
#pragma once

#include <string>

#include "hw/accelerator.hpp"
#include "hw/power_model.hpp"
#include "hw/resource_model.hpp"

namespace rsnn::hw {

/// Derived whole-run metrics.
struct RunMetrics {
  double latency_us = 0.0;
  double throughput_fps = 0.0;
  double energy_mj = 0.0;           ///< power * latency, millijoules
  double synaptic_ops_per_second = 0.0;
  double avg_adder_utilization = 0.0;  ///< fired adds / (adders * cycles)
};

RunMetrics compute_metrics(const AcceleratorConfig& config,
                           const AccelRunResult& run,
                           const PowerBreakdown& power);

/// Multi-line per-layer report: cycles, DRAM stalls, spikes, adder ops,
/// memory traffic.
std::string layer_report(const AccelRunResult& run);

/// One CSV line per layer, with header. Columns:
/// layer,kind,cycles,dram_cycles,input_spikes,adder_ops,act_read_bits,
/// act_write_bits,weight_read_bits,dram_bits
std::string layer_csv(const AccelRunResult& run);

/// Compact one-paragraph summary of a run on a design.
std::string run_summary(const AcceleratorConfig& config,
                        const AccelRunResult& run,
                        const ResourceEstimate& resources,
                        const PowerBreakdown& power);

}  // namespace rsnn::hw
