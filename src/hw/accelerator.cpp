#include "hw/accelerator.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <exception>
#include <iterator>
#include <mutex>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "encoding/radix.hpp"

namespace rsnn::hw {
namespace {

/// Spike count of an activation-code tensor (popcount of all codes).
std::int64_t code_spikes(const TensorI64& codes) {
  std::int64_t spikes = 0;
  const std::int64_t* data = codes.data();
  for (std::int64_t i = 0; i < codes.numel(); ++i)
    spikes += std::popcount(static_cast<std::uint64_t>(data[i]));
  return spikes;
}

ir::LayerProgram lower_checked(const quant::QuantizedNetwork& qnet,
                               const AcceleratorConfig& config) {
  RSNN_REQUIRE(!qnet.layers.empty(), "empty network");
  return ir::lower(qnet, config);
}

}  // namespace

Accelerator::WorkerState::WorkerState(const ir::LayerProgram& program)
    : owner(&program),
      conv_unit(program.config().conv, program.config().timing),
      pool_unit(program.config().pool, program.config().timing),
      linear_unit(program.config().linear, program.config().timing),
      buffer2d("act2d", program.buffer_plan().buffer2d_bits_each),
      buffer1d("act1d", program.buffer_plan().buffer1d_bits_each) {
  layer_out.reserve(program.size());
  for (const ir::LayerOp& op : program.ops())
    layer_out.push_back(op.kind == ir::OpKind::kFlatten ? TensorI64()
                                                        : TensorI64(op.out_shape));
}

Accelerator::Accelerator(AcceleratorConfig config,
                         const quant::QuantizedNetwork& qnet)
    : program_(lower_checked(qnet, config)) {}

Accelerator::Accelerator(ir::LayerProgram program)
    : program_(std::move(program)) {
  RSNN_REQUIRE(program_.has_hw_annotations(),
               "Accelerator needs a hardware-lowered program");
  RSNN_REQUIRE(!program_.ops().empty(), "empty network");
}

AccelRunResult Accelerator::run_image(const TensorF& image, SimMode mode) const {
  return run_codes(quant::encode_activations(image, program_.time_bits()), mode);
}

AccelRunResult Accelerator::run_codes(const TensorI& codes, SimMode mode) const {
  return run_codes_range(codes, 0, program_.size(), mode);
}

AccelRunResult Accelerator::run_codes(WorkerState& state, const TensorI& codes,
                                      SimMode mode) const {
  return run_codes_range(state, codes, 0, program_.size(), mode);
}

AccelRunResult Accelerator::run_codes_range(WorkerState& state,
                                            const TensorI& codes,
                                            std::size_t begin, std::size_t end,
                                            SimMode mode,
                                            TensorI* boundary_codes) const {
  RSNN_REQUIRE(state.owner == &program_,
               "WorkerState belongs to a different accelerator (create it "
               "with this accelerator's make_worker_state())");
  RSNN_REQUIRE(begin < end && end <= program_.size(),
               "op range [" << begin << ", " << end << ") outside [0, "
                            << program_.size() << ")");
  RSNN_REQUIRE(codes.shape() == program_.op(begin).in_shape,
               "input shape mismatch for op " << begin);
  switch (mode) {
    case SimMode::kAnalytic:
      return use_fast_path(mode)
                 ? run_fast(state, codes, begin, end, boundary_codes)
                 : run_analytic(codes, begin, end, boundary_codes);
    case SimMode::kStepped:
      return run_stepped(state, codes, begin, end, boundary_codes);
    case SimMode::kCycleAccurate:
      break;
  }
  return use_fast_path(mode)
             ? run_fast(state, codes, begin, end, boundary_codes)
             : run_stepped(state, codes, begin, end, boundary_codes);
}

void Accelerator::run_codes_into(WorkerState& state, const TensorI& codes,
                                 AccelRunResult& out, SimMode mode) const {
  if (!use_fast_path(mode)) {
    out = run_codes(state, codes, mode);
    return;
  }
  RSNN_REQUIRE(state.owner == &program_,
               "WorkerState belongs to a different accelerator (create it "
               "with this accelerator's make_worker_state())");
  RSNN_REQUIRE(codes.shape() == program_.op(0).in_shape,
               "input shape mismatch for op 0");
  reset_run_result(out);
  run_fast_path(program_, fast_prepared(), state.fast_arena, codes, 0,
                program_.size(), nullptr, out);
}

void Accelerator::run_codes_batched_into(WorkerState& state,
                                         const TensorI* codes,
                                         std::size_t batch,
                                         AccelRunResult* results,
                                         SimMode mode) const {
  if (batch == 0) return;
  if (!use_fast_path(mode) || batch == 1) {
    for (std::size_t b = 0; b < batch; ++b)
      run_codes_into(state, codes[b], results[b], mode);
    return;
  }
  RSNN_REQUIRE(state.owner == &program_,
               "WorkerState belongs to a different accelerator (create it "
               "with this accelerator's make_worker_state())");
  for (std::size_t b = 0; b < batch; ++b) {
    RSNN_REQUIRE(codes[b].shape() == program_.op(0).in_shape,
                 "input shape mismatch for op 0 (batch element " << b << ")");
    reset_run_result(results[b]);
  }
  // fast_path.threads: 1 = sequential batched kernel on the worker's own
  // arena; 0 = one slice per hardware thread; N = at most N slices. The
  // parallel kernel runs the same per-slice code, so results stay
  // bit-identical per image either way.
  const int requested = program_.config().fast_path.threads;
  const std::size_t threads =
      requested == 1
          ? 1
          : (requested <= 0
                 ? std::max(1u, std::thread::hardware_concurrency())
                 : static_cast<std::size_t>(requested));
  if (threads > 1 && batch > 1) {
    run_fast_path_batched_parallel(program_, fast_prepared(),
                                   common::shared_task_pool(), codes, batch, 0,
                                   program_.size(), nullptr, results, threads);
    return;
  }
  run_fast_path_batched(program_, fast_prepared(), state.fast_arena, codes,
                        batch, 0, program_.size(), nullptr, results);
}

const FastPrepared& Accelerator::fast_prepared() const {
  FastCache& cache = *fast_cache_;
  std::call_once(cache.once,
                 [&] { cache.prepared = shared_fast_prepared(program_); });
  return *cache.prepared;
}

std::shared_ptr<const FastPrepared> Accelerator::fast_prepared_shared() const {
  fast_prepared();  // resolve through the process-wide cache
  return fast_cache_->prepared;
}

AccelRunResult Accelerator::run_fast(WorkerState& state, const TensorI& codes,
                                     std::size_t begin, std::size_t end,
                                     TensorI* boundary_codes) const {
  AccelRunResult result;
  run_fast_path(program_, fast_prepared(), state.fast_arena, codes, begin, end,
                boundary_codes, result);
  return result;
}

AccelRunResult Accelerator::run_codes_range(const TensorI& codes,
                                            std::size_t begin, std::size_t end,
                                            SimMode mode,
                                            TensorI* boundary_codes) const {
  if (mode == SimMode::kAnalytic) {
    RSNN_REQUIRE(begin < end && end <= program_.size(),
                 "op range [" << begin << ", " << end << ") outside [0, "
                              << program_.size() << ")");
    if (!use_fast_path(mode))
      return run_analytic(codes, begin, end, boundary_codes);
    // Analytic on the fast path needs only activation scratch, not the unit
    // simulators — a transient arena avoids the full WorkerState build.
    RSNN_REQUIRE(codes.shape() == program_.op(begin).in_shape,
                 "input shape mismatch for op " << begin);
    common::Arena arena;
    AccelRunResult result;
    run_fast_path(program_, fast_prepared(), arena, codes, begin, end,
                  boundary_codes, result);
    return result;
  }
  WorkerState state = make_worker_state();
  return run_codes_range(state, codes, begin, end, mode, boundary_codes);
}

std::vector<AccelRunResult> Accelerator::run_batch(
    const std::vector<TensorF>& images, SimMode mode, int num_threads) const {
  std::vector<TensorI> codes;
  codes.reserve(images.size());
  for (const TensorF& image : images)
    codes.push_back(quant::encode_activations(image, program_.time_bits()));
  return run_batch_codes(codes, mode, num_threads);
}

std::vector<AccelRunResult> Accelerator::run_batch_codes(
    const std::vector<TensorI>& codes, SimMode mode, int num_threads) const {
  std::vector<AccelRunResult> results(codes.size());
  if (codes.empty()) return results;

  std::size_t workers = num_threads > 0
                            ? static_cast<std::size_t>(num_threads)
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, codes.size());

  if (workers <= 1) {
    WorkerState state = make_worker_state();
    for (std::size_t i = 0; i < codes.size(); ++i)
      results[i] = run_codes(state, codes[i], mode);
    return results;
  }

  // Dynamic work distribution: each worker pulls the next image index. Every
  // worker owns its own unit simulators and scratch, so the workers share
  // only the (read-only) program.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto worker = [&]() {
    WorkerState state = make_worker_state();
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= codes.size()) return;
      try {
        results[i] = run_codes(state, codes[i], mode);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(codes.size());  // drain the queue: fail fast, not at the end
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  try {
    for (std::size_t w = 0; w + 1 < workers; ++w) threads.emplace_back(worker);
  } catch (...) {
    // Thread creation failed (resource exhaustion): drain the queue so the
    // already-running workers finish, join them, then surface the error.
    next.store(codes.size());
    for (std::thread& thread : threads) thread.join();
    throw;
  }
  worker();  // the calling thread participates
  for (std::thread& thread : threads) thread.join();
  if (error) std::rethrow_exception(error);
  return results;
}

AccelRunResult Accelerator::run_stepped(WorkerState& state,
                                        const TensorI& codes,
                                        std::size_t begin, std::size_t end,
                                        TensorI* boundary_codes) const {
  const int T = program_.time_bits();
  const AcceleratorConfig& cfg = program_.config();
  AccelRunResult result;
  result.layers.reserve(end - begin);

  state.buffer2d.reset();
  state.buffer1d.reset();
  WeightMemory weights(cfg.memory);

  encoding::SpikeTrain* current = &state.train_a;
  encoding::SpikeTrain* next = &state.train_b;
  encoding::radix_encode_codes_into(codes, T, *current);
  // Mid-program entry (a pipeline stage downstream of the flatten) lands in
  // the 1-D buffer pair; everything else starts in the 2-D pair.
  PingPongPair& entry_pair =
      ir::entry_is_1d(program_, begin) ? state.buffer1d : state.buffer2d;
  entry_pair.store_output(activation_bits(current->neuron_shape(), T));
  entry_pair.swap();

  const std::size_t n_layers = program_.network().layers.size();
  for (std::size_t li = begin; li < end; ++li) {
    const ir::LayerOp& op = program_.op(li);
    // The program may be a segment-scoped sub-program, so "final" means the
    // network's last layer (the raw-logit layer), not the last op executed.
    const bool network_final =
        static_cast<std::size_t>(op.layer_index) + 1 == n_layers;
    LayerStats stats;
    stats.name = op.name();
    stats.input_spikes = current->total_spikes();

    const WeightFetchCost fetch = weights.fetch_layer(op.param_bits, op.placement);
    stats.dram_cycles = fetch.cycles;
    stats.traffic.dram_bits = fetch.dram_bits;

    TensorI64& out = state.layer_out[li];

    switch (op.kind) {
      case ir::OpKind::kConv: {
        const quant::QConv2d& conv = *op.conv;
        const std::int64_t share = op.latency.channels_per_unit;
        const std::int64_t per_group = share * cfg.num_conv_units;
        // Only units that hold channels contend on the activation port (must
        // match the analytic model's contention rule).
        const int contending_units = op.contending_units;
        std::int64_t cycles = cfg.timing.layer_setup_cycles;
        std::int64_t writeback = 0;
        for (std::int64_t base = 0; base < conv.out_channels;
             base += per_group) {
          std::int64_t group_cycles = 0;
          for (int u = 0; u < cfg.num_conv_units; ++u) {
            const std::int64_t oc_begin = base + u * share;
            if (oc_begin >= conv.out_channels) break;
            const std::int64_t oc_end =
                std::min(oc_begin + share, conv.out_channels);
            const ConvSliceResult slice = state.conv_unit.run_layer_slice(
                conv, *current, oc_begin, oc_end, T, contending_units, out);
            group_cycles = std::max(group_cycles, slice.cycles);
            writeback += slice.writeback_cycles;
            stats.adder_ops += slice.adder_ops;
            stats.traffic.act_read_bits += slice.traffic.act_read_bits;
            stats.traffic.act_write_bits += slice.traffic.act_write_bits;
            stats.traffic.weight_read_bits +=
                slice.traffic.weight_read_bits * program_.weight_bits();
          }
          cycles += group_cycles;
        }
        stats.cycles = fetch.cycles + cycles + writeback;
        break;
      }
      case ir::OpKind::kPool: {
        const std::int64_t channels = op.in_shape.dim(0);
        const std::int64_t share = op.latency.channels_per_unit;
        std::int64_t cycles = cfg.timing.layer_setup_cycles;
        std::int64_t writeback = 0;
        for (std::int64_t base = 0; base < channels; base += share) {
          const std::int64_t c_end = std::min(base + share, channels);
          const PoolSliceResult slice = state.pool_unit.run_layer_slice(
              *op.pool, *current, base, c_end, T, out);
          cycles += slice.cycles;
          writeback += slice.writeback_cycles;
          stats.adder_ops += slice.adder_ops;
          stats.traffic.act_read_bits += slice.traffic.act_read_bits;
          stats.traffic.act_write_bits += slice.traffic.act_write_bits;
        }
        stats.cycles = cycles + writeback;
        break;
      }
      case ir::OpKind::kLinear: {
        const LinearRunResult run =
            state.linear_unit.run_layer(*op.linear, *current, T, out);
        stats.cycles = fetch.cycles + cfg.timing.layer_setup_cycles +
                       run.cycles + run.writeback_cycles;
        stats.adder_ops = run.adder_ops;
        stats.traffic.act_read_bits = run.traffic.act_read_bits;
        stats.traffic.act_write_bits = run.traffic.act_write_bits;
        stats.traffic.weight_read_bits =
            run.traffic.weight_read_bits * program_.weight_bits();
        break;
      }
      case ir::OpKind::kFlatten: {
        // Flatten: stream the feature map from the 2-D to the 1-D buffers.
        // The packed layout depends only on the flat neuron index, so the
        // transfer is a relabeling of the same bits.
        stats.cycles = op.latency.total_cycles;
        *current = std::move(*current).reshaped(op.out_shape);
        state.buffer1d.store_output(activation_bits(op.out_shape, T));
        state.buffer1d.swap();
        result.layers.push_back(stats);
        result.total_cycles += stats.cycles;
        if (li + 1 == end && boundary_codes != nullptr)
          *boundary_codes = encoding::radix_decode_codes(*current);
        continue;
      }
    }

    // Buffer bookkeeping for the layer's I/O.
    PingPongPair& pair = op.is_1d ? state.buffer1d : state.buffer2d;
    pair.load_input(stats.traffic.act_read_bits);
    pair.store_output(activation_bits(op.out_shape, T));
    pair.swap();

    if (network_final) {
      RSNN_ENSURE(!op.requantize, "final layer must produce raw accumulators");
      result.logits = out.to_vector();
    } else {
      RSNN_ENSURE(op.requantize,
                  "only the final layer may skip requantization");
      if (li + 1 == end) {
        // Segment boundary: the requantized codes cross the cut instead of
        // being re-encoded for a next op on this device.
        if (boundary_codes != nullptr)
          *boundary_codes = out.cast<std::int32_t>();
      } else {
        encoding::radix_encode_codes_into(out, T, *next);
        std::swap(current, next);
      }
    }

    result.total_cycles += stats.cycles;
    result.total_adder_ops += stats.adder_ops;
    result.dram_bits += stats.traffic.dram_bits;
    result.traffic_total.act_read_bits += stats.traffic.act_read_bits;
    result.traffic_total.act_write_bits += stats.traffic.act_write_bits;
    result.traffic_total.weight_read_bits += stats.traffic.weight_read_bits;
    result.traffic_total.dram_bits += stats.traffic.dram_bits;
    result.layers.push_back(std::move(stats));
  }

  finalize_run(result, cfg.cycle_ns());
  return result;
}

AccelRunResult Accelerator::run_analytic(const TensorI& codes,
                                         std::size_t begin, std::size_t end,
                                         TensorI* boundary_codes) const {
  AccelRunResult result;
  result.layers.reserve(end - begin);
  std::vector<TensorI64> layer_outputs;
  // Map program op positions to network layer indices: identical for a
  // whole-network program, offset for a segment-scoped sub-program.
  const auto [net_begin, net_end] = program_.network_range(begin, end);
  const TensorI64 final_out = program_.network().forward_layers(
      codes.cast<std::int64_t>(), net_begin, net_end, &layer_outputs);
  if (net_end == program_.network().layers.size()) {
    result.logits = final_out.to_vector();
  } else if (boundary_codes != nullptr) {
    *boundary_codes = final_out.cast<std::int32_t>();
  }

  const TensorI64 input_codes = codes.cast<std::int64_t>();
  const TensorI64* current = &input_codes;

  for (std::size_t li = begin; li < end; ++li) {
    const ir::LayerOp& op = program_.op(li);
    LayerStats stats;
    stats.name = op.name();
    stats.cycles = op.latency.total_cycles;
    stats.dram_cycles = op.latency.dram_cycles;
    stats.traffic = op.latency.traffic;
    stats.input_spikes = code_spikes(*current);
    // Exact activity: one fired addition per (spike, consuming adder) — the
    // same event count the cycle-accurate units and the functional SNN
    // produce (border spikes fan out to fewer adders).
    stats.adder_ops = ir::exact_adder_ops(op, *current);

    result.total_cycles += stats.cycles;
    result.total_adder_ops += stats.adder_ops;
    result.dram_bits += op.latency.traffic.dram_bits;
    result.traffic_total.act_read_bits += op.latency.traffic.act_read_bits;
    result.traffic_total.act_write_bits += op.latency.traffic.act_write_bits;
    result.traffic_total.weight_read_bits +=
        op.latency.traffic.weight_read_bits;
    result.traffic_total.dram_bits += op.latency.traffic.dram_bits;
    result.layers.push_back(std::move(stats));

    // Next layer's input codes are this layer's traced outputs (valid for
    // all but the final raw layer).
    if (li - begin < layer_outputs.size()) current = &layer_outputs[li - begin];
  }

  finalize_run(result, program_.config().cycle_ns());
  return result;
}

}  // namespace rsnn::hw
