#include "hw/accelerator.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <exception>
#include <mutex>
#include <thread>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/log.hpp"
#include "encoding/radix.hpp"

namespace rsnn::hw {
namespace {

using quant::QConv2d;
using quant::QFlatten;
using quant::QLinear;
using quant::QPool2d;

std::string layer_name(const quant::QLayer& layer) {
  if (std::holds_alternative<QConv2d>(layer)) return "conv";
  if (std::holds_alternative<QPool2d>(layer)) return "pool";
  if (std::holds_alternative<QLinear>(layer)) return "linear";
  return "flatten";
}

/// Spike count of an activation-code tensor (popcount of all codes).
std::int64_t code_spikes(const TensorI64& codes) {
  std::int64_t spikes = 0;
  const std::int64_t* data = codes.data();
  for (std::int64_t i = 0; i < codes.numel(); ++i)
    spikes += std::popcount(static_cast<std::uint64_t>(data[i]));
  return spikes;
}

}  // namespace

Accelerator::Accelerator(AcceleratorConfig config,
                         const quant::QuantizedNetwork& qnet)
    : config_(std::move(config)), qnet_(qnet) {
  RSNN_REQUIRE(!qnet.layers.empty(), "empty network");
  placement_ = plan_placement(qnet_, config_.memory);

  // Validate unit geometry and size the ping-pong buffers.
  Shape shape = qnet_.input_shape;
  std::int64_t max2d = activation_bits(shape, qnet_.time_bits);
  std::int64_t max1d = 0;
  bool flat = false;
  const auto shapes = qnet_.layer_output_shapes();
  for (std::size_t li = 0; li < qnet_.layers.size(); ++li) {
    const auto& layer = qnet_.layers[li];
    if (const auto* conv = std::get_if<QConv2d>(&layer)) {
      RSNN_REQUIRE(conv->kernel <= config_.conv.kernel_rows,
                   "conv kernel " << conv->kernel
                                  << " does not fit unit with Y = "
                                  << config_.conv.kernel_rows);
    } else if (const auto* pool = std::get_if<QPool2d>(&layer)) {
      RSNN_REQUIRE(pool->kernel <= config_.pool.kernel_rows,
                   "pool kernel does not fit pooling unit");
    } else if (std::holds_alternative<QFlatten>(layer)) {
      flat = true;
    }
    const std::int64_t bits = activation_bits(shapes[li], qnet_.time_bits);
    if (flat)
      max1d = std::max(max1d, bits);
    else
      max2d = std::max(max2d, bits);
  }
  buffer_plan_.buffer2d_bits_each = max2d;
  buffer_plan_.buffer1d_bits_each = std::max<std::int64_t>(max1d, 1);
}

bool Accelerator::uses_dram() const {
  return std::any_of(placement_.begin(), placement_.end(),
                     [](WeightPlacement p) { return p == WeightPlacement::kDram; });
}

LayerLatency Accelerator::layer_latency(std::size_t layer_index,
                                        const Shape& in_shape) const {
  const auto& layer = qnet_.layers[layer_index];
  const WeightPlacement placement = placement_[layer_index];
  if (const auto* conv = std::get_if<QConv2d>(&layer)) {
    ConvDims dims;
    dims.cin = conv->in_channels;
    dims.cout = conv->out_channels;
    dims.ih = in_shape.dim(1);
    dims.iw = in_shape.dim(2);
    dims.kernel = conv->kernel;
    dims.stride = conv->stride;
    dims.padding = conv->padding;
    return conv_latency(dims, config_, qnet_.time_bits, placement,
                        qnet_.weight_bits);
  }
  if (const auto* pool = std::get_if<QPool2d>(&layer)) {
    return pool_latency(in_shape.dim(0), in_shape.dim(1), in_shape.dim(2),
                        pool->kernel, config_, qnet_.time_bits);
  }
  if (const auto* fc = std::get_if<QLinear>(&layer)) {
    return linear_latency(fc->in_features, fc->out_features, config_,
                          qnet_.time_bits, placement, qnet_.weight_bits);
  }
  LayerLatency lat;
  lat.total_cycles = flatten_transfer_cycles(in_shape.numel(), qnet_.time_bits,
                                             config_.timing);
  lat.compute_cycles = lat.total_cycles;
  return lat;
}

std::int64_t Accelerator::predict_total_cycles() const {
  Shape shape = qnet_.input_shape;
  const auto shapes = qnet_.layer_output_shapes();
  std::int64_t cycles = 0;
  for (std::size_t li = 0; li < qnet_.layers.size(); ++li) {
    cycles += layer_latency(li, shape).total_cycles;
    shape = shapes[li];
  }
  return cycles;
}

double Accelerator::predict_latency_us() const {
  return static_cast<double>(predict_total_cycles()) * config_.cycle_ns() /
         1000.0;
}

AccelRunResult Accelerator::run_image(const TensorF& image, SimMode mode) const {
  return run_codes(quant::encode_activations(image, qnet_.time_bits), mode);
}

AccelRunResult Accelerator::run_codes(const TensorI& codes, SimMode mode) const {
  RSNN_REQUIRE(codes.shape() == qnet_.input_shape, "input shape mismatch");
  return mode == SimMode::kCycleAccurate ? run_cycle_accurate(codes)
                                         : run_analytic(codes);
}

std::vector<AccelRunResult> Accelerator::run_batch(
    const std::vector<TensorF>& images, SimMode mode, int num_threads) const {
  std::vector<TensorI> codes;
  codes.reserve(images.size());
  for (const TensorF& image : images)
    codes.push_back(quant::encode_activations(image, qnet_.time_bits));
  return run_batch_codes(codes, mode, num_threads);
}

std::vector<AccelRunResult> Accelerator::run_batch_codes(
    const std::vector<TensorI>& codes, SimMode mode, int num_threads) const {
  std::vector<AccelRunResult> results(codes.size());
  if (codes.empty()) return results;

  std::size_t workers = num_threads > 0
                            ? static_cast<std::size_t>(num_threads)
                            : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min(workers, codes.size());

  if (workers <= 1) {
    for (std::size_t i = 0; i < codes.size(); ++i)
      results[i] = run_codes(codes[i], mode);
    return results;
  }

  // Dynamic work distribution: each worker pulls the next image index. Every
  // run_codes call constructs its own processing units and buffers, so the
  // workers share only the (read-only) network, placement and config.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= codes.size()) return;
      try {
        results[i] = run_codes(codes[i], mode);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(codes.size());  // drain the queue: fail fast, not at the end
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  try {
    for (std::size_t w = 0; w + 1 < workers; ++w) threads.emplace_back(worker);
  } catch (...) {
    // Thread creation failed (resource exhaustion): drain the queue so the
    // already-running workers finish, join them, then surface the error.
    next.store(codes.size());
    for (std::thread& thread : threads) thread.join();
    throw;
  }
  worker();  // the calling thread participates
  for (std::thread& thread : threads) thread.join();
  if (error) std::rethrow_exception(error);
  return results;
}

AccelRunResult Accelerator::run_cycle_accurate(const TensorI& codes) const {
  const int T = qnet_.time_bits;
  AccelRunResult result;

  PingPongPair buffer2d("act2d", buffer_plan_.buffer2d_bits_each);
  PingPongPair buffer1d("act1d", buffer_plan_.buffer1d_bits_each);
  WeightMemory weights(config_.memory);

  ConvUnit conv_unit(config_.conv, config_.timing);
  PoolUnit pool_unit(config_.pool, config_.timing);
  LinearUnit linear_unit(config_.linear, config_.timing);

  encoding::SpikeTrain current = encoding::radix_encode_codes(codes, T);
  buffer2d.store_output(activation_bits(current.neuron_shape(), T));
  buffer2d.swap();

  const auto shapes = qnet_.layer_output_shapes();

  for (std::size_t li = 0; li < qnet_.layers.size(); ++li) {
    const auto& layer = qnet_.layers[li];
    LayerStats stats;
    stats.name = layer_name(layer);
    stats.input_spikes = current.total_spikes();

    const std::int64_t param_bits =
        layer_param_bits(layer, qnet_.weight_bits, qnet_.time_bits);
    const WeightFetchCost fetch =
        weights.fetch_layer(param_bits, placement_[li]);
    stats.dram_cycles = fetch.cycles;
    stats.traffic.dram_bits = fetch.dram_bits;

    TensorI64 out(shapes[li]);
    bool requantized = true;

    if (const auto* conv = std::get_if<QConv2d>(&layer)) {
      requantized = conv->requantize;
      const std::int64_t ow = shapes[li].dim(2);
      const std::int64_t share = std::clamp<std::int64_t>(
          config_.conv.array_columns / ow, 1, conv->out_channels);
      const std::int64_t per_group = share * config_.num_conv_units;
      // Only units that hold channels contend on the activation port (must
      // match the analytic model's contention rule).
      const int contending_units = static_cast<int>(std::min<std::int64_t>(
          config_.num_conv_units, ceil_div(conv->out_channels, share)));
      std::int64_t cycles = config_.timing.layer_setup_cycles;
      std::int64_t writeback = 0;
      for (std::int64_t base = 0; base < conv->out_channels; base += per_group) {
        std::int64_t group_cycles = 0;
        for (int u = 0; u < config_.num_conv_units; ++u) {
          const std::int64_t oc_begin = base + u * share;
          if (oc_begin >= conv->out_channels) break;
          const std::int64_t oc_end =
              std::min(oc_begin + share, conv->out_channels);
          const ConvSliceResult slice = conv_unit.run_layer_slice(
              *conv, current, oc_begin, oc_end, T, contending_units, out);
          group_cycles = std::max(group_cycles, slice.cycles);
          writeback += slice.writeback_cycles;
          stats.adder_ops += slice.adder_ops;
          stats.traffic.act_read_bits += slice.traffic.act_read_bits;
          stats.traffic.act_write_bits += slice.traffic.act_write_bits;
          stats.traffic.weight_read_bits +=
              slice.traffic.weight_read_bits * qnet_.weight_bits;
        }
        cycles += group_cycles;
      }
      stats.cycles = fetch.cycles + cycles + writeback;
    } else if (const auto* pool = std::get_if<QPool2d>(&layer)) {
      const std::int64_t channels = current.neuron_shape().dim(0);
      const std::int64_t ow = shapes[li].dim(2);
      const std::int64_t share = std::clamp<std::int64_t>(
          config_.pool.array_columns / ow, 1, channels);
      std::int64_t cycles = config_.timing.layer_setup_cycles;
      std::int64_t writeback = 0;
      for (std::int64_t base = 0; base < channels; base += share) {
        const std::int64_t c_end = std::min(base + share, channels);
        const PoolSliceResult slice =
            pool_unit.run_layer_slice(*pool, current, base, c_end, T, out);
        cycles += slice.cycles;
        writeback += slice.writeback_cycles;
        stats.adder_ops += slice.adder_ops;
        stats.traffic.act_read_bits += slice.traffic.act_read_bits;
        stats.traffic.act_write_bits += slice.traffic.act_write_bits;
      }
      stats.cycles = cycles + writeback;
    } else if (const auto* fc = std::get_if<QLinear>(&layer)) {
      requantized = fc->requantize;
      const LinearRunResult run = linear_unit.run_layer(*fc, current, T, out);
      stats.cycles = fetch.cycles + config_.timing.layer_setup_cycles +
                     run.cycles + run.writeback_cycles;
      stats.adder_ops = run.adder_ops;
      stats.traffic.act_read_bits = run.traffic.act_read_bits;
      stats.traffic.act_write_bits = run.traffic.act_write_bits;
      stats.traffic.weight_read_bits =
          run.traffic.weight_read_bits * qnet_.weight_bits;
    } else {
      // Flatten: stream the feature map from the 2-D to the 1-D buffers.
      // The packed layout depends only on the flat neuron index, so the
      // transfer is a relabeling of the same bits.
      stats.cycles = flatten_transfer_cycles(current.num_neurons(), T,
                                             config_.timing);
      current = std::move(current).reshaped(shapes[li]);
      buffer1d.store_output(activation_bits(shapes[li], T));
      buffer1d.swap();
      result.layers.push_back(stats);
      result.total_cycles += stats.cycles;
      continue;
    }

    // Buffer bookkeeping for the layer's I/O.
    const bool is_1d = shapes[li].rank() == 1;
    PingPongPair& pair = is_1d ? buffer1d : buffer2d;
    pair.load_input(stats.traffic.act_read_bits);
    pair.store_output(activation_bits(shapes[li], T));
    pair.swap();

    if (li + 1 == qnet_.layers.size()) {
      RSNN_ENSURE(!requantized, "final layer must produce raw accumulators");
      result.logits.resize(static_cast<std::size_t>(out.numel()));
      for (std::int64_t i = 0; i < out.numel(); ++i)
        result.logits[static_cast<std::size_t>(i)] = out.at_flat(i);
    } else {
      RSNN_ENSURE(requantized, "only the final layer may skip requantization");
      current = encoding::radix_encode_codes(out.cast<std::int32_t>(), T);
    }

    result.total_cycles += stats.cycles;
    result.total_adder_ops += stats.adder_ops;
    result.dram_bits += stats.traffic.dram_bits;
    result.traffic_total.act_read_bits += stats.traffic.act_read_bits;
    result.traffic_total.act_write_bits += stats.traffic.act_write_bits;
    result.traffic_total.weight_read_bits += stats.traffic.weight_read_bits;
    result.traffic_total.dram_bits += stats.traffic.dram_bits;
    result.layers.push_back(stats);
  }

  result.latency_us =
      static_cast<double>(result.total_cycles) * config_.cycle_ns() / 1000.0;
  int best = 0;
  for (std::size_t c = 1; c < result.logits.size(); ++c)
    if (result.logits[c] > result.logits[static_cast<std::size_t>(best)])
      best = static_cast<int>(c);
  result.predicted_class = best;
  return result;
}

AccelRunResult Accelerator::run_analytic(const TensorI& codes) const {
  AccelRunResult result;
  std::vector<TensorI64> layer_outputs;
  result.logits = qnet_.forward_traced(codes, &layer_outputs);

  Shape shape = qnet_.input_shape;
  const auto shapes = qnet_.layer_output_shapes();
  std::int64_t input_spikes = code_spikes(codes.cast<std::int64_t>());

  for (std::size_t li = 0; li < qnet_.layers.size(); ++li) {
    const LayerLatency lat = layer_latency(li, shape);
    LayerStats stats;
    stats.name = layer_name(qnet_.layers[li]);
    stats.cycles = lat.total_cycles;
    stats.dram_cycles = lat.dram_cycles;
    stats.traffic = lat.traffic;
    stats.input_spikes = input_spikes;

    // Activity estimate: every input spike fans out to the adders that
    // consume it (kernel window x output channels / stride^2 for conv).
    const auto& layer = qnet_.layers[li];
    if (const auto* conv = std::get_if<QConv2d>(&layer)) {
      const double fanout = static_cast<double>(conv->kernel * conv->kernel) *
                            static_cast<double>(conv->out_channels) /
                            static_cast<double>(conv->stride * conv->stride);
      stats.adder_ops =
          static_cast<std::int64_t>(static_cast<double>(input_spikes) * fanout);
    } else if (std::holds_alternative<QPool2d>(layer)) {
      stats.adder_ops = input_spikes;
    } else if (const auto* fc = std::get_if<QLinear>(&layer)) {
      stats.adder_ops = input_spikes * fc->out_features;
    }

    result.total_cycles += stats.cycles;
    result.total_adder_ops += stats.adder_ops;
    result.dram_bits += lat.traffic.dram_bits;
    result.traffic_total.act_read_bits += lat.traffic.act_read_bits;
    result.traffic_total.act_write_bits += lat.traffic.act_write_bits;
    result.traffic_total.weight_read_bits += lat.traffic.weight_read_bits;
    result.traffic_total.dram_bits += lat.traffic.dram_bits;
    result.layers.push_back(stats);

    // Next layer's input spikes = popcount of this layer's output codes
    // (valid for all but the final raw layer).
    if (li < layer_outputs.size() && li + 1 < qnet_.layers.size())
      input_spikes = code_spikes(layer_outputs[li]);
    shape = shapes[li];
  }

  result.latency_us =
      static_cast<double>(result.total_cycles) * config_.cycle_ns() / 1000.0;
  int best = 0;
  for (std::size_t c = 1; c < result.logits.size(); ++c)
    if (result.logits[c] > result.logits[static_cast<std::size_t>(best)])
      best = static_cast<int>(c);
  result.predicted_class = best;
  return result;
}

}  // namespace rsnn::hw
