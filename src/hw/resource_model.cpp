#include "hw/resource_model.hpp"

#include <sstream>

#include "hw/weight_memory.hpp"

namespace rsnn::hw {
namespace {

// Calibration (see header): the paper's Table II LeNet design
// ((X, Y) = (30, 5), pool (14, 2), 100 MHz) measured
//   units : 1     2     4     8
//   LUTs  : 11k   15k   24k   42k     -> ~4.4k LUTs per conv unit, ~6.5k base
//   FFs   : 10k   14k   23k   39k     -> ~4.1k FFs per conv unit, ~6.0k base
// With X*Y = 150 adders per unit, a 24-bit adder + its spike multiplexer
// comes to ~26 LUTs; pipeline and kernel registers dominate the FFs.
constexpr int kLutsPerAdderBit = 1;     // carry-chain LUT per accumulator bit
constexpr int kLutsPerMux = 2;          // spike multiplexer + kernel select
constexpr int kFfsPerAdderBit = 1;      // pipeline register bit per adder
constexpr int kLutsUnitControl = 450;   // per-unit FSM, address generation
constexpr int kFfsUnitControl = 300;
constexpr int kLutsPerOutputColumn = 8; // output-logic shifter/requantizer
constexpr int kFfsPerOutputColumn = 10;

constexpr int kLutsSharedControl = 3600;  // controller + buffer addressing
constexpr int kFfsSharedControl = 3400;

constexpr int kLutsDramSubsystem = 30000;  // memory controller + AXI
constexpr int kFfsDramSubsystem = 35000;

}  // namespace

ResourceEstimate conv_unit_resources(const ConvUnitGeometry& geometry) {
  ResourceEstimate r;
  const std::int64_t adders =
      static_cast<std::int64_t>(geometry.array_columns) * geometry.kernel_rows;
  const std::int64_t adder_luts =
      adders * (geometry.accumulator_bits * kLutsPerAdderBit + kLutsPerMux);
  const std::int64_t pipeline_ffs =
      adders * geometry.accumulator_bits * kFfsPerAdderBit;
  // Input shift register: one FF per tap position (stride-1 worst case),
  // sized 2x the column count to cover the kernel overhang.
  const std::int64_t shift_ffs = 2 * geometry.array_columns;
  // Kernel registers: Y rows x (kernel columns == Y) x weight word.
  const std::int64_t kernel_ffs =
      static_cast<std::int64_t>(geometry.kernel_rows) * geometry.kernel_rows * 8;
  r.luts = adder_luts + kLutsUnitControl +
           geometry.array_columns * kLutsPerOutputColumn;
  r.flip_flops = pipeline_ffs + shift_ffs + kernel_ffs + kFfsUnitControl +
                 geometry.array_columns * kFfsPerOutputColumn;
  return r;
}

ResourceEstimate pool_unit_resources(const PoolUnitGeometry& geometry) {
  ResourceEstimate r;
  const std::int64_t adders =
      static_cast<std::int64_t>(geometry.array_columns) * geometry.kernel_rows;
  // No kernel values: adders are popcount-style, narrower, no kernel regs.
  r.luts = adders * geometry.accumulator_bits / 2 + kLutsUnitControl / 2;
  r.flip_flops = adders * geometry.accumulator_bits / 2 + kFfsUnitControl / 2 +
                 2 * geometry.array_columns;
  return r;
}

ResourceEstimate linear_unit_resources(const LinearUnitGeometry& geometry,
                                       int weight_bits) {
  ResourceEstimate r;
  const std::int64_t adders = geometry.lanes;
  r.luts = adders * (geometry.accumulator_bits + weight_bits) +
           kLutsUnitControl;
  r.flip_flops = adders * geometry.accumulator_bits + kFfsUnitControl +
                 geometry.lanes * weight_bits;
  return r;
}

ResourceEstimate shared_control_resources() {
  return ResourceEstimate{kLutsSharedControl, kFfsSharedControl, 0};
}

ResourceEstimate dram_subsystem_resources() {
  return ResourceEstimate{kLutsDramSubsystem, kFfsDramSubsystem, 0};
}

ResourceEstimate design_resources(const AcceleratorConfig& config,
                                  const BufferPlan& buffer_plan,
                                  std::int64_t weight_bram_bits_used,
                                  bool uses_dram, int weight_bits) {
  ResourceEstimate total;
  const ResourceEstimate per_unit = conv_unit_resources(config.conv);
  for (int u = 0; u < config.num_conv_units; ++u) total += per_unit;
  total += pool_unit_resources(config.pool);
  total += linear_unit_resources(config.linear, weight_bits);
  total += shared_control_resources();
  if (uses_dram) total += dram_subsystem_resources();

  // BRAM: two ping-pong pairs (x2 buffers each) plus on-chip parameters.
  total.bram_bits = 2 * buffer_plan.buffer2d_bits_each +
                    2 * buffer_plan.buffer1d_bits_each + weight_bram_bits_used;
  return total;
}

ResourceEstimate estimate_resources(const Accelerator& accelerator) {
  std::int64_t on_chip_param_bits = 0;
  for (const ir::LayerOp& op : accelerator.program().ops()) {
    if (op.placement == WeightPlacement::kOnChip)
      on_chip_param_bits += op.param_bits;
  }
  return design_resources(accelerator.config(), accelerator.buffer_plan(),
                          on_chip_param_bits, accelerator.uses_dram(),
                          accelerator.network().weight_bits);
}

std::string to_string(const ResourceEstimate& estimate) {
  std::ostringstream os;
  os << estimate.luts / 1000 << "k LUTs, " << estimate.flip_flops / 1000
     << "k FFs, " << estimate.bram_bits / 8 / 1024 << " KiB BRAM";
  return os.str();
}

}  // namespace rsnn::hw
