#include "hw/resource_model.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "hw/weight_memory.hpp"

namespace rsnn::hw {
namespace {

// Calibration (see header): the paper's Table II LeNet design
// ((X, Y) = (30, 5), pool (14, 2), 100 MHz) measured
//   units : 1     2     4     8
//   LUTs  : 11k   15k   24k   42k     -> ~4.4k LUTs per conv unit, ~6.5k base
//   FFs   : 10k   14k   23k   39k     -> ~4.1k FFs per conv unit, ~6.0k base
// With X*Y = 150 adders per unit, a 24-bit adder + its spike multiplexer
// comes to ~26 LUTs; pipeline and kernel registers dominate the FFs.
constexpr int kLutsPerAdderBit = 1;     // carry-chain LUT per accumulator bit
constexpr int kLutsPerMux = 2;          // spike multiplexer + kernel select
constexpr int kFfsPerAdderBit = 1;      // pipeline register bit per adder
constexpr int kLutsUnitControl = 450;   // per-unit FSM, address generation
constexpr int kFfsUnitControl = 300;
constexpr int kLutsPerOutputColumn = 8; // output-logic shifter/requantizer
constexpr int kFfsPerOutputColumn = 10;

constexpr int kLutsSharedControl = 3600;  // controller + buffer addressing
constexpr int kFfsSharedControl = 3400;

constexpr int kLutsDramSubsystem = 30000;  // memory controller + AXI
constexpr int kFfsDramSubsystem = 35000;

}  // namespace

ResourceEstimate conv_unit_resources(const ConvUnitGeometry& geometry) {
  ResourceEstimate r;
  const std::int64_t adders =
      static_cast<std::int64_t>(geometry.array_columns) * geometry.kernel_rows;
  const std::int64_t adder_luts =
      adders * (geometry.accumulator_bits * kLutsPerAdderBit + kLutsPerMux);
  const std::int64_t pipeline_ffs =
      adders * geometry.accumulator_bits * kFfsPerAdderBit;
  // Input shift register: one FF per tap position (stride-1 worst case),
  // sized 2x the column count to cover the kernel overhang.
  const std::int64_t shift_ffs = 2 * geometry.array_columns;
  // Kernel registers: Y rows x (kernel columns == Y) x weight word.
  const std::int64_t kernel_ffs =
      static_cast<std::int64_t>(geometry.kernel_rows) * geometry.kernel_rows * 8;
  r.luts = adder_luts + kLutsUnitControl +
           geometry.array_columns * kLutsPerOutputColumn;
  r.flip_flops = pipeline_ffs + shift_ffs + kernel_ffs + kFfsUnitControl +
                 geometry.array_columns * kFfsPerOutputColumn;
  return r;
}

ResourceEstimate pool_unit_resources(const PoolUnitGeometry& geometry) {
  ResourceEstimate r;
  const std::int64_t adders =
      static_cast<std::int64_t>(geometry.array_columns) * geometry.kernel_rows;
  // No kernel values: adders are popcount-style, narrower, no kernel regs.
  r.luts = adders * geometry.accumulator_bits / 2 + kLutsUnitControl / 2;
  r.flip_flops = adders * geometry.accumulator_bits / 2 + kFfsUnitControl / 2 +
                 2 * geometry.array_columns;
  return r;
}

ResourceEstimate linear_unit_resources(const LinearUnitGeometry& geometry,
                                       int weight_bits) {
  ResourceEstimate r;
  const std::int64_t adders = geometry.lanes;
  r.luts = adders * (geometry.accumulator_bits + weight_bits) +
           kLutsUnitControl;
  r.flip_flops = adders * geometry.accumulator_bits + kFfsUnitControl +
                 geometry.lanes * weight_bits;
  return r;
}

ResourceEstimate shared_control_resources() {
  return ResourceEstimate{kLutsSharedControl, kFfsSharedControl, 0};
}

ResourceEstimate dram_subsystem_resources() {
  return ResourceEstimate{kLutsDramSubsystem, kFfsDramSubsystem, 0};
}

ResourceEstimate design_resources(const AcceleratorConfig& config,
                                  const BufferPlan& buffer_plan,
                                  std::int64_t weight_bram_bits_used,
                                  bool uses_dram, int weight_bits) {
  ResourceEstimate total;
  const ResourceEstimate per_unit = conv_unit_resources(config.conv);
  for (int u = 0; u < config.num_conv_units; ++u) total += per_unit;
  total += pool_unit_resources(config.pool);
  total += linear_unit_resources(config.linear, weight_bits);
  total += shared_control_resources();
  if (uses_dram) total += dram_subsystem_resources();

  // BRAM: two ping-pong pairs (x2 buffers each) plus on-chip parameters.
  total.bram_bits = 2 * buffer_plan.buffer2d_bits_each +
                    2 * buffer_plan.buffer1d_bits_each + weight_bram_bits_used;
  return total;
}

ResourceEstimate estimate_resources(const Accelerator& accelerator) {
  return estimate_resources(accelerator.program());
}

ResourceEstimate estimate_resources(const ir::LayerProgram& program) {
  std::int64_t on_chip_param_bits = 0;
  for (const ir::LayerOp& op : program.ops()) {
    if (op.placement == WeightPlacement::kOnChip)
      on_chip_param_bits += op.param_bits;
  }
  return design_resources(program.config(), program.buffer_plan(),
                          on_chip_param_bits, program.uses_dram(),
                          program.weight_bits());
}

namespace {

/// Split an integer `total` across weights with the largest-remainder
/// method: shares sum to `total` exactly. All-zero weights put everything
/// on the first share (nothing meaningful to apportion by).
std::vector<std::int64_t> split_exact(std::int64_t total,
                                      const std::vector<std::int64_t>& weights) {
  std::vector<std::int64_t> shares(weights.size(), 0);
  if (weights.empty()) return shares;
  std::int64_t weight_sum = 0;
  for (const std::int64_t w : weights) weight_sum += w;
  if (weight_sum == 0) {
    shares[0] = total;
    return shares;
  }
  std::int64_t assigned = 0;
  std::vector<std::pair<std::int64_t, std::size_t>> remainders;
  remainders.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const std::int64_t numer = total * weights[i];
    shares[i] = numer / weight_sum;
    assigned += shares[i];
    remainders.emplace_back(-(numer % weight_sum), i);  // descending remainder
  }
  std::sort(remainders.begin(), remainders.end());
  for (std::size_t r = 0; assigned < total; ++r, ++assigned)
    ++shares[remainders[r % remainders.size()].second];
  return shares;
}

/// Attribute one monolithic component across segments by weight.
void attribute(std::vector<ResourceEstimate>& out,
               const ResourceEstimate& component,
               const std::vector<std::int64_t>& weights) {
  const std::vector<std::int64_t> luts = split_exact(component.luts, weights);
  const std::vector<std::int64_t> ffs =
      split_exact(component.flip_flops, weights);
  const std::vector<std::int64_t> bram =
      split_exact(component.bram_bits, weights);
  for (std::size_t s = 0; s < out.size(); ++s) {
    out[s].luts += luts[s];
    out[s].flip_flops += ffs[s];
    out[s].bram_bits += bram[s];
  }
}

}  // namespace

std::vector<ResourceEstimate> partition_resources(
    const ir::LayerProgram& program,
    const std::vector<ir::ProgramSegment>& segments) {
  RSNN_REQUIRE(!segments.empty(), "need at least one segment");
  for (const ir::ProgramSegment& seg : segments)
    RSNN_REQUIRE(!seg.is_relowered(),
                 "partition_resources attributes the monolithic design and "
                 "needs inherited segments; use relowered_resources for "
                 "per-device partitions");
  const AcceleratorConfig& config = program.config();

  // Per-segment attribution weights: cycles spent per unit class and total.
  const std::size_t n = segments.size();
  std::vector<std::int64_t> conv_cycles(n, 0), pool_cycles(n, 0),
      linear_cycles(n, 0), total_cycles(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t li = segments[s].begin; li < segments[s].end; ++li) {
      const ir::LayerOp& op = program.op(li);
      total_cycles[s] += op.latency.total_cycles;
      switch (op.kind) {
        case ir::OpKind::kConv:
          conv_cycles[s] += op.latency.total_cycles;
          break;
        case ir::OpKind::kPool:
          pool_cycles[s] += op.latency.total_cycles;
          break;
        case ir::OpKind::kLinear:
          linear_cycles[s] += op.latency.total_cycles;
          break;
        case ir::OpKind::kFlatten:
          break;  // buffer transfer uses no unit
      }
    }
  }

  std::vector<ResourceEstimate> out(n);

  ResourceEstimate conv_units;
  const ResourceEstimate per_unit = conv_unit_resources(config.conv);
  for (int u = 0; u < config.num_conv_units; ++u) conv_units += per_unit;
  attribute(out, conv_units, conv_cycles);
  attribute(out, pool_unit_resources(config.pool), pool_cycles);
  attribute(out,
            linear_unit_resources(config.linear, program.weight_bits()),
            linear_cycles);

  ResourceEstimate shared = shared_control_resources();
  if (program.uses_dram()) shared += dram_subsystem_resources();
  shared.bram_bits = 2 * program.buffer_plan().buffer2d_bits_each +
                     2 * program.buffer_plan().buffer1d_bits_each;
  attribute(out, shared, total_cycles);

  // On-chip parameter storage is exactly attributable per segment.
  for (std::size_t s = 0; s < n; ++s)
    out[s].bram_bits += segments[s].onchip_param_bits;

  // The attribution must be an exact breakdown of the monolithic estimate.
  const ResourceEstimate whole = estimate_resources(program);
  ResourceEstimate sum;
  for (const ResourceEstimate& estimate : out) sum += estimate;
  RSNN_ENSURE(sum.luts == whole.luts && sum.flip_flops == whole.flip_flops &&
                  sum.bram_bits == whole.bram_bits,
              "segment resources do not sum to the monolithic design");
  return out;
}

std::vector<ResourceEstimate> relowered_resources(
    const std::vector<ir::ProgramSegment>& segments) {
  RSNN_REQUIRE(!segments.empty(), "need at least one segment");
  std::vector<ResourceEstimate> out;
  out.reserve(segments.size());
  for (const ir::ProgramSegment& seg : segments) {
    RSNN_REQUIRE(seg.relowered != nullptr,
                 "segment " << seg.index
                            << " carries no re-lowered program (partition "
                               "with SegmentLowering::kRelower)");
    out.push_back(estimate_resources(*seg.relowered));
  }
  return out;
}

std::string to_string(const ResourceEstimate& estimate) {
  std::ostringstream os;
  os << estimate.luts / 1000 << "k LUTs, " << estimate.flip_flops / 1000
     << "k FFs, " << estimate.bram_bits / 8 / 1024 << " KiB BRAM";
  return os.str();
}

}  // namespace rsnn::hw
