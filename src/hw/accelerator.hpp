// Accelerator: top-level model of the proposed design (paper Fig. 1).
//
// Owns the processing units (N convolution units, one pooling unit, one
// linear unit), the ping-pong activation buffers, and the weight memory, and
// plays the controller's role: layers execute in sequence, each reading the
// active buffer and writing the inactive one, with the flatten transfer
// moving data from the 2-D to the 1-D pair.
//
// The accelerator executes a lowered ir::LayerProgram — the compiler's one
// mapping of the network onto the design — rather than re-deriving layer
// semantics from the QLayer variant. Three simulation modes:
//   * kCycleAccurate — the default verification mode. With the config's
//     fast path enabled (the default) it runs the code-domain fast path
//     (hw/fast_path): bit-identical logits, cycles, adder ops and traffic,
//     an order of magnitude faster. With fast_path.enable = false it falls
//     back to the stepped dataflow.
//   * kStepped — always the golden stepped dataflow: every op runs on the
//     bit-true unit simulators and cycle counts come from stepping. The
//     equivalence anchor the fast path is pinned against.
//   * kAnalytic — logits from code-domain arithmetic (invariant 1/2) and
//     cycles from the program's precomputed hw/latency_model annotations
//     (identical totals by invariant 4). With the fast path enabled it runs
//     the same code-domain kernels as kCycleAccurate — the fast path's
//     accounting *is* the analytic model's — so VGG-scale runs skip the
//     functional reference forward entirely; with fast_path.enable = false
//     it falls back to the QuantizedNetwork reference.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "encoding/spike_train.hpp"
#include "hw/arch.hpp"
#include "hw/conv_unit.hpp"
#include "hw/fast_path.hpp"
#include "hw/latency_model.hpp"
#include "hw/linear_unit.hpp"
#include "hw/pingpong.hpp"
#include "hw/pool_unit.hpp"
#include "hw/run_result.hpp"
#include "hw/weight_memory.hpp"
#include "ir/layer_program.hpp"
#include "quant/qnetwork.hpp"

namespace rsnn::hw {

enum class SimMode { kCycleAccurate, kStepped, kAnalytic };

class Accelerator {
 public:
  /// Binds a design instance to a compiled network: lowers the network onto
  /// the config (validating that the units can execute it, planning weight
  /// placement and buffer sizes).
  Accelerator(AcceleratorConfig config, const quant::QuantizedNetwork& qnet);

  /// Adopts an already-lowered program (must carry hardware annotations).
  explicit Accelerator(ir::LayerProgram program);

  /// Pre-allocated per-worker execution state: the unit simulators,
  /// ping-pong bookkeeping and per-op scratch tensors are created once and
  /// reused across inferences, so a warm worker's cycle-accurate hot path
  /// performs no per-inference allocation. Each worker thread owns one.
  class WorkerState {
   private:
    friend class Accelerator;
    explicit WorkerState(const ir::LayerProgram& program);
    const ir::LayerProgram* owner;  ///< the program this state was sized for
    ConvUnit conv_unit;
    PoolUnit pool_unit;
    LinearUnit linear_unit;
    PingPongPair buffer2d;
    PingPongPair buffer1d;
    std::vector<TensorI64> layer_out;    ///< one scratch per op
    encoding::SpikeTrain train_a;        ///< alternating spike-train scratch
    encoding::SpikeTrain train_b;
    common::Arena fast_arena;            ///< fast-path activation scratch
  };
  WorkerState make_worker_state() const { return WorkerState(program_); }

  /// Run one image (float values in [0,1), encoded internally).
  AccelRunResult run_image(const TensorF& image,
                           SimMode mode = SimMode::kCycleAccurate) const;

  /// Run pre-encoded activation codes.
  AccelRunResult run_codes(const TensorI& codes,
                           SimMode mode = SimMode::kCycleAccurate) const;

  /// As run_codes(), reusing a worker's pre-allocated state — the streaming
  /// scheduler's entry point. Results are identical to run_codes().
  AccelRunResult run_codes(WorkerState& state, const TensorI& codes,
                           SimMode mode = SimMode::kCycleAccurate) const;

  /// As run_codes(), additionally reusing `out`'s storage for the result.
  /// On the fast path a warm (state, out) pair makes the whole inference
  /// allocation-free; other modes fall back to assigning a fresh result.
  void run_codes_into(WorkerState& state, const TensorI& codes,
                      AccelRunResult& out,
                      SimMode mode = SimMode::kCycleAccurate) const;

  /// Run `batch` whole-program inferences through one prepared-weight
  /// traversal of the batched fast path (hw/fast_path): each weight tile is
  /// loaded once and applied to every image, amortizing the cache misses
  /// that dominate per-image runs. `codes` and `results` point at `batch`
  /// elements; every results[b] is bit-identical to run_codes_into(state,
  /// codes[b], results[b], mode). Modes that cannot use the fast path (and
  /// trivial batches) fall back to the sequential loop. A warm (state,
  /// results) pair keeps the whole call allocation-free.
  ///
  /// With config().fast_path.threads != 1 the batch splits into contiguous
  /// image slices executed fork/join per op on common::shared_task_pool()
  /// (hw/fast_path run_fast_path_batched_parallel): same kernels, same
  /// per-image results, one shared weight stream across cores.
  void run_codes_batched_into(WorkerState& state, const TensorI* codes,
                              std::size_t batch, AccelRunResult* results,
                              SimMode mode = SimMode::kCycleAccurate) const;

  /// Run only the op range [begin, end) — the pipeline executor's entry
  /// point. `codes` must be shaped as op `begin`'s input (the requantized
  /// activation codes crossing the upstream cut). When `end` stops short of
  /// the program's final op the result carries no logits and
  /// `boundary_codes` (if non-null) receives the activation codes crossing
  /// the downstream cut. Executing every segment of a partition in sequence
  /// is bit-identical, op for op, to one whole-program run.
  AccelRunResult run_codes_range(WorkerState& state, const TensorI& codes,
                                 std::size_t begin, std::size_t end,
                                 SimMode mode = SimMode::kCycleAccurate,
                                 TensorI* boundary_codes = nullptr) const;

  /// As run_codes_range(), allocating transient state as needed.
  AccelRunResult run_codes_range(const TensorI& codes, std::size_t begin,
                                 std::size_t end,
                                 SimMode mode = SimMode::kCycleAccurate,
                                 TensorI* boundary_codes = nullptr) const;

  /// Evaluate a batch of images across a pool of `num_threads` worker
  /// threads (hardware concurrency when <= 0). Each worker owns its own
  /// WorkerState; results are index-aligned with `images` and identical to
  /// running run_image sequentially.
  std::vector<AccelRunResult> run_batch(
      const std::vector<TensorF>& images,
      SimMode mode = SimMode::kCycleAccurate, int num_threads = 0) const;

  /// As run_batch(), for pre-encoded activation codes.
  std::vector<AccelRunResult> run_batch_codes(
      const std::vector<TensorI>& codes,
      SimMode mode = SimMode::kCycleAccurate, int num_threads = 0) const;

  const AcceleratorConfig& config() const { return program_.config(); }
  const quant::QuantizedNetwork& network() const { return program_.network(); }
  const ir::LayerProgram& program() const { return program_; }
  const BufferPlan& buffer_plan() const { return program_.buffer_plan(); }

  /// True if any layer streams weights from DRAM.
  bool uses_dram() const { return program_.uses_dram(); }

  /// Analytic latency of the whole network in cycles (no data needed).
  std::int64_t predict_total_cycles() const {
    return program_.predicted_total_cycles();
  }

  /// Analytic latency in microseconds at the configured clock.
  double predict_latency_us() const {
    return program_.predicted_latency_us();
  }

  /// The fast-path preparation (weight repacks, coverage tables) this
  /// accelerator executes with — resolved lazily through the process-wide
  /// shared_fast_prepared() cache, so every Accelerator (and therefore every
  /// ServingPool replica and streaming worker) lowered from the same network
  /// holds the SAME immutable pack: pointer-equal across instances, built
  /// once. Exposed for observability and the sharing tests.
  std::shared_ptr<const FastPrepared> fast_prepared_shared() const;

 private:
  ir::LayerProgram program_;

  /// Lazily-resolved handle on the shared prepared pack. Held behind a
  /// shared_ptr so the Accelerator stays copyable/movable; copies share the
  /// resolved handle (they execute the same program).
  struct FastCache {
    std::once_flag once;
    std::shared_ptr<const FastPrepared> prepared;
  };
  mutable std::shared_ptr<FastCache> fast_cache_ = std::make_shared<FastCache>();
  const FastPrepared& fast_prepared() const;

  /// The fast path serves both kCycleAccurate and kAnalytic (its counters
  /// are the annotation-derived analytic model's, its logits exact);
  /// kStepped always runs the golden stepped dataflow.
  bool use_fast_path(SimMode mode) const {
    return mode != SimMode::kStepped && program_.config().fast_path.enable;
  }

  /// The code-domain fast path (hw/fast_path) — what kCycleAccurate runs
  /// unless the config disables it.
  AccelRunResult run_fast(WorkerState& state, const TensorI& codes,
                          std::size_t begin, std::size_t end,
                          TensorI* boundary_codes) const;
  /// The golden stepped dataflow (bit-true unit simulators).
  AccelRunResult run_stepped(WorkerState& state, const TensorI& codes,
                             std::size_t begin, std::size_t end,
                             TensorI* boundary_codes) const;
  AccelRunResult run_analytic(const TensorI& codes, std::size_t begin,
                              std::size_t end, TensorI* boundary_codes) const;
};

}  // namespace rsnn::hw
