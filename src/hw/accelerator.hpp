// Accelerator: top-level model of the proposed design (paper Fig. 1).
//
// Owns the processing units (N convolution units, one pooling unit, one
// linear unit), the ping-pong activation buffers, and the weight memory, and
// plays the controller's role: layers execute in sequence, each reading the
// active buffer and writing the inactive one, with the flatten transfer
// moving data from the 2-D to the 1-D pair.
//
// Two simulation modes:
//   * kCycleAccurate — every layer runs on the bit-true unit simulators;
//     outputs are exact and cycle counts come from stepping the dataflow.
//     Used for verification and for the MNIST-scale experiments.
//   * kAnalytic — outputs come from the QuantizedNetwork reference (the
//     same arithmetic by invariant 1/2) and cycles from hw/latency_model
//     (identical totals by invariant 4). Used for VGG-scale runs where
//     stepping every cycle would be wasteful.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "encoding/spike_train.hpp"
#include "hw/arch.hpp"
#include "hw/conv_unit.hpp"
#include "hw/latency_model.hpp"
#include "hw/linear_unit.hpp"
#include "hw/pingpong.hpp"
#include "hw/pool_unit.hpp"
#include "hw/weight_memory.hpp"
#include "quant/qnetwork.hpp"

namespace rsnn::hw {

enum class SimMode { kCycleAccurate, kAnalytic };

/// Per-layer execution record.
struct LayerStats {
  std::string name;
  std::int64_t cycles = 0;
  std::int64_t dram_cycles = 0;
  std::int64_t adder_ops = 0;        ///< fired additions (activity factor)
  std::int64_t input_spikes = 0;
  MemTraffic traffic;                ///< weight traffic in bits
};

/// Result of one inference on the accelerator.
struct AccelRunResult {
  std::vector<std::int64_t> logits;
  int predicted_class = -1;
  std::int64_t total_cycles = 0;
  double latency_us = 0.0;
  std::vector<LayerStats> layers;
  std::int64_t total_adder_ops = 0;
  std::int64_t dram_bits = 0;
  MemTraffic traffic_total;
};

/// Sizing of the activation buffers derived from the network (Sec. III-C:
/// "width and height ... minimizes their size while allowing the activations
/// of all relevant layers to fit").
struct BufferPlan {
  std::int64_t buffer2d_bits_each = 0;
  std::int64_t buffer1d_bits_each = 0;
};

class Accelerator {
 public:
  /// Binds a design instance to a compiled network. Checks that the design
  /// can execute the network (kernel sizes fit the units) and plans weight
  /// placement and buffer sizes.
  Accelerator(AcceleratorConfig config, const quant::QuantizedNetwork& qnet);

  /// Run one image (float values in [0,1), encoded internally).
  AccelRunResult run_image(const TensorF& image,
                           SimMode mode = SimMode::kCycleAccurate) const;

  /// Run pre-encoded activation codes.
  AccelRunResult run_codes(const TensorI& codes,
                           SimMode mode = SimMode::kCycleAccurate) const;

  /// Evaluate a batch of images across a pool of `num_threads` worker
  /// threads (hardware concurrency when <= 0). Each worker owns its own
  /// processing units and buffers; results are index-aligned with `images`
  /// and identical to running run_image sequentially.
  std::vector<AccelRunResult> run_batch(
      const std::vector<TensorF>& images,
      SimMode mode = SimMode::kCycleAccurate, int num_threads = 0) const;

  /// As run_batch(), for pre-encoded activation codes.
  std::vector<AccelRunResult> run_batch_codes(
      const std::vector<TensorI>& codes,
      SimMode mode = SimMode::kCycleAccurate, int num_threads = 0) const;

  const AcceleratorConfig& config() const { return config_; }
  const quant::QuantizedNetwork& network() const { return qnet_; }
  const std::vector<WeightPlacement>& placement() const { return placement_; }
  const BufferPlan& buffer_plan() const { return buffer_plan_; }

  /// True if any layer streams weights from DRAM.
  bool uses_dram() const;

  /// Analytic latency of the whole network in cycles (no data needed).
  std::int64_t predict_total_cycles() const;

  /// Analytic latency in microseconds at the configured clock.
  double predict_latency_us() const;

 private:
  AcceleratorConfig config_;
  const quant::QuantizedNetwork& qnet_;
  std::vector<WeightPlacement> placement_;
  BufferPlan buffer_plan_;

  AccelRunResult run_cycle_accurate(const TensorI& codes) const;
  AccelRunResult run_analytic(const TensorI& codes) const;
  LayerLatency layer_latency(std::size_t layer_index,
                             const Shape& in_shape) const;
};

}  // namespace rsnn::hw
