// Accelerator architecture configuration (paper Fig. 1).
//
// One AcceleratorConfig describes a synthesized design instance: how many
// convolution units of which geometry, the pooling and linear units, clock
// frequency, and the memory system. The compiler (src/compiler) derives a
// config from a network; experiments can also construct one directly (the
// paper's LeNet setup is `lenet_reference_config()`).
#pragma once

#include <cstdint>
#include <string>

namespace rsnn::hw {

/// Geometry of one convolution unit's adder array (paper Fig. 2).
struct ConvUnitGeometry {
  int array_columns = 30;  ///< X: parallel output columns (>= widest row to avoid tiling)
  int kernel_rows = 5;     ///< Y: adder rows == kernel rows processed in pipeline
  int accumulator_bits = 24;  ///< partial sums at full precision
};

/// Geometry of the pooling unit (row-based, no kernel storage).
struct PoolUnitGeometry {
  int array_columns = 14;
  int kernel_rows = 2;
  int accumulator_bits = 16;
};

/// The linear unit: a row of adders fed by one weight fetch per cycle.
struct LinearUnitGeometry {
  int lanes = 16;             ///< parallel output channels ("proportional to
                              ///< the available memory bandwidth")
  int accumulator_bits = 24;
};

/// Cycle-level timing parameters of the micro-architecture. These are the
/// knobs the cycle-accurate simulator and the analytic model share; the
/// defaults reflect the dataflow the paper describes (kernel loads overlap
/// input shifts; activation rows are fetched from block RAM before a row
/// pass begins).
struct TimingParams {
  /// Activation bits read per cycle per buffer port when filling the input
  /// shift register. One row of width `iw` costs ceil(iw / this) cycles.
  int act_read_bits_per_cycle = 32;
  /// Number of read ports on the activation buffer; concurrent conv units
  /// round-robin on them (source of the sub-linear latency scaling in
  /// Table II alongside the non-duplicated pool/linear units).
  int act_read_ports = 1;
  /// Fixed cycles to start one (time step, input channel) pass of a unit.
  int pass_setup_cycles = 2;
  /// Fixed cycles to configure a unit for a new layer (kernel prefetch,
  /// address setup).
  int layer_setup_cycles = 32;
  /// Cycles to write one completed output row back to the ping-pong buffer.
  /// Writeback is double-buffered, so it only stalls if longer than a row
  /// pass; it is accounted at the end of each pass pipeline drain.
  int writeback_cycles_per_row = 1;
};

/// Dataflow layout a fast-path conv kernel iterates in. The inter-op
/// activation representation is always CHW (the buffer/cut contract); the
/// layout only selects the loop order and weight packing *inside* one op.
enum class DataLayout {
  kChw,  ///< per-output-channel plane accumulation (few channels)
  kHwc,  ///< pixel-major with contiguous channel inner loops (many channels)
};

/// How the lowering pass picks per-op fast-path layouts.
enum class LayoutPolicy {
  kAuto,      ///< heuristic per op (HWC once channel counts amortize repacking)
  kForceChw,  ///< every conv runs the CHW kernel
  kForceHwc,  ///< every conv runs the HWC kernel
};

/// Configuration of the simulator's code-domain fast path (SimMode
/// kCycleAccurate). Purely a host-simulation concern: none of these options
/// change logits, cycles, adder ops or traffic — the equivalence suite sweeps
/// every combination against the stepped dataflow.
struct FastPathOptions {
  bool enable = true;          ///< fall back to the stepped dataflow when false
  LayoutPolicy layout = LayoutPolicy::kAuto;
  bool fuse_conv_pool = true;  ///< run conv+pool pairs as one fused pass
  /// Host threads for the batched kernels: the batch splits into contiguous
  /// image slices executed fork/join per op on common::shared_task_pool(),
  /// so all slices stream one prepared weight pack together. 1 = sequential
  /// (the default), 0 = one slice per hardware thread. Like every fast-path
  /// option this never changes what is counted — per-image logits, cycles,
  /// adder ops and traffic stay bit-identical to the sequential kernel.
  int threads = 1;
};

/// Weight storage placement for a layer (paper Sec. III-C).
enum class WeightPlacement {
  kOnChip,  ///< block RAM, single-cycle access at full width
  kDram,    ///< streamed from external DRAM before/while computing the layer
};

/// Memory system description.
struct MemoryConfig {
  /// Total on-chip block RAM available for weights, in bits. XCVU13P-class
  /// budget by default (a fraction of the 455 Mb total is usable for
  /// parameters; activations use their own buffers).
  std::int64_t weight_bram_bits = std::int64_t{16} * 1024 * 1024 * 8;
  /// DRAM streaming bandwidth in bits per clock cycle (width of the
  /// memory-controller interface as seen by the fabric).
  int dram_bits_per_cycle = 64;
  /// Fixed DRAM burst setup cost per layer fetched from DRAM.
  int dram_setup_cycles = 200;
};

/// Sizing of the ping-pong activation buffers derived from the network
/// (Sec. III-C: "width and height ... minimizes their size while allowing
/// the activations of all relevant layers to fit").
struct BufferPlan {
  std::int64_t buffer2d_bits_each = 0;
  std::int64_t buffer1d_bits_each = 0;
};

/// A full design instance.
struct AcceleratorConfig {
  std::string name = "accelerator";
  double clock_mhz = 100.0;
  int num_conv_units = 2;
  ConvUnitGeometry conv;
  PoolUnitGeometry pool;
  LinearUnitGeometry linear;
  TimingParams timing;
  MemoryConfig memory;
  FastPathOptions fast_path;

  double cycle_ns() const { return 1000.0 / clock_mhz; }
};

/// The paper's LeNet-5 experiment setup (Sec. IV-A): (X, Y) = (30, 5) conv,
/// (14, 2) pool, 100 MHz, two conv units (Table I).
AcceleratorConfig lenet_reference_config();

/// The Table III LeNet row: 4 conv units at 200 MHz.
AcceleratorConfig lenet_table3_config();

/// The Table III VGG-11 row: 8 conv units at 115 MHz, DRAM weights.
AcceleratorConfig vgg11_table3_config();

}  // namespace rsnn::hw
