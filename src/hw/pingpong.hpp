// Ping-pong activation buffers (paper Fig. 1, blue; Sec. III-C).
//
// Activations live entirely on chip. Two buffer pairs exist:
//   * a 2-D pair for convolution/pooling feature maps (bit planes of the
//     spike trains of one layer), and
//   * a 1-D pair for flattened fully-connected activations.
// Each layer reads from the active ("ping") buffer and writes its output to
// the inactive ("pong") buffer; the controller swaps them after the layer.
// This model tracks occupancy, capacity and access counts; capacity
// violations are hard errors (the compiler must size the buffers).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/shape.hpp"

namespace rsnn::hw {

/// One buffer of a ping-pong pair.
struct ActivationBuffer {
  std::string name;
  std::int64_t capacity_bits = 0;
  std::int64_t used_bits = 0;
  std::int64_t reads = 0;   ///< accesses (row/word granularity)
  std::int64_t writes = 0;
  std::int64_t read_bits = 0;
  std::int64_t write_bits = 0;
};

/// A ping-pong pair with swap bookkeeping.
class PingPongPair {
 public:
  PingPongPair(std::string name, std::int64_t capacity_bits_each);

  /// Buffer currently holding the live layer input.
  ActivationBuffer& ping() { return buffers_[active_]; }
  /// Buffer the current layer writes into.
  ActivationBuffer& pong() { return buffers_[1 - active_]; }

  /// Record storing a feature map of `bits` into pong; throws if it does
  /// not fit (compiler sizing error).
  void store_output(std::int64_t bits);

  /// Record reading `bits` from ping.
  void load_input(std::int64_t bits);

  void swap();

  /// Clear occupancy, access counters and swap state (a new inference on the
  /// same design; capacities are retained).
  void reset();

  std::int64_t capacity_bits_each() const { return capacity_; }
  std::int64_t total_read_bits() const;
  std::int64_t total_write_bits() const;
  int swaps() const { return swaps_; }

 private:
  std::int64_t capacity_;
  ActivationBuffer buffers_[2];
  int active_ = 0;
  int swaps_ = 0;
};

/// Bits needed to hold one layer's spike-train activations: numel * T.
std::int64_t activation_bits(const Shape& shape, int time_steps);

}  // namespace rsnn::hw
