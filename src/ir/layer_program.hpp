// LayerProgram: the compiled intermediate representation of a converted SNN.
//
// The paper's flow is compiler-centric: an E3NE-style compiler maps the
// converted network onto the accelerator once, and every downstream consumer
// reads that one mapping. This module is that mapping. `lower(qnet)` turns
// the QLayer variant list into a vector of *typed* ops carrying everything a
// consumer needs precomputed — input/output shapes, conv/pool/linear
// geometry, requantization flags, parameter footprints — so no consumer
// re-derives layer semantics with its own `std::get_if` ladder.
// `lower(qnet, config)` additionally annotates every op with its hardware
// mapping: weight placement, group phasing, the predicted per-layer latency
// and memory traffic (the compiler's former ScheduleEntry), and the
// ping-pong buffer sizing.
//
// All variant dispatch on QLayer lives in this module (layer_program.cpp);
// consumers switch on the typed LayerOp::kind instead.
//
// Lifetime: a LayerProgram borrows the QuantizedNetwork it was lowered from
// (ops point at the network's weight tensors). The network must outlive the
// program, exactly as it must outlive an Accelerator bound to it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/arch.hpp"
#include "hw/latency_model.hpp"
#include "quant/qnetwork.hpp"
#include "tensor/tensor.hpp"

namespace rsnn::ir {

enum class OpKind { kConv, kPool, kLinear, kFlatten };

/// Canonical lower-case op name: "conv" / "pool" / "linear" / "flatten".
/// The single copy of the layer-name helper (formerly duplicated across the
/// accelerator, the compiler schedule, and the reports).
const char* op_kind_name(OpKind kind);

/// Kind of a raw QLayer variant.
OpKind kind_of(const quant::QLayer& layer);

/// Parameter (weight + bias) storage of one layer in bits; 0 for
/// pool/flatten. Biases are stored at (time_bits + weight_bits + 16) bits.
std::int64_t layer_param_bits(const quant::QLayer& layer, int weight_bits,
                              int time_bits);

/// Shape produced by applying `layer` to an input of shape `input`.
Shape op_output_shape(const quant::QLayer& layer, const Shape& input);

/// One typed op of the lowered program. The `conv`/`pool`/`linear` pointers
/// are non-owning views into the source QuantizedNetwork; exactly the one
/// matching `kind` is non-null (all null for flatten).
struct LayerOp {
  OpKind kind = OpKind::kFlatten;
  int layer_index = 0;
  Shape in_shape;
  Shape out_shape;
  const quant::QConv2d* conv = nullptr;
  const quant::QPool2d* pool = nullptr;
  const quant::QLinear* linear = nullptr;
  bool requantize = true;        ///< false only on the raw final layer
  bool is_1d = false;            ///< output lives in the 1-D buffer pair
  std::int64_t param_bits = 0;

  // Hardware annotations, valid when lowered with an AcceleratorConfig
  // (LayerProgram::has_hw_annotations()):
  hw::WeightPlacement placement = hw::WeightPlacement::kOnChip;
  std::string unit;              ///< which unit class executes the op
  int contending_units = 1;      ///< conv units sharing the activation ports
  hw::LayerLatency latency;      ///< predicted cycles, phasing, traffic

  const char* name() const { return op_kind_name(kind); }
};

/// The lowered program: typed ops plus (optionally) the hardware mapping
/// they were scheduled onto.
class LayerProgram {
 public:
  LayerProgram() = default;

  const quant::QuantizedNetwork& network() const {
    RSNN_REQUIRE(qnet_ != nullptr, "empty LayerProgram");
    return *qnet_;
  }
  int time_bits() const { return network().time_bits; }
  int weight_bits() const { return network().weight_bits; }

  const std::vector<LayerOp>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  const LayerOp& op(std::size_t index) const { return ops_.at(index); }

  /// True when lowered against an AcceleratorConfig (placement, latency and
  /// buffer sizing are populated).
  bool has_hw_annotations() const { return has_hw_; }
  const hw::AcceleratorConfig& config() const {
    RSNN_REQUIRE(has_hw_, "program lowered without a hardware config");
    return config_;
  }
  const hw::BufferPlan& buffer_plan() const {
    RSNN_REQUIRE(has_hw_, "program lowered without a hardware config");
    return buffer_plan_;
  }

  /// True if any op streams weights from DRAM.
  bool uses_dram() const;

  /// Sum of the per-op predicted cycles (the analytic latency contract).
  std::int64_t predicted_total_cycles() const { return predicted_total_cycles_; }
  double predicted_latency_us() const;

 private:
  friend LayerProgram lower(const quant::QuantizedNetwork& qnet);
  friend LayerProgram lower(const quant::QuantizedNetwork& qnet,
                            const hw::AcceleratorConfig& config);

  const quant::QuantizedNetwork* qnet_ = nullptr;
  std::vector<LayerOp> ops_;
  bool has_hw_ = false;
  hw::AcceleratorConfig config_;
  hw::BufferPlan buffer_plan_;
  std::int64_t predicted_total_cycles_ = 0;
};

/// Functional lowering: typed ops, shapes, requantization, parameter
/// footprints. Enough for the behavioral/reference engines, serialization
/// and RTL weight emission.
LayerProgram lower(const quant::QuantizedNetwork& qnet);

/// Hardware lowering: validates that every op fits the configured units,
/// plans weight placement against the BRAM budget, sizes the ping-pong
/// buffers, and precomputes per-op group phasing, latency and traffic.
/// Throws if the network is not mappable onto `config`.
LayerProgram lower(const quant::QuantizedNetwork& qnet,
                   const hw::AcceleratorConfig& config);

/// One contiguous op range of a partitioned program — the unit of pipeline-
/// parallel execution. The accelerator is a layer-wise dataflow machine, so
/// any interior op boundary is a legal cut point; the interface crossing a
/// cut is the requantized T-bit activation-code tensor of the upstream op
/// (`in_shape` here, `out_shape` of the predecessor). Segments never re-lower
/// the network: they inherit the monolithic program's placement and latency
/// annotations, which is what keeps pipelined execution bit-identical to
/// monolithic execution (per-device re-lowering is future work — see ROADMAP
/// "partition-aware RTL generation").
struct ProgramSegment {
  int index = 0;          ///< position of this segment in the pipeline
  std::size_t begin = 0;  ///< first op of the segment (inclusive)
  std::size_t end = 0;    ///< one past the segment's last op

  Shape in_shape;         ///< activation-code tensor entering the segment
  Shape out_shape;        ///< tensor leaving it (logits for the final segment)
  bool in_is_1d = false;  ///< entry activations live in the 1-D buffer pair
  bool final_segment = false;  ///< contains the program's last op

  // Aggregates over the segment's ops (valid on hardware-lowered programs):
  std::int64_t predicted_cycles = 0;   ///< sum of per-op latency annotations
  std::int64_t param_bits = 0;         ///< total parameter storage
  std::int64_t onchip_param_bits = 0;  ///< parameters placed in BRAM

  std::size_t size() const { return end - begin; }
};

/// True when execution entering the program at op `begin` reads the 1-D
/// activation buffer pair (the op sits downstream of the flatten transfer).
/// The single copy of the buffer-entry rule: ProgramSegment::in_is_1d and
/// the accelerator's mid-program entry path both derive from this.
bool entry_is_1d(const LayerProgram& program, std::size_t begin);

/// Split a hardware-lowered program at the given interior op indices
/// (strictly increasing, each in (0, size())): `cuts = {3, 5}` yields the
/// segments [0,3), [3,5), [5,size()). An empty cut list yields the single
/// whole-program segment. Throws ContractViolation on invalid cuts.
std::vector<ProgramSegment> make_segments(const LayerProgram& program,
                                          const std::vector<std::size_t>& cuts);

/// The trivial partition: one segment covering the whole program.
ProgramSegment full_segment(const LayerProgram& program);

/// Unit-geometry requirements of a network (largest kernels, widest output
/// rows) — what the compiler needs to derive a design instance.
struct GeometryRequirements {
  bool has_conv = false;
  bool has_pool = false;
  std::int64_t max_conv_kernel = 0;
  std::int64_t max_conv_out_width = 0;
  std::int64_t max_pool_kernel = 0;
  std::int64_t max_pool_out_width = 0;
};
GeometryRequirements scan_geometry(const quant::QuantizedNetwork& qnet);

/// Exact fired-adder count of one op given its input activation codes: one
/// addition per (spike, consuming adder), the same event definition the
/// cycle-accurate units and the functional SNN count. Border spikes fan out
/// to fewer adders; this is exact, not a fan-out estimate.
std::int64_t exact_adder_ops(const LayerOp& op, const TensorI64& input_codes);

}  // namespace rsnn::ir
