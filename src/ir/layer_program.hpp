// LayerProgram: the compiled intermediate representation of a converted SNN.
//
// The paper's flow is compiler-centric: an E3NE-style compiler maps the
// converted network onto the accelerator once, and every downstream consumer
// reads that one mapping. This module is that mapping. `lower(qnet)` turns
// the QLayer variant list into a vector of *typed* ops carrying everything a
// consumer needs precomputed — input/output shapes, conv/pool/linear
// geometry, requantization flags, parameter footprints — so no consumer
// re-derives layer semantics with its own `std::get_if` ladder.
// `lower(qnet, config)` additionally annotates every op with its hardware
// mapping: weight placement, group phasing, the predicted per-layer latency
// and memory traffic (the compiler's former ScheduleEntry), and the
// ping-pong buffer sizing.
//
// All variant dispatch on QLayer lives in this module (layer_program.cpp);
// consumers switch on the typed LayerOp::kind instead.
//
// Lifetime: a LayerProgram borrows the QuantizedNetwork it was lowered from
// (ops point at the network's weight tensors). The network must outlive the
// program, exactly as it must outlive an Accelerator bound to it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hw/arch.hpp"
#include "hw/latency_model.hpp"
#include "quant/qnetwork.hpp"
#include "tensor/tensor.hpp"

namespace rsnn::ir {

enum class OpKind { kConv, kPool, kLinear, kFlatten };

/// Canonical lower-case op name: "conv" / "pool" / "linear" / "flatten".
/// The single copy of the layer-name helper (formerly duplicated across the
/// accelerator, the compiler schedule, and the reports).
const char* op_kind_name(OpKind kind);

/// Kind of a raw QLayer variant.
OpKind kind_of(const quant::QLayer& layer);

/// Parameter (weight + bias) storage of one layer in bits; 0 for
/// pool/flatten. Biases are stored at (time_bits + weight_bits + 16) bits.
std::int64_t layer_param_bits(const quant::QLayer& layer, int weight_bits,
                              int time_bits);

/// Shape produced by applying `layer` to an input of shape `input`.
Shape op_output_shape(const quant::QLayer& layer, const Shape& input);

/// One typed op of the lowered program. The `conv`/`pool`/`linear` pointers
/// are non-owning views into the source QuantizedNetwork; exactly the one
/// matching `kind` is non-null (all null for flatten).
struct LayerOp {
  OpKind kind = OpKind::kFlatten;
  int layer_index = 0;
  Shape in_shape;
  Shape out_shape;
  const quant::QConv2d* conv = nullptr;
  const quant::QPool2d* pool = nullptr;
  const quant::QLinear* linear = nullptr;
  bool requantize = true;        ///< false only on the raw final layer
  bool is_1d = false;            ///< output lives in the 1-D buffer pair
  std::int64_t param_bits = 0;

  // Hardware annotations, valid when lowered with an AcceleratorConfig
  // (LayerProgram::has_hw_annotations()):
  hw::WeightPlacement placement = hw::WeightPlacement::kOnChip;
  std::string unit;              ///< which unit class executes the op
  int contending_units = 1;      ///< conv units sharing the activation ports
  hw::LayerLatency latency;      ///< predicted cycles, phasing, traffic

  // Fast-path execution plan (simulator-only; never changes what is
  // counted). Chosen by the lowering pass from the config's
  // hw::FastPathOptions:
  hw::DataLayout fast_layout = hw::DataLayout::kChw;  ///< conv kernel layout
  bool fuse_with_next = false;   ///< conv op fused with the following pool

  const char* name() const { return op_kind_name(kind); }
};

/// The lowered program: typed ops plus (optionally) the hardware mapping
/// they were scheduled onto. A program may cover the whole network or — for
/// per-device pipeline compilation — a contiguous sub-range of it
/// (`lower(qnet, begin, end, config)`); ops always carry their original
/// network layer index, so sub-programs compose with the network-level
/// execution paths (forward_layers, RadixSnn::run_range).
class LayerProgram {
 public:
  LayerProgram() = default;

  const quant::QuantizedNetwork& network() const {
    RSNN_REQUIRE(qnet_ != nullptr, "empty LayerProgram");
    return *qnet_;
  }
  int time_bits() const { return network().time_bits; }
  int weight_bits() const { return network().weight_bits; }

  const std::vector<LayerOp>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  const LayerOp& op(std::size_t index) const { return ops_.at(index); }

  /// Network layer index of the program's first op (0 unless this is a
  /// segment-scoped sub-program).
  std::size_t network_begin() const {
    RSNN_REQUIRE(!ops_.empty(), "empty LayerProgram");
    return static_cast<std::size_t>(ops_.front().layer_index);
  }
  /// One past the network layer index of the program's last op.
  std::size_t network_end() const {
    RSNN_REQUIRE(!ops_.empty(), "empty LayerProgram");
    return static_cast<std::size_t>(ops_.back().layer_index) + 1;
  }
  /// Network layer range covered by ops [begin, end) of this program — the
  /// one place op positions translate to network layer indices (identity
  /// for whole-network programs, offset for sub-programs). Engines use this
  /// to drive the network-level execution paths (forward_layers,
  /// RadixSnn::run_range).
  std::pair<std::size_t, std::size_t> network_range(std::size_t begin,
                                                    std::size_t end) const {
    RSNN_REQUIRE(begin < end && end <= ops_.size(),
                 "op range [" << begin << ", " << end << ") outside [0, "
                              << ops_.size() << ")");
    return {static_cast<std::size_t>(ops_[begin].layer_index),
            static_cast<std::size_t>(ops_[end - 1].layer_index) + 1};
  }

  /// True when the program covers every layer of its network.
  bool whole_network() const {
    return !ops_.empty() && network_begin() == 0 &&
           network_end() == network().layers.size();
  }
  /// True when the program's entry activations live in the 1-D buffer pair
  /// (a sub-program starting downstream of the flatten transfer).
  bool entry_buffer_is_1d() const { return entry_1d_; }

  /// True when lowered against an AcceleratorConfig (placement, latency and
  /// buffer sizing are populated).
  bool has_hw_annotations() const { return has_hw_; }
  const hw::AcceleratorConfig& config() const {
    RSNN_REQUIRE(has_hw_, "program lowered without a hardware config");
    return config_;
  }
  const hw::BufferPlan& buffer_plan() const {
    RSNN_REQUIRE(has_hw_, "program lowered without a hardware config");
    return buffer_plan_;
  }

  /// True if any op streams weights from DRAM.
  bool uses_dram() const;

  /// Sum of the per-op predicted cycles (the analytic latency contract).
  std::int64_t predicted_total_cycles() const { return predicted_total_cycles_; }
  double predicted_latency_us() const;

 private:
  friend LayerProgram lower(const quant::QuantizedNetwork& qnet);
  friend LayerProgram lower(const quant::QuantizedNetwork& qnet,
                            const hw::AcceleratorConfig& config);
  friend LayerProgram lower(const quant::QuantizedNetwork& qnet,
                            std::size_t begin, std::size_t end,
                            const hw::AcceleratorConfig& config);

  const quant::QuantizedNetwork* qnet_ = nullptr;
  std::vector<LayerOp> ops_;
  bool has_hw_ = false;
  bool entry_1d_ = false;
  hw::AcceleratorConfig config_;
  hw::BufferPlan buffer_plan_;
  std::int64_t predicted_total_cycles_ = 0;
};

/// Functional lowering: typed ops, shapes, requantization, parameter
/// footprints. Enough for the behavioral/reference engines, serialization
/// and RTL weight emission.
LayerProgram lower(const quant::QuantizedNetwork& qnet);

/// Hardware lowering: validates that every op fits the configured units,
/// plans weight placement against the BRAM budget, sizes the ping-pong
/// buffers, and precomputes per-op group phasing, latency and traffic.
/// Throws if the network is not mappable onto `config`.
LayerProgram lower(const quant::QuantizedNetwork& qnet,
                   const hw::AcceleratorConfig& config);

/// Segment-scoped hardware lowering: compile only the network layers
/// [begin, end) against `config`, as if that op range were the whole model
/// running on its own device. Weight placement is planned against the
/// *segment's* parameter footprint (a stage whose parameters fit the BRAM
/// budget gets on-chip placement even when the monolithic program streams
/// from DRAM), the ping-pong buffers are sized to the segment's own feature
/// maps, and every latency annotation reflects the per-device placement.
/// The returned program's ops keep their network layer indices.
LayerProgram lower(const quant::QuantizedNetwork& qnet, std::size_t begin,
                   std::size_t end, const hw::AcceleratorConfig& config);

/// Annotate one op in place — unit assignment, group phasing, latency and
/// traffic — for the given placement on `config`. The single latency rule
/// shared by whole-program lowering, segment re-lowering and the
/// partitioner cost models.
void annotate_op(LayerOp& op, const hw::AcceleratorConfig& config,
                 int time_bits, int weight_bits,
                 hw::WeightPlacement placement);

/// One contiguous op range of a partitioned program — the unit of pipeline-
/// parallel execution. The accelerator is a layer-wise dataflow machine, so
/// any interior op boundary is a legal cut point; the interface crossing a
/// cut is the requantized T-bit activation-code tensor of the upstream op
/// (`in_shape` here, `out_shape` of the predecessor).
///
/// Two lowering modes (make_segments' SegmentLowering):
///   * inherited — the segment borrows the monolithic program's placement
///     and latency annotations (`relowered` stays null). Pipelined execution
///     is then bit-identical to monolithic execution including cycles.
///   * re-lowered — the segment carries its own self-contained LayerProgram
///     compiled against the device's hw::Config (`relowered` non-null):
///     placement, buffer sizing and latency are planned per device, so a
///     stage whose parameters fit its BRAM budget runs with on-chip weights
///     even when the monolithic plan streams from DRAM. Logits stay
///     bit-identical; per-stage cycles/resources are allowed (and expected)
///     to improve.
struct ProgramSegment {
  int index = 0;          ///< position of this segment in the pipeline
  std::size_t begin = 0;  ///< first op of the segment (inclusive)
  std::size_t end = 0;    ///< one past the segment's last op

  Shape in_shape;         ///< activation-code tensor entering the segment
  Shape out_shape;        ///< tensor leaving it (logits for the final segment)
  bool in_is_1d = false;  ///< entry activations live in the 1-D buffer pair
  bool final_segment = false;  ///< contains the program's last op

  // Cut interfaces in bits (numel * T of the activation-code tensor): what
  // an inter-device stream link must carry per image. `out_cut_bits` is 0 on
  // the final segment (logits leave through the host interface instead).
  std::int64_t in_cut_bits = 0;
  std::int64_t out_cut_bits = 0;

  // Aggregates over the segment's ops (valid on hardware-lowered programs;
  // computed from the re-lowered annotations when `relowered` is set):
  std::int64_t predicted_cycles = 0;   ///< sum of per-op latency annotations
  std::int64_t param_bits = 0;         ///< total parameter storage
  std::int64_t onchip_param_bits = 0;  ///< parameters placed in BRAM

  /// The segment's own per-device program (null in inherited mode). Shared
  /// so copies of the segment — and the stage engines borrowing the program
  /// — stay valid however the segment vector is moved around.
  std::shared_ptr<const LayerProgram> relowered;

  std::size_t size() const { return end - begin; }
  bool is_relowered() const { return relowered != nullptr; }
};

/// How make_segments annotates the produced segments (see ProgramSegment).
enum class SegmentLowering { kInherit, kRelower };

/// True when execution entering the program at op `begin` reads the 1-D
/// activation buffer pair (the op sits downstream of the flatten transfer).
/// The single copy of the buffer-entry rule: ProgramSegment::in_is_1d and
/// the accelerator's mid-program entry path both derive from this.
bool entry_is_1d(const LayerProgram& program, std::size_t begin);

/// Split a hardware-lowered program at the given interior op indices
/// (strictly increasing, each in (0, size())): `cuts = {3, 5}` yields the
/// segments [0,3), [3,5), [5,size()). An empty cut list yields the single
/// whole-program segment. Throws ContractViolation on invalid cuts.
/// With SegmentLowering::kRelower each segment additionally carries its own
/// per-device program (`lower(network, begin, end, config)`), and the
/// segment aggregates reflect the re-lowered placement and latency.
std::vector<ProgramSegment> make_segments(const LayerProgram& program,
                                          const std::vector<std::size_t>& cuts);
std::vector<ProgramSegment> make_segments(const LayerProgram& program,
                                          const std::vector<std::size_t>& cuts,
                                          SegmentLowering lowering);

/// Re-lower one op range of a whole-network program against its own config:
/// shorthand for lower(program.network(), begin, end, program.config()).
LayerProgram relower_range(const LayerProgram& program, std::size_t begin,
                           std::size_t end);

/// The trivial partition: one segment covering the whole program.
ProgramSegment full_segment(const LayerProgram& program);

/// Unit-geometry requirements of a network (largest kernels, widest output
/// rows) — what the compiler needs to derive a design instance.
struct GeometryRequirements {
  bool has_conv = false;
  bool has_pool = false;
  std::int64_t max_conv_kernel = 0;
  std::int64_t max_conv_out_width = 0;
  std::int64_t max_pool_kernel = 0;
  std::int64_t max_pool_out_width = 0;
};
GeometryRequirements scan_geometry(const quant::QuantizedNetwork& qnet);

/// Number of kernel offsets along one axis through which input position
/// `pos` feeds a valid output position: |{ j in [0, k) : (pos + pad - j)
/// >= 0, divisible by stride, quotient < out_extent }|. Exposed so the
/// fast path's prepared coverage tables use the exact same rule as
/// exact_adder_ops().
std::int64_t axis_coverage(std::int64_t pos, std::int64_t k, std::int64_t str,
                           std::int64_t pad, std::int64_t out_extent);

/// Exact fired-adder count of one op given its input activation codes: one
/// addition per (spike, consuming adder), the same event definition the
/// cycle-accurate units and the functional SNN count. Border spikes fan out
/// to fewer adders; this is exact, not a fan-out estimate.
std::int64_t exact_adder_ops(const LayerOp& op, const TensorI64& input_codes);

}  // namespace rsnn::ir
