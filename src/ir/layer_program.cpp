#include "ir/layer_program.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "hw/pingpong.hpp"
#include "hw/weight_memory.hpp"

namespace rsnn::ir {

using quant::QConv2d;
using quant::QFlatten;
using quant::QLinear;
using quant::QPool2d;

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kConv:
      return "conv";
    case OpKind::kPool:
      return "pool";
    case OpKind::kLinear:
      return "linear";
    case OpKind::kFlatten:
      return "flatten";
  }
  return "unknown";
}

OpKind kind_of(const quant::QLayer& layer) {
  if (std::holds_alternative<QConv2d>(layer)) return OpKind::kConv;
  if (std::holds_alternative<QPool2d>(layer)) return OpKind::kPool;
  if (std::holds_alternative<QLinear>(layer)) return OpKind::kLinear;
  return OpKind::kFlatten;
}

std::int64_t layer_param_bits(const quant::QLayer& layer, int weight_bits,
                              int time_bits) {
  const int bias_bits = time_bits + weight_bits + 16;
  if (const auto* conv = std::get_if<QConv2d>(&layer))
    return conv->weight.numel() * weight_bits + conv->bias.numel() * bias_bits;
  if (const auto* fc = std::get_if<QLinear>(&layer))
    return fc->weight.numel() * weight_bits + fc->bias.numel() * bias_bits;
  return 0;
}

Shape op_output_shape(const quant::QLayer& layer, const Shape& input) {
  if (const auto* conv = std::get_if<QConv2d>(&layer)) {
    const std::int64_t oh =
        (input.dim(1) + 2 * conv->padding - conv->kernel) / conv->stride + 1;
    const std::int64_t ow =
        (input.dim(2) + 2 * conv->padding - conv->kernel) / conv->stride + 1;
    return Shape{conv->out_channels, oh, ow};
  }
  if (const auto* pool = std::get_if<QPool2d>(&layer))
    return Shape{input.dim(0), input.dim(1) / pool->kernel,
                 input.dim(2) / pool->kernel};
  if (const auto* fc = std::get_if<QLinear>(&layer))
    return Shape{fc->out_features};
  return Shape{input.numel()};
}

bool LayerProgram::uses_dram() const {
  return std::any_of(ops_.begin(), ops_.end(), [](const LayerOp& op) {
    return op.placement == hw::WeightPlacement::kDram;
  });
}

double LayerProgram::predicted_latency_us() const {
  return static_cast<double>(predicted_total_cycles_) * config().cycle_ns() /
         1000.0;
}

LayerProgram lower(const quant::QuantizedNetwork& qnet) {
  LayerProgram program;
  program.qnet_ = &qnet;
  program.ops_.reserve(qnet.layers.size());

  Shape shape = qnet.input_shape;
  bool flat = false;
  for (std::size_t li = 0; li < qnet.layers.size(); ++li) {
    const quant::QLayer& layer = qnet.layers[li];
    LayerOp op;
    op.kind = kind_of(layer);
    op.layer_index = static_cast<int>(li);
    op.in_shape = shape;
    op.out_shape = op_output_shape(layer, shape);
    op.param_bits = layer_param_bits(layer, qnet.weight_bits, qnet.time_bits);
    if (const auto* conv = std::get_if<QConv2d>(&layer)) {
      op.conv = conv;
      op.requantize = conv->requantize;
      RSNN_REQUIRE(shape.rank() == 3 && shape.dim(0) == conv->in_channels,
                   "conv layer " << li << " channel/rank mismatch");
    } else if (const auto* pool = std::get_if<QPool2d>(&layer)) {
      op.pool = pool;
      RSNN_REQUIRE(shape.rank() == 3, "pool layer " << li << " needs CHW input");
    } else if (const auto* fc = std::get_if<QLinear>(&layer)) {
      op.linear = fc;
      op.requantize = fc->requantize;
      RSNN_REQUIRE(shape.numel() == fc->in_features,
                   "linear layer " << li << " feature mismatch");
    } else {
      flat = true;
    }
    if (flat) op.is_1d = true;
    shape = op.out_shape;
    program.ops_.push_back(std::move(op));
  }
  return program;
}

void annotate_op(LayerOp& op, const hw::AcceleratorConfig& config,
                 int time_bits, int weight_bits,
                 hw::WeightPlacement placement) {
  op.placement = placement;
  switch (op.kind) {
    case OpKind::kConv: {
      const QConv2d& conv = *op.conv;
      RSNN_REQUIRE(conv.kernel <= config.conv.kernel_rows,
                   "conv kernel " << conv.kernel
                                  << " does not fit unit with Y = "
                                  << config.conv.kernel_rows);
      hw::ConvDims dims{conv.in_channels, conv.out_channels,
                        op.in_shape.dim(1), op.in_shape.dim(2),
                        conv.kernel,        conv.stride,
                        conv.padding};
      op.latency =
          hw::conv_latency(dims, config, time_bits, op.placement, weight_bits);
      op.contending_units = static_cast<int>(std::min<std::int64_t>(
          config.num_conv_units,
          ceil_div(conv.out_channels, op.latency.channels_per_unit)));
      op.unit = "conv_units[k=" + std::to_string(conv.kernel) + "]";
      break;
    }
    case OpKind::kPool: {
      RSNN_REQUIRE(op.pool->kernel <= config.pool.kernel_rows,
                   "pool kernel does not fit pooling unit");
      op.latency = hw::pool_latency(op.in_shape.dim(0), op.in_shape.dim(1),
                                    op.in_shape.dim(2), op.pool->kernel,
                                    config, time_bits);
      op.unit = "pool_unit";
      break;
    }
    case OpKind::kLinear: {
      op.latency =
          hw::linear_latency(op.linear->in_features, op.linear->out_features,
                             config, time_bits, op.placement, weight_bits);
      op.unit = "linear_unit";
      break;
    }
    case OpKind::kFlatten: {
      op.latency = hw::LayerLatency{};
      op.latency.total_cycles = hw::flatten_transfer_cycles(
          op.in_shape.numel(), time_bits, config.timing);
      op.latency.compute_cycles = op.latency.total_cycles;
      op.unit = "buffer transfer";
      break;
    }
  }
}

LayerProgram lower(const quant::QuantizedNetwork& qnet,
                   const hw::AcceleratorConfig& config) {
  return lower(qnet, 0, qnet.layers.size(), config);
}

namespace {

/// Annotate the fast-path execution plan: per-conv kernel layout (from the
/// config's policy, or a channel-count heuristic under kAuto) and conv+pool
/// fusion for adjacent pairs. The plan only directs *how* the fast path
/// iterates; the accounting always comes from the latency annotations and
/// the exact activity rules, so every plan is bit-identical.
void plan_fast_path(std::vector<LayerOp>& ops,
                    const hw::FastPathOptions& options) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    LayerOp& op = ops[i];
    if (op.kind != OpKind::kConv) continue;
    switch (options.layout) {
      case hw::LayoutPolicy::kForceChw:
        op.fast_layout = hw::DataLayout::kChw;
        break;
      case hw::LayoutPolicy::kForceHwc:
        op.fast_layout = hw::DataLayout::kHwc;
        break;
      case hw::LayoutPolicy::kAuto:
        // HWC pays one input repack to get contiguous channel inner loops;
        // that amortizes once there are enough input channels per pixel.
        op.fast_layout = op.conv->in_channels >= 8 ? hw::DataLayout::kHwc
                                                   : hw::DataLayout::kChw;
        break;
    }
    // A requantizing conv followed by a pool runs as one fused pass (the
    // pool consumes the conv codes before they round-trip through a
    // buffer). The executor still emits both ops' stats records.
    op.fuse_with_next = options.fuse_conv_pool && op.requantize &&
                        i + 1 < ops.size() && ops[i + 1].kind == OpKind::kPool;
  }
}

}  // namespace

LayerProgram lower(const quant::QuantizedNetwork& qnet, std::size_t begin,
                   std::size_t end, const hw::AcceleratorConfig& config) {
  const LayerProgram full = lower(qnet);
  RSNN_REQUIRE(begin < end && end <= full.size(),
               "op range [" << begin << ", " << end << ") outside [0, "
                            << full.size() << ")");

  LayerProgram program;
  program.qnet_ = &qnet;
  program.ops_.assign(full.ops_.begin() + static_cast<std::ptrdiff_t>(begin),
                      full.ops_.begin() + static_cast<std::ptrdiff_t>(end));
  program.entry_1d_ = entry_is_1d(full, begin);
  program.has_hw_ = true;
  program.config_ = config;

  // Placement is planned against this range's own parameter footprint: the
  // device runs only these ops, so only their parameters compete for BRAM.
  const std::vector<hw::WeightPlacement> placement =
      hw::plan_placement(qnet, begin, end, config.memory);

  // Ping-pong buffers sized to the range's own feature maps, seeded with the
  // activations entering the range (which land in the 1-D pair when the
  // range starts downstream of the flatten transfer).
  std::int64_t max2d = 0;
  std::int64_t max1d = 0;
  const std::int64_t entry_bits =
      hw::activation_bits(program.ops_.front().in_shape, qnet.time_bits);
  (program.entry_1d_ ? max1d : max2d) = entry_bits;

  for (std::size_t pos = 0; pos < program.ops_.size(); ++pos) {
    LayerOp& op = program.ops_[pos];
    annotate_op(op, config, qnet.time_bits, qnet.weight_bits, placement[pos]);
    program.predicted_total_cycles_ += op.latency.total_cycles;

    const std::int64_t bits =
        hw::activation_bits(op.out_shape, qnet.time_bits);
    if (op.is_1d)
      max1d = std::max(max1d, bits);
    else
      max2d = std::max(max2d, bits);
  }
  program.buffer_plan_.buffer2d_bits_each = std::max<std::int64_t>(max2d, 1);
  program.buffer_plan_.buffer1d_bits_each = std::max<std::int64_t>(max1d, 1);
  plan_fast_path(program.ops_, config.fast_path);
  return program;
}

bool entry_is_1d(const LayerProgram& program, std::size_t begin) {
  RSNN_REQUIRE(begin < program.size(), "entry op outside the program");
  if (begin == 0) return program.entry_buffer_is_1d();
  return program.op(begin - 1).is_1d;
}

std::vector<ProgramSegment> make_segments(
    const LayerProgram& program, const std::vector<std::size_t>& cuts) {
  return make_segments(program, cuts, SegmentLowering::kInherit);
}

std::vector<ProgramSegment> make_segments(const LayerProgram& program,
                                          const std::vector<std::size_t>& cuts,
                                          SegmentLowering lowering) {
  RSNN_REQUIRE(program.size() > 0, "cannot segment an empty program");
  RSNN_REQUIRE(program.has_hw_annotations(),
               "segments need a hardware-lowered program (placement and "
               "latency aggregates)");
  RSNN_REQUIRE(lowering == SegmentLowering::kInherit ||
                   program.whole_network(),
               "per-device re-lowering partitions a whole-network program");
  const std::size_t n_ops = program.size();

  std::vector<std::size_t> bounds;
  bounds.reserve(cuts.size() + 2);
  bounds.push_back(0);
  for (const std::size_t cut : cuts) {
    RSNN_REQUIRE(cut > 0 && cut < n_ops,
                 "cut point " << cut << " outside interior (0, " << n_ops
                              << ")");
    RSNN_REQUIRE(cut > bounds.back(),
                 "cut points must be strictly increasing");
    bounds.push_back(cut);
  }
  bounds.push_back(n_ops);

  const int T = program.time_bits();
  std::vector<ProgramSegment> segments;
  segments.reserve(bounds.size() - 1);
  for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
    ProgramSegment seg;
    seg.index = static_cast<int>(s);
    seg.begin = bounds[s];
    seg.end = bounds[s + 1];
    seg.in_shape = program.op(seg.begin).in_shape;
    seg.out_shape = program.op(seg.end - 1).out_shape;
    seg.in_is_1d = entry_is_1d(program, seg.begin);
    seg.final_segment = seg.end == n_ops;
    seg.in_cut_bits = hw::activation_bits(seg.in_shape, T);
    seg.out_cut_bits =
        seg.final_segment ? 0 : hw::activation_bits(seg.out_shape, T);
    if (lowering == SegmentLowering::kRelower)
      seg.relowered = std::make_shared<const LayerProgram>(
          relower_range(program, seg.begin, seg.end));
    // Aggregates come from whichever annotations the segment will execute
    // with: the monolithic program's (inherited) or its own (re-lowered).
    for (std::size_t li = seg.begin; li < seg.end; ++li) {
      const LayerOp& op = seg.relowered != nullptr
                              ? seg.relowered->op(li - seg.begin)
                              : program.op(li);
      seg.predicted_cycles += op.latency.total_cycles;
      seg.param_bits += op.param_bits;
      if (op.placement == hw::WeightPlacement::kOnChip)
        seg.onchip_param_bits += op.param_bits;
    }
    segments.push_back(std::move(seg));
  }
  return segments;
}

LayerProgram relower_range(const LayerProgram& program, std::size_t begin,
                           std::size_t end) {
  RSNN_REQUIRE(program.has_hw_annotations(),
               "re-lowering needs a hardware-lowered source program");
  RSNN_REQUIRE(program.whole_network(),
               "re-lowering slices a whole-network program");
  return lower(program.network(), begin, end, program.config());
}

ProgramSegment full_segment(const LayerProgram& program) {
  return make_segments(program, {}).front();
}

GeometryRequirements scan_geometry(const quant::QuantizedNetwork& qnet) {
  GeometryRequirements req;
  Shape shape = qnet.input_shape;
  for (const quant::QLayer& layer : qnet.layers) {
    const Shape out = op_output_shape(layer, shape);
    if (const auto* conv = std::get_if<QConv2d>(&layer)) {
      req.has_conv = true;
      req.max_conv_kernel = std::max(req.max_conv_kernel, conv->kernel);
      req.max_conv_out_width = std::max(req.max_conv_out_width, out.dim(2));
    } else if (const auto* pool = std::get_if<QPool2d>(&layer)) {
      req.has_pool = true;
      req.max_pool_kernel = std::max(req.max_pool_kernel, pool->kernel);
      req.max_pool_out_width = std::max(req.max_pool_out_width, out.dim(2));
    }
    shape = out;
  }
  return req;
}

std::int64_t axis_coverage(std::int64_t pos, std::int64_t k, std::int64_t str,
                           std::int64_t pad, std::int64_t out_extent) {
  std::int64_t n = 0;
  for (std::int64_t j = 0; j < k; ++j) {
    const std::int64_t num = pos + pad - j;
    if (num < 0 || num % str != 0) continue;
    if (num / str >= out_extent) continue;
    ++n;
  }
  return n;
}

std::int64_t exact_adder_ops(const LayerOp& op, const TensorI64& input_codes) {
  RSNN_REQUIRE(input_codes.shape().numel() == op.in_shape.numel(),
               "input codes do not match op input shape");
  const std::int64_t* codes = input_codes.data();
  switch (op.kind) {
    case OpKind::kConv: {
      const QConv2d& conv = *op.conv;
      const std::int64_t ih = op.in_shape.dim(1), iw = op.in_shape.dim(2);
      const std::int64_t oh = op.out_shape.dim(1), ow = op.out_shape.dim(2);
      // Coverage is separable: a spike at (iy, ix) feeds
      // county(iy) * countx(ix) windows, each across all output channels.
      std::vector<std::int64_t> county(static_cast<std::size_t>(ih));
      std::vector<std::int64_t> countx(static_cast<std::size_t>(iw));
      for (std::int64_t iy = 0; iy < ih; ++iy)
        county[static_cast<std::size_t>(iy)] =
            axis_coverage(iy, conv.kernel, conv.stride, conv.padding, oh);
      for (std::int64_t ix = 0; ix < iw; ++ix)
        countx[static_cast<std::size_t>(ix)] =
            axis_coverage(ix, conv.kernel, conv.stride, conv.padding, ow);
      std::int64_t ops = 0;
      std::int64_t i = 0;
      for (std::int64_t c = 0; c < conv.in_channels; ++c)
        for (std::int64_t iy = 0; iy < ih; ++iy) {
          const std::int64_t cy = county[static_cast<std::size_t>(iy)];
          for (std::int64_t ix = 0; ix < iw; ++ix, ++i)
            ops += std::popcount(static_cast<std::uint64_t>(codes[i])) * cy *
                   countx[static_cast<std::size_t>(ix)];
        }
      return ops * conv.out_channels;
    }
    case OpKind::kPool: {
      const std::int64_t k = op.pool->kernel;
      const std::int64_t ih = op.in_shape.dim(1), iw = op.in_shape.dim(2);
      const std::int64_t oh = op.out_shape.dim(1), ow = op.out_shape.dim(2);
      std::int64_t ops = 0;
      std::int64_t i = 0;
      for (std::int64_t c = 0; c < op.in_shape.dim(0); ++c)
        for (std::int64_t iy = 0; iy < ih; ++iy) {
          const bool y_in = iy / k < oh;
          for (std::int64_t ix = 0; ix < iw; ++ix, ++i)
            if (y_in && ix / k < ow)
              ops += std::popcount(static_cast<std::uint64_t>(codes[i]));
        }
      return ops;
    }
    case OpKind::kLinear: {
      std::int64_t spikes = 0;
      for (std::int64_t i = 0; i < input_codes.numel(); ++i)
        spikes += std::popcount(static_cast<std::uint64_t>(codes[i]));
      return spikes * op.linear->out_features;
    }
    case OpKind::kFlatten:
      return 0;
  }
  return 0;
}

}  // namespace rsnn::ir
