// Model of Ju et al., "An FPGA implementation of deep spiking neural
// networks for low-power and fast classification" (Neural Computation
// 2020) — the paper's comparison target [12].
#pragma once

#include "baselines/baseline.hpp"

namespace rsnn::baselines {

/// Published Table III row: MNIST CNN (28x28-64C5-P2-64C5-P2-128-10),
/// 150 MHz, 6110 us latency, 164 fps, 4.6 W, 107k/67k.
BaselineReport ju2020_published();

/// Ops-proportional scaling (non-pipelined engine: throughput == 1/latency).
BaselineReport ju2020_scaled(const BaselineWorkload& workload);

double ju2020_reference_ops_per_step();

}  // namespace rsnn::baselines
