// Baseline accelerator models for the Table III comparison.
//
// The paper compares against two prior FPGA SNN accelerators. We model each
// from its published operating point and architecture description, so the
// comparison harness *computes* the ratios instead of hard-coding them:
//
//   * Ju et al. 2020 [12]  — Zynq-based engine, rate encoding, reuses input
//     feature-map values across conv/max-pool; ~20+ time steps.
//   * Fang et al. 2020 [11] — HLS-generated streaming pipeline using the
//     spike response model on DSP slices; ~10 time steps for 99.2% MNIST.
//
// Each model exposes (a) the published design point verbatim and (b) an
// ops-proportional scaling rule for other workloads / spike-train lengths,
// which is the standard first-order way to extrapolate a fixed-architecture
// accelerator.
#pragma once

#include <cstdint>
#include <string>

namespace rsnn::baselines {

struct BaselineReport {
  std::string name;
  std::string platform;
  std::string dataset;
  std::string network;
  double accuracy_pct = 0.0;
  double frequency_mhz = 0.0;
  double latency_us = 0.0;
  double throughput_fps = 0.0;
  double power_w = 0.0;
  std::int64_t luts = 0;
  std::int64_t flip_flops = 0;
  int time_steps = 0;
};

/// Workload description used for scaling: synaptic operations per time step
/// and the spike-train length the baseline needs for its accuracy.
struct BaselineWorkload {
  double synaptic_ops_per_step = 0.0;
  int time_steps = 0;
};

}  // namespace rsnn::baselines
