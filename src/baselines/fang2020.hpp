// Model of Fang et al., "Encoding, model, and architecture: systematic
// optimization for spiking neural network in FPGAs" (ICCAD 2020) — the
// paper's primary comparison target [11].
#pragma once

#include "baselines/baseline.hpp"

namespace rsnn::baselines {

/// Published Table III row: MNIST CNN (28x28-32C3-P2-32C3-P2-256-10),
/// 125 MHz, 7530 us latency, 2124 fps (layer-pipelined), 4.5 W, 156k/233k.
BaselineReport fang2020_published();

/// Architecture-derived latency estimate for a workload with the given
/// per-step synaptic ops and time-step count, calibrated so the published
/// design point reproduces itself. The design is a streaming pipeline whose
/// initiation interval is set by its slowest layer; latency scales with
/// time steps and ops, throughput with the pipeline interval.
BaselineReport fang2020_scaled(const BaselineWorkload& workload);

/// Synaptic ops per time step of the published MNIST CNN (for calibration
/// checks and the Table III harness).
double fang2020_reference_ops_per_step();

}  // namespace rsnn::baselines
