#include "baselines/ju2020.hpp"

#include "common/assert.hpp"

namespace rsnn::baselines {
namespace {

constexpr double kFrequencyMhz = 150.0;
constexpr double kLatencyUs = 6110.0;
constexpr double kThroughputFps = 164.0;
constexpr double kPowerW = 4.6;
constexpr std::int64_t kLuts = 107000;
constexpr std::int64_t kFfs = 67000;
constexpr double kAccuracyPct = 98.9;
constexpr int kTimeSteps = 20;  // rate-coded steps reported by [12]

// MNIST CNN 1: 28x28 - 64C5 - P2 - 64C5 - P2 - 128 - 10.
//   conv1: 24*24*64*(5*5*1)    =    921,600 MAC/step
//   conv2: 8*8*64*(5*5*64)     =  6,553,600
//   fc1:   1024*128            =    131,072
//   fc2:   128*10              =      1,280
double reference_ops() { return 921600.0 + 6553600.0 + 131072.0 + 1280.0; }

}  // namespace

double ju2020_reference_ops_per_step() { return reference_ops(); }

BaselineReport ju2020_published() {
  BaselineReport r;
  r.name = "Ju et al. [12]";
  r.platform = "Xilinx Zynq (programmable logic)";
  r.dataset = "MNIST";
  r.network = "CNN 64C5-P2-64C5-P2-128-10";
  r.accuracy_pct = kAccuracyPct;
  r.frequency_mhz = kFrequencyMhz;
  r.latency_us = kLatencyUs;
  r.throughput_fps = kThroughputFps;
  r.power_w = kPowerW;
  r.luts = kLuts;
  r.flip_flops = kFfs;
  r.time_steps = kTimeSteps;
  return r;
}

BaselineReport ju2020_scaled(const BaselineWorkload& workload) {
  RSNN_REQUIRE(workload.synaptic_ops_per_step > 0 && workload.time_steps > 0);
  BaselineReport r = ju2020_published();
  const double ops_ratio = workload.synaptic_ops_per_step / reference_ops();
  const double step_ratio =
      static_cast<double>(workload.time_steps) / kTimeSteps;
  r.latency_us = kLatencyUs * ops_ratio * step_ratio;
  // Non-pipelined: one image at a time.
  r.throughput_fps = 1e6 / r.latency_us;
  r.time_steps = workload.time_steps;
  return r;
}

}  // namespace rsnn::baselines
