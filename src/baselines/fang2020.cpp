#include "baselines/fang2020.hpp"

#include "common/assert.hpp"

namespace rsnn::baselines {
namespace {

// Published operating point (paper Table III and [11]).
constexpr double kFrequencyMhz = 125.0;
constexpr double kLatencyUs = 7530.0;
constexpr double kThroughputFps = 2124.0;
constexpr double kPowerW = 4.5;
constexpr std::int64_t kLuts = 156000;
constexpr std::int64_t kFfs = 233000;
constexpr double kAccuracyPct = 99.2;
constexpr int kTimeSteps = 10;  // rate-coded steps for 99.2% (paper Sec. IV-B)

// MNIST CNN 2: 28x28 - 32C3 - P2 - 32C3 - P2 - 256 - 10.
//   conv1: 26*26*32*(3*3*1)    =   194,688 MAC/step
//   conv2: 11*11*32*(3*3*32)   = 1,115,136
//   fc1:   800*256             =   204,800
//   fc2:   256*10              =     2,560
double reference_ops() { return 194688.0 + 1115136.0 + 204800.0 + 2560.0; }

}  // namespace

double fang2020_reference_ops_per_step() { return reference_ops(); }

BaselineReport fang2020_published() {
  BaselineReport r;
  r.name = "Fang et al. [11]";
  r.platform = "Xilinx FPGA (HLS, DSP-based SRM)";
  r.dataset = "MNIST";
  r.network = "CNN 32C3-P2-32C3-P2-256-10";
  r.accuracy_pct = kAccuracyPct;
  r.frequency_mhz = kFrequencyMhz;
  r.latency_us = kLatencyUs;
  r.throughput_fps = kThroughputFps;
  r.power_w = kPowerW;
  r.luts = kLuts;
  r.flip_flops = kFfs;
  r.time_steps = kTimeSteps;
  return r;
}

BaselineReport fang2020_scaled(const BaselineWorkload& workload) {
  RSNN_REQUIRE(workload.synaptic_ops_per_step > 0 && workload.time_steps > 0);
  BaselineReport r = fang2020_published();
  const double ops_ratio = workload.synaptic_ops_per_step / reference_ops();
  const double step_ratio =
      static_cast<double>(workload.time_steps) / kTimeSteps;
  // Streaming pipeline: latency and pipeline interval scale with per-step
  // work and the number of steps processed per inference.
  r.latency_us = kLatencyUs * ops_ratio * step_ratio;
  r.throughput_fps = kThroughputFps / (ops_ratio * step_ratio);
  r.time_steps = workload.time_steps;
  // Resources scale weakly (the pipeline is replicated per layer, not per
  // op); power follows activity. First-order: keep power and resources at
  // the published point — the harness reports them as the design's envelope.
  return r;
}

}  // namespace rsnn::baselines
