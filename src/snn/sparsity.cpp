#include "snn/sparsity.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "encoding/radix.hpp"
#include "snn/radix_snn.hpp"

namespace rsnn::snn {
namespace {

std::string kind_of(const quant::QLayer& layer) {
  if (std::holds_alternative<quant::QConv2d>(layer)) return "conv";
  if (std::holds_alternative<quant::QPool2d>(layer)) return "pool";
  if (std::holds_alternative<quant::QLinear>(layer)) return "linear";
  return "flatten";
}

}  // namespace

SparsityReport analyze_sparsity(const quant::QuantizedNetwork& qnet,
                                const data::Dataset& dataset,
                                const SparsityOptions& options) {
  RSNN_REQUIRE(!dataset.empty(), "empty dataset");
  RSNN_REQUIRE(options.max_samples > 0);
  const std::size_t n = std::min(options.max_samples, dataset.size());

  const RadixSnn snn(qnet);
  const auto shapes = qnet.layer_output_shapes();

  SparsityReport report;
  report.layers.resize(qnet.layers.size());
  for (std::size_t li = 0; li < qnet.layers.size(); ++li) {
    report.layers[li].kind = kind_of(qnet.layers[li]);
    report.layers[li].time_steps = qnet.time_bits;
    report.layers[li].neurons =
        li == 0 ? qnet.input_shape.numel() : shapes[li - 1].numel();
  }

  double total_ops = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    // Encode once and reuse the train for both the run and the input-spike
    // attribution (layer_spikes[k] is the *output* train of non-final layer
    // k; the input train of layer 0 is the encoded image).
    const encoding::SpikeTrain input =
        encoding::radix_encode(dataset.images[s], qnet.time_bits);
    const RadixSnnResult run = snn.run(input, true);
    total_ops += static_cast<double>(run.total_synaptic_ops);

    report.layers[0].mean_spikes += static_cast<double>(input.total_spikes());
    for (std::size_t k = 0; k + 1 < qnet.layers.size() &&
                            k < run.layer_spikes.size();
         ++k)
      report.layers[k + 1].mean_spikes +=
          static_cast<double>(run.layer_spikes[k].total_spikes());
  }

  for (auto& layer : report.layers) {
    layer.mean_spikes /= static_cast<double>(n);
    const double capacity =
        static_cast<double>(layer.neurons) * layer.time_steps;
    layer.spike_rate = capacity > 0 ? layer.mean_spikes / capacity : 0.0;
    report.total_spikes_per_sample += layer.mean_spikes;
  }
  report.total_synaptic_ops_per_sample = total_ops / static_cast<double>(n);

  // Distribute total ops over layers proportionally to input spikes (the
  // functional simulator reports only the total).
  if (report.total_spikes_per_sample > 0) {
    for (auto& layer : report.layers)
      layer.mean_synaptic_ops = report.total_synaptic_ops_per_sample *
                                (layer.mean_spikes / report.total_spikes_per_sample);
  }

  report.dynamic_energy_uj_per_sample =
      report.total_synaptic_ops_per_sample * options.energy_per_add_pj * 1e-6;
  return report;
}

std::string to_string(const SparsityReport& report) {
  std::ostringstream os;
  os << "layer  kind     neurons   spikes/sample  rate     synops/sample\n";
  for (std::size_t i = 0; i < report.layers.size(); ++i) {
    const LayerSparsity& l = report.layers[i];
    char line[160];
    std::snprintf(line, sizeof(line), "%-6zu %-8s %-9lld %-14.1f %-8.4f %.1f\n",
                  i, l.kind.c_str(), static_cast<long long>(l.neurons),
                  l.mean_spikes, l.spike_rate, l.mean_synaptic_ops);
    os << line;
  }
  char tail[200];
  std::snprintf(tail, sizeof(tail),
                "total: %.1f spikes, %.1f synaptic ops, ~%.3f uJ dynamic "
                "energy per sample\n",
                report.total_spikes_per_sample,
                report.total_synaptic_ops_per_sample,
                report.dynamic_energy_uj_per_sample);
  os << tail;
  return os.str();
}

}  // namespace rsnn::snn
