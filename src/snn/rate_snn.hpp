// RateSnn: integrate-and-fire simulator for rate-encoded SNNs.
//
// The baseline the paper argues against: a conventional ANN-to-SNN
// conversion where spike *frequency* carries the value. Neurons integrate
// weighted input spikes and fire (soft reset: subtract threshold) when the
// membrane crosses the threshold. Accuracy approaches the source ANN only
// as O(1/T), which is why such accelerators need tens to hundreds of steps
// (Fang et al. needed ~10 for LeNet-class MNIST; deep nets need hundreds).
//
// Runs directly on the float network's weights (no quantization) — the
// comparison isolates the encoding scheme.
#pragma once

#include <vector>

#include "encoding/spike_train.hpp"
#include "nn/network.hpp"

namespace rsnn::snn {

struct RateSnnConfig {
  int time_steps = 10;
  float threshold = 1.0f;  ///< firing threshold == ClippedReLU ceiling
};

struct RateSnnResult {
  std::vector<float> logits;  ///< accumulated output membrane / T
  int predicted_class = -1;
  std::int64_t total_spikes = 0;
};

class RateSnn {
 public:
  /// The network must be a stack of Conv2d/Pool2d(avg)/Flatten/Linear with
  /// ClippedReLU activations (the same family quantize() accepts).
  RateSnn(const nn::Network& network, RateSnnConfig config);

  /// Run one image (values in [0,1]); input is rate-encoded internally with
  /// evenly spaced spikes.
  RateSnnResult run_image(const TensorF& image) const;

 private:
  const nn::Network& network_;
  RateSnnConfig config_;
};

}  // namespace rsnn::snn
