#include "snn/rate_snn.hpp"

#include "common/assert.hpp"
#include "encoding/rate.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pool2d.hpp"

namespace rsnn::snn {
namespace {

/// Per-step current into a conv layer from (possibly fractional) inputs.
/// Inputs are spike indicators in [0,1]; average pooling between layers can
/// yield fractional "analog spikes", a standard rate-conversion practice.
TensorF conv_current(const nn::Conv2d& conv, const TensorF& input, float bias_share) {
  const auto& cfg = conv.config();
  const std::int64_t ih = input.dim(1), iw = input.dim(2);
  const std::int64_t k = cfg.kernel, str = cfg.stride, pad = cfg.padding;
  const std::int64_t oh = (ih + 2 * pad - k) / str + 1;
  const std::int64_t ow = (iw + 2 * pad - k) / str + 1;
  TensorF out(Shape{cfg.out_channels, oh, ow});
  for (std::int64_t oc = 0; oc < cfg.out_channels; ++oc) {
    const float b = cfg.has_bias ? conv.bias().value(oc) * bias_share : 0.0f;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float acc = b;
        for (std::int64_t ic = 0; ic < cfg.in_channels; ++ic) {
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t iy = oy * str + ky - pad;
            if (iy < 0 || iy >= ih) continue;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ix = ox * str + kx - pad;
              if (ix < 0 || ix >= iw) continue;
              const float s = input(ic, iy, ix);
              if (s != 0.0f) acc += s * conv.weight().value(oc, ic, ky, kx);
            }
          }
        }
        out(oc, oy, ox) = acc;
      }
    }
  }
  return out;
}

TensorF pool_current(const nn::Pool2d& pool, const TensorF& input) {
  const std::int64_t k = pool.config().kernel;
  const std::int64_t ch = input.dim(0);
  const std::int64_t oh = input.dim(1) / k, ow = input.dim(2) / k;
  const float inv_area = 1.0f / static_cast<float>(k * k);
  TensorF out(Shape{ch, oh, ow});
  for (std::int64_t c = 0; c < ch; ++c)
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0.0f;
        for (std::int64_t ky = 0; ky < k; ++ky)
          for (std::int64_t kx = 0; kx < k; ++kx)
            acc += input(c, oy * k + ky, ox * k + kx);
        out(c, oy, ox) = acc * inv_area;
      }
  return out;
}

TensorF linear_current(const nn::Linear& fc, const TensorF& input, float bias_share) {
  const auto& cfg = fc.config();
  TensorF out(Shape{cfg.out_features});
  for (std::int64_t o = 0; o < cfg.out_features; ++o) {
    float acc = cfg.has_bias ? fc.bias().value(o) * bias_share : 0.0f;
    for (std::int64_t i = 0; i < cfg.in_features; ++i) {
      const float s = input(i);
      if (s != 0.0f) acc += s * fc.weight().value(o, i);
    }
    out(o) = acc;
  }
  return out;
}

}  // namespace

RateSnn::RateSnn(const nn::Network& network, RateSnnConfig config)
    : network_(network), config_(config) {
  RSNN_REQUIRE(config.time_steps >= 1);
  RSNN_REQUIRE(config.threshold > 0.0f);
}

RateSnnResult RateSnn::run_image(const TensorF& image) const {
  auto& net = const_cast<nn::Network&>(network_);
  const int T = config_.time_steps;
  const float theta = config_.threshold;
  const float bias_share = 1.0f / static_cast<float>(T);

  // Identify spiking layers (conv/linear followed by activation) and the
  // final readout layer (last parameterized layer accumulates, never fires).
  int last_param = -1;
  for (int i = 0; i < net.num_layers(); ++i)
    if (dynamic_cast<nn::Conv2d*>(&net.layer(i)) != nullptr ||
        dynamic_cast<nn::Linear*>(&net.layer(i)) != nullptr)
      last_param = i;
  RSNN_REQUIRE(last_param >= 0, "no parameterized layer");

  // Membrane state per parameterized layer, created lazily on first step.
  std::vector<TensorF> membranes(static_cast<std::size_t>(net.num_layers()));

  const encoding::SpikeTrain input_train =
      encoding::rate_encode(image, T);

  RateSnnResult result;
  TensorF output_accumulator;

  for (int t = 0; t < T; ++t) {
    // Materialize this step's input spikes as a CHW tensor (zero-initialized;
    // only the set bits are visited).
    TensorF x(image.shape());
    float* xdata = x.data();
    input_train.for_each_set_bit(t, [&](std::int64_t i) {
      xdata[i] = 1.0f;
      ++result.total_spikes;
    });

    for (int li = 0; li < net.num_layers(); ++li) {
      nn::Layer& layer = net.layer(li);
      if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
        TensorF current = conv_current(*conv, x, bias_share);
        auto& membrane = membranes[static_cast<std::size_t>(li)];
        if (membrane.numel() == 0) membrane = TensorF(current.shape(), 0.0f);
        if (li == last_param) {
          for (std::int64_t i = 0; i < current.numel(); ++i)
            membrane.at_flat(i) += current.at_flat(i);
          x = membrane;  // readout uses raw accumulation
        } else {
          x = TensorF(current.shape());
          for (std::int64_t i = 0; i < current.numel(); ++i) {
            float& v = membrane.at_flat(i);
            v += current.at_flat(i);
            const bool fire = v >= theta;
            if (fire) {
              v -= theta;  // soft reset preserves residual charge
              ++result.total_spikes;
            }
            x.at_flat(i) = fire ? 1.0f : 0.0f;
          }
        }
      } else if (auto* fc = dynamic_cast<nn::Linear*>(&layer)) {
        TensorF current = linear_current(*fc, x, bias_share);
        auto& membrane = membranes[static_cast<std::size_t>(li)];
        if (membrane.numel() == 0) membrane = TensorF(current.shape(), 0.0f);
        if (li == last_param) {
          for (std::int64_t i = 0; i < current.numel(); ++i)
            membrane.at_flat(i) += current.at_flat(i);
          x = membrane;
        } else {
          x = TensorF(current.shape());
          for (std::int64_t i = 0; i < current.numel(); ++i) {
            float& v = membrane.at_flat(i);
            v += current.at_flat(i);
            const bool fire = v >= theta;
            if (fire) {
              v -= theta;
              ++result.total_spikes;
            }
            x.at_flat(i) = fire ? 1.0f : 0.0f;
          }
        }
      } else if (auto* pool = dynamic_cast<nn::Pool2d*>(&layer)) {
        RSNN_REQUIRE(pool->config().kind == nn::PoolKind::kAverage,
                     "rate SNN supports average pooling only");
        x = pool_current(*pool, x);
      } else if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
        x = x.reshaped(Shape{x.numel()});
      } else if (dynamic_cast<nn::ClippedReLU*>(&layer) != nullptr ||
                 dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
        // Spiking dynamics replace the activation.
      } else {
        RSNN_REQUIRE(false, "unsupported layer in rate SNN: " << layer.name());
      }
    }
    output_accumulator = x;
  }

  result.logits.resize(static_cast<std::size_t>(output_accumulator.numel()));
  for (std::int64_t i = 0; i < output_accumulator.numel(); ++i)
    result.logits[static_cast<std::size_t>(i)] =
        output_accumulator.at_flat(i) / static_cast<float>(T);

  int best = 0;
  for (std::size_t c = 1; c < result.logits.size(); ++c)
    if (result.logits[c] > result.logits[static_cast<std::size_t>(best)])
      best = static_cast<int>(c);
  result.predicted_class = best;
  return result;
}

}  // namespace rsnn::snn
