#include "snn/radix_snn.hpp"

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "encoding/radix.hpp"

namespace rsnn::snn {
namespace {

using encoding::SpikeTrain;
using quant::QConv2d;
using quant::QLinear;
using quant::QPool2d;

/// Per-time-step convolution on binary spikes: scatter each spike into the
/// output windows it participates in. Event-driven — work scales with the
/// number of spikes, not the dense loop nest. Counts fired adder ops into
/// `synaptic_ops`; the count and membrane sums are identical to the dense
/// gather formulation (the (oy, ky) <-> iy correspondence is bijective).
///
/// The tap list of each event — which (output position, kernel weight)
/// pairs it feeds — does not depend on the output channel, so it is hoisted
/// out of the per-channel scatter instead of re-deriving the window bounds
/// Cout times per event. `events`/`taps` are caller-owned scratch, reused
/// across steps.
void conv_step(const QConv2d& conv, const SpikeTrain& input, int t,
               TensorI64& membrane, std::int64_t& synaptic_ops,
               std::vector<ConvEvent>& events, std::vector<ConvTap>& taps) {
  const Shape& in_shape = input.neuron_shape();
  const std::int64_t ih = in_shape.dim(1), iw = in_shape.dim(2);
  const std::int64_t k = conv.kernel, str = conv.stride, pad = conv.padding;
  const std::int64_t oh = membrane.dim(1), ow = membrane.dim(2);

  events.clear();
  input.for_each_set_bit(t, [&](std::int64_t neuron) {
    const std::int64_t ix = neuron % iw;
    const std::int64_t rest = neuron / iw;
    events.push_back({static_cast<std::int32_t>(rest / ih),
                      static_cast<std::int32_t>(rest % ih),
                      static_cast<std::int32_t>(ix)});
  });
  if (events.empty()) return;

  const std::int64_t kk = k * k;
  const std::int64_t plane = oh * ow;
  const std::int64_t ch_stride = conv.in_channels * kk;
  const std::int32_t* wdata = conv.weight.data();
  std::int64_t* mdata = membrane.data();
  for (const ConvEvent& ev : events) {
    taps.clear();
    for (std::int64_t ky = 0; ky < k; ++ky) {
      const std::int64_t ynum = ev.iy + pad - ky;
      if (ynum < 0 || ynum % str != 0) continue;
      const std::int64_t oy = ynum / str;
      if (oy >= oh) continue;
      for (std::int64_t kx = 0; kx < k; ++kx) {
        const std::int64_t xnum = ev.ix + pad - kx;
        if (xnum < 0 || xnum % str != 0) continue;
        const std::int64_t ox = xnum / str;
        if (ox >= ow) continue;
        taps.push_back({static_cast<std::int32_t>(oy * ow + ox),
                        static_cast<std::int32_t>(ky * k + kx)});
      }
    }
    if (taps.empty()) continue;
    const std::int32_t* wch0 = wdata + ev.ic * kk;
    for (std::int64_t oc = 0; oc < conv.out_channels; ++oc) {
      std::int64_t* mplane = mdata + oc * plane;
      const std::int32_t* wch = wch0 + oc * ch_stride;
      for (const ConvTap& tap : taps)
        mplane[tap.plane_offset] += wch[tap.weight_offset];
    }
    synaptic_ops +=
        static_cast<std::int64_t>(taps.size()) * conv.out_channels;
  }
}

void pool_step(const QPool2d& pool, const SpikeTrain& input, int t,
               TensorI64& membrane, std::int64_t& synaptic_ops) {
  const Shape& in_shape = input.neuron_shape();
  const std::int64_t iw = in_shape.dim(2), ih = in_shape.dim(1);
  const std::int64_t k = pool.kernel;
  const std::int64_t oh = membrane.dim(1), ow = membrane.dim(2);
  std::int64_t* mdata = membrane.data();
  input.for_each_set_bit(t, [&](std::int64_t neuron) {
    const std::int64_t ix = neuron % iw;
    const std::int64_t rest = neuron / iw;
    const std::int64_t iy = rest % ih, c = rest / ih;
    const std::int64_t oy = iy / k, ox = ix / k;
    if (oy >= oh || ox >= ow) return;  // ragged edge outside every window
    mdata[(c * oh + oy) * ow + ox] += 1;
    ++synaptic_ops;
  });
}

void linear_step(const QLinear& fc, const SpikeTrain& input, int t,
                 TensorI64& membrane, std::int64_t& synaptic_ops) {
  const std::int32_t* w = fc.weight.data();
  std::int64_t* mem = membrane.data();
  input.for_each_set_bit(t, [&](std::int64_t i) {
    for (std::int64_t o = 0; o < fc.out_features; ++o)
      mem[o] += w[o * fc.in_features + i];
    synaptic_ops += fc.out_features;
  });
}

}  // namespace

RadixSnnResult RadixSnn::run(const SpikeTrain& input,
                             bool record_layer_spikes) const {
  return run_range(input, 0, program_.size(), record_layer_spikes);
}

RadixSnnResult RadixSnn::run_range(const SpikeTrain& input, std::size_t begin,
                                   std::size_t end,
                                   bool record_layer_spikes) const {
  const int T = qnet_.time_bits;
  const std::size_t n_ops = program_.size();
  RSNN_REQUIRE(begin < end && end <= n_ops,
               "op range [" << begin << ", " << end << ") outside [0, "
                            << n_ops << ")");
  RSNN_REQUIRE(input.time_steps() == T,
               "input has " << input.time_steps() << " steps, network expects " << T);
  RSNN_REQUIRE(input.neuron_shape() == program_.op(begin).in_shape,
               "input shape mismatch for op " << begin);

  RadixSnnResult result;
  SpikeTrain current = input;

  for (std::size_t li = begin; li < end; ++li) {
    const ir::LayerOp& op = program_.op(li);
    result.total_input_spikes += current.total_spikes();

    if (op.kind == ir::OpKind::kFlatten) {
      // Buffer transfer: same bits, flat neuron indexing.
      current = std::move(current).reshaped(op.out_shape);
      if (record_layer_spikes) result.layer_spikes.push_back(current);
      continue;
    }

    // Temporal integration with the radix left-shift between steps.
    TensorI64 membrane(op.out_shape, std::int64_t{0});
    std::int64_t* mem = membrane.data();
    const std::int64_t mem_n = membrane.numel();
    for (int t = 0; t < T; ++t) {
      for (std::int64_t i = 0; i < mem_n; ++i) mem[i] <<= 1;
      switch (op.kind) {
        case ir::OpKind::kConv:
          conv_step(*op.conv, current, t, membrane, result.total_synaptic_ops,
                    conv_events_, conv_taps_);
          break;
        case ir::OpKind::kPool:
          pool_step(*op.pool, current, t, membrane, result.total_synaptic_ops);
          break;
        case ir::OpKind::kLinear:
          linear_step(*op.linear, current, t, membrane,
                      result.total_synaptic_ops);
          break;
        case ir::OpKind::kFlatten:
          break;  // handled above
      }
    }

    // Output logic: bias, ReLU + requantize (or raw accumulators at the end).
    const TensorI64* bias = op.conv      ? &op.conv->bias
                            : op.linear ? &op.linear->bias
                                        : nullptr;
    const std::int64_t pool_shift = op.pool ? op.pool->shift : -1;

    TensorI64 out(membrane.shape());
    for (std::int64_t i = 0; i < membrane.numel(); ++i) {
      std::int64_t v = membrane.at_flat(i);
      if (pool_shift >= 0) {
        v >>= pool_shift;
        v = saturate_unsigned(v, T);  // exact for power-of-two pooling
      } else {
        // Bias and requantizer shift are per output channel.
        const std::int64_t ch_index =
            membrane.rank() == 3 ? i / (membrane.dim(1) * membrane.dim(2)) : i;
        v += bias ? bias->at_flat(ch_index) : 0;
        if (op.requantize) {
          const int frac_bits = op.conv ? op.conv->frac_for(ch_index)
                                        : op.linear->frac_for(ch_index);
          if (frac_bits >= 0)
            v >>= frac_bits;
          else
            v <<= -frac_bits;
          v = saturate_unsigned(v, T);
        }
      }
      out.at_flat(i) = v;
    }

    if (li + 1 == n_ops && !op.requantize) {
      // Final layer: raw membrane potentials are the logits.
      result.logits.resize(static_cast<std::size_t>(out.numel()));
      for (std::int64_t i = 0; i < out.numel(); ++i)
        result.logits[static_cast<std::size_t>(i)] = out.at_flat(i);
      break;
    }

    // Re-encode output codes as the next layer's spike train.
    encoding::radix_encode_codes_into(out, T, current);
    if (record_layer_spikes) result.layer_spikes.push_back(current);
  }

  if (end == n_ops) {
    RSNN_ENSURE(!result.logits.empty(),
                "network must end in a raw linear layer");
    int best = 0;
    for (std::size_t c = 1; c < result.logits.size(); ++c)
      if (result.logits[c] > result.logits[static_cast<std::size_t>(best)])
        best = static_cast<int>(c);
    result.predicted_class = best;
  }
  return result;
}

RadixSnnResult RadixSnn::run_image(const TensorF& image,
                                   bool record_layer_spikes) const {
  const encoding::SpikeTrain input =
      encoding::radix_encode(image, qnet_.time_bits);
  return run(input, record_layer_spikes);
}

}  // namespace rsnn::snn
