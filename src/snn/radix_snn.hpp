// RadixSnn: functional (untimed) simulator of a radix-encoded SNN.
//
// Processes spike trains layer by layer, time step by time step, exactly as
// the accelerator does:
//
//   for each layer:
//     membrane = 0
//     for t = 0 .. T-1:                       // spike train, MSB first
//       membrane = (membrane << 1) + sum_i W_i * s_i(t)
//     out = requantize(membrane + bias)       // ReLU + T-bit truncation
//     next layer input = radix_encode(out)
//
// This is mathematically identical to QuantizedNetwork::forward (invariant 1
// in DESIGN.md) but exposes the temporal structure: per-layer spike trains
// and spike counts, which the power model consumes as activity factors.
#pragma once

#include <cstdint>
#include <vector>

#include "encoding/spike_train.hpp"
#include "ir/layer_program.hpp"
#include "quant/qnetwork.hpp"

namespace rsnn::snn {

struct RadixSnnResult {
  std::vector<std::int64_t> logits;  ///< final-layer membrane potentials
  int predicted_class = -1;
  std::int64_t total_input_spikes = 0;   ///< events entering layer inputs
  std::int64_t total_synaptic_ops = 0;   ///< adder operations actually fired
  std::vector<encoding::SpikeTrain> layer_spikes;  ///< filled if requested
};

/// A decomposed input event: the (channel, row, column) of one spike.
struct ConvEvent {
  std::int32_t ic, iy, ix;
};

/// One valid tap of an event: the output-plane offset it scatters to and the
/// kernel-window offset of the weight it multiplies.
struct ConvTap {
  std::int32_t plane_offset;
  std::int32_t weight_offset;
};

class RadixSnn {
 public:
  explicit RadixSnn(const quant::QuantizedNetwork& qnet)
      : qnet_(qnet), program_(ir::lower(qnet)) {}

  /// Run one sample given its input spike train (must be radix-encoded with
  /// the network's T).
  RadixSnnResult run(const encoding::SpikeTrain& input,
                     bool record_layer_spikes = false) const;

  /// Run only the op range [begin, end) — segment-scoped execution for
  /// pipeline stages. `input` must be shaped as op `begin`'s input. Logits
  /// are produced only when the range includes the program's final op; for
  /// an interior range the last recorded spike train (request
  /// record_layer_spikes) is the activation crossing the cut.
  RadixSnnResult run_range(const encoding::SpikeTrain& input,
                           std::size_t begin, std::size_t end,
                           bool record_layer_spikes = false) const;

  /// Convenience: encode a float image (values in [0,1)) and run.
  RadixSnnResult run_image(const TensorF& image,
                           bool record_layer_spikes = false) const;

  const quant::QuantizedNetwork& network() const { return qnet_; }
  const ir::LayerProgram& program() const { return program_; }

 private:
  const quant::QuantizedNetwork& qnet_;
  ir::LayerProgram program_;  ///< functional lowering of qnet_

  // Reused conv_step scratch: run() is logically const and engines are
  // single-threaded per instance, so reusing the event/tap buffers across
  // steps removes the per-step allocations from the behavioral hot loop.
  mutable std::vector<ConvEvent> conv_events_;
  mutable std::vector<ConvTap> conv_taps_;
};

}  // namespace rsnn::snn
