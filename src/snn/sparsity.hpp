// Spike sparsity analysis.
//
// Event counts are the currency of SNN efficiency arguments: dynamic energy
// in the adder arrays scales with fired additions, and radix encoding's
// short trains change the event budget fundamentally. This module computes
// per-layer spike statistics of a radix SNN over a dataset and derives the
// event-driven energy estimate that complements hw::estimate_power's
// clock-driven model.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "quant/qnetwork.hpp"

namespace rsnn::snn {

/// Spike statistics of one layer's *input* train, averaged over samples.
struct LayerSparsity {
  std::string kind;
  std::int64_t neurons = 0;
  int time_steps = 0;
  double mean_spikes = 0.0;       ///< events per sample
  double spike_rate = 0.0;        ///< events / (neurons * T)
  double mean_synaptic_ops = 0.0; ///< fired additions per sample
};

struct SparsityReport {
  std::vector<LayerSparsity> layers;
  double total_spikes_per_sample = 0.0;
  double total_synaptic_ops_per_sample = 0.0;
  /// Event-driven dynamic energy estimate: ops * energy-per-add.
  double dynamic_energy_uj_per_sample = 0.0;
};

struct SparsityOptions {
  std::size_t max_samples = 32;
  /// Energy of one fired accumulate at the modeled node/width (pJ). The
  /// default corresponds to a ~24-bit LUT-fabric add at 16 nm.
  double energy_per_add_pj = 1.2;
};

/// Run the functional radix SNN over (a subset of) the dataset and collect
/// per-layer spike statistics.
SparsityReport analyze_sparsity(const quant::QuantizedNetwork& qnet,
                                const data::Dataset& dataset,
                                const SparsityOptions& options = {});

/// Formatted table of a report.
std::string to_string(const SparsityReport& report);

}  // namespace rsnn::snn
