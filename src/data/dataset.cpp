#include "data/dataset.hpp"

#include "common/assert.hpp"

namespace rsnn::data {

const Shape& Dataset::sample_shape() const {
  RSNN_REQUIRE(!images.empty(), "empty dataset");
  return images.front().shape();
}

void Dataset::append(const Dataset& other) {
  RSNN_REQUIRE(num_classes == other.num_classes);
  if (!images.empty() && !other.images.empty())
    RSNN_REQUIRE(sample_shape() == other.sample_shape());
  images.insert(images.end(), other.images.begin(), other.images.end());
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
}

Dataset Dataset::take(std::size_t count) const {
  count = std::min(count, size());
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  out.images.assign(images.begin(),
                    images.begin() + static_cast<std::ptrdiff_t>(count));
  out.labels.assign(labels.begin(),
                    labels.begin() + static_cast<std::ptrdiff_t>(count));
  return out;
}

TrainTestSplit split(const Dataset& dataset, double train_fraction) {
  RSNN_REQUIRE(train_fraction >= 0.0 && train_fraction <= 1.0);
  const auto n_train =
      static_cast<std::size_t>(train_fraction * static_cast<double>(dataset.size()));
  TrainTestSplit out;
  out.train.name = dataset.name + "/train";
  out.test.name = dataset.name + "/test";
  out.train.num_classes = out.test.num_classes = dataset.num_classes;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    Dataset& target = (i < n_train) ? out.train : out.test;
    target.images.push_back(dataset.images[i]);
    target.labels.push_back(dataset.labels[i]);
  }
  return out;
}

std::vector<std::size_t> class_histogram(const Dataset& dataset) {
  std::vector<std::size_t> hist(static_cast<std::size_t>(dataset.num_classes), 0);
  for (const int label : dataset.labels) {
    RSNN_REQUIRE(label >= 0 && label < dataset.num_classes);
    ++hist[static_cast<std::size_t>(label)];
  }
  return hist;
}

}  // namespace rsnn::data
