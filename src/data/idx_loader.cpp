#include "data/idx_loader.hpp"

#include <cstdint>
#include <fstream>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace rsnn::data {
namespace {

std::uint32_t read_be32(std::istream& is) {
  unsigned char bytes[4];
  is.read(reinterpret_cast<char*>(bytes), 4);
  return (static_cast<std::uint32_t>(bytes[0]) << 24) |
         (static_cast<std::uint32_t>(bytes[1]) << 16) |
         (static_cast<std::uint32_t>(bytes[2]) << 8) |
         static_cast<std::uint32_t>(bytes[3]);
}

}  // namespace

std::optional<Dataset> load_idx_pair(const std::string& image_path,
                                     const std::string& label_path,
                                     int pad_to_canvas) {
  std::ifstream images(image_path, std::ios::binary);
  std::ifstream labels(label_path, std::ios::binary);
  if (!images.good() || !labels.good()) return std::nullopt;

  const std::uint32_t image_magic = read_be32(images);
  RSNN_REQUIRE(image_magic == 0x00000803, "bad IDX image magic in " << image_path);
  const std::uint32_t label_magic = read_be32(labels);
  RSNN_REQUIRE(label_magic == 0x00000801, "bad IDX label magic in " << label_path);

  const std::uint32_t count = read_be32(images);
  const std::uint32_t rows = read_be32(images);
  const std::uint32_t cols = read_be32(images);
  const std::uint32_t label_count = read_be32(labels);
  RSNN_REQUIRE(count == label_count, "image/label count mismatch");
  RSNN_REQUIRE(pad_to_canvas >= static_cast<int>(rows) &&
                   pad_to_canvas >= static_cast<int>(cols),
               "canvas smaller than image");

  const int pad_y = (pad_to_canvas - static_cast<int>(rows)) / 2;
  const int pad_x = (pad_to_canvas - static_cast<int>(cols)) / 2;

  Dataset dataset;
  dataset.name = "mnist";
  dataset.num_classes = 10;
  dataset.images.reserve(count);
  dataset.labels.reserve(count);

  std::vector<unsigned char> pixel_buffer(rows * cols);
  for (std::uint32_t i = 0; i < count; ++i) {
    images.read(reinterpret_cast<char*>(pixel_buffer.data()),
                static_cast<std::streamsize>(pixel_buffer.size()));
    char label_byte = 0;
    labels.read(&label_byte, 1);
    RSNN_REQUIRE(images.good() && labels.good(), "truncated IDX file");

    TensorF image(Shape{1, pad_to_canvas, pad_to_canvas}, 0.0f);
    for (std::uint32_t y = 0; y < rows; ++y)
      for (std::uint32_t x = 0; x < cols; ++x)
        image(0, static_cast<std::int64_t>(y) + pad_y,
              static_cast<std::int64_t>(x) + pad_x) =
            static_cast<float>(pixel_buffer[y * cols + x]) / 256.0f;
    dataset.images.push_back(std::move(image));
    dataset.labels.push_back(static_cast<int>(static_cast<unsigned char>(label_byte)));
  }
  RSNN_INFO("loaded " << count << " samples from " << image_path);
  return dataset;
}

std::optional<Dataset> load_mnist(const std::string& directory, bool train,
                                  int pad_to_canvas) {
  const std::string prefix = directory + (train ? "/train" : "/t10k");
  auto result = load_idx_pair(prefix + "-images-idx3-ubyte",
                              prefix + "-labels-idx1-ubyte", pad_to_canvas);
  if (!result) {
    // Some distributions use '.' instead of '-' in extension position.
    result = load_idx_pair(prefix + "-images.idx3-ubyte",
                           prefix + "-labels.idx1-ubyte", pad_to_canvas);
  }
  return result;
}

}  // namespace rsnn::data
