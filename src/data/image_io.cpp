#include "data/image_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace rsnn::data {
namespace {

unsigned char to_byte(float value) {
  return static_cast<unsigned char>(
      std::clamp(value, 0.0f, 1.0f) * 255.0f);
}

}  // namespace

void write_pgm(const TensorF& image, const std::string& path) {
  RSNN_REQUIRE(image.rank() == 3 && image.dim(0) == 1,
               "write_pgm expects [1, H, W]");
  const std::int64_t h = image.dim(1), w = image.dim(2);
  std::ofstream os(path, std::ios::binary);
  RSNN_REQUIRE(os.good(), "cannot open " << path);
  os << "P5\n" << w << " " << h << "\n255\n";
  for (std::int64_t y = 0; y < h; ++y)
    for (std::int64_t x = 0; x < w; ++x) {
      const unsigned char byte = to_byte(image(0, y, x));
      os.write(reinterpret_cast<const char*>(&byte), 1);
    }
  RSNN_REQUIRE(os.good(), "write failure on " << path);
}

void write_ppm(const TensorF& image, const std::string& path) {
  RSNN_REQUIRE(image.rank() == 3 && image.dim(0) == 3,
               "write_ppm expects [3, H, W]");
  const std::int64_t h = image.dim(1), w = image.dim(2);
  std::ofstream os(path, std::ios::binary);
  RSNN_REQUIRE(os.good(), "cannot open " << path);
  os << "P6\n" << w << " " << h << "\n255\n";
  for (std::int64_t y = 0; y < h; ++y)
    for (std::int64_t x = 0; x < w; ++x)
      for (std::int64_t c = 0; c < 3; ++c) {
        const unsigned char byte = to_byte(image(c, y, x));
        os.write(reinterpret_cast<const char*>(&byte), 1);
      }
  RSNN_REQUIRE(os.good(), "write failure on " << path);
}

std::string ascii_art(const TensorF& image) {
  RSNN_REQUIRE(image.rank() == 3 && image.dim(0) == 1,
               "ascii_art expects [1, H, W]");
  static constexpr char kRamp[] = " .:-=+*#%@";
  std::ostringstream os;
  for (std::int64_t y = 0; y < image.dim(1); ++y) {
    for (std::int64_t x = 0; x < image.dim(2); ++x) {
      const float v = std::clamp(image(0, y, x), 0.0f, 0.999f);
      os << kRamp[static_cast<int>(v * 10)];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace rsnn::data
