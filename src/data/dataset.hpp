// Dataset: an in-memory labeled image collection.
//
// Images are CHW float tensors with values in [0, 1) — the domain of a
// radix-encoded spike train. Labels are class indices.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace rsnn::data {

struct Dataset {
  std::string name;
  int num_classes = 0;
  std::vector<TensorF> images;  ///< each CHW, values in [0, 1)
  std::vector<int> labels;

  std::size_t size() const { return images.size(); }
  bool empty() const { return images.empty(); }

  /// Shape of one sample (requires non-empty).
  const Shape& sample_shape() const;

  /// Append another dataset (same sample shape and class count).
  void append(const Dataset& other);

  /// First `count` samples as a new dataset (count clamped to size).
  Dataset take(std::size_t count) const;
};

/// Split into train/test by fraction (deterministic: first part = train).
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit split(const Dataset& dataset, double train_fraction);

/// Per-class sample counts, for sanity checks on generators.
std::vector<std::size_t> class_histogram(const Dataset& dataset);

}  // namespace rsnn::data
