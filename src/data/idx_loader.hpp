// IDX file loader (the MNIST distribution format).
//
// If the user drops the original MNIST files (train-images-idx3-ubyte etc.)
// into a directory, load_mnist() will use them; otherwise callers fall back
// to SynthDigits. Pixel values are scaled to [0, 1) and images are
// zero-padded from 28x28 to the requested canvas (LeNet-5 expects 32x32).
#pragma once

#include <optional>
#include <string>

#include "data/dataset.hpp"

namespace rsnn::data {

/// Load one IDX image file + one IDX label file. Returns nullopt when either
/// file is missing; throws on malformed files.
std::optional<Dataset> load_idx_pair(const std::string& image_path,
                                     const std::string& label_path,
                                     int pad_to_canvas);

/// Load the canonical MNIST train or test split from `directory`.
std::optional<Dataset> load_mnist(const std::string& directory, bool train,
                                  int pad_to_canvas = 32);

}  // namespace rsnn::data
