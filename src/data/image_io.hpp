// Minimal image export: PGM (grayscale) / PPM (RGB) writers so the
// procedural datasets can be inspected with any image viewer, plus an ASCII
// renderer for quick terminal previews.
#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace rsnn::data {

/// Write a [1, H, W] tensor (values in [0,1)) as a binary PGM file.
void write_pgm(const TensorF& image, const std::string& path);

/// Write a [3, H, W] tensor (values in [0,1)) as a binary PPM file.
void write_ppm(const TensorF& image, const std::string& path);

/// ASCII-art rendering of a single-channel image (dark -> ' ', bright -> '#').
std::string ascii_art(const TensorF& image);

}  // namespace rsnn::data
