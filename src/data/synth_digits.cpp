#include "data/synth_digits.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/assert.hpp"

namespace rsnn::data {
namespace {

// 5x7 seed font, one string per digit, '#' = ink. Classic calculator-style
// glyphs chosen for inter-class distinctiveness.
constexpr std::array<const char*, 10> kFont = {
    // 0
    " ### "
    "#   #"
    "#  ##"
    "# # #"
    "##  #"
    "#   #"
    " ### ",
    // 1
    "  #  "
    " ##  "
    "  #  "
    "  #  "
    "  #  "
    "  #  "
    " ### ",
    // 2
    " ### "
    "#   #"
    "    #"
    "   # "
    "  #  "
    " #   "
    "#####",
    // 3
    " ### "
    "#   #"
    "    #"
    "  ## "
    "    #"
    "#   #"
    " ### ",
    // 4
    "   # "
    "  ## "
    " # # "
    "#  # "
    "#####"
    "   # "
    "   # ",
    // 5
    "#####"
    "#    "
    "#### "
    "    #"
    "    #"
    "#   #"
    " ### ",
    // 6
    " ### "
    "#    "
    "#    "
    "#### "
    "#   #"
    "#   #"
    " ### ",
    // 7
    "#####"
    "    #"
    "   # "
    "  #  "
    "  #  "
    " #   "
    " #   ",
    // 8
    " ### "
    "#   #"
    "#   #"
    " ### "
    "#   #"
    "#   #"
    " ### ",
    // 9
    " ### "
    "#   #"
    "#   #"
    " ####"
    "    #"
    "    #"
    " ### ",
};

constexpr int kFontW = 5;
constexpr int kFontH = 7;

bool font_pixel(int digit, int x, int y) {
  if (x < 0 || x >= kFontW || y < 0 || y >= kFontH) return false;
  return kFont[static_cast<std::size_t>(digit)][y * kFontW + x] == '#';
}

/// Signed distance-ish coverage: fraction of ink within `radius` of the
/// (continuous) font coordinate, sampled on the font grid.
double ink_coverage(int digit, double fx, double fy, double radius) {
  const int x0 = static_cast<int>(std::floor(fx - radius));
  const int x1 = static_cast<int>(std::ceil(fx + radius));
  const int y0 = static_cast<int>(std::floor(fy - radius));
  const int y1 = static_cast<int>(std::ceil(fy + radius));
  double best = 0.0;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      if (!font_pixel(digit, x, y)) continue;
      // Distance from sample point to the unit cell around (x, y).
      const double dx = std::max({static_cast<double>(x) - fx,
                                  fx - (static_cast<double>(x) + 1.0), 0.0});
      const double dy = std::max({static_cast<double>(y) - fy,
                                  fy - (static_cast<double>(y) + 1.0), 0.0});
      const double dist = std::hypot(dx, dy);
      // Soft edge: full ink inside, linear falloff over half a pixel.
      const double coverage = std::clamp(1.0 - (dist - radius) * 2.0, 0.0, 1.0);
      best = std::max(best, coverage);
    }
  }
  return best;
}

}  // namespace

TensorF render_digit(int digit, int canvas, double shift_x, double shift_y,
                     double scale, double shear, double thickness,
                     double intensity, double noise_stddev, Rng& rng) {
  RSNN_REQUIRE(digit >= 0 && digit <= 9);
  RSNN_REQUIRE(canvas >= 8);

  TensorF image(Shape{1, canvas, canvas}, 0.0f);

  // The glyph occupies ~60% of the canvas at scale 1.
  const double glyph_height = 0.6 * canvas * scale;
  const double pixels_per_cell = glyph_height / kFontH;
  const double glyph_width = pixels_per_cell * kFontW;
  const double origin_x = (canvas - glyph_width) / 2.0 + shift_x;
  const double origin_y = (canvas - glyph_height) / 2.0 + shift_y;
  const double radius = thickness / pixels_per_cell;

  for (int py = 0; py < canvas; ++py) {
    for (int px = 0; px < canvas; ++px) {
      // Map canvas pixel center to font coordinates (inverse shear about the
      // glyph center so the digit stays inside the canvas).
      const double cy = py + 0.5 - origin_y;
      double cx = px + 0.5 - origin_x;
      cx -= shear * (cy - glyph_height / 2.0);
      const double fx = cx / pixels_per_cell;
      const double fy = cy / pixels_per_cell;
      const double ink = ink_coverage(digit, fx, fy, radius);
      if (ink <= 0.0) continue;
      image(0, py, px) = static_cast<float>(ink * intensity);
    }
  }

  if (noise_stddev > 0.0) {
    for (std::int64_t i = 0; i < image.numel(); ++i) {
      const double noisy = image.at_flat(i) + noise_stddev * rng.next_gaussian();
      image.at_flat(i) = static_cast<float>(std::clamp(noisy, 0.0, 0.999));
    }
  } else {
    for (std::int64_t i = 0; i < image.numel(); ++i)
      image.at_flat(i) = std::clamp(image.at_flat(i), 0.0f, 0.999f);
  }
  return image;
}

Dataset make_synth_digits(const SynthDigitsConfig& config) {
  Dataset dataset;
  dataset.name = "synth_digits";
  dataset.num_classes = 10;
  dataset.images.reserve(config.num_samples);
  dataset.labels.reserve(config.num_samples);

  Rng rng(config.seed);
  for (std::size_t i = 0; i < config.num_samples; ++i) {
    const int digit = static_cast<int>(i % 10);
    const double shift_x = rng.next_double(-config.max_shift, config.max_shift);
    const double shift_y = rng.next_double(-config.max_shift, config.max_shift);
    const double scale = rng.next_double(config.min_scale, config.max_scale);
    const double shear = rng.next_double(-config.max_shear, config.max_shear);
    const double thickness = rng.next_double(0.15, config.max_thickness);
    const double intensity = rng.next_double(config.intensity_min, 0.999);
    dataset.images.push_back(render_digit(digit, config.canvas, shift_x,
                                          shift_y, scale, shear, thickness,
                                          intensity, config.noise_stddev, rng));
    dataset.labels.push_back(digit);
  }
  return dataset;
}

}  // namespace rsnn::data
