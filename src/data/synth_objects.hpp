// SynthObjects: a procedural CIFAR-100-class dataset.
//
// Substitution note (see DESIGN.md §3): the paper evaluates VGG-11 on
// CIFAR-100. This generator produces a 100-class, 3x32x32 task. Each class
// is defined by a deterministic parameter vector (shape family, two-color
// palette, texture frequency/orientation, background gradient); samples
// jitter those parameters and add noise. The classes are separable but not
// trivially so, which is what the accuracy-vs-time-steps trend needs.
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace rsnn::data {

struct SynthObjectsConfig {
  int canvas = 32;
  int num_classes = 100;
  std::size_t num_samples = 5000;
  std::uint64_t seed = 1234;
  double noise_stddev = 0.04;
};

Dataset make_synth_objects(const SynthObjectsConfig& config = {});

}  // namespace rsnn::data
