#include "data/synth_objects.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rsnn::data {
namespace {

constexpr int kNumShapeFamilies = 5;

/// Deterministic per-class style derived from the class index.
struct ClassStyle {
  int shape_family;      ///< 0=disc, 1=ring, 2=bar, 3=cross, 4=blob
  double hue_fg;         ///< foreground hue in [0, 1)
  double hue_bg;         ///< background hue
  double texture_freq;   ///< stripes per canvas
  double texture_angle;  ///< radians
  double size;           ///< base radius as fraction of canvas
};

ClassStyle style_for_class(int cls, int num_classes) {
  // Spread classes over the style space with low-discrepancy steps so that
  // neighbouring class indices get dissimilar styles.
  const double u = static_cast<double>(cls) * 0.6180339887498949;  // golden ratio
  const double v = static_cast<double>(cls) * 0.7548776662466927;
  ClassStyle s;
  s.shape_family = cls % kNumShapeFamilies;
  s.hue_fg = u - std::floor(u);
  s.hue_bg = v - std::floor(v);
  s.texture_freq = 2.0 + static_cast<double>((cls / kNumShapeFamilies) %
                                             5);  // 2..6 stripes
  s.texture_angle = (static_cast<double>(cls % 8) / 8.0) * M_PI;
  s.size = 0.22 + 0.12 * (static_cast<double>((cls * 7) % num_classes) /
                          static_cast<double>(num_classes));
  return s;
}

/// HSV (s=1) to RGB with value v.
void hue_to_rgb(double hue, double value, double rgb[3]) {
  const double h6 = hue * 6.0;
  const int sector = static_cast<int>(h6) % 6;
  const double f = h6 - std::floor(h6);
  const double p = 0.0, q = 1.0 - f, t = f;
  double r = 0, g = 0, b = 0;
  switch (sector) {
    case 0: r = 1; g = t; b = p; break;
    case 1: r = q; g = 1; b = p; break;
    case 2: r = p; g = 1; b = t; break;
    case 3: r = p; g = q; b = 1; break;
    case 4: r = t; g = p; b = 1; break;
    default: r = 1; g = p; b = q; break;
  }
  rgb[0] = r * value;
  rgb[1] = g * value;
  rgb[2] = b * value;
}

/// Shape mask value in [0,1] at normalized coordinates (x, y) in [-1, 1].
double shape_mask(int family, double x, double y, double size) {
  const double r = std::hypot(x, y);
  auto soft = [](double signed_dist) {
    return std::clamp(0.5 - signed_dist * 8.0, 0.0, 1.0);
  };
  switch (family) {
    case 0:  // disc
      return soft(r - size);
    case 1:  // ring
      return soft(std::abs(r - size) - size * 0.35);
    case 2:  // bar
      return soft(std::abs(y) - size * 0.45) * soft(std::abs(x) - size * 1.4);
    case 3: {  // cross
      const double horizontal = soft(std::abs(y) - size * 0.3) * soft(std::abs(x) - size * 1.2);
      const double vertical = soft(std::abs(x) - size * 0.3) * soft(std::abs(y) - size * 1.2);
      return std::max(horizontal, vertical);
    }
    default: {  // blob: disc modulated by angular lobes
      const double theta = std::atan2(y, x);
      const double lobes = size * (1.0 + 0.35 * std::sin(3.0 * theta));
      return soft(r - lobes);
    }
  }
}

}  // namespace

Dataset make_synth_objects(const SynthObjectsConfig& config) {
  RSNN_REQUIRE(config.num_classes >= 2 && config.canvas >= 8);
  Dataset dataset;
  dataset.name = "synth_objects";
  dataset.num_classes = config.num_classes;
  dataset.images.reserve(config.num_samples);
  dataset.labels.reserve(config.num_samples);

  Rng rng(config.seed);
  const int canvas = config.canvas;

  for (std::size_t i = 0; i < config.num_samples; ++i) {
    const int cls = static_cast<int>(i % static_cast<std::size_t>(config.num_classes));
    const ClassStyle style = style_for_class(cls, config.num_classes);

    // Sample-level jitter.
    const double cx = rng.next_double(-0.15, 0.15);
    const double cy = rng.next_double(-0.15, 0.15);
    const double size = style.size * rng.next_double(0.85, 1.15);
    const double angle = style.texture_angle + rng.next_double(-0.2, 0.2);
    const double hue_jitter = rng.next_double(-0.03, 0.03);
    const double fg_value = rng.next_double(0.75, 0.999);
    const double bg_value = rng.next_double(0.25, 0.45);

    double fg_rgb[3], bg_rgb[3];
    hue_to_rgb(style.hue_fg + hue_jitter - std::floor(style.hue_fg + hue_jitter),
               fg_value, fg_rgb);
    hue_to_rgb(style.hue_bg - std::floor(style.hue_bg), bg_value, bg_rgb);

    TensorF image(Shape{3, canvas, canvas});
    const double ca = std::cos(angle), sa = std::sin(angle);

    for (int py = 0; py < canvas; ++py) {
      for (int px = 0; px < canvas; ++px) {
        const double x = (2.0 * (px + 0.5) / canvas - 1.0) - cx;
        const double y = (2.0 * (py + 0.5) / canvas - 1.0) - cy;
        const double mask = shape_mask(style.shape_family, x, y, size);
        // Striped texture on the foreground object.
        const double stripe_coord = (x * ca + y * sa) * style.texture_freq * M_PI;
        const double stripes = 0.75 + 0.25 * std::sin(stripe_coord);
        // Background gets a soft diagonal gradient.
        const double grad = 0.8 + 0.2 * (x + y) * 0.5;
        for (int c = 0; c < 3; ++c) {
          const double fg = fg_rgb[c] * stripes;
          const double bg = bg_rgb[c] * grad;
          double value = bg + (fg - bg) * mask;
          value += config.noise_stddev * rng.next_gaussian();
          image(c, py, px) = static_cast<float>(std::clamp(value, 0.0, 0.999));
        }
      }
    }
    dataset.images.push_back(std::move(image));
    dataset.labels.push_back(cls);
  }
  return dataset;
}

}  // namespace rsnn::data
