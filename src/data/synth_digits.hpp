// SynthDigits: a procedural MNIST-class dataset.
//
// Substitution note (see DESIGN.md §3): the paper evaluates on MNIST. This
// generator renders the ten digits from a 5x7 seed font into a configurable
// canvas (default 32x32, LeNet-5's input size) with randomized translation,
// scale, stroke thickness, shear, per-pixel noise and intensity jitter —
// yielding a 10-class single-channel task of the same shape and difficulty
// class, fully deterministic given a seed.
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace rsnn::data {

struct SynthDigitsConfig {
  int canvas = 32;            ///< output is [1, canvas, canvas]
  std::size_t num_samples = 2000;
  std::uint64_t seed = 42;
  double max_shift = 2.5;     ///< random translation in pixels
  double min_scale = 0.80;    ///< glyph scale range
  double max_scale = 1.15;
  double max_shear = 0.15;    ///< horizontal shear factor
  double max_thickness = 0.8; ///< extra stroke radius in pixels
  double noise_stddev = 0.05; ///< additive Gaussian pixel noise
  double intensity_min = 0.7; ///< foreground intensity jitter
};

/// Generate a balanced dataset (labels cycle 0..9).
Dataset make_synth_digits(const SynthDigitsConfig& config = {});

/// Render a single digit with explicit transform parameters (exposed for
/// tests and the dataset explorer example).
TensorF render_digit(int digit, int canvas, double shift_x, double shift_y,
                     double scale, double shear, double thickness,
                     double intensity, double noise_stddev, Rng& rng);

}  // namespace rsnn::data
