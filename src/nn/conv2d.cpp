#include "nn/conv2d.hpp"

#include <cmath>
#include <sstream>

#include "nn/fake_quant.hpp"

namespace rsnn::nn {

Conv2d::Conv2d(Conv2dConfig config)
    : config_(config),
      weight_("weight", Shape{config.out_channels, config.in_channels,
                              config.kernel, config.kernel}),
      bias_("bias", Shape{config.out_channels}) {
  RSNN_REQUIRE(config.in_channels > 0 && config.out_channels > 0);
  RSNN_REQUIRE(config.kernel > 0 && config.stride > 0 && config.padding >= 0);
}

void Conv2d::init_params(Rng& rng) {
  const double fan_in = static_cast<double>(config_.in_channels) *
                        static_cast<double>(config_.kernel * config_.kernel);
  const double bound = std::sqrt(6.0 / fan_in);
  for (std::int64_t i = 0; i < weight_.value.numel(); ++i)
    weight_.value.at_flat(i) = static_cast<float>(rng.next_double(-bound, bound));
  bias_.value.fill(0.0f);
}

Shape Conv2d::output_shape(const Shape& input_shape) const {
  RSNN_REQUIRE(input_shape.rank() == 4, "Conv2d expects NCHW input");
  RSNN_REQUIRE(input_shape.dim(1) == config_.in_channels,
               "Conv2d channel mismatch: got " << input_shape.dim(1)
                                               << ", expected " << config_.in_channels);
  const std::int64_t h = input_shape.dim(2) + 2 * config_.padding;
  const std::int64_t w = input_shape.dim(3) + 2 * config_.padding;
  RSNN_REQUIRE(h >= config_.kernel && w >= config_.kernel,
               "input smaller than kernel");
  const std::int64_t oh = (h - config_.kernel) / config_.stride + 1;
  const std::int64_t ow = (w - config_.kernel) / config_.stride + 1;
  return Shape{input_shape.dim(0), config_.out_channels, oh, ow};
}

const TensorF& Conv2d::effective_weight() {
  if (config_.weight_quant_bits <= 0) return weight_.value;
  fq_weight_ = fake_quantize_weights(weight_.value, config_.weight_quant_bits);
  return fq_weight_;
}

TensorF Conv2d::forward(const TensorF& input, bool training) {
  const Shape out_shape = output_shape(input.shape());
  if (training) cached_input_ = input;
  const TensorF& w = effective_weight();

  const std::int64_t batch = input.dim(0);
  const std::int64_t cin = config_.in_channels;
  const std::int64_t cout = config_.out_channels;
  const std::int64_t ih = input.dim(2), iw = input.dim(3);
  const std::int64_t k = config_.kernel, str = config_.stride, pad = config_.padding;
  const std::int64_t oh = out_shape.dim(2), ow = out_shape.dim(3);

  TensorF out(out_shape);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t oc = 0; oc < cout; ++oc) {
      const float b = config_.has_bias ? bias_.value(oc) : 0.0f;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float acc = b;
          for (std::int64_t ic = 0; ic < cin; ++ic) {
            for (std::int64_t ky = 0; ky < k; ++ky) {
              const std::int64_t iy = oy * str + ky - pad;
              if (iy < 0 || iy >= ih) continue;
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t ix = ox * str + kx - pad;
                if (ix < 0 || ix >= iw) continue;
                acc += input(n, ic, iy, ix) * w(oc, ic, ky, kx);
              }
            }
          }
          out(n, oc, oy, ox) = acc;
        }
      }
    }
  }
  return out;
}

TensorF Conv2d::backward(const TensorF& grad_output) {
  RSNN_REQUIRE(cached_input_.numel() > 0,
               "backward() before forward(training=true)");
  const TensorF& input = cached_input_;
  // Straight-through estimator: the input gradient flows through the
  // quantized weights the forward pass actually used, while the weight
  // gradient updates the latent full-precision weights.
  const TensorF& w =
      config_.weight_quant_bits > 0 ? fq_weight_ : weight_.value;
  const std::int64_t batch = input.dim(0);
  const std::int64_t cin = config_.in_channels;
  const std::int64_t cout = config_.out_channels;
  const std::int64_t ih = input.dim(2), iw = input.dim(3);
  const std::int64_t k = config_.kernel, str = config_.stride, pad = config_.padding;
  const std::int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);

  TensorF grad_input(input.shape(), 0.0f);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t oc = 0; oc < cout; ++oc) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const float g = grad_output(n, oc, oy, ox);
          if (g == 0.0f) continue;
          if (config_.has_bias) bias_.grad(oc) += g;
          for (std::int64_t ic = 0; ic < cin; ++ic) {
            for (std::int64_t ky = 0; ky < k; ++ky) {
              const std::int64_t iy = oy * str + ky - pad;
              if (iy < 0 || iy >= ih) continue;
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t ix = ox * str + kx - pad;
                if (ix < 0 || ix >= iw) continue;
                weight_.grad(oc, ic, ky, kx) += g * input(n, ic, iy, ix);
                grad_input(n, ic, iy, ix) += g * w(oc, ic, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<Param*> Conv2d::params() {
  if (config_.has_bias) return {&weight_, &bias_};
  return {&weight_};
}

std::string Conv2d::describe() const {
  std::ostringstream os;
  os << "Conv2d(" << config_.in_channels << " -> " << config_.out_channels
     << ", k=" << config_.kernel << ", s=" << config_.stride
     << ", p=" << config_.padding << ")";
  return os.str();
}

}  // namespace rsnn::nn
