#include "nn/fake_quant.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rsnn::nn {

int choose_weight_frac_bits(const TensorF& weights, int bits) {
  RSNN_REQUIRE(bits >= 2 && bits <= 16);
  const std::int64_t q_max = (std::int64_t{1} << (bits - 1)) - 1;
  double max_abs = 0.0;
  for (std::int64_t i = 0; i < weights.numel(); ++i)
    max_abs =
        std::max(max_abs, std::abs(static_cast<double>(weights.at_flat(i))));
  if (max_abs == 0.0) return 0;

  int f = static_cast<int>(
      std::floor(std::log2(static_cast<double>(q_max) / max_abs)));
  while (std::llround(max_abs * std::ldexp(1.0, f + 1)) <= q_max) ++f;
  while (std::llround(max_abs * std::ldexp(1.0, f)) > q_max) --f;
  return f;
}

TensorI quantize_weights_to_int(const TensorF& weights, int frac_bits,
                                int bits) {
  RSNN_REQUIRE(bits >= 2 && bits <= 16);
  const std::int64_t q_max = (std::int64_t{1} << (bits - 1)) - 1;
  const double scale = std::ldexp(1.0, frac_bits);
  TensorI out(weights.shape());
  for (std::int64_t i = 0; i < weights.numel(); ++i) {
    const std::int64_t q =
        std::llround(static_cast<double>(weights.at_flat(i)) * scale);
    out.at_flat(i) = static_cast<std::int32_t>(std::clamp(q, -q_max, q_max));
  }
  return out;
}

TensorF fake_quantize_weights(const TensorF& weights, int bits) {
  const int f = choose_weight_frac_bits(weights, bits);
  const TensorI q = quantize_weights_to_int(weights, f, bits);
  const float step = static_cast<float>(std::ldexp(1.0, -f));
  TensorF out(weights.shape());
  for (std::int64_t i = 0; i < weights.numel(); ++i)
    out.at_flat(i) = static_cast<float>(q.at_flat(i)) * step;
  return out;
}

}  // namespace rsnn::nn
