#include "nn/optimizer.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rsnn::nn {

Sgd::Sgd(std::vector<Param*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const Param* p : params_) velocity_.emplace_back(p->value.shape(), 0.0f);
}

void Sgd::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param& p = *params_[pi];
    TensorF& vel = velocity_[pi];
    for (std::int64_t i = 0; i < p.value.numel(); ++i) {
      float g = p.grad.at_flat(i);
      if (config_.weight_decay != 0.0f)
        g += config_.weight_decay * p.value.at_flat(i);
      float& v = vel.at_flat(i);
      v = config_.momentum * v + g;
      p.value.at_flat(i) -= config_.learning_rate * v;
    }
  }
}

Adam::Adam(std::vector<Param*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.shape(), 0.0f);
    v_.emplace_back(p->value.shape(), 0.0f);
  }
}

void Adam::step() {
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(step_count_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param& p = *params_[pi];
    for (std::int64_t i = 0; i < p.value.numel(); ++i) {
      float g = p.grad.at_flat(i);
      if (config_.weight_decay != 0.0f)
        g += config_.weight_decay * p.value.at_flat(i);
      float& m = m_[pi].at_flat(i);
      float& v = v_[pi].at_flat(i);
      m = config_.beta1 * m + (1.0f - config_.beta1) * g;
      v = config_.beta2 * v + (1.0f - config_.beta2) * g * g;
      const float m_hat = m / bc1;
      const float v_hat = v / bc2;
      p.value.at_flat(i) -=
          config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
    }
  }
}

}  // namespace rsnn::nn
