// BatchNorm2d: per-channel batch normalization for NCHW tensors.
//
// Deep plain stacks (VGG-style) with bounded activations train poorly
// without normalization. BatchNorm is a training-time aid only: the
// accelerator has no normalization hardware, so quant::quantize requires
// batch norms to be *folded* into the preceding convolution first
// (quant::fold_batchnorm), which is exact at inference time:
//
//   bn(conv(x))  =  conv'(x)   with   w' = w * g / sqrt(var + eps)
//                                     b' = (b - mean) * g / sqrt(var + eps) + beta
#pragma once

#include "nn/layer.hpp"

namespace rsnn::nn {

struct BatchNorm2dConfig {
  std::int64_t channels = 0;
  float epsilon = 1e-5f;
  float momentum = 0.1f;  ///< running-stat update rate
};

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(BatchNorm2dConfig config);

  TensorF forward(const TensorF& input, bool training) override;
  TensorF backward(const TensorF& grad_output) override;
  std::vector<Param*> params() override;
  Shape output_shape(const Shape& input_shape) const override { return input_shape; }
  std::string name() const override { return "BatchNorm2d"; }
  std::string describe() const override;

  const BatchNorm2dConfig& config() const { return config_; }
  Param& gamma() { return gamma_; }
  const Param& gamma() const { return gamma_; }
  Param& beta() { return beta_; }
  const Param& beta() const { return beta_; }
  const TensorF& running_mean() const { return running_mean_; }
  const TensorF& running_var() const { return running_var_; }
  /// Set running stats directly (used by tests and weight loading).
  void set_running_stats(TensorF mean, TensorF var);

 private:
  BatchNorm2dConfig config_;
  Param gamma_;  ///< [C] scale
  Param beta_;   ///< [C] shift
  TensorF running_mean_;  ///< [C]
  TensorF running_var_;   ///< [C]

  // Cached batch statistics for backward.
  TensorF cached_input_;
  TensorF batch_mean_;
  TensorF batch_inv_std_;
};

}  // namespace rsnn::nn
