// Model zoo: the network architectures used in the paper's evaluation.
//
//   LeNet-5   (Table I/II/III): 32x32x1 - 6C5 - P2 - 16C5 - P2 - 120C5 - 84 - 10
//   Fang-CNN  (Table III note 2): 28x28 - 32C3 - P2 - 32C3 - P2 - 256 - 10
//   Ju-CNN    (Table III note 1): 28x28 - 64C5 - P2 - 64C5 - P2 - 128 - 10
//   VGG-11    (Table III): CIFAR-100 variant, 8 conv + 3 FC, 28.5M parameters
//
// All nets use ClippedReLU activations (radix-conversion friendly) and
// average pooling (the adder-based pooling unit of the accelerator).
#pragma once

#include <string>

#include "nn/network.hpp"

namespace rsnn::nn {

struct ZooOptions {
  float activation_ceiling = 1.0f;
  int qat_bits = 0;         ///< activation fake-quant bits (0 = float)
  int weight_qat_bits = 0;  ///< weight fake-quant bits (0 = float)
};

/// LeNet-5 exactly as configured in the paper's experiment setup (Sec. IV-A).
Network make_lenet5(const ZooOptions& options = {});

/// The convolutional SNN of Fang et al. [11], redeployed in Table III.
Network make_fang_cnn(const ZooOptions& options = {});

/// The CNN of Ju et al. [12] (Table III baseline row 1).
Network make_ju_cnn(const ZooOptions& options = {});

/// VGG-11 for 32x32x3 inputs and 100 classes (CIFAR-100), 28.5M parameters.
Network make_vgg11(const ZooOptions& options = {}, int num_classes = 100);

/// Small 2-conv net for fast unit tests: 12x12x1 - 4C3 - P2 - 8 - num_classes.
Network make_tiny_test_net(const ZooOptions& options = {}, int num_classes = 4);

/// Build a zoo model by name ("lenet5", "fang_cnn", "ju_cnn", "vgg11", "tiny").
Network make_model(const std::string& name, const ZooOptions& options = {});

}  // namespace rsnn::nn
