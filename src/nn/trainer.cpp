#include "nn/trainer.hpp"

#include <numeric>

#include "common/log.hpp"
#include "nn/loss.hpp"

namespace rsnn::nn {

TensorF make_batch(const std::vector<TensorF>& samples,
                   const std::vector<std::size_t>& order, std::size_t first,
                   std::size_t count) {
  RSNN_REQUIRE(!samples.empty() && count > 0);
  RSNN_REQUIRE(first + count <= order.size());
  const Shape& sample_shape = samples[order[first]].shape();

  std::vector<std::int64_t> dims{static_cast<std::int64_t>(count)};
  for (const auto d : sample_shape.dims()) dims.push_back(d);
  TensorF batch{Shape{dims}};

  const std::int64_t sample_numel = sample_shape.numel();
  for (std::size_t b = 0; b < count; ++b) {
    const TensorF& s = samples[order[first + b]];
    RSNN_REQUIRE(s.shape() == sample_shape, "heterogeneous sample shapes");
    std::copy(s.data(), s.data() + sample_numel,
              batch.data() + static_cast<std::int64_t>(b) * sample_numel);
  }
  return batch;
}

float Trainer::fit(const std::vector<TensorF>& images,
                   const std::vector<int>& labels, Rng& rng) {
  RSNN_REQUIRE(images.size() == labels.size());
  RSNN_REQUIRE(!images.empty());

  std::vector<std::size_t> order(images.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  float last_accuracy = 0.0f;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.shuffle) rng.shuffle(order);

    double epoch_loss = 0.0;
    std::int64_t epoch_correct = 0;
    std::size_t batches = 0;

    for (std::size_t first = 0; first < order.size();
         first += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t count = std::min(
          static_cast<std::size_t>(config_.batch_size), order.size() - first);
      const TensorF batch = make_batch(images, order, first, count);

      std::vector<int> batch_labels(count);
      for (std::size_t b = 0; b < count; ++b)
        batch_labels[b] = labels[order[first + b]];

      network_.zero_grads();
      const TensorF logits = network_.forward(batch, /*training=*/true);
      const LossResult loss = softmax_cross_entropy(logits, batch_labels);
      network_.backward(loss.grad_logits);
      optimizer_.step();

      epoch_loss += loss.loss;
      epoch_correct += loss.correct;
      ++batches;
    }

    const float mean_loss = static_cast<float>(epoch_loss / std::max<std::size_t>(batches, 1));
    last_accuracy =
        static_cast<float>(epoch_correct) / static_cast<float>(images.size());
    RSNN_INFO("epoch " << epoch << ": loss=" << mean_loss
                       << " acc=" << last_accuracy
                       << " lr=" << optimizer_.learning_rate());
    if (config_.epoch_callback)
      config_.epoch_callback(epoch, mean_loss, last_accuracy);
    optimizer_.set_learning_rate(optimizer_.learning_rate() * config_.lr_decay);
  }
  return last_accuracy;
}

EvalResult evaluate(Network& network, const std::vector<TensorF>& images,
                    const std::vector<int>& labels, int batch_size) {
  RSNN_REQUIRE(images.size() == labels.size());
  EvalResult result;
  result.total = static_cast<std::int64_t>(images.size());
  if (images.empty()) return result;

  std::vector<std::size_t> order(images.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  double total_loss = 0.0;
  std::size_t batches = 0;
  for (std::size_t first = 0; first < order.size();
       first += static_cast<std::size_t>(batch_size)) {
    const std::size_t count =
        std::min(static_cast<std::size_t>(batch_size), order.size() - first);
    const TensorF batch = make_batch(images, order, first, count);
    std::vector<int> batch_labels(count);
    for (std::size_t b = 0; b < count; ++b)
      batch_labels[b] = labels[first + b];

    const TensorF logits = network.forward(batch, /*training=*/false);
    const LossResult loss = softmax_cross_entropy(logits, batch_labels);
    result.correct += loss.correct;
    total_loss += loss.loss;
    ++batches;
  }
  result.accuracy =
      static_cast<float>(result.correct) / static_cast<float>(result.total);
  result.mean_loss = static_cast<float>(total_loss / static_cast<double>(batches));
  return result;
}

}  // namespace rsnn::nn
