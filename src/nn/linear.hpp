// Fully-connected layer (NC input).
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace rsnn::nn {

struct LinearConfig {
  std::int64_t in_features = 0;
  std::int64_t out_features = 0;
  bool has_bias = true;
  /// Weight QAT grid (see Conv2dConfig::weight_quant_bits); 0 = float.
  int weight_quant_bits = 0;
};

class Linear final : public Layer {
 public:
  explicit Linear(LinearConfig config);

  void init_params(Rng& rng);

  TensorF forward(const TensorF& input, bool training) override;
  TensorF backward(const TensorF& grad_output) override;
  std::vector<Param*> params() override;
  Shape output_shape(const Shape& input_shape) const override;
  std::string name() const override { return "Linear"; }
  std::string describe() const override;

  const LinearConfig& config() const { return config_; }
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }
  const Param& bias() const { return bias_; }

 private:
  /// Weights as seen by the datapath (fake-quantized under QAT).
  const TensorF& effective_weight();

  LinearConfig config_;
  Param weight_;  ///< [out_features, in_features]
  Param bias_;    ///< [out_features]
  TensorF cached_input_;
  TensorF fq_weight_;  ///< QAT projection, refreshed each forward
};

}  // namespace rsnn::nn
