#include "nn/flatten.hpp"

namespace rsnn::nn {

Shape Flatten::output_shape(const Shape& input_shape) const {
  RSNN_REQUIRE(input_shape.rank() >= 2, "Flatten expects rank >= 2");
  std::int64_t features = 1;
  for (int axis = 1; axis < input_shape.rank(); ++axis)
    features *= input_shape.dim(axis);
  return Shape{input_shape.dim(0), features};
}

TensorF Flatten::forward(const TensorF& input, bool training) {
  if (training) cached_input_shape_ = input.shape();
  return input.reshaped(output_shape(input.shape()));
}

TensorF Flatten::backward(const TensorF& grad_output) {
  RSNN_REQUIRE(cached_input_shape_.rank() > 0,
               "backward() before forward(training=true)");
  return grad_output.reshaped(cached_input_shape_);
}

}  // namespace rsnn::nn
