#include "nn/activation.hpp"

#include <cmath>
#include <sstream>

namespace rsnn::nn {

TensorF ReLU::forward(const TensorF& input, bool training) {
  if (training) cached_input_ = input;
  return input.map([](float x) { return x > 0.0f ? x : 0.0f; });
}

TensorF ReLU::backward(const TensorF& grad_output) {
  RSNN_REQUIRE(cached_input_.numel() > 0,
               "backward() before forward(training=true)");
  return zip(grad_output, cached_input_,
             [](float g, float x) { return x > 0.0f ? g : 0.0f; });
}

ClippedReLU::ClippedReLU(ClippedReLUConfig config) : config_(config) {
  RSNN_REQUIRE(config.ceiling > 0.0f);
  RSNN_REQUIRE(config.fake_quant_bits >= 0 && config.fake_quant_bits <= 16);
}

TensorF ClippedReLU::forward(const TensorF& input, bool training) {
  if (training) cached_input_ = input;
  const float ceiling = config_.ceiling;
  if (config_.fake_quant_bits == 0) {
    return input.map([ceiling](float x) {
      return x < 0.0f ? 0.0f : (x > ceiling ? ceiling : x);
    });
  }
  // Fake quantization: clip, then snap down onto the T-bit radix grid
  // (floor matches the hardware requantizer, which truncates).
  const float levels = static_cast<float>(1 << config_.fake_quant_bits);
  const float step = ceiling / levels;
  const float top = (levels - 1.0f) * step;
  return input.map([=](float x) {
    if (x < 0.0f) return 0.0f;
    if (x > top) return top;
    return std::floor(x / step) * step;
  });
}

TensorF ClippedReLU::backward(const TensorF& grad_output) {
  RSNN_REQUIRE(cached_input_.numel() > 0,
               "backward() before forward(training=true)");
  // Straight-through estimator: pass gradient inside the clipping range.
  const float ceiling = config_.ceiling;
  return zip(grad_output, cached_input_, [ceiling](float g, float x) {
    return (x > 0.0f && x < ceiling) ? g : 0.0f;
  });
}

std::string ClippedReLU::describe() const {
  std::ostringstream os;
  os << "ClippedReLU(ceiling=" << config_.ceiling;
  if (config_.fake_quant_bits > 0) os << ", qat_bits=" << config_.fake_quant_bits;
  os << ")";
  return os.str();
}

}  // namespace rsnn::nn
