// Optimizers: SGD with momentum, and Adam.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace rsnn::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update step using the gradients currently held by the params.
  virtual void step() = 0;
  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;
};

struct SgdConfig {
  float learning_rate = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, SgdConfig config);
  void step() override;
  void set_learning_rate(float lr) override { config_.learning_rate = lr; }
  float learning_rate() const override { return config_.learning_rate; }

 private:
  std::vector<Param*> params_;
  SgdConfig config_;
  std::vector<TensorF> velocity_;
};

struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, AdamConfig config);
  void step() override;
  void set_learning_rate(float lr) override { config_.learning_rate = lr; }
  float learning_rate() const override { return config_.learning_rate; }

 private:
  std::vector<Param*> params_;
  AdamConfig config_;
  std::vector<TensorF> m_;
  std::vector<TensorF> v_;
  std::int64_t step_count_ = 0;
};

}  // namespace rsnn::nn
