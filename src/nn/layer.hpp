// Layer: the base interface of the ANN substrate.
//
// All tensors flowing between layers are batched NCHW (rank 4) for the
// convolutional part of a network and NC (rank 2) after flattening. Layers
// own their parameters and the gradients accumulated by backward().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace rsnn::nn {

/// A trainable parameter: value plus accumulated gradient of the same shape.
struct Param {
  std::string name;
  TensorF value;
  TensorF grad;

  Param(std::string n, Shape shape)
      : name(std::move(n)), value(shape), grad(shape) {}

  void zero_grad() { grad.fill(0.0f); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute outputs. When `training` is true the layer caches whatever it
  /// needs for backward().
  virtual TensorF forward(const TensorF& input, bool training) = 0;

  /// Propagate gradients. Accumulates into parameter grads and returns the
  /// gradient with respect to the input of the last forward() call.
  virtual TensorF backward(const TensorF& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Output shape for a given input shape (batch dimension included).
  virtual Shape output_shape(const Shape& input_shape) const = 0;

  virtual std::string name() const = 0;

  /// Human-readable one-line description for model summaries.
  virtual std::string describe() const { return name(); }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace rsnn::nn
