// Binary save/load of network parameters.
//
// Format: magic "RSNN", version, param count, then for each parameter its
// name, rank, dims and float data. Layer topology is not serialized — the
// caller reconstructs the architecture (model zoo) and loads weights into it.
#pragma once

#include <string>

#include "nn/network.hpp"

namespace rsnn::nn {

/// Write all parameters of `network` to `path`. Throws on I/O failure.
void save_params(Network& network, const std::string& path);

/// Load parameters saved by save_params into an architecturally identical
/// network. Throws if names, counts or shapes mismatch.
void load_params(Network& network, const std::string& path);

/// True if `path` exists and has the expected magic header.
bool is_param_file(const std::string& path);

}  // namespace rsnn::nn
