// Flatten: NCHW -> NC, the boundary between convolutional and linear layers.
// Mirrors the accelerator's transfer from 2-D to 1-D activation buffers.
#pragma once

#include "nn/layer.hpp"

namespace rsnn::nn {

class Flatten final : public Layer {
 public:
  TensorF forward(const TensorF& input, bool training) override;
  TensorF backward(const TensorF& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace rsnn::nn
