// Activation layers.
//
// ClippedReLU is the activation used for radix-encoded SNN conversion: the
// ANN is trained with activations clipped to [0, ceiling] so they map onto
// the bounded dynamic range of a T-bit radix spike train (Wang et al. 2021).
// With quantization-aware training enabled, the forward pass additionally
// snaps activations to the T-bit grid while the backward pass uses the
// straight-through estimator.
#pragma once

#include "nn/layer.hpp"

namespace rsnn::nn {

/// Plain ReLU: max(0, x).
class ReLU final : public Layer {
 public:
  TensorF forward(const TensorF& input, bool training) override;
  TensorF backward(const TensorF& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override { return input_shape; }
  std::string name() const override { return "ReLU"; }

 private:
  TensorF cached_input_;
};

struct ClippedReLUConfig {
  float ceiling = 1.0f;        ///< activations are clipped to [0, ceiling)
  int fake_quant_bits = 0;     ///< 0 disables quantization-aware training
};

/// min(max(0, x), ceiling), optionally fake-quantized to a 2^bits grid.
class ClippedReLU final : public Layer {
 public:
  explicit ClippedReLU(ClippedReLUConfig config);

  TensorF forward(const TensorF& input, bool training) override;
  TensorF backward(const TensorF& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override { return input_shape; }
  std::string name() const override { return "ClippedReLU"; }
  std::string describe() const override;

  const ClippedReLUConfig& config() const { return config_; }
  void set_fake_quant_bits(int bits) { config_.fake_quant_bits = bits; }

 private:
  ClippedReLUConfig config_;
  TensorF cached_input_;
};

}  // namespace rsnn::nn
