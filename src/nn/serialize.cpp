#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

#include "common/assert.hpp"

namespace rsnn::nn {
namespace {

constexpr char kMagic[4] = {'R', 'S', 'N', 'N'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::int64_t read_i64(std::istream& is) {
  std::int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

}  // namespace

void save_params(Network& network, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  RSNN_REQUIRE(os.good(), "cannot open " << path << " for writing");

  os.write(kMagic, sizeof(kMagic));
  write_u32(os, kVersion);

  const auto params = network.params();
  write_u32(os, static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    write_u32(os, static_cast<std::uint32_t>(p->name.size()));
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u32(os, static_cast<std::uint32_t>(p->value.rank()));
    for (int axis = 0; axis < p->value.rank(); ++axis)
      write_i64(os, p->value.dim(axis));
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  RSNN_REQUIRE(os.good(), "write failure on " << path);
}

void load_params(Network& network, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  RSNN_REQUIRE(is.good(), "cannot open " << path << " for reading");

  char magic[4];
  is.read(magic, sizeof(magic));
  RSNN_REQUIRE(is.good() && std::equal(magic, magic + 4, kMagic),
               "bad magic in " << path);
  const std::uint32_t version = read_u32(is);
  RSNN_REQUIRE(version == kVersion, "unsupported version " << version);

  const auto params = network.params();
  const std::uint32_t count = read_u32(is);
  RSNN_REQUIRE(count == params.size(), "param count mismatch: file has "
                                           << count << ", network has "
                                           << params.size());
  for (Param* p : params) {
    const std::uint32_t name_len = read_u32(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    RSNN_REQUIRE(name == p->name,
                 "param name mismatch: file '" << name << "' vs '" << p->name << "'");
    const std::uint32_t rank = read_u32(is);
    RSNN_REQUIRE(rank == static_cast<std::uint32_t>(p->value.rank()),
                 "rank mismatch for " << name);
    for (int axis = 0; axis < p->value.rank(); ++axis) {
      const std::int64_t dim = read_i64(is);
      RSNN_REQUIRE(dim == p->value.dim(axis), "dim mismatch for " << name);
    }
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
    RSNN_REQUIRE(is.good(), "truncated file " << path);
  }
}

bool is_param_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  char magic[4];
  is.read(magic, sizeof(magic));
  return is.good() && std::equal(magic, magic + 4, kMagic);
}

}  // namespace rsnn::nn
