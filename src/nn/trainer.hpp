// Training loop: mini-batch SGD over an in-memory sample set.
//
// The trainer is dataset-agnostic: it consumes parallel vectors of CHW
// sample tensors and integer labels (the data module produces these).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"

namespace rsnn::nn {

struct TrainConfig {
  int epochs = 5;
  int batch_size = 32;
  float lr_decay = 1.0f;  ///< multiplicative LR decay applied per epoch
  bool shuffle = true;
  /// Invoked after every epoch with (epoch, mean loss, train accuracy).
  std::function<void(int, float, float)> epoch_callback;
};

struct EvalResult {
  float accuracy = 0.0f;
  float mean_loss = 0.0f;
  std::int64_t correct = 0;
  std::int64_t total = 0;
};

/// Assemble samples[first..first+count) into one NCHW (or NC) batch tensor.
TensorF make_batch(const std::vector<TensorF>& samples,
                   const std::vector<std::size_t>& order, std::size_t first,
                   std::size_t count);

class Trainer {
 public:
  Trainer(Network& network, Optimizer& optimizer, TrainConfig config)
      : network_(network), optimizer_(optimizer), config_(config) {}

  /// Run the configured number of epochs; returns final-epoch training accuracy.
  float fit(const std::vector<TensorF>& images, const std::vector<int>& labels,
            Rng& rng);

 private:
  Network& network_;
  Optimizer& optimizer_;
  TrainConfig config_;
};

/// Evaluate classification accuracy on a sample set.
EvalResult evaluate(Network& network, const std::vector<TensorF>& images,
                    const std::vector<int>& labels, int batch_size = 64);

}  // namespace rsnn::nn
