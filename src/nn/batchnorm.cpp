#include "nn/batchnorm.hpp"

#include <cmath>
#include <sstream>

namespace rsnn::nn {

BatchNorm2d::BatchNorm2d(BatchNorm2dConfig config)
    : config_(config),
      gamma_("gamma", Shape{config.channels}),
      beta_("beta", Shape{config.channels}),
      running_mean_(Shape{config.channels}, 0.0f),
      running_var_(Shape{config.channels}, 1.0f) {
  RSNN_REQUIRE(config.channels > 0);
  RSNN_REQUIRE(config.epsilon > 0.0f);
  gamma_.value.fill(1.0f);
  beta_.value.fill(0.0f);
}

void BatchNorm2d::set_running_stats(TensorF mean, TensorF var) {
  RSNN_REQUIRE(mean.shape() == Shape{config_.channels});
  RSNN_REQUIRE(var.shape() == Shape{config_.channels});
  running_mean_ = std::move(mean);
  running_var_ = std::move(var);
}

TensorF BatchNorm2d::forward(const TensorF& input, bool training) {
  RSNN_REQUIRE(input.rank() == 4 && input.dim(1) == config_.channels,
               "BatchNorm2d expects NCHW with " << config_.channels
                                                << " channels");
  const std::int64_t batch = input.dim(0), ch = config_.channels;
  const std::int64_t hw = input.dim(2) * input.dim(3);
  const double count = static_cast<double>(batch * hw);

  TensorF mean(Shape{ch}), inv_std(Shape{ch});
  if (training) {
    // Batch statistics per channel.
    for (std::int64_t c = 0; c < ch; ++c) {
      double sum = 0.0;
      for (std::int64_t n = 0; n < batch; ++n)
        for (std::int64_t i = 0; i < hw; ++i)
          sum += input.at_flat((n * ch + c) * hw + i);
      mean(c) = static_cast<float>(sum / count);
    }
    TensorF var(Shape{ch});
    for (std::int64_t c = 0; c < ch; ++c) {
      double sum_sq = 0.0;
      for (std::int64_t n = 0; n < batch; ++n)
        for (std::int64_t i = 0; i < hw; ++i) {
          const double d = input.at_flat((n * ch + c) * hw + i) - mean(c);
          sum_sq += d * d;
        }
      var(c) = static_cast<float>(sum_sq / count);
      inv_std(c) = 1.0f / std::sqrt(var(c) + config_.epsilon);
      // Exponential running stats for inference.
      running_mean_(c) = (1.0f - config_.momentum) * running_mean_(c) +
                         config_.momentum * mean(c);
      running_var_(c) =
          (1.0f - config_.momentum) * running_var_(c) + config_.momentum * var(c);
    }
    cached_input_ = input;
    batch_mean_ = mean;
    batch_inv_std_ = inv_std;
  } else {
    for (std::int64_t c = 0; c < ch; ++c) {
      mean(c) = running_mean_(c);
      inv_std(c) = 1.0f / std::sqrt(running_var_(c) + config_.epsilon);
    }
  }

  TensorF out(input.shape());
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t c = 0; c < ch; ++c)
      for (std::int64_t i = 0; i < hw; ++i) {
        const std::int64_t idx = (n * ch + c) * hw + i;
        out.at_flat(idx) =
            gamma_.value(c) * (input.at_flat(idx) - mean(c)) * inv_std(c) +
            beta_.value(c);
      }
  return out;
}

TensorF BatchNorm2d::backward(const TensorF& grad_output) {
  RSNN_REQUIRE(cached_input_.numel() > 0,
               "backward() before forward(training=true)");
  const TensorF& x = cached_input_;
  const std::int64_t batch = x.dim(0), ch = config_.channels;
  const std::int64_t hw = x.dim(2) * x.dim(3);
  const double count = static_cast<double>(batch * hw);

  TensorF grad_input(x.shape());
  for (std::int64_t c = 0; c < ch; ++c) {
    // Per-channel reductions of the standard batchnorm backward.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t n = 0; n < batch; ++n)
      for (std::int64_t i = 0; i < hw; ++i) {
        const std::int64_t idx = (n * ch + c) * hw + i;
        const double x_hat =
            (x.at_flat(idx) - batch_mean_(c)) * batch_inv_std_(c);
        const double dy = grad_output.at_flat(idx);
        sum_dy += dy;
        sum_dy_xhat += dy * x_hat;
      }
    gamma_.grad(c) += static_cast<float>(sum_dy_xhat);
    beta_.grad(c) += static_cast<float>(sum_dy);

    const double g = gamma_.value(c);
    for (std::int64_t n = 0; n < batch; ++n)
      for (std::int64_t i = 0; i < hw; ++i) {
        const std::int64_t idx = (n * ch + c) * hw + i;
        const double x_hat =
            (x.at_flat(idx) - batch_mean_(c)) * batch_inv_std_(c);
        const double dy = grad_output.at_flat(idx);
        grad_input.at_flat(idx) = static_cast<float>(
            g * batch_inv_std_(c) *
            (dy - sum_dy / count - x_hat * sum_dy_xhat / count));
      }
  }
  return grad_input;
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

std::string BatchNorm2d::describe() const {
  std::ostringstream os;
  os << "BatchNorm2d(" << config_.channels << ")";
  return os.str();
}

}  // namespace rsnn::nn
