// Network: an ordered stack of layers with forward/backward plumbing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace rsnn::nn {

class Network {
 public:
  Network() = default;
  explicit Network(Shape input_shape) : input_shape_(std::move(input_shape)) {}

  // Movable, not copyable (layers own parameter storage).
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Append a layer; returns a reference to it for further configuration.
  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  /// Initialize all parameterized layers deterministically.
  void init_params(Rng& rng);

  TensorF forward(const TensorF& input, bool training = false);

  /// Backward through the whole stack; returns gradient w.r.t. the input.
  TensorF backward(const TensorF& grad_output);

  std::vector<Param*> params();
  void zero_grads();

  /// Count of scalar parameters.
  std::int64_t num_params();

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer& layer(int index);
  const Layer& layer(int index) const;

  const Shape& input_shape() const { return input_shape_; }
  void set_input_shape(Shape shape) { input_shape_ = std::move(shape); }

  /// Shape after each layer, starting from input_shape() with batch size 1.
  std::vector<Shape> layer_output_shapes() const;

  /// Multi-line human-readable summary.
  std::string summary() const;

 private:
  Shape input_shape_;  ///< single-sample shape, e.g. [1, 32, 32] (CHW)
  std::vector<LayerPtr> layers_;
};

}  // namespace rsnn::nn
