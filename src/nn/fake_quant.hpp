// Weight quantization grid — the single source of truth shared by
// quantization-aware training (Conv2d/Linear forward) and post-training
// conversion (quant::quantize). Weights use a per-layer power-of-two scale
// 2^-f so the hardware requantizer stays a pure shift.
#pragma once

#include "tensor/tensor.hpp"

namespace rsnn::nn {

/// Largest f such that round(w * 2^f) fits in `bits` signed bits for all
/// weights (0 for an all-zero tensor; negative for very large weights).
int choose_weight_frac_bits(const TensorF& weights, int bits);

/// Round onto the grid: W = clamp(round(w * 2^f), -q_max, q_max).
TensorI quantize_weights_to_int(const TensorF& weights, int frac_bits,
                                int bits);

/// Project weights onto the representable grid and back to float (the
/// forward transform of QAT; backward uses the straight-through estimator).
TensorF fake_quantize_weights(const TensorF& weights, int bits);

}  // namespace rsnn::nn
