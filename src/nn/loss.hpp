// Softmax + cross-entropy loss with fused gradient.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace rsnn::nn {

struct LossResult {
  float loss = 0.0f;       ///< mean cross-entropy over the batch
  TensorF grad_logits;     ///< dLoss/dlogits, same shape as logits
  std::int64_t correct = 0;  ///< argmax matches over the batch
};

/// logits: [N, C]; labels: N class indices. Numerically stable softmax.
LossResult softmax_cross_entropy(const TensorF& logits,
                                 const std::vector<int>& labels);

/// Softmax probabilities, [N, C] -> [N, C].
TensorF softmax(const TensorF& logits);

}  // namespace rsnn::nn
