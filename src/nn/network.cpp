#include "nn/network.hpp"

#include <sstream>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"

namespace rsnn::nn {

void Network::init_params(Rng& rng) {
  for (auto& layer : layers_) {
    if (auto* conv = dynamic_cast<Conv2d*>(layer.get())) conv->init_params(rng);
    if (auto* fc = dynamic_cast<Linear*>(layer.get())) fc->init_params(rng);
  }
}

TensorF Network::forward(const TensorF& input, bool training) {
  TensorF x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

TensorF Network::backward(const TensorF& grad_output) {
  TensorF g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Network::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_)
    for (Param* p : layer->params()) all.push_back(p);
  return all;
}

void Network::zero_grads() {
  for (Param* p : params()) p->zero_grad();
}

std::int64_t Network::num_params() {
  std::int64_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

Layer& Network::layer(int index) {
  RSNN_REQUIRE(index >= 0 && index < num_layers());
  return *layers_[static_cast<std::size_t>(index)];
}

const Layer& Network::layer(int index) const {
  RSNN_REQUIRE(index >= 0 && index < num_layers());
  return *layers_[static_cast<std::size_t>(index)];
}

std::vector<Shape> Network::layer_output_shapes() const {
  RSNN_REQUIRE(input_shape_.rank() > 0, "input shape not set");
  std::vector<std::int64_t> batched{1};
  for (const auto d : input_shape_.dims()) batched.push_back(d);
  Shape shape{batched};
  std::vector<Shape> shapes;
  shapes.reserve(layers_.size());
  for (const auto& layer : layers_) {
    shape = layer->output_shape(shape);
    shapes.push_back(shape);
  }
  return shapes;
}

std::string Network::summary() const {
  std::ostringstream os;
  os << "Network(input=" << input_shape_.to_string() << ")\n";
  const auto shapes = layer_output_shapes();
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    os << "  [" << i << "] " << layers_[i]->describe() << " -> "
       << shapes[i].to_string() << "\n";
  }
  return os.str();
}

}  // namespace rsnn::nn
