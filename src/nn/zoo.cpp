#include "nn/zoo.hpp"

#include "common/assert.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pool2d.hpp"

namespace rsnn::nn {
namespace {

ClippedReLUConfig act(const ZooOptions& options) {
  return ClippedReLUConfig{options.activation_ceiling, options.qat_bits};
}

void add_conv_block(Network& net, const ZooOptions& options, std::int64_t cin,
                    std::int64_t cout, std::int64_t kernel, std::int64_t pad) {
  net.add<Conv2d>(Conv2dConfig{cin, cout, kernel, /*stride=*/1, pad,
                               /*has_bias=*/true, options.weight_qat_bits});
  net.add<ClippedReLU>(act(options));
}

}  // namespace

Network make_lenet5(const ZooOptions& options) {
  Network net(Shape{1, 32, 32});
  add_conv_block(net, options, 1, 6, 5, 0);    // 6C5 -> 28x28
  net.add<Pool2d>(Pool2dConfig{2});            // P2  -> 14x14
  add_conv_block(net, options, 6, 16, 5, 0);   // 16C5 -> 10x10
  net.add<Pool2d>(Pool2dConfig{2});            // P2  -> 5x5
  add_conv_block(net, options, 16, 120, 5, 0); // 120C5 -> 1x1
  net.add<Flatten>();
  net.add<Linear>(LinearConfig{120, 84, true, options.weight_qat_bits});
  net.add<ClippedReLU>(act(options));
  net.add<Linear>(LinearConfig{84, 10, true, options.weight_qat_bits});
  return net;
}

Network make_fang_cnn(const ZooOptions& options) {
  Network net(Shape{1, 28, 28});
  add_conv_block(net, options, 1, 32, 3, 0);   // 32C3 -> 26x26
  net.add<Pool2d>(Pool2dConfig{2});            // P2   -> 13x13
  add_conv_block(net, options, 32, 32, 3, 0);  // 32C3 -> 11x11
  net.add<Pool2d>(Pool2dConfig{2});            // P2   -> 5x5
  net.add<Flatten>();                          // 800
  net.add<Linear>(LinearConfig{32 * 5 * 5, 256, true, options.weight_qat_bits});
  net.add<ClippedReLU>(act(options));
  net.add<Linear>(LinearConfig{256, 10, true, options.weight_qat_bits});
  return net;
}

Network make_ju_cnn(const ZooOptions& options) {
  Network net(Shape{1, 28, 28});
  add_conv_block(net, options, 1, 64, 5, 0);   // 64C5 -> 24x24
  net.add<Pool2d>(Pool2dConfig{2});            // P2   -> 12x12
  add_conv_block(net, options, 64, 64, 5, 0);  // 64C5 -> 8x8
  net.add<Pool2d>(Pool2dConfig{2});            // P2   -> 4x4
  net.add<Flatten>();                          // 1024
  net.add<Linear>(LinearConfig{64 * 4 * 4, 128, true, options.weight_qat_bits});
  net.add<ClippedReLU>(act(options));
  net.add<Linear>(LinearConfig{128, 10, true, options.weight_qat_bits});
  return net;
}

Network make_vgg11(const ZooOptions& options, int num_classes) {
  RSNN_REQUIRE(num_classes > 0);
  Network net(Shape{3, 32, 32});
  // VGG configuration A adapted to 32x32 inputs; pools after convs
  // 1, 2, 4, 6 and 8 shrink the map to 1x1x512.
  add_conv_block(net, options, 3, 64, 3, 1);
  net.add<Pool2d>(Pool2dConfig{2});  // 16x16
  add_conv_block(net, options, 64, 128, 3, 1);
  net.add<Pool2d>(Pool2dConfig{2});  // 8x8
  add_conv_block(net, options, 128, 256, 3, 1);
  add_conv_block(net, options, 256, 256, 3, 1);
  net.add<Pool2d>(Pool2dConfig{2});  // 4x4
  add_conv_block(net, options, 256, 512, 3, 1);
  add_conv_block(net, options, 512, 512, 3, 1);
  net.add<Pool2d>(Pool2dConfig{2});  // 2x2
  add_conv_block(net, options, 512, 512, 3, 1);
  add_conv_block(net, options, 512, 512, 3, 1);
  net.add<Pool2d>(Pool2dConfig{2});  // 1x1
  net.add<Flatten>();                // 512
  net.add<Linear>(LinearConfig{512, 4096, true, options.weight_qat_bits});
  net.add<ClippedReLU>(act(options));
  net.add<Linear>(LinearConfig{4096, 4096, true, options.weight_qat_bits});
  net.add<ClippedReLU>(act(options));
  net.add<Linear>(LinearConfig{4096, num_classes, true, options.weight_qat_bits});
  return net;
}

Network make_tiny_test_net(const ZooOptions& options, int num_classes) {
  RSNN_REQUIRE(num_classes > 0);
  Network net(Shape{1, 12, 12});
  add_conv_block(net, options, 1, 4, 3, 0);  // 4C3 -> 10x10
  net.add<Pool2d>(Pool2dConfig{2});          // P2  -> 5x5
  net.add<Flatten>();                        // 100
  net.add<Linear>(LinearConfig{100, 8, true, options.weight_qat_bits});
  net.add<ClippedReLU>(act(options));
  net.add<Linear>(LinearConfig{8, num_classes, true, options.weight_qat_bits});
  return net;
}

Network make_model(const std::string& name, const ZooOptions& options) {
  if (name == "lenet5") return make_lenet5(options);
  if (name == "fang_cnn") return make_fang_cnn(options);
  if (name == "ju_cnn") return make_ju_cnn(options);
  if (name == "vgg11") return make_vgg11(options);
  if (name == "tiny") return make_tiny_test_net(options);
  RSNN_REQUIRE(false, "unknown model '" << name << "'");
  return Network{};
}

}  // namespace rsnn::nn
