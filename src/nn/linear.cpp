#include "nn/linear.hpp"

#include <cmath>
#include <sstream>

#include "nn/fake_quant.hpp"

namespace rsnn::nn {

Linear::Linear(LinearConfig config)
    : config_(config),
      weight_("weight", Shape{config.out_features, config.in_features}),
      bias_("bias", Shape{config.out_features}) {
  RSNN_REQUIRE(config.in_features > 0 && config.out_features > 0);
}

void Linear::init_params(Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(config_.in_features));
  for (std::int64_t i = 0; i < weight_.value.numel(); ++i)
    weight_.value.at_flat(i) = static_cast<float>(rng.next_double(-bound, bound));
  bias_.value.fill(0.0f);
}

Shape Linear::output_shape(const Shape& input_shape) const {
  RSNN_REQUIRE(input_shape.rank() == 2, "Linear expects NC input");
  RSNN_REQUIRE(input_shape.dim(1) == config_.in_features,
               "Linear feature mismatch: got " << input_shape.dim(1)
                                               << ", expected " << config_.in_features);
  return Shape{input_shape.dim(0), config_.out_features};
}

const TensorF& Linear::effective_weight() {
  if (config_.weight_quant_bits <= 0) return weight_.value;
  fq_weight_ = fake_quantize_weights(weight_.value, config_.weight_quant_bits);
  return fq_weight_;
}

TensorF Linear::forward(const TensorF& input, bool training) {
  const Shape out_shape = output_shape(input.shape());
  if (training) cached_input_ = input;
  const TensorF& w = effective_weight();

  const std::int64_t batch = input.dim(0);
  const std::int64_t in_f = config_.in_features, out_f = config_.out_features;

  TensorF out(out_shape);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t o = 0; o < out_f; ++o) {
      float acc = config_.has_bias ? bias_.value(o) : 0.0f;
      for (std::int64_t i = 0; i < in_f; ++i) acc += input(n, i) * w(o, i);
      out(n, o) = acc;
    }
  }
  return out;
}

TensorF Linear::backward(const TensorF& grad_output) {
  RSNN_REQUIRE(cached_input_.numel() > 0,
               "backward() before forward(training=true)");
  const std::int64_t batch = cached_input_.dim(0);
  const std::int64_t in_f = config_.in_features, out_f = config_.out_features;
  // Straight-through estimator (see Conv2d::backward).
  const TensorF& w =
      config_.weight_quant_bits > 0 ? fq_weight_ : weight_.value;

  TensorF grad_input(cached_input_.shape(), 0.0f);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t o = 0; o < out_f; ++o) {
      const float g = grad_output(n, o);
      if (g == 0.0f) continue;
      if (config_.has_bias) bias_.grad(o) += g;
      for (std::int64_t i = 0; i < in_f; ++i) {
        weight_.grad(o, i) += g * cached_input_(n, i);
        grad_input(n, i) += g * w(o, i);
      }
    }
  }
  return grad_input;
}

std::vector<Param*> Linear::params() {
  if (config_.has_bias) return {&weight_, &bias_};
  return {&weight_};
}

std::string Linear::describe() const {
  std::ostringstream os;
  os << "Linear(" << config_.in_features << " -> " << config_.out_features << ")";
  return os.str();
}

}  // namespace rsnn::nn
