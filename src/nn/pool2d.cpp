#include "nn/pool2d.hpp"

#include <limits>
#include <sstream>

namespace rsnn::nn {

Pool2d::Pool2d(Pool2dConfig config) : config_(config) {
  RSNN_REQUIRE(config.kernel > 0 && config.stride >= 0);
}

Shape Pool2d::output_shape(const Shape& input_shape) const {
  RSNN_REQUIRE(input_shape.rank() == 4, "Pool2d expects NCHW input");
  const std::int64_t str = config_.effective_stride();
  RSNN_REQUIRE(input_shape.dim(2) >= config_.kernel &&
               input_shape.dim(3) >= config_.kernel);
  const std::int64_t oh = (input_shape.dim(2) - config_.kernel) / str + 1;
  const std::int64_t ow = (input_shape.dim(3) - config_.kernel) / str + 1;
  return Shape{input_shape.dim(0), input_shape.dim(1), oh, ow};
}

TensorF Pool2d::forward(const TensorF& input, bool training) {
  const Shape out_shape = output_shape(input.shape());
  const std::int64_t batch = input.dim(0), ch = input.dim(1);
  const std::int64_t iw = input.dim(3);
  const std::int64_t k = config_.kernel, str = config_.effective_stride();
  const std::int64_t oh = out_shape.dim(2), ow = out_shape.dim(3);
  const float inv_area = 1.0f / static_cast<float>(k * k);

  TensorF out(out_shape);
  if (training) {
    cached_input_ = input;
    if (config_.kind == PoolKind::kMax)
      cached_argmax_ = Tensor<std::int64_t>(out_shape);
  }

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < ch; ++c) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          if (config_.kind == PoolKind::kAverage) {
            float acc = 0.0f;
            for (std::int64_t ky = 0; ky < k; ++ky)
              for (std::int64_t kx = 0; kx < k; ++kx)
                acc += input(n, c, oy * str + ky, ox * str + kx);
            out(n, c, oy, ox) = acc * inv_area;
          } else {
            float best = -std::numeric_limits<float>::infinity();
            std::int64_t best_index = 0;
            for (std::int64_t ky = 0; ky < k; ++ky) {
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t iy = oy * str + ky, ix = ox * str + kx;
                const float v = input(n, c, iy, ix);
                if (v > best) {
                  best = v;
                  best_index = iy * iw + ix;
                }
              }
            }
            out(n, c, oy, ox) = best;
            if (training) cached_argmax_(n, c, oy, ox) = best_index;
          }
        }
      }
    }
  }
  return out;
}

TensorF Pool2d::backward(const TensorF& grad_output) {
  RSNN_REQUIRE(cached_input_.numel() > 0,
               "backward() before forward(training=true)");
  const std::int64_t batch = cached_input_.dim(0), ch = cached_input_.dim(1);
  const std::int64_t iw = cached_input_.dim(3);
  const std::int64_t k = config_.kernel, str = config_.effective_stride();
  const std::int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  const float inv_area = 1.0f / static_cast<float>(k * k);

  TensorF grad_input(cached_input_.shape(), 0.0f);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < ch; ++c) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const float g = grad_output(n, c, oy, ox);
          if (config_.kind == PoolKind::kAverage) {
            const float share = g * inv_area;
            for (std::int64_t ky = 0; ky < k; ++ky)
              for (std::int64_t kx = 0; kx < k; ++kx)
                grad_input(n, c, oy * str + ky, ox * str + kx) += share;
          } else {
            const std::int64_t flat = cached_argmax_(n, c, oy, ox);
            grad_input(n, c, flat / iw, flat % iw) += g;
          }
        }
      }
    }
  }
  return grad_input;
}

std::string Pool2d::describe() const {
  std::ostringstream os;
  os << (config_.kind == PoolKind::kAverage ? "AvgPool2d(" : "MaxPool2d(")
     << "k=" << config_.kernel << ", s=" << config_.effective_stride() << ")";
  return os.str();
}

}  // namespace rsnn::nn
