// 2-D convolution layer (NCHW), direct-loop implementation.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace rsnn::nn {

struct Conv2dConfig {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 0;   ///< square kernel Kr == Kc
  std::int64_t stride = 1;
  std::int64_t padding = 0;  ///< symmetric zero padding
  bool has_bias = true;
  /// Weight quantization-aware training: when > 0, forward passes use
  /// weights projected onto the `weight_quant_bits`-bit power-of-two grid
  /// (the grid quant::quantize converts to); backward uses the
  /// straight-through estimator. 0 trains in full float.
  int weight_quant_bits = 0;
};

class Conv2d final : public Layer {
 public:
  explicit Conv2d(Conv2dConfig config);

  /// Kaiming-uniform initialization (deterministic given `rng`).
  void init_params(Rng& rng);

  TensorF forward(const TensorF& input, bool training) override;
  TensorF backward(const TensorF& grad_output) override;
  std::vector<Param*> params() override;
  Shape output_shape(const Shape& input_shape) const override;
  std::string name() const override { return "Conv2d"; }
  std::string describe() const override;

  const Conv2dConfig& config() const { return config_; }
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }
  const Param& bias() const { return bias_; }

 private:
  /// Weights as seen by the datapath (fake-quantized under QAT).
  const TensorF& effective_weight();

  Conv2dConfig config_;
  Param weight_;  ///< [Cout, Cin, K, K]
  Param bias_;    ///< [Cout]
  TensorF cached_input_;
  TensorF fq_weight_;  ///< QAT projection, refreshed each forward
};

}  // namespace rsnn::nn
