// Average and max pooling layers (NCHW).
//
// The accelerator's pooling unit is adder-based (paper Sec. III-B), i.e. it
// implements average pooling on spike trains; the ANN substrate therefore
// defaults to average pooling so the converted SNN is exactly representable.
// Max pooling is provided for comparison experiments.
#pragma once

#include "nn/layer.hpp"

namespace rsnn::nn {

enum class PoolKind { kAverage, kMax };

struct Pool2dConfig {
  std::int64_t kernel = 2;
  std::int64_t stride = 0;  ///< 0 means "same as kernel"
  PoolKind kind = PoolKind::kAverage;

  std::int64_t effective_stride() const { return stride == 0 ? kernel : stride; }
};

class Pool2d final : public Layer {
 public:
  explicit Pool2d(Pool2dConfig config);

  TensorF forward(const TensorF& input, bool training) override;
  TensorF backward(const TensorF& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  std::string name() const override { return "Pool2d"; }
  std::string describe() const override;

  const Pool2dConfig& config() const { return config_; }

 private:
  Pool2dConfig config_;
  TensorF cached_input_;
  Tensor<std::int64_t> cached_argmax_;  ///< flat input index per output (max pooling)
};

}  // namespace rsnn::nn
