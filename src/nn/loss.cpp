#include "nn/loss.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rsnn::nn {

TensorF softmax(const TensorF& logits) {
  RSNN_REQUIRE(logits.rank() == 2, "softmax expects [N, C]");
  const std::int64_t batch = logits.dim(0), classes = logits.dim(1);
  TensorF probs(logits.shape());
  for (std::int64_t n = 0; n < batch; ++n) {
    float max_logit = logits(n, std::int64_t{0});
    for (std::int64_t c = 1; c < classes; ++c)
      max_logit = std::max(max_logit, logits(n, c));
    float denom = 0.0f;
    for (std::int64_t c = 0; c < classes; ++c) {
      const float e = std::exp(logits(n, c) - max_logit);
      probs(n, c) = e;
      denom += e;
    }
    for (std::int64_t c = 0; c < classes; ++c) probs(n, c) /= denom;
  }
  return probs;
}

LossResult softmax_cross_entropy(const TensorF& logits,
                                 const std::vector<int>& labels) {
  RSNN_REQUIRE(logits.rank() == 2, "loss expects [N, C] logits");
  const std::int64_t batch = logits.dim(0), classes = logits.dim(1);
  RSNN_REQUIRE(static_cast<std::int64_t>(labels.size()) == batch,
               "label count mismatch");

  LossResult result;
  result.grad_logits = softmax(logits);
  const float inv_batch = 1.0f / static_cast<float>(batch);

  for (std::int64_t n = 0; n < batch; ++n) {
    const int label = labels[static_cast<std::size_t>(n)];
    RSNN_REQUIRE(label >= 0 && label < classes, "label " << label);

    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c)
      if (result.grad_logits(n, c) > result.grad_logits(n, best)) best = c;
    if (best == label) ++result.correct;

    const float p = std::max(result.grad_logits(n, std::int64_t{label}), 1e-12f);
    result.loss += -std::log(p);

    // grad = (softmax - onehot) / N, computed in place on the probs tensor.
    result.grad_logits(n, std::int64_t{label}) -= 1.0f;
  }
  for (std::int64_t i = 0; i < result.grad_logits.numel(); ++i)
    result.grad_logits.at_flat(i) *= inv_batch;
  result.loss *= inv_batch;
  return result;
}

}  // namespace rsnn::nn
