// Shape: the dimension vector of an N-D row-major tensor.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace rsnn {

/// Dimension sizes of a row-major tensor. Immutable value type.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  int rank() const { return static_cast<int>(dims_.size()); }

  std::int64_t dim(int axis) const {
    RSNN_REQUIRE(axis >= 0 && axis < rank(), "axis " << axis << " out of range for rank " << rank());
    return dims_[static_cast<std::size_t>(axis)];
  }

  std::int64_t operator[](int axis) const { return dim(axis); }

  /// Total number of elements (1 for rank-0).
  std::int64_t numel() const {
    std::int64_t n = 1;
    for (const auto d : dims_) n *= d;
    return n;
  }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Row-major strides, in elements.
  std::vector<std::int64_t> strides() const;

  std::string to_string() const;

 private:
  void validate() const {
    for (const auto d : dims_)
      RSNN_REQUIRE(d >= 0, "negative dimension in shape");
  }

  std::vector<std::int64_t> dims_;
};

}  // namespace rsnn
