// Tensor<T>: owning, row-major, N-dimensional array.
//
// This is the numeric substrate for the ANN trainer, the quantized reference
// model and the SNN simulators. It deliberately favors clarity over BLAS-level
// performance — the networks in the paper (LeNet-5, VGG-11) are small enough
// that straightforward loops train and evaluate in seconds on a laptop.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <vector>

#include "common/assert.hpp"
#include "tensor/shape.hpp"

namespace rsnn {

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        strides_(shape_.strides()),
        data_(static_cast<std::size_t>(shape_.numel()), T{}) {}

  Tensor(Shape shape, T fill_value)
      : shape_(std::move(shape)),
        strides_(shape_.strides()),
        data_(static_cast<std::size_t>(shape_.numel()), fill_value) {}

  Tensor(Shape shape, std::vector<T> data)
      : shape_(std::move(shape)), strides_(shape_.strides()), data_(std::move(data)) {
    RSNN_REQUIRE(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
                 "data size " << data_.size() << " != shape numel " << shape_.numel());
  }

  const Shape& shape() const { return shape_; }
  /// Number of stored elements. Equals shape().numel() for any constructed
  /// tensor; 0 for a default-constructed (uninitialized) one — which is why
  /// "is this tensor initialized" checks use numel() == 0 rather than the
  /// rank-0 scalar convention of Shape::numel().
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  int rank() const { return shape_.rank(); }
  std::int64_t dim(int axis) const { return shape_.dim(axis); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::vector<T>& storage() { return data_; }
  const std::vector<T>& storage() const { return data_; }

  // ---- element access -----------------------------------------------------

  // Per-element bounds checks are RSNN_DCHECK (hot-path tier): full checks in
  // Debug and RSNN_CHECKED builds, raw loads in plain Release.
  T& at_flat(std::int64_t index) {
    RSNN_DCHECK(index >= 0 && index < numel(), "flat index " << index);
    return data_[static_cast<std::size_t>(index)];
  }
  const T& at_flat(std::int64_t index) const {
    RSNN_DCHECK(index >= 0 && index < numel(), "flat index " << index);
    return data_[static_cast<std::size_t>(index)];
  }

  template <typename... Idx>
  T& operator()(Idx... idx) {
    return data_[offset_of(idx...)];
  }
  template <typename... Idx>
  const T& operator()(Idx... idx) const {
    return data_[offset_of(idx...)];
  }

  // ---- whole-tensor operations ---------------------------------------------

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Same data, different shape. Element count must match.
  Tensor reshaped(Shape new_shape) const {
    RSNN_REQUIRE(new_shape.numel() == numel(),
                 "reshape " << shape_.to_string() << " -> " << new_shape.to_string());
    return Tensor(std::move(new_shape), data_);
  }

  /// Copy of the elements in flat (row-major) order — e.g. the final
  /// layer's raw accumulators as a logit vector.
  std::vector<T> to_vector() const { return data_; }

  template <typename U>
  Tensor<U> cast() const {
    Tensor<U> out(shape_);
    for (std::int64_t i = 0; i < numel(); ++i)
      out.at_flat(i) = static_cast<U>(data_[static_cast<std::size_t>(i)]);
    return out;
  }

  Tensor map(const std::function<T(T)>& f) const {
    Tensor out(shape_);
    for (std::int64_t i = 0; i < numel(); ++i)
      out.at_flat(i) = f(data_[static_cast<std::size_t>(i)]);
    return out;
  }

  T sum() const { return std::accumulate(data_.begin(), data_.end(), T{}); }

  T min() const {
    RSNN_REQUIRE(numel() > 0);
    return *std::min_element(data_.begin(), data_.end());
  }

  T max() const {
    RSNN_REQUIRE(numel() > 0);
    return *std::max_element(data_.begin(), data_.end());
  }

  /// Index of the maximum element (first on ties).
  std::int64_t argmax() const {
    RSNN_REQUIRE(numel() > 0);
    return std::distance(data_.begin(),
                         std::max_element(data_.begin(), data_.end()));
  }

  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }
  bool operator!=(const Tensor& other) const { return !(*this == other); }

 private:
  template <typename... Idx>
  std::size_t offset_of(Idx... idx) const {
    static_assert((std::is_convertible_v<Idx, std::int64_t> && ...));
    RSNN_REQUIRE(sizeof...(Idx) == static_cast<std::size_t>(rank()),
                 "index arity " << sizeof...(Idx) << " != rank " << rank());
    const std::int64_t indices[] = {static_cast<std::int64_t>(idx)...};
    std::int64_t offset = 0;
    for (int axis = 0; axis < rank(); ++axis) {
      RSNN_DCHECK(indices[axis] >= 0 && indices[axis] < shape_.dim(axis),
                  "index " << indices[axis] << " out of bounds for axis "
                           << axis << " with size " << shape_.dim(axis));
      offset += indices[axis] * strides_[static_cast<std::size_t>(axis)];
    }
    return static_cast<std::size_t>(offset);
  }

  Shape shape_;
  std::vector<std::int64_t> strides_;
  std::vector<T> data_;
};

using TensorF = Tensor<float>;
using TensorI = Tensor<std::int32_t>;
using TensorI64 = Tensor<std::int64_t>;

// ---- free functions ---------------------------------------------------------

/// Elementwise binary op on same-shaped tensors.
template <typename T, typename F>
Tensor<T> zip(const Tensor<T>& a, const Tensor<T>& b, F f) {
  RSNN_REQUIRE(a.shape() == b.shape(),
               "zip shape mismatch " << a.shape().to_string() << " vs "
                                     << b.shape().to_string());
  Tensor<T> out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i)
    out.at_flat(i) = f(a.at_flat(i), b.at_flat(i));
  return out;
}

template <typename T>
Tensor<T> operator+(const Tensor<T>& a, const Tensor<T>& b) {
  return zip(a, b, std::plus<T>{});
}

template <typename T>
Tensor<T> operator-(const Tensor<T>& a, const Tensor<T>& b) {
  return zip(a, b, std::minus<T>{});
}

/// Max absolute elementwise difference; tensors must be same shape.
template <typename T>
double max_abs_diff(const Tensor<T>& a, const Tensor<T>& b) {
  RSNN_REQUIRE(a.shape() == b.shape());
  double worst = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    worst = std::max(worst,
                     std::abs(static_cast<double>(a.at_flat(i)) -
                              static_cast<double>(b.at_flat(i))));
  return worst;
}

}  // namespace rsnn
