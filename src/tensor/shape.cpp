#include "tensor/shape.hpp"

#include <sstream>

namespace rsnn {

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> result(dims_.size(), 1);
  for (int axis = rank() - 2; axis >= 0; --axis) {
    const auto i = static_cast<std::size_t>(axis);
    result[i] = result[i + 1] * dims_[i + 1];
  }
  return result;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace rsnn
