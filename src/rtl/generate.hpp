// SystemVerilog generation.
//
// The paper's implementation is hand-written SystemVerilog synthesized with
// Vivado (Sec. IV-A); its companion framework E3NE [14] generates the HDL
// from a model description. This module provides that generation step:
// given an AcceleratorConfig (and optionally a quantized network for the
// parameter ROM initialization files), it emits a self-consistent set of
// synthesizable SystemVerilog sources mirroring the simulated
// micro-architecture cycle for cycle:
//
//   rsnn_pkg.sv          parameters (X, Y, accumulator widths, T, ...)
//   conv_unit.sv         shift register + Y x X adder array + pipeline
//   pool_unit.sv         row-based spike-count pooling
//   linear_unit.sv       lane-parallel FC engine
//   output_logic.sv      channel/time accumulation, radix shift, requantize
//   pingpong_buffer.sv   dual-bank activation memory
//   accelerator_top.sv   unit instantiation + layer sequencer skeleton
//   <name>_weights.mem   $readmemh image of the quantized parameters
//
// The RTL is untested on silicon (this repository's claim is the simulator);
// it is emitted so the repository is a complete hardware project seed, and
// the generator is unit-tested for structural well-formedness.
#pragma once

#include <map>
#include <string>

#include "hw/arch.hpp"
#include "quant/qnetwork.hpp"

namespace rsnn::rtl {

/// File name -> file contents.
using SourceBundle = std::map<std::string, std::string>;

struct GenerateOptions {
  std::string top_name = "rsnn_accel";
  int time_steps = 4;
  int weight_bits = 3;
};

/// Generate the RTL bundle for a design instance.
SourceBundle generate_design(const hw::AcceleratorConfig& config,
                             const GenerateOptions& options);

/// As above, plus the weight ROM image for a concrete network (time steps
/// and weight bits are taken from the network).
SourceBundle generate_design_with_weights(const hw::AcceleratorConfig& config,
                                          const quant::QuantizedNetwork& qnet,
                                          const std::string& top_name = "rsnn_accel");

/// Write a bundle to `directory` (created if needed). Returns file count.
int write_bundle(const SourceBundle& bundle, const std::string& directory);

}  // namespace rsnn::rtl
