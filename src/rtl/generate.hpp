// SystemVerilog generation.
//
// The paper's implementation is hand-written SystemVerilog synthesized with
// Vivado (Sec. IV-A); its companion framework E3NE [14] generates the HDL
// from a model description. This module provides that generation step:
// given an AcceleratorConfig (and optionally a quantized network for the
// parameter ROM initialization files), it emits a self-consistent set of
// synthesizable SystemVerilog sources mirroring the simulated
// micro-architecture cycle for cycle:
//
//   rsnn_pkg.sv          parameters (X, Y, accumulator widths, T, ...)
//   conv_unit.sv         shift register + Y x X adder array + pipeline
//   pool_unit.sv         row-based spike-count pooling
//   linear_unit.sv       lane-parallel FC engine
//   output_logic.sv      channel/time accumulation, radix shift, requantize
//   pingpong_buffer.sv   dual-bank activation memory
//   accelerator_top.sv   unit instantiation + layer sequencer skeleton
//   <name>_weights.mem   $readmemh image of the quantized parameters
//
// The RTL is untested on silicon (this repository's claim is the simulator);
// it is emitted so the repository is a complete hardware project seed, and
// the generator is unit-tested for structural well-formedness.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hw/arch.hpp"
#include "ir/layer_program.hpp"
#include "quant/qnetwork.hpp"

namespace rsnn::rtl {

/// File name -> file contents.
using SourceBundle = std::map<std::string, std::string>;

struct GenerateOptions {
  std::string top_name = "rsnn_accel";
  int time_steps = 4;
  int weight_bits = 3;
};

/// Generate the RTL bundle for a design instance.
SourceBundle generate_design(const hw::AcceleratorConfig& config,
                             const GenerateOptions& options);

/// As above, plus the weight ROM image for a concrete network (time steps
/// and weight bits are taken from the network).
SourceBundle generate_design_with_weights(const hw::AcceleratorConfig& config,
                                          const quant::QuantizedNetwork& qnet,
                                          const std::string& top_name = "rsnn_accel");

/// Write a bundle to `directory` (created if needed). Returns file count.
int write_bundle(const SourceBundle& bundle, const std::string& directory);

// ------------------------------------------------- per-segment bundles
//
// Multi-FPGA deployment of a partitioned program: one self-contained RTL
// bundle per pipeline segment, each generated from the segment's *own*
// re-lowered program (its per-device weight placement and buffer plan, not
// the monolithic plan). Every stage top exposes explicit inter-device
// stream interfaces — ready/valid ports whose data width is the cut
// activation-code width (one T-bit radix code per beat) — plus a
// machine-readable manifest pinning the op coverage and cut geometry.

struct PipelineBundleOptions {
  std::string top_name = "rsnn_accel";
  /// Emit the $readmemh weight images for the stage's conv/linear ops. Turn
  /// off for very large models when only the structure is needed.
  bool include_weights = true;
};

/// One pipeline stage's RTL bundle.
struct StageBundle {
  int stage = 0;
  std::size_t op_begin = 0;  ///< network op range covered by this stage
  std::size_t op_end = 0;
  SourceBundle files;
};

/// Emit one Verilog bundle per segment of a partitioned program. Segments
/// that already carry a re-lowered program (SegmentLowering::kRelower) use
/// it; inherited segments are re-lowered here, because a per-device bundle
/// is by definition compiled against its own device.
std::vector<StageBundle> generate_pipeline_bundles(
    const ir::LayerProgram& program,
    const std::vector<ir::ProgramSegment>& segments,
    const PipelineBundleOptions& options = {});

/// Write stage bundles into `<directory>/stage<k>/`. Returns total files.
int write_pipeline_bundles(const std::vector<StageBundle>& bundles,
                           const std::string& directory);

}  // namespace rsnn::rtl
