// Individual SystemVerilog module emitters. Each function returns the full
// text of one .sv file; generate.cpp assembles them into a bundle.
#pragma once

#include <string>

#include "hw/arch.hpp"

namespace rsnn::rtl {

/// Shared package: localparams for the design geometry.
std::string emit_package(const hw::AcceleratorConfig& config, int time_steps,
                         int weight_bits);

/// One convolution unit (paper Fig. 2).
std::string emit_conv_unit(const hw::ConvUnitGeometry& geometry,
                           int weight_bits);

/// The row-based pooling unit.
std::string emit_pool_unit(const hw::PoolUnitGeometry& geometry);

/// The lane-parallel fully-connected engine.
std::string emit_linear_unit(const hw::LinearUnitGeometry& geometry,
                             int weight_bits);

/// Output logic: input-channel/time accumulation, radix shift, bias,
/// ReLU + requantize.
std::string emit_output_logic(int accumulator_bits, int time_steps);

/// Dual-bank (ping-pong) activation buffer.
std::string emit_pingpong_buffer();

/// Top level: instantiates the units and the layer sequencer skeleton.
std::string emit_top(const hw::AcceleratorConfig& config,
                     const std::string& top_name);

/// Generic ready/valid stream endpoint (single-entry skid buffer): the
/// inter-device link primitive the per-segment pipeline bundles instantiate
/// on both sides of every cut.
std::string emit_stream_endpoint();

}  // namespace rsnn::rtl
