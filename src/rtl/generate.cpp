#include "rtl/generate.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "ir/layer_program.hpp"
#include "rtl/modules.hpp"

namespace rsnn::rtl {
namespace {

/// $readmemh image of a layer's weights: one hex word per weight, two's
/// complement at the configured width, row-major.
void append_weight_mem(std::ostringstream& os, const TensorI& weights,
                       int weight_bits) {
  const std::uint32_t mask = (1u << weight_bits) - 1u;
  for (std::int64_t i = 0; i < weights.numel(); ++i) {
    const std::uint32_t word =
        static_cast<std::uint32_t>(weights.at_flat(i)) & mask;
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%x\n", word);
    os << buffer;
  }
}

}  // namespace

SourceBundle generate_design(const hw::AcceleratorConfig& config,
                             const GenerateOptions& options) {
  RSNN_REQUIRE(options.time_steps >= 1 && options.time_steps <= 16);
  RSNN_REQUIRE(options.weight_bits >= 2 && options.weight_bits <= 16);
  RSNN_REQUIRE(!options.top_name.empty());

  SourceBundle bundle;
  bundle["rsnn_pkg.sv"] =
      emit_package(config, options.time_steps, options.weight_bits);
  bundle["conv_unit.sv"] = emit_conv_unit(config.conv, options.weight_bits);
  bundle["pool_unit.sv"] = emit_pool_unit(config.pool);
  bundle["linear_unit.sv"] =
      emit_linear_unit(config.linear, options.weight_bits);
  bundle["output_logic.sv"] =
      emit_output_logic(config.conv.accumulator_bits, options.time_steps);
  bundle["pingpong_buffer.sv"] = emit_pingpong_buffer();
  bundle[options.top_name + ".sv"] = emit_top(config, options.top_name);

  // File list for the synthesis tool.
  std::ostringstream filelist;
  for (const auto& [name, _] : bundle) filelist << name << "\n";
  bundle[options.top_name + ".f"] = filelist.str();
  return bundle;
}

SourceBundle generate_design_with_weights(const hw::AcceleratorConfig& config,
                                          const quant::QuantizedNetwork& qnet,
                                          const std::string& top_name) {
  GenerateOptions options;
  options.top_name = top_name;
  options.time_steps = qnet.time_bits;
  options.weight_bits = qnet.weight_bits;
  SourceBundle bundle = generate_design(config, options);

  const ir::LayerProgram program = ir::lower(qnet);
  for (const ir::LayerOp& op : program.ops()) {
    std::ostringstream os;
    const std::string index = std::to_string(op.layer_index);
    if (op.kind == ir::OpKind::kConv) {
      append_weight_mem(os, op.conv->weight, qnet.weight_bits);
      bundle["weights_layer" + index + "_conv.mem"] = os.str();
    } else if (op.kind == ir::OpKind::kLinear) {
      append_weight_mem(os, op.linear->weight, qnet.weight_bits);
      bundle["weights_layer" + index + "_fc.mem"] = os.str();
    }
  }
  return bundle;
}

int write_bundle(const SourceBundle& bundle, const std::string& directory) {
  std::filesystem::create_directories(directory);
  int written = 0;
  for (const auto& [name, contents] : bundle) {
    std::ofstream os(directory + "/" + name, std::ios::binary);
    RSNN_REQUIRE(os.good(), "cannot write " << directory << "/" << name);
    os << contents;
    ++written;
  }
  return written;
}

}  // namespace rsnn::rtl
