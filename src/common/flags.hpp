// Declarative command-line flag tables. A front end describes each flag once
// — name, type, range, default, help — and FlagSet derives everything else
// from that single source of truth: `--key value` parsing with friendly
// one-line diagnostics (never exceptions — front ends print and exit),
// range-checked typed accessors, and generated usage text, so help output
// cannot drift from what the parser actually accepts.
//
// Types:
//   kCount  — integer with an inclusive [min, max] range. Rejects the inputs
//             std::stoul would silently wrap ("--queue-depth -1" must not
//             unbound a bounded queue).
//   kNumber — double with an inclusive [min, max] range (durations, ratios,
//             clock rates).
//   kText   — free-form string; domain validation (policy names, partition
//             strategies) stays with the code that owns the domain.
//   kToggle — boolean written as 0/1 (also accepts true/false/on/off).
//
// Tables are plain std::vector<FlagSpec>, so front ends compose them:
// rsnn_cli's `run --serve` block and the rsnn_serve daemon append the same
// serving-pool table to their command-specific flags and therefore stay
// option-compatible by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rsnn::flags {

enum class FlagType { kCount, kNumber, kText, kToggle };

/// Practically-unbounded range limit; the default max for counts/numbers.
inline constexpr double kUnbounded = 1e306;

/// One flag's declaration. Aggregate — tables are brace-initialized, with
/// designated initializers for the optional fields.
struct FlagSpec {
  /// Flag name without the leading dashes ("queue-depth" for --queue-depth).
  std::string name;
  FlagType type = FlagType::kText;
  /// Default value as text; must itself satisfy the type/range constraints.
  std::string fallback;
  /// One-line help text (no trailing period, no default — usage() appends
  /// the default automatically).
  std::string help;
  /// Inclusive range for kCount/kNumber.
  double min_value = 0.0;
  double max_value = kUnbounded;
  /// Metavariable shown in usage ("N", "MS", "PATH"); derived from the type
  /// when empty.
  std::string value_name;
};

/// A parsed flag table: construct from specs, parse() once, then read typed
/// values. Accessors throw ContractViolation only on programming errors
/// (asking for a flag the table does not declare, or with the wrong type);
/// user input errors all surface through parse()'s return value.
class FlagSet {
 public:
  explicit FlagSet(std::vector<FlagSpec> specs);

  /// Parse `--key value` pairs from argv[first..argc). Unknown flags,
  /// missing values, malformed numbers and out-of-range values produce a
  /// friendly one-line diagnostic (returned; empty on success). May be
  /// called once per FlagSet.
  std::string parse(int argc, char** argv, int first);

  /// Parse from an already-tokenized vector (tests, config lines).
  std::string parse(const std::vector<std::string>& tokens);

  /// True when the flag was given explicitly (not defaulted).
  bool is_set(const std::string& name) const;

  /// Typed accessors; the value is the explicit one when given, else the
  /// spec's fallback. Range-validated at parse time.
  std::int64_t count(const std::string& name) const;
  double number(const std::string& name) const;
  const std::string& text(const std::string& name) const;
  bool toggle(const std::string& name) const;

  /// Generated usage lines, one flag per line, indented by `indent` spaces:
  ///   --queue-depth N   bounded admission queue capacity (default 64)
  /// Ranges tighter than [0, unbounded) are spelled out.
  std::string usage(int indent = 4) const;

  const std::vector<FlagSpec>& specs() const { return specs_; }

 private:
  const FlagSpec& spec(const std::string& name, FlagType type) const;

  std::vector<FlagSpec> specs_;
  std::vector<std::string> values_;  // parallel to specs_
  std::vector<bool> given_;          // parallel to specs_
};

/// Table-building helpers — the idiomatic way to declare a flag, keeping
/// tables terse without partially-initialized aggregates.
FlagSpec count_flag(std::string name, std::string fallback, std::string help,
                    double min_value = 0.0, double max_value = kUnbounded);
FlagSpec number_flag(std::string name, std::string fallback, std::string help,
                     double min_value = 0.0, double max_value = kUnbounded,
                     std::string value_name = "X");
FlagSpec text_flag(std::string name, std::string fallback, std::string help,
                   std::string value_name = "VALUE");
FlagSpec toggle_flag(std::string name, std::string fallback,
                     std::string help);

/// Validate `text` against one spec (type + range). Empty on success, else
/// the friendly diagnostic. Exposed for config-file front ends.
std::string validate_flag_value(const FlagSpec& spec, const std::string& text);

/// Concatenate flag tables (command-specific + shared serving table).
std::vector<FlagSpec> merge_flags(std::vector<FlagSpec> base,
                                  const std::vector<FlagSpec>& extra);

}  // namespace rsnn::flags
