// Process-wide heap allocation counter for zero-allocation tests.
//
// alloc_hook.cpp replaces the global operator new family with versions that
// bump an atomic counter before delegating to malloc. Because the library is
// linked statically, the replacement is only pulled into binaries that
// reference allocation_count() — i.e. the tests that assert on it; other
// binaries keep the default allocator.
//
// Usage: warm the code under test, snapshot allocation_count(), run the hot
// path, and assert the counter did not move. The counter is monotonic and
// process-wide, so such tests must not run concurrent allocating threads.
#pragma once

#include <cstdint>

namespace rsnn::common {

/// Number of operator-new calls since process start (0 when the hook is not
/// linked into the binary).
std::uint64_t allocation_count();

}  // namespace rsnn::common
