// TaskPool: a small persistent fork/join pool for intra-op parallelism.
//
// The batched fast path (hw/fast_path) splits the image-minor batch
// dimension across cores *inside* each op: every worker executes the same op
// over its own contiguous slice of the batch, so all of them stream the same
// prepared weight tap sequence through the shared cache while it is hot.
// That usage shapes the design:
//
//   * Futures-free fork/join. run() publishes a plain function pointer and
//     context, wakes the workers, executes task 0 on the calling thread and
//     blocks until every task finished. No std::function, no promises, no
//     per-call heap allocation — the warm path of a run() is a mutex
//     handshake and nothing else (the zero-allocation warm-stream property
//     of the fast path extends across the pool).
//   * Static slot binding. Task index == slot index: task 0 always runs on
//     the calling thread, task s (s >= 1) always on pool worker s. Each slot
//     owns one common::Arena, so a stable workload hits a warmed arena on
//     the same thread every round and performs zero heap allocation.
//   * Fork/join sequences, not single calls, are the unit of exclusion.
//     Slice state (activation buffers in the slot arenas) persists across
//     the per-op run() rounds of one batched inference, so a caller sharing
//     the pool must hold acquire() for the whole sequence.
//
// Worker exceptions are captured and the first one rethrown from run() after
// the round joins (all other tasks still complete).
#pragma once

#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/arena.hpp"

#include <condition_variable>

namespace rsnn::common {

class TaskPool {
 public:
  /// A pool with `slots` execution slots: the calling thread (slot 0) plus
  /// `slots - 1` persistent worker threads, each parked on a condition
  /// variable between rounds.
  explicit TaskPool(std::size_t slots);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  std::size_t slots() const { return arenas_.size(); }

  /// The scratch arena bound to `slot`. Only the thread executing that slot
  /// may touch it during a round.
  Arena& arena(std::size_t slot) { return arenas_[slot]; }

  /// Exclusive use of the pool (workers and slot arenas) for a multi-round
  /// fork/join sequence. Hold the returned lock across every run() of the
  /// sequence; concurrent callers serialize here.
  std::unique_lock<std::mutex> acquire() {
    return std::unique_lock<std::mutex>(session_mu_);
  }

  /// Execute fn(slot) for slot in [0, tasks) — task 0 on the calling
  /// thread, task s on worker s — and return when all have finished.
  /// `tasks` must be in [1, slots()]. The callable is invoked by reference;
  /// nothing is copied or allocated.
  template <typename Fn>
  void run(std::size_t tasks, Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    run_impl(
        tasks,
        [](void* ctx, std::size_t slot) { (*static_cast<F*>(ctx))(slot); },
        const_cast<std::remove_const_t<F>*>(&fn));
  }

 private:
  void run_impl(std::size_t tasks, void (*fn)(void*, std::size_t), void* ctx);
  void worker_main(std::size_t slot);
  void record_error() noexcept;

  std::vector<Arena> arenas_;       // one per slot (index 0 = caller)
  std::vector<std::thread> threads_;  // workers for slots 1..slots()-1

  std::mutex session_mu_;  // serializes fork/join sequences (acquire())

  std::mutex mu_;  // protects everything below
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  // bumps once per round
  std::size_t tasks_ = 0;         // tasks in the current round
  void (*fn_)(void*, std::size_t) = nullptr;
  void* ctx_ = nullptr;
  std::size_t remaining_ = 0;  // worker tasks not yet finished this round
  std::exception_ptr error_;   // first failure of the round
  bool shutdown_ = false;
};

/// The process-wide pool the fast path forks onto. Sized to the host
/// (hardware_concurrency, floored at 8 slots so thread-count sweeps exercise
/// real concurrency even on small CI boxes); idle workers cost one parked
/// thread each. Callers share it via acquire().
TaskPool& shared_task_pool();

}  // namespace rsnn::common
