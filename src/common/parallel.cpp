#include "common/parallel.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rsnn::common {

TaskPool::TaskPool(std::size_t slots) : arenas_(std::max<std::size_t>(slots, 1)) {
  threads_.reserve(arenas_.size() - 1);
  for (std::size_t s = 1; s < arenas_.size(); ++s)
    threads_.emplace_back([this, s] { worker_main(s); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::record_error() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_) error_ = std::current_exception();
}

void TaskPool::run_impl(std::size_t tasks, void (*fn)(void*, std::size_t),
                        void* ctx) {
  RSNN_REQUIRE(tasks >= 1 && tasks <= slots(),
               "TaskPool::run wants " << tasks << " tasks on a pool of "
                                      << slots() << " slot(s)");
  if (tasks == 1) {
    fn(ctx, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = fn;
    ctx_ = ctx;
    tasks_ = tasks;
    remaining_ = tasks - 1;
    error_ = nullptr;
    ++generation_;
  }
  cv_work_.notify_all();

  // The caller is slot 0 of its own round.
  try {
    fn(ctx, 0);
  } catch (...) {
    record_error();
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void TaskPool::worker_main(std::size_t slot) {
  std::uint64_t seen = 0;
  for (;;) {
    void (*fn)(void*, std::size_t) = nullptr;
    void* ctx = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      if (slot >= tasks_) continue;  // this round fans out to fewer slots
      fn = fn_;
      ctx = ctx_;
    }
    try {
      fn(ctx, slot);
    } catch (...) {
      record_error();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

TaskPool& shared_task_pool() {
  static TaskPool pool(std::max<std::size_t>(
      std::thread::hardware_concurrency(), 8));
  return pool;
}

}  // namespace rsnn::common
