// Deterministic random number generation.
//
// Every stochastic component in the library (dataset synthesis, weight
// initialization, property-test sweeps) draws from an explicitly seeded Rng
// so that experiments are reproducible run-to-run. The engine is a
// SplitMix64-seeded xoshiro256**, implemented here rather than relying on
// std::mt19937 so that the bit stream is identical across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

namespace rsnn {

/// xoshiro256** PRNG with SplitMix64 seeding. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int next_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double next_gaussian();

  /// Bernoulli trial.
  bool next_bool(double p_true = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent stream (for parallel or per-module seeding).
  Rng split();

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace rsnn
