// Lightweight contract checking used across the library.
//
// RSNN_REQUIRE is a precondition check that stays active in release builds:
// the simulator is a verification tool, so silently computing garbage after a
// contract violation would defeat its purpose. Violations throw
// rsnn::ContractViolation carrying the failing expression and location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rsnn {

/// Thrown when a precondition or invariant stated in an interface is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace rsnn

/// Precondition check, always on. Usage: RSNN_REQUIRE(n > 0, "n was " << n);
#define RSNN_REQUIRE(expr, ...)                                               \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream rsnn_require_os_;                                    \
      (void)(rsnn_require_os_ __VA_OPT__(<< __VA_ARGS__));                    \
      ::rsnn::detail::contract_fail("Precondition", #expr, __FILE__,          \
                                    __LINE__, rsnn_require_os_.str());        \
    }                                                                         \
  } while (false)

/// Internal invariant check, always on.
#define RSNN_ENSURE(expr, ...)                                                \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream rsnn_ensure_os_;                                     \
      (void)(rsnn_ensure_os_ __VA_OPT__(<< __VA_ARGS__));                     \
      ::rsnn::detail::contract_fail("Invariant", #expr, __FILE__, __LINE__,   \
                                    rsnn_ensure_os_.str());                   \
    }                                                                         \
  } while (false)

// Hot-path check tier.
//
// RSNN_DCHECK guards per-element accessors that sit in the simulator's inner
// loops (Tensor::at_flat, SpikeTrain::index, ...). In checked builds it is
// exactly RSNN_REQUIRE; in plain release builds it compiles to nothing so the
// accessors become raw loads. Checked builds are:
//   * any build without NDEBUG (Debug / RelWithAssert), or
//   * any build with RSNN_CHECKED defined (the CMake RSNN_CHECKED option;
//     the test targets always define it so ctest exercises full checking).
//
// API-level preconditions (shape agreement, configuration validity) stay on
// RSNN_REQUIRE unconditionally — only per-element bounds checks may use this
// tier, because they are redundant with the API-level checks for any caller
// that passed them.
#if defined(RSNN_CHECKED) || !defined(NDEBUG)
#define RSNN_DCHECK(expr, ...) RSNN_REQUIRE(expr __VA_OPT__(, __VA_ARGS__))
#else
#define RSNN_DCHECK(expr, ...)                                                \
  do {                                                                        \
    (void)sizeof(expr); /* keep the expression syntactically alive */         \
  } while (false)
#endif
