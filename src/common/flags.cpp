#include "common/flags.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/assert.hpp"

namespace rsnn::flags {
namespace {

const char* type_name(FlagType type) {
  switch (type) {
    case FlagType::kCount:
      return "integer";
    case FlagType::kNumber:
      return "number";
    case FlagType::kText:
      return "text";
    case FlagType::kToggle:
      return "0/1";
  }
  return "?";
}

const char* default_value_name(FlagType type) {
  switch (type) {
    case FlagType::kCount:
      return "N";
    case FlagType::kNumber:
      return "X";
    case FlagType::kText:
      return "VALUE";
    case FlagType::kToggle:
      return "0|1";
  }
  return "VALUE";
}

bool parse_full(const std::string& text, std::int64_t* out) {
  std::size_t consumed = 0;
  try {
    *out = std::stoll(text, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed != 0 && consumed == text.size();
}

bool parse_full(const std::string& text, double* out) {
  std::size_t consumed = 0;
  try {
    *out = std::stod(text, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed != 0 && consumed == text.size() && std::isfinite(*out);
}

bool parse_toggle(const std::string& text, bool* out) {
  if (text == "1" || text == "true" || text == "on" || text == "yes") {
    *out = true;
    return true;
  }
  if (text == "0" || text == "false" || text == "off" || text == "no") {
    *out = false;
    return true;
  }
  return false;
}

std::string format_bound(FlagType type, double value) {
  std::ostringstream os;
  if (type == FlagType::kCount) {
    os << static_cast<std::int64_t>(value);
  } else {
    os << value;
  }
  return os.str();
}

/// The "(expected ...)" clause of a range diagnostic, e.g.
/// "an integer >= 1" or "a number in [0, 1]".
std::string expectation(const FlagSpec& spec) {
  std::ostringstream os;
  const bool bounded_above = spec.max_value < kUnbounded;
  if (spec.type == FlagType::kToggle) return "0 or 1";
  if (spec.type == FlagType::kText) return "text";
  os << (spec.type == FlagType::kCount ? "an integer" : "a number");
  if (bounded_above) {
    os << " in [" << format_bound(spec.type, spec.min_value) << ", "
       << format_bound(spec.type, spec.max_value) << "]";
  } else {
    os << " >= " << format_bound(spec.type, spec.min_value);
  }
  return os.str();
}

}  // namespace

FlagSpec count_flag(std::string name, std::string fallback, std::string help,
                    double min_value, double max_value) {
  FlagSpec spec;
  spec.name = std::move(name);
  spec.type = FlagType::kCount;
  spec.fallback = std::move(fallback);
  spec.help = std::move(help);
  spec.min_value = min_value;
  spec.max_value = max_value;
  return spec;
}

FlagSpec number_flag(std::string name, std::string fallback, std::string help,
                     double min_value, double max_value,
                     std::string value_name) {
  FlagSpec spec;
  spec.name = std::move(name);
  spec.type = FlagType::kNumber;
  spec.fallback = std::move(fallback);
  spec.help = std::move(help);
  spec.min_value = min_value;
  spec.max_value = max_value;
  spec.value_name = std::move(value_name);
  return spec;
}

FlagSpec text_flag(std::string name, std::string fallback, std::string help,
                   std::string value_name) {
  FlagSpec spec;
  spec.name = std::move(name);
  spec.type = FlagType::kText;
  spec.fallback = std::move(fallback);
  spec.help = std::move(help);
  spec.value_name = std::move(value_name);
  return spec;
}

FlagSpec toggle_flag(std::string name, std::string fallback,
                     std::string help) {
  FlagSpec spec;
  spec.name = std::move(name);
  spec.type = FlagType::kToggle;
  spec.fallback = std::move(fallback);
  spec.help = std::move(help);
  return spec;
}

std::string validate_flag_value(const FlagSpec& spec, const std::string& text) {
  const auto fail = [&spec, &text]() {
    return "invalid --" + spec.name + " '" + text + "' (expected " +
           expectation(spec) + ")";
  };
  switch (spec.type) {
    case FlagType::kCount: {
      std::int64_t value = 0;
      if (!parse_full(text, &value) ||
          static_cast<double>(value) < spec.min_value ||
          static_cast<double>(value) > spec.max_value)
        return fail();
      return {};
    }
    case FlagType::kNumber: {
      double value = 0.0;
      if (!parse_full(text, &value) || value < spec.min_value ||
          value > spec.max_value)
        return fail();
      return {};
    }
    case FlagType::kToggle: {
      bool value = false;
      if (!parse_toggle(text, &value)) return fail();
      return {};
    }
    case FlagType::kText:
      return {};
  }
  return {};
}

FlagSet::FlagSet(std::vector<FlagSpec> specs) : specs_(std::move(specs)) {
  values_.reserve(specs_.size());
  given_.assign(specs_.size(), false);
  for (const FlagSpec& spec : specs_) {
    // A table whose default violates its own constraints is a programming
    // error; catch it at construction, not in some accessor later.
    const std::string error = validate_flag_value(spec, spec.fallback);
    RSNN_REQUIRE(error.empty(),
                 "flag table default violates its own spec: " << error);
    values_.push_back(spec.fallback);
  }
}

std::string FlagSet::parse(int argc, char** argv, int first) {
  std::vector<std::string> tokens;
  tokens.reserve(argc > first ? static_cast<std::size_t>(argc - first) : 0);
  for (int i = first; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse(tokens);
}

std::string FlagSet::parse(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); i += 2) {
    const std::string& key = tokens[i];
    if (key.size() < 3 || key.compare(0, 2, "--") != 0)
      return "expected --option, got '" + key + "'";
    const std::string name = key.substr(2);
    std::size_t index = specs_.size();
    for (std::size_t s = 0; s < specs_.size(); ++s)
      if (specs_[s].name == name) {
        index = s;
        break;
      }
    if (index == specs_.size())
      return "unknown option '--" + name + "' (see usage)";
    if (i + 1 >= tokens.size())
      return "option '--" + name + "' needs a value";
    const std::string& value = tokens[i + 1];
    const std::string error = validate_flag_value(specs_[index], value);
    if (!error.empty()) return error;
    values_[index] = value;
    given_[index] = true;
  }
  return {};
}

const FlagSpec& FlagSet::spec(const std::string& name, FlagType type) const {
  for (std::size_t s = 0; s < specs_.size(); ++s)
    if (specs_[s].name == name) {
      RSNN_REQUIRE(specs_[s].type == type,
                   "flag '--" << name << "' is declared as "
                              << type_name(specs_[s].type)
                              << " but was read as " << type_name(type));
      return specs_[s];
    }
  RSNN_REQUIRE(false, "flag '--" << name << "' is not in this table");
  return specs_.front();  // unreachable
}

bool FlagSet::is_set(const std::string& name) const {
  for (std::size_t s = 0; s < specs_.size(); ++s)
    if (specs_[s].name == name) return given_[s];
  RSNN_REQUIRE(false, "flag '--" << name << "' is not in this table");
  return false;  // unreachable
}

std::int64_t FlagSet::count(const std::string& name) const {
  const FlagSpec& s = spec(name, FlagType::kCount);
  std::int64_t value = 0;
  parse_full(values_[static_cast<std::size_t>(&s - specs_.data())], &value);
  return value;
}

double FlagSet::number(const std::string& name) const {
  const FlagSpec& s = spec(name, FlagType::kNumber);
  double value = 0.0;
  parse_full(values_[static_cast<std::size_t>(&s - specs_.data())], &value);
  return value;
}

const std::string& FlagSet::text(const std::string& name) const {
  const FlagSpec& s = spec(name, FlagType::kText);
  return values_[static_cast<std::size_t>(&s - specs_.data())];
}

bool FlagSet::toggle(const std::string& name) const {
  const FlagSpec& s = spec(name, FlagType::kToggle);
  bool value = false;
  parse_toggle(values_[static_cast<std::size_t>(&s - specs_.data())], &value);
  return value;
}

std::string FlagSet::usage(int indent) const {
  // Align help text into a column two spaces past the longest flag stanza.
  std::size_t widest = 0;
  std::vector<std::string> stanzas;
  stanzas.reserve(specs_.size());
  for (const FlagSpec& spec : specs_) {
    const std::string value_name =
        spec.value_name.empty() ? default_value_name(spec.type)
                                : spec.value_name;
    stanzas.push_back("--" + spec.name + " " + value_name);
    widest = std::max(widest, stanzas.back().size());
  }
  std::ostringstream os;
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    const FlagSpec& spec = specs_[s];
    os << std::string(static_cast<std::size_t>(indent), ' ') << stanzas[s]
       << std::string(widest - stanzas[s].size() + 2, ' ') << spec.help;
    os << " (default " << (spec.fallback.empty() ? "none" : spec.fallback);
    if (spec.type == FlagType::kCount || spec.type == FlagType::kNumber) {
      const bool tight_min = spec.min_value != 0.0;
      const bool tight_max = spec.max_value < kUnbounded;
      if (tight_min || tight_max) {
        os << ", " << (tight_max ? "in [" : ">= ")
           << format_bound(spec.type, spec.min_value);
        if (tight_max)
          os << ", " << format_bound(spec.type, spec.max_value) << "]";
      }
    }
    os << ")\n";
  }
  return os.str();
}

std::vector<FlagSpec> merge_flags(std::vector<FlagSpec> base,
                                  const std::vector<FlagSpec>& extra) {
  for (const FlagSpec& spec : extra) {
    for (const FlagSpec& existing : base)
      RSNN_REQUIRE(existing.name != spec.name,
                   "duplicate flag '--" << spec.name << "' when merging "
                                        << "flag tables");
    base.push_back(spec);
  }
  return base;
}

}  // namespace rsnn::flags
