// Runtime-dispatched SIMD kernels for the fast path. See simd.hpp for the
// exactness contract and value-range requirements.
//
// The library builds with plain -O2 (no -mavx2), so the AVX2 bodies are
// compiled per-function with __attribute__((target("avx2"))) and only ever
// called after __builtin_cpu_supports("avx2") confirms the ISA. NEON is part
// of the AArch64 baseline, so that variant needs no runtime check.

#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define RSNN_SIMD_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define RSNN_SIMD_NEON 1
#endif

namespace rsnn::common::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels (always available; the forced-dispatch target).
// ---------------------------------------------------------------------------

void axpy_code_i64_scalar(std::int64_t* acc, const std::int64_t* src,
                          std::int64_t w, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) acc[i] += w * src[i];
}

void axpy_w32_scalar(std::int64_t* acc, const std::int32_t* w, std::int64_t a,
                     std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) acc[i] += a * w[i];
}

void add_i64_scalar(std::int64_t* acc, const std::int64_t* src,
                    std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) acc[i] += src[i];
}

constexpr Kernels kScalarKernels{axpy_code_i64_scalar, axpy_w32_scalar,
                                 add_i64_scalar, "scalar"};

// ---------------------------------------------------------------------------
// AVX2 kernels. AVX2 has no 64x64 multiply, but every multiplier here fits in
// int32 (see simd.hpp), so _mm256_mul_epi32 — which multiplies the low 32
// bits of each 64-bit lane with sign extension — computes the exact product.
// ---------------------------------------------------------------------------

#if RSNN_SIMD_X86

__attribute__((target("avx2"))) void axpy_code_i64_avx2(
    std::int64_t* acc, const std::int64_t* src, std::int64_t w,
    std::int64_t n) {
  // src[i] is a nonnegative activation code < 2^31 and w fits int32, so the
  // low-32 multiply of each 64-bit lane is the full product.
  const __m256i vw = _mm256_set1_epi64x(w);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 4));
    a0 = _mm256_add_epi64(a0, _mm256_mul_epi32(s0, vw));
    a1 = _mm256_add_epi64(a1, _mm256_mul_epi32(s1, vw));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 4), a1);
  }
  for (; i + 4 <= n; i += 4) {
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    a = _mm256_add_epi64(a, _mm256_mul_epi32(s, vw));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), a);
  }
  for (; i < n; ++i) acc[i] += w * src[i];
}

__attribute__((target("avx2"))) void axpy_w32_avx2(std::int64_t* acc,
                                                   const std::int32_t* w,
                                                   std::int64_t a,
                                                   std::int64_t n) {
  // |a * w[i]| < 2^31, so the 32-bit low multiply is exact; widen to int64
  // lanes before accumulating.
  const __m128i va = _mm_set1_epi32(static_cast<std::int32_t>(a));
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i w0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    __m128i w1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i + 4));
    __m128i p0 = _mm_mullo_epi32(w0, va);
    __m128i p1 = _mm_mullo_epi32(w1, va);
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 4));
    a0 = _mm256_add_epi64(a0, _mm256_cvtepi32_epi64(p0));
    a1 = _mm256_add_epi64(a1, _mm256_cvtepi32_epi64(p1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + 4), a1);
  }
  for (; i + 4 <= n; i += 4) {
    __m128i wv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
    __m128i p = _mm_mullo_epi32(wv, va);
    __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    av = _mm256_add_epi64(av, _mm256_cvtepi32_epi64(p));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), av);
  }
  for (; i < n; ++i) acc[i] += a * w[i];
}

__attribute__((target("avx2"))) void add_i64_avx2(std::int64_t* acc,
                                                  const std::int64_t* src,
                                                  std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_add_epi64(a, s));
  }
  for (; i < n; ++i) acc[i] += src[i];
}

constexpr Kernels kAvx2Kernels{axpy_code_i64_avx2, axpy_w32_avx2, add_i64_avx2,
                               "avx2"};

#endif  // RSNN_SIMD_X86

// ---------------------------------------------------------------------------
// NEON kernels (AArch64 baseline ISA — no runtime detection needed).
// ---------------------------------------------------------------------------

#if RSNN_SIMD_NEON

void axpy_code_i64_neon(std::int64_t* acc, const std::int64_t* src,
                        std::int64_t w, std::int64_t n) {
  // Codes are nonnegative < 2^31 and w fits int32: narrow the 64-bit source
  // lanes to 32 bits, do a widening 32x32 multiply-accumulate.
  const std::int32_t w32 = static_cast<std::int32_t>(w);
  const int32x2_t vw = vdup_n_s32(w32);
  std::int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    int64x2_t s = vld1q_s64(src + i);
    int64x2_t a = vld1q_s64(acc + i);
    int32x2_t s32 = vmovn_s64(s);
    a = vmlal_s32(a, s32, vw);
    vst1q_s64(acc + i, a);
  }
  for (; i < n; ++i) acc[i] += w * src[i];
}

void axpy_w32_neon(std::int64_t* acc, const std::int32_t* w, std::int64_t a,
                   std::int64_t n) {
  const int32x2_t va = vdup_n_s32(static_cast<std::int32_t>(a));
  std::int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    int32x2_t wv = vld1_s32(w + i);
    int64x2_t av = vld1q_s64(acc + i);
    av = vmlal_s32(av, wv, va);
    vst1q_s64(acc + i, av);
  }
  for (; i < n; ++i) acc[i] += a * w[i];
}

void add_i64_neon(std::int64_t* acc, const std::int64_t* src, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_s64(acc + i, vaddq_s64(vld1q_s64(acc + i), vld1q_s64(src + i)));
  }
  for (; i < n; ++i) acc[i] += src[i];
}

constexpr Kernels kNeonKernels{axpy_code_i64_neon, axpy_w32_neon, add_i64_neon,
                               "neon"};

#endif  // RSNN_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

const Kernels& best_kernels() {
#if RSNN_SIMD_X86
  static const Kernels* best = [] {
    return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : &kScalarKernels;
  }();
  return *best;
#elif RSNN_SIMD_NEON
  return kNeonKernels;
#else
  return kScalarKernels;
#endif
}

// Depth of force-scalar requests: the env knob contributes one permanent
// increment; each live ScopedForceScalar(true) contributes one more.
std::atomic<int>& force_scalar_depth() {
  static std::atomic<int> depth = [] {
    const char* env = std::getenv("RSNN_FORCE_SCALAR");
    return (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
  }();
  return depth;
}

}  // namespace

const Kernels& kernels() {
  return force_scalar_depth().load(std::memory_order_relaxed) > 0
             ? kScalarKernels
             : best_kernels();
}

const Kernels& scalar_kernels() { return kScalarKernels; }

const char* detected_isa() { return best_kernels().isa; }

bool force_scalar_active() {
  return force_scalar_depth().load(std::memory_order_relaxed) > 0;
}

ScopedForceScalar::ScopedForceScalar(bool force) : previous_(force) {
  if (force) force_scalar_depth().fetch_add(1, std::memory_order_relaxed);
}

ScopedForceScalar::~ScopedForceScalar() {
  if (previous_) force_scalar_depth().fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace rsnn::common::simd
