// Arena: a chunked bump allocator for per-inference scratch memory.
//
// The fast-path executor (hw/fast_path) allocates all of its intermediate
// activation buffers from one per-worker arena. Allocation is a pointer
// bump; reset() rewinds the arena for the next inference. If a round
// overflows the primary chunk, overflow chunks are allocated to satisfy it
// and the *next* reset() consolidates the total demand into one primary
// chunk — so from the second reset onward a workload with a stable
// allocation pattern performs zero heap allocation (the property asserted
// by the warm-stream test in tests/test_fastpath.cpp).
//
// Returned blocks are aligned for std::max_align_t and are NOT zeroed;
// callers initialize them. Pointers are valid until the next reset().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.hpp"

namespace rsnn::common {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 0) {
    if (initial_bytes > 0) grow_primary(initial_bytes);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Allocate `count` objects of trivially-destructible type T.
  /// Zero-count allocations return a non-null (but unusable) pointer.
  template <typename T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    return reinterpret_cast<T*>(alloc_bytes(count * sizeof(T)));
  }

  /// Rewind the arena. If the finished round overflowed the primary chunk,
  /// consolidate the round's total demand into one primary chunk so the next
  /// identical round bumps through a single block without allocating.
  void reset() {
    if (!overflow_.empty()) {
      overflow_.clear();
      grow_primary(round_bytes_);
    }
    offset_ = 0;
    round_bytes_ = 0;
  }

  /// Bytes handed out since the last reset().
  std::size_t round_bytes() const { return round_bytes_; }
  /// Size of the primary chunk (the steady-state footprint).
  std::size_t capacity() const { return primary_size_; }

 private:
  static constexpr std::size_t kAlign = alignof(std::max_align_t);
  static std::size_t aligned(std::size_t n) {
    return (n + kAlign - 1) / kAlign * kAlign;
  }

  void grow_primary(std::size_t bytes) {
    primary_size_ = aligned(bytes);
    primary_ = std::make_unique<std::byte[]>(primary_size_);
  }

  std::byte* alloc_bytes(std::size_t bytes) {
    bytes = aligned(bytes);
    round_bytes_ += bytes;
    if (offset_ + bytes <= primary_size_) {
      std::byte* p = primary_.get() + offset_;
      offset_ += bytes;
      return p;
    }
    // Overflow: a dedicated chunk for this block; reset() consolidates.
    overflow_.push_back(std::make_unique<std::byte[]>(bytes));
    return overflow_.back().get();
  }

  std::unique_ptr<std::byte[]> primary_;
  std::size_t primary_size_ = 0;
  std::size_t offset_ = 0;
  std::size_t round_bytes_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> overflow_;
};

}  // namespace rsnn::common
