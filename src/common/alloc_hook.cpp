// Global operator new/delete replacements counting heap allocations.
// See alloc_hook.hpp for the linking model and intended use.

#include "common/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  // aligned_alloc requires the size to be a multiple of the alignment.
  size = (size + align - 1) / align * align;
  return std::aligned_alloc(align, size);
}

}  // namespace

namespace rsnn::common {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace rsnn::common

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
