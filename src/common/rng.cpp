#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rsnn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  RSNN_REQUIRE(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::next_int(int lo, int hi) {
  RSNN_REQUIRE(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo) + 1;
  return lo + static_cast<int>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  RSNN_REQUIRE(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace rsnn
