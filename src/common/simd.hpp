// SIMD dispatch for the simulator fast path's integer inner loops.
//
// The fast-path kernels (hw/fast_path) spend their time in three tiny
// integer primitives: saxpy over int64 activation codes, saxpy with int32
// prepared weights widened into int64 accumulators, and elementwise int64
// accumulation. This module provides hand-vectorized implementations of
// those primitives (AVX2 on x86-64, NEON on AArch64) behind one function-
// pointer table resolved at runtime from CPUID, with a portable scalar
// fallback that is always available.
//
// Exactness contract: every implementation computes the same full-precision
// integer arithmetic — SIMD lanes only reorder independent element updates,
// and int64 addition of in-range products is exact — so scalar and vector
// kernels are bit-identical (tests/test_fastpath.cpp asserts this under
// forced dispatch).
//
// Value ranges: `axpy_code_i64` requires the source elements and the scalar
// multiplier to fit in int32 (activation codes are unsigned T-bit values and
// weights are `weight_bits`-bit signed — both orders of magnitude inside
// that bound); `axpy_w32` requires |a * w[i]| to fit in int32 (T-bit code
// times a quantized weight; the hardware's own 24-bit accumulators bound
// this far below 2^31). Both are RSNN_DCHECKed at the call sites.
//
// Dispatch control:
//   * RSNN_FORCE_SCALAR=1 in the environment forces the scalar kernels for
//     the whole process (the CI fallback job runs the suite this way);
//   * ScopedForceScalar flips dispatch from a test, restoring it on scope
//     exit, so one process can compare vector vs scalar results.
#pragma once

#include <cstdint>

namespace rsnn::common::simd {

/// The three fast-path primitives, as one dispatch table.
struct Kernels {
  /// acc[i] += w * src[i]. Requires src[i] and w to fit in int32 (the
  /// product is computed exactly in int64).
  void (*axpy_code_i64)(std::int64_t* acc, const std::int64_t* src,
                        std::int64_t w, std::int64_t n);
  /// acc[i] += a * w[i] with int32 weights. Requires |a * w[i]| < 2^31.
  void (*axpy_w32)(std::int64_t* acc, const std::int32_t* w, std::int64_t a,
                   std::int64_t n);
  /// acc[i] += src[i] (exact int64 addition).
  void (*add_i64)(std::int64_t* acc, const std::int64_t* src, std::int64_t n);
  /// Name of the instruction set these kernels use: "avx2", "neon", "scalar".
  const char* isa;
};

/// The kernel table the fast path should use right now: the best ISA the
/// CPU supports, unless scalar dispatch is forced (env or scope guard).
const Kernels& kernels();

/// The portable scalar table (always valid; what forced dispatch selects).
const Kernels& scalar_kernels();

/// ISA of the table kernels() currently returns.
inline const char* active_isa() { return kernels().isa; }

/// ISA of the best vector kernels this CPU supports, ignoring any forced-
/// scalar override ("avx2", "neon", or "scalar" when none apply). What the
/// bench metadata records as "detected".
const char* detected_isa();

/// True when dispatch is currently forced to the scalar kernels (the
/// RSNN_FORCE_SCALAR=1 environment knob, or an active ScopedForceScalar).
bool force_scalar_active();

/// RAII override of the dispatch decision, for in-process vector-vs-scalar
/// equivalence tests. Nestable; restores the previous state on destruction.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force);
  ~ScopedForceScalar();
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  bool previous_;
};

}  // namespace rsnn::common::simd
