// Minimal leveled logger. Single global sink (stderr) with a runtime level;
// benchmarks lower the level to keep table output clean.
#pragma once

#include <sstream>
#include <string>

namespace rsnn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace rsnn

#define RSNN_LOG(level, ...)                                       \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::rsnn::log_level())) {                   \
      std::ostringstream rsnn_log_os_;                             \
      rsnn_log_os_ << __VA_ARGS__;                                 \
      ::rsnn::detail::log_emit(level, rsnn_log_os_.str());         \
    }                                                              \
  } while (false)

#define RSNN_DEBUG(...) RSNN_LOG(::rsnn::LogLevel::kDebug, __VA_ARGS__)
#define RSNN_INFO(...) RSNN_LOG(::rsnn::LogLevel::kInfo, __VA_ARGS__)
#define RSNN_WARN(...) RSNN_LOG(::rsnn::LogLevel::kWarn, __VA_ARGS__)
#define RSNN_ERROR(...) RSNN_LOG(::rsnn::LogLevel::kError, __VA_ARGS__)
